"""Setuptools configuration (src layout).

The package metadata lives here (no ``pyproject.toml``) so that
``pip install -e .`` and legacy ``python setup.py develop`` both work in
offline environments without the ``wheel``/PEP 517 backends; the ``repro``
package is exposed from ``src/``.
"""

from setuptools import find_packages, setup

setup(
    name="fat-tree-qram",
    version="1.0.0",
    description=(
        "Reproduction of Fat-Tree QRAM: a high-bandwidth shared quantum "
        "random access memory (ASPLOS 2025)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
)
