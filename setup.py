"""Setup shim for environments without the ``wheel`` package.

The project is fully described by ``pyproject.toml``; this file exists so
that legacy editable installs (``pip install -e . --no-use-pep517`` or
``python setup.py develop``) work in offline environments where the
``wheel`` backend is unavailable.
"""

from setuptools import setup

setup()
