"""Pipelined queries at the gate level, plus the fidelity story of Sec. 8.

Part 1 runs three concurrent queries through the gate-level Fat-Tree executor
(capacity 8) and verifies each returns exactly the data the memory holds
while sharing the multiplexed routers.

Part 2 evaluates the analytic fidelity models: the Table 3 infidelity
scaling, the Table 4 virtual-distillation comparison, and the Fig. 11 QEC
curves.

Run with ``python examples/pipelined_query_fidelity.py``.
"""

from __future__ import annotations

from repro import FatTreeQRAM
from repro.core.query import QueryRequest
from repro.fidelity import (
    fat_tree_query_infidelity,
    fig11_series,
    table3_rows,
    table4_comparison,
)
from repro.workloads import structured_data


def gate_level_pipelining() -> None:
    data = structured_data(8, "parity")
    qram = FatTreeQRAM(8, data)
    executor = qram.executor()
    requests = [
        QueryRequest(0, {0: 1.0, 7: 1.0}),
        QueryRequest(1, {1: 1.0, 6: -1.0}),
        QueryRequest(2, {2: 1.0, 5: 1.0j}),
    ]
    summary, outputs = executor.run_pipelined_queries(requests, interval=22)
    print("Gate-level pipelined execution (capacity 8, 3 queries):")
    print(f"  admission interval : {summary.interval} raw layers")
    print(f"  per-query latency  : {summary.per_query_raw_layers} raw layers "
          "(10 log N - 1 = 29)")
    print(f"  concurrent queries : {summary.max_concurrent}")
    for request in requests:
        fidelity = executor.query_fidelity(request, outputs[request.query_id])
        answers = {a: b for (a, b) in outputs[request.query_id]}
        print(f"  query {request.query_id}: fidelity {fidelity:.6f}, "
              f"data read {answers} (memory: "
              f"{ {a: data[a] for a in answers} })")
    print(f"  routers returned to |0...0>: {executor.tree_is_clean()}")


def fidelity_analysis() -> None:
    print("\nQuery infidelity bound (Table 3, eps0 = 1e-3):")
    for row in table3_rows(capacities=(8, 16, 32, 64)):
        print(f"  N = {row['capacity']:3d}: {row['infidelity_eps0_0.001']:.4f}")

    print("\nVirtual distillation with parallel queries (Table 4):")
    for name, values in table4_comparison().items():
        print(f"  {name:9s}: {values['copies']} copies, "
              f"F = {values['fidelity_before']:.3f} -> {values['fidelity_after']:.4f}")

    print("\nQEC (Fig. 11, eps0 = 1e-3): infidelity at tree depth 10")
    series = fig11_series(tree_depths=(10,))
    for label in ("Fat-Tree d=1", "Fat-Tree d=3", "Fat-Tree d=5", "GC d=3"):
        print(f"  {label:15s}: {series[label][0]:.3g}")
    print(f"\n(For reference, the unencoded Fat-Tree bound at N = 2^10 is "
          f"{fat_tree_query_infidelity(1024):.3f}.)")


def main() -> None:
    gate_level_pipelining()
    fidelity_analysis()


if __name__ == "__main__":
    main()
