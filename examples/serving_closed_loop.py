"""Four serving scenarios on one discrete-event engine.

The same 2-shard Fat-Tree fleet serves:

1. **open loop** — a Poisson trace whose arrivals ignore service latency;
2. **closed loop** — QPU-style clients (Fig. 7) that issue their next
   query only after the previous one completes plus a think time, so
   offered load reacts to latency;
3. **SLO-aware** — deadline-carrying traffic under EDF admission with a
   bounded queue and expired-deadline shedding (saturation surfaces as
   rejects / sheds / deadline misses, not unbounded queues);
4. **elastic** — a replicated fleet that grows and shrinks replicas from
   queue-depth watermarks while a burst passes through.

Every scenario is the same engine — a heap of typed events on one virtual
clock — with a different workload source or serving discipline.

Run with ``python examples/serving_closed_loop.py``.
"""

from __future__ import annotations

from repro import AutoscalerConfig, QRAMService, QueryRequest, TraceSource
from repro.workloads import closed_loop_source, poisson_trace, random_data

CAPACITY = 16
NUM_SHARDS = 2


def _print_stats(label: str, stats) -> None:
    print(f"{label}:")
    print(f"  served {stats.total_queries}/{stats.offered_queries} offered "
          f"in {stats.makespan_layers:.0f} layers "
          f"(rejected {stats.rejected_queries}, shed {stats.shed_queries})")
    print(f"  latency p50/p95/p99 : {stats.p50_latency_layers:.1f} / "
          f"{stats.p95_latency_layers:.1f} / {stats.p99_latency_layers:.1f} layers")
    if stats.deadline_misses or stats.deadline_miss_rate:
        print(f"  deadline miss rate  : {stats.deadline_miss_rate:.1%} "
              f"({stats.deadline_misses} misses)")
    print()


def open_loop() -> None:
    service = QRAMService(CAPACITY, num_shards=NUM_SHARDS,
                          data=random_data(CAPACITY, seed=1))
    trace = poisson_trace(CAPACITY, 40, mean_interarrival=8.0,
                          num_tenants=4, num_shards=NUM_SHARDS, seed=7)
    report = service.serve(trace)      # thin wrapper over the engine
    _print_stats("open loop (40-query Poisson trace)", report.stats)


def closed_loop() -> None:
    service = QRAMService(CAPACITY, num_shards=NUM_SHARDS, functional=False)
    source = closed_loop_source(
        CAPACITY, num_clients=4, queries_per_client=8,
        think_layers=60.0, num_shards=NUM_SHARDS, seed=3,
    )
    report = service.serve_workload(source)
    stats = report.stats
    _print_stats("closed loop (4 clients x 8 queries, think 60 layers)", stats)
    for tenant, t in stats.per_tenant.items():
        print(f"  client {tenant}: mean latency {t.mean_latency_layers:6.1f} "
              f"layers, p95 {t.p95_latency_layers:6.1f}")
    print()


def slo_aware() -> None:
    service = QRAMService(CAPACITY, num_shards=NUM_SHARDS,
                          functional=False, policy="edf")
    trace = poisson_trace(CAPACITY, 60, mean_interarrival=2.0,
                          num_tenants=4, num_shards=NUM_SHARDS, seed=5,
                          deadline_layers=180.0)
    report = service.serve_workload(
        TraceSource(trace), max_queue_depth=6, shed_expired=True
    )
    _print_stats("SLO-aware (saturating trace, EDF, deadline 180 layers, "
                 "queue bound 6)", report.stats)


def elastic() -> None:
    service = QRAMService(CAPACITY, num_shards=1, functional=False,
                          placement="shortest-queue")
    burst = [QueryRequest(i, {i % CAPACITY: 1.0}, request_time=0.0)
             for i in range(12)]
    burst.append(QueryRequest(99, {5: 1.0}, request_time=40_000.0))
    config = AutoscalerConfig(period=100.0, high_watermark=4,
                              low_watermark=0, min_shards=1, max_shards=3)
    report = service.serve_workload(TraceSource(burst), autoscaler=config)
    _print_stats("elastic (12-query burst on a replicated fleet)", report.stats)
    for event in report.scale_events:
        print(f"  t={event.time:8.0f}: scale {event.action:<4} -> "
              f"{event.active_shards} replica(s) "
              f"(queue depth {event.trigger_depth})")
    print()


def main() -> None:
    print(f"one engine, four serving scenarios — capacity {CAPACITY}, "
          f"Fat-Tree shards\n")
    open_loop()
    closed_loop()
    slo_aware()
    elastic()


if __name__ == "__main__":
    main()
