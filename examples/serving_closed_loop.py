"""Four serving scenarios on one discrete-event engine.

The same 2-shard Fat-Tree fleet serves:

1. **open loop** — a Poisson trace whose arrivals ignore service latency;
2. **closed loop** — QPU-style clients (Fig. 7) that issue their next
   query only after the previous one completes plus a think time, so
   offered load reacts to latency;
3. **SLO-aware** — deadline-carrying traffic under EDF admission with a
   bounded queue and expired-deadline shedding (saturation surfaces as
   rejects / sheds / deadline misses, not unbounded queues);
4. **elastic** — a replicated fleet that grows and shrinks replicas from
   queue-depth watermarks while two query bursts pass through.

Every scenario is the same engine — a heap of typed events on one virtual
clock — and every scenario is one declarative
:class:`repro.scenarios.ScenarioSpec` in ``SCENARIOS``: the fleet, the
workload, the admission policy and the run knobs in one validated,
JSON-round-trippable object (``spec.build()`` assembles the exact objects
the hand-wired path would; bit-identity is pinned in
``tests/test_scenarios.py``).

Run with ``python examples/serving_closed_loop.py``.
"""

from __future__ import annotations

from repro import AutoscalerConfig
from repro.scenarios import FleetSpec, PolicySpec, ScenarioSpec, WorkloadSpec

CAPACITY = 16
NUM_SHARDS = 2


def open_loop_scenario() -> ScenarioSpec:
    return ScenarioSpec(
        name="open-loop",
        fleet=FleetSpec(
            capacity=CAPACITY,
            shards=("Fat-Tree",) * NUM_SHARDS,
            data="random",
            data_seed=1,
        ),
        workload=WorkloadSpec(
            kind="poisson",
            num_queries=40,
            mean_interarrival=8.0,
            num_tenants=4,
            seed=7,
        ),
    )


def closed_loop_scenario() -> ScenarioSpec:
    return ScenarioSpec(
        name="closed-loop",
        fleet=FleetSpec(
            capacity=CAPACITY,
            shards=("Fat-Tree",) * NUM_SHARDS,
            functional=False,
        ),
        workload=WorkloadSpec(
            kind="closed-loop",
            num_clients=4,
            queries_per_client=8,
            think_layers=60.0,
            seed=3,
        ),
    )


def slo_scenario() -> ScenarioSpec:
    return ScenarioSpec(
        name="slo-aware",
        fleet=FleetSpec(
            capacity=CAPACITY,
            shards=("Fat-Tree",) * NUM_SHARDS,
            functional=False,
        ),
        workload=WorkloadSpec(
            kind="poisson",
            num_queries=60,
            mean_interarrival=2.0,
            num_tenants=4,
            seed=5,
            deadline_layers=180.0,
        ),
        policy=PolicySpec(
            admission="edf",
            max_queue_depth=6,
            shed_expired=True,
        ),
    )


def elastic_scenario() -> ScenarioSpec:
    return ScenarioSpec(
        name="elastic",
        fleet=FleetSpec(
            capacity=CAPACITY,
            shards=("Fat-Tree",),
            placement="shortest-queue",
            functional=False,
        ),
        workload=WorkloadSpec(
            kind="bursty",
            num_bursts=2,
            burst_size=12,
            burst_spacing=40_000.0,
        ),
        policy=PolicySpec(
            autoscaler=AutoscalerConfig(
                period=100.0, high_watermark=4, low_watermark=0,
                min_shards=1, max_shards=3,
            ),
        ),
    )


#: Every scenario this example serves, importable by tests and benchmarks.
SCENARIOS: dict[str, ScenarioSpec] = {
    "open-loop": open_loop_scenario(),
    "closed-loop": closed_loop_scenario(),
    "slo-aware": slo_scenario(),
    "elastic": elastic_scenario(),
}


def _print_stats(label: str, stats) -> None:
    print(f"{label}:")
    print(f"  served {stats.total_queries}/{stats.offered_queries} offered "
          f"in {stats.makespan_layers:.0f} layers "
          f"(rejected {stats.rejected_queries}, shed {stats.shed_queries})")
    print(f"  latency p50/p95/p99 : {stats.p50_latency_layers:.1f} / "
          f"{stats.p95_latency_layers:.1f} / {stats.p99_latency_layers:.1f} layers")
    if stats.deadline_misses or stats.deadline_miss_rate:
        print(f"  deadline miss rate  : {stats.deadline_miss_rate:.1%} "
              f"({stats.deadline_misses} misses)")
    print()


def open_loop() -> None:
    report = SCENARIOS["open-loop"].execute()
    _print_stats("open loop (40-query Poisson trace)", report.stats)


def closed_loop() -> None:
    report = SCENARIOS["closed-loop"].execute()
    stats = report.stats
    _print_stats("closed loop (4 clients x 8 queries, think 60 layers)", stats)
    for tenant, t in stats.per_tenant.items():
        print(f"  client {tenant}: mean latency {t.mean_latency_layers:6.1f} "
              f"layers, p95 {t.p95_latency_layers:6.1f}")
    print()


def slo_aware() -> None:
    report = SCENARIOS["slo-aware"].execute()
    _print_stats("SLO-aware (saturating trace, EDF, deadline 180 layers, "
                 "queue bound 6)", report.stats)


def elastic() -> None:
    report = SCENARIOS["elastic"].execute()
    _print_stats("elastic (two 12-query bursts on a replicated fleet)",
                 report.stats)
    for event in report.scale_events:
        print(f"  t={event.time:8.0f}: scale {event.action:<4} -> "
              f"{event.active_shards} replica(s) "
              f"(queue depth {event.trigger_depth})")
    print()


def main() -> None:
    print(f"one engine, four serving scenarios — capacity {CAPACITY}, "
          f"Fat-Tree shards\n")
    open_loop()
    closed_loop()
    slo_aware()
    elastic()


if __name__ == "__main__":
    main()
