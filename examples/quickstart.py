"""Quickstart: query a Fat-Tree QRAM in superposition.

Run with ``python examples/quickstart.py``.

The example stores an 8-entry classical table in a Fat-Tree QRAM, queries a
superposition of addresses, and prints the resulting (address, data)
amplitudes together with the architecture-level metrics of the device.
"""

from __future__ import annotations

from repro import BucketBrigadeQRAM, FatTreeQRAM


def main() -> None:
    data = [1, 0, 1, 1, 0, 0, 1, 0]
    qram = FatTreeQRAM(capacity=8, data=data)

    print("Fat-Tree QRAM, capacity N = 8")
    print(f"  physical qubits        : {qram.qubit_count}")
    print(f"  quantum routers        : {qram.num_routers}")
    print(f"  query parallelism      : {qram.query_parallelism}")
    print(f"  single-query latency   : {qram.single_query_latency()} weighted layers"
          f" ({qram.raw_query_layers} raw layers)")
    print(f"  amortized latency      : {qram.amortized_query_latency()} layers/query")
    print(f"  bandwidth @ 1 MHz CLOPS: {qram.bandwidth():.3g} qubits/s")

    # Query the superposition (|0> + |3> + |5> + |6>)/2 — Eq. (1) of the paper.
    amplitudes = {0: 0.5, 3: 0.5, 5: 0.5, 6: 0.5}
    result = qram.query(amplitudes)
    print("\nQuery of (|0> + |3> + |5> + |6>)/2:")
    for (address, bus), amplitude in sorted(result.items()):
        print(f"  |address={address}, data={bus}>  amplitude {amplitude:+.3f}"
              f"   (memory holds {data[address]})")

    # The same memory behind a Bucket-Brigade QRAM gives identical results,
    # only slower when several queries contend for it.
    bb = BucketBrigadeQRAM(8, data)
    assert {k: round(abs(v), 9) for k, v in bb.query(amplitudes).items()} == \
           {k: round(abs(v), 9) for k, v in result.items()}
    print("\nBB QRAM returns the same query results; its latency for "
          f"{qram.query_parallelism} queries is {bb.parallel_query_latency(3):.2f} "
          f"layers vs {qram.parallel_query_latency(3):.2f} for Fat-Tree.")


if __name__ == "__main__":
    main()
