"""Partitioned parallel serving: same report, N worker processes.

An interleaved fleet's shards never interact during a run, so the
discrete-event simulation factors exactly: ``ServiceEngine(workers=N)``
partitions the fleet one child engine per shard, serves the partitions in
up to N forked worker processes and k-way merges the per-shard event
streams back under the oracle's ``(time, PRIORITY, sequence)`` key
discipline.  The merged report is *bit-identical* to ``workers=1`` and to
the single-process oracle (``workers=0``) — this script asserts it, then
shows the two supporting pieces:

1. **PartitionedTraceSource** — workers regenerate only their own shard's
   slice of a lazy trace (no full trace materialised anywhere);
2. **ScheduleCacheRegistry** — compiled schedule executors are shared
   process-wide, prewarmed at fleet build and inherited copy-on-write by
   forked workers, so replicas of one memory image compile once;
3. **observable fallbacks** — configurations the partitioner cannot prove
   oracle-exact (here: an autoscaled fleet) fall back to the oracle with
   ``report.parallel.fallback_reason`` set, never silently.

One :class:`repro.scenarios.ScenarioSpec` describes the whole experiment;
the worker count is just ``RunSpec.workers``, so the sweep is
``dataclasses.replace`` on the ``run`` section and
``WorkloadSpec(delivery="partitioned")`` is the lazy per-shard
regeneration form.

Run with ``python examples/serving_parallel.py``.
"""

from __future__ import annotations

from dataclasses import replace

from repro import AutoscalerConfig
from repro.scenarios import (
    FleetSpec,
    PolicySpec,
    RunSpec,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.schedule_cache import default_registry

CAPACITY = 16
NUM_SHARDS = 4
QUERIES = 48


def parallel_scenario() -> ScenarioSpec:
    """The base run: 4 interleaved shards, oracle workers=0."""
    return ScenarioSpec(
        name="parallel-oracle",
        fleet=FleetSpec(
            capacity=CAPACITY,
            shards=("Fat-Tree",) * NUM_SHARDS,
            data="random",
            data_seed=3,
        ),
        workload=WorkloadSpec(
            kind="poisson",
            num_queries=QUERIES,
            mean_interarrival=6.0,
            num_tenants=3,
            seed=11,
        ),
        run=RunSpec(workers=0),
    )


def lazy_partitioned_scenario() -> ScenarioSpec:
    """The same trace as a lazy per-shard regenerating source."""
    base = parallel_scenario()
    return replace(
        base,
        name="parallel-lazy",
        workload=replace(base.workload, delivery="partitioned"),
        run=RunSpec(workers=2, retention="none"),
    )


def fallback_scenario() -> ScenarioSpec:
    """An autoscaled fleet: unpartitionable, falls back to the oracle."""
    return ScenarioSpec(
        name="parallel-fallback",
        fleet=FleetSpec(
            capacity=CAPACITY,
            shards=("Fat-Tree",) * NUM_SHARDS,
            placement="shortest-queue",
            data="random",
            data_seed=3,
        ),
        workload=WorkloadSpec(
            kind="poisson",
            num_queries=12,
            mean_interarrival=2.0,
            seed=7,
        ),
        policy=PolicySpec(
            autoscaler=AutoscalerConfig(
                period=100.0, high_watermark=4, low_watermark=0,
                min_shards=1, max_shards=8,
            ),
        ),
        run=RunSpec(workers=4),
    )


#: Every scenario this example serves, importable by tests and benchmarks.
SCENARIOS: dict[str, ScenarioSpec] = {
    "oracle": parallel_scenario(),
    "lazy-partitioned": lazy_partitioned_scenario(),
    "fallback": fallback_scenario(),
}


def bit_identity() -> None:
    base = SCENARIOS["oracle"]
    oracle = base.execute()
    print(f"oracle (workers=0): served {oracle.stats.total_queries} queries, "
          f"p99 {oracle.stats.p99_latency_layers:.1f} layers")
    for workers in (1, 2, 4):
        report = replace(base, run=replace(base.run, workers=workers)).execute()
        info = report.parallel
        assert report == oracle, f"workers={workers} diverged from the oracle"
        print(f"workers={workers}: {info.partitions} partitions across "
              f"{info.workers} worker(s) — report bit-identical")
    print()


def partitioned_lazy_trace() -> None:
    report = SCENARIOS["lazy-partitioned"].execute()
    print("PartitionedTraceSource: each worker regenerated only its shards' "
          "arrivals")
    print(f"  served {report.stats.total_queries}/{QUERIES} with "
          f"retention='none' (streaming percentile merge), "
          f"p50 {report.stats.p50_latency_layers:.1f} layers")
    print()


def shared_schedule_cache() -> None:
    registry = default_registry()
    registry.clear()
    SCENARIOS["oracle"].build()     # builds + prewarms the registry
    built = registry.stats()
    SCENARIOS["oracle"].build()     # identical memory image: warm hits
    twin = registry.stats()
    print("ScheduleCacheRegistry: one compiled executor per memory image")
    print(f"  first build : {built.misses} misses (prewarm), "
          f"{built.entries} entries")
    print(f"  twin build  : {twin.hits} hits, still {twin.entries} entries "
          f"(hit rate {twin.hit_rate:.0%})")
    print()


def observable_fallback() -> None:
    report = SCENARIOS["fallback"].execute()
    info = report.parallel
    assert info is not None and info.workers == 0
    print("fallback: unpartitionable configs serve on the oracle, loudly")
    print(f"  fallback_reason: {info.fallback_reason}")
    print()


def main() -> None:
    print(f"partitioned parallel serving — capacity {CAPACITY}, "
          f"{NUM_SHARDS} shards\n")
    bit_identity()
    partitioned_lazy_trace()
    shared_schedule_cache()
    observable_fallback()


if __name__ == "__main__":
    main()
