"""Partitioned parallel serving: same report, N worker processes.

An interleaved fleet's shards never interact during a run, so the
discrete-event simulation factors exactly: ``ServiceEngine(workers=N)``
partitions the fleet one child engine per shard, serves the partitions in
up to N forked worker processes and k-way merges the per-shard event
streams back under the oracle's ``(time, PRIORITY, sequence)`` key
discipline.  The merged report is *bit-identical* to ``workers=1`` and to
the single-process oracle (``workers=0``) — this script asserts it, then
shows the two supporting pieces:

1. **PartitionedTraceSource** — workers regenerate only their own shard's
   slice of a lazy trace (no full trace materialised anywhere);
2. **ScheduleCacheRegistry** — compiled schedule executors are shared
   process-wide, prewarmed at fleet build and inherited copy-on-write by
   forked workers, so replicas of one memory image compile once;
3. **observable fallbacks** — configurations the partitioner cannot prove
   oracle-exact (here: an autoscaled fleet) fall back to the oracle with
   ``report.parallel.fallback_reason`` set, never silently.

Run with ``python examples/serving_parallel.py``.
"""

from __future__ import annotations

from repro import AutoscalerConfig, QRAMService, ServiceEngine, TraceSource
from repro.engine import PartitionedTraceSource
from repro.schedule_cache import default_registry
from repro.workloads import iter_poisson_trace, poisson_trace, random_data

CAPACITY = 16
NUM_SHARDS = 4
QUERIES = 48


def _service(**overrides):
    kwargs = dict(num_shards=NUM_SHARDS, data=random_data(CAPACITY, seed=3))
    kwargs.update(overrides)
    return QRAMService(CAPACITY, **kwargs)


def bit_identity() -> None:
    requests = poisson_trace(CAPACITY, QUERIES, mean_interarrival=6.0,
                             num_tenants=3, num_shards=NUM_SHARDS, seed=11)
    oracle = ServiceEngine(_service(), workers=0).run(TraceSource(requests))
    print(f"oracle (workers=0): served {oracle.stats.total_queries} queries, "
          f"p99 {oracle.stats.p99_latency_layers:.1f} layers")
    for workers in (1, 2, 4):
        report = ServiceEngine(_service(), workers=workers).run(
            TraceSource(requests)
        )
        info = report.parallel
        assert report == oracle, f"workers={workers} diverged from the oracle"
        print(f"workers={workers}: {info.partitions} partitions across "
              f"{info.workers} worker(s) — report bit-identical")
    print()


def partitioned_lazy_trace() -> None:
    def factory(shards=None):
        return iter_poisson_trace(CAPACITY, QUERIES, mean_interarrival=6.0,
                                  num_tenants=3, num_shards=NUM_SHARDS,
                                  seed=11, shards=shards)

    source = PartitionedTraceSource(factory)
    report = ServiceEngine(_service(), workers=2, retention="none").run(source)
    print("PartitionedTraceSource: each worker regenerated only its shards' "
          "arrivals")
    print(f"  served {report.stats.total_queries}/{QUERIES} with "
          f"retention='none' (streaming percentile merge), "
          f"p50 {report.stats.p50_latency_layers:.1f} layers")
    print()


def shared_schedule_cache() -> None:
    registry = default_registry()
    registry.clear()
    _service()                      # builds + prewarms the registry
    built = registry.stats()
    _service()                      # identical memory image: warm hits
    twin = registry.stats()
    print("ScheduleCacheRegistry: one compiled executor per memory image")
    print(f"  first build : {built.misses} misses (prewarm), "
          f"{built.entries} entries")
    print(f"  twin build  : {twin.hits} hits, still {twin.entries} entries "
          f"(hit rate {twin.hit_rate:.0%})")
    print()


def observable_fallback() -> None:
    service = _service(placement="shortest-queue")
    requests = poisson_trace(CAPACITY, 12, mean_interarrival=2.0,
                             num_shards=NUM_SHARDS, seed=7)
    config = AutoscalerConfig(period=100.0, high_watermark=4,
                              low_watermark=0, min_shards=1, max_shards=8)
    engine = ServiceEngine(service, workers=4, autoscaler=config)
    report = engine.run(TraceSource(requests))
    info = report.parallel
    assert info is not None and info.workers == 0
    print("fallback: unpartitionable configs serve on the oracle, loudly")
    print(f"  fallback_reason: {info.fallback_reason}")
    print()


def main() -> None:
    print(f"partitioned parallel serving — capacity {CAPACITY}, "
          f"{NUM_SHARDS} shards\n")
    bit_identity()
    partitioned_lazy_trace()
    shared_schedule_cache()
    observable_fallback()


if __name__ == "__main__":
    main()
