"""Parallel Grover search backed by a shared Fat-Tree QRAM.

The database is split into ``log N`` segments searched in parallel (Sec. 6.3).
The script (1) runs an exact amplitude-amplification simulation of each
segment's search, where the oracle is the QRAM's classical data, and (2)
estimates the overall circuit depth of the whole parallel search on Fat-Tree,
BB and Virtual QRAM — the Grover bars of Fig. 9.

Run with ``python examples/parallel_grover.py``.
"""

from __future__ import annotations

from repro import build_architecture
from repro.algorithms import algorithm_depth, parallel_grover_profile
from repro.algorithms.grover import grover_iterations, run_grover_search
from repro.workloads import random_data

CAPACITY = 256
SEED = 7


def main() -> None:
    data = random_data(CAPACITY, seed=SEED, density=0.02)   # a few marked items
    if sum(data) == 0:
        data[3] = 1
    segments = 8
    segment_size = CAPACITY // segments

    print(f"Parallel Grover search over N = {CAPACITY} entries, "
          f"{segments} segments of {segment_size}")
    found = []
    for segment in range(segments):
        chunk = data[segment * segment_size:(segment + 1) * segment_size]
        if sum(chunk) == 0:
            print(f"  segment {segment}: no marked item")
            continue
        best, probability = run_grover_search(chunk)
        address = segment * segment_size + best
        found.append(address)
        print(f"  segment {segment}: found address {address} "
              f"(success probability {probability:.2f}, "
              f"{grover_iterations(segment_size, sum(chunk))} iterations)")
    print(f"  marked addresses in memory: {[i for i, x in enumerate(data) if x]}")
    print(f"  addresses found by search : {sorted(found)}")

    profile = parallel_grover_profile(CAPACITY, parallel_segments=segments)
    print("\nOverall circuit depth of the parallel search (weighted layers):")
    for architecture in ("Fat-Tree", "BB", "Virtual", "D-BB"):
        qram = build_architecture(architecture, CAPACITY)
        depth = algorithm_depth(profile, qram)
        print(f"  {architecture:10s}: {depth:9.1f}")
    ft = algorithm_depth(profile, build_architecture("Fat-Tree", CAPACITY))
    bb = algorithm_depth(profile, build_architecture("BB", CAPACITY))
    print(f"\nFat-Tree reduces the Grover circuit depth by {bb / ft:.1f}x over a "
          "shared BB QRAM with the same qubit budget.")


if __name__ == "__main__":
    main()
