"""Fidelity-aware serving: noise-model backends, SLOs and encoded fleets.

Quality-of-result as a first-class serving axis (Sec. 8 wired into the
serving stack):

1. **predicted fidelity** — every slot of every window carries the
   Sec. 8.1 bound evaluated at the fleet's hardware parameters, degraded
   by pipelining depth, so even timing-only serving reports quality;
2. **fidelity SLOs** — ``QueryRequest.min_fidelity`` targets: infeasible
   requests are refused (``fidelity-infeasible``), feasible ones are
   placed on a replica that can meet them, and batches shrink so
   pipelining never drags an admitted slot below its SLO;
3. **distillation retry** — a copy budget lets the engine spend parallel
   query copies (Sec. 8.2 virtual distillation) to lift a shard over a
   target it cannot meet bare, charging the copies to the window;
4. **encoded fleets** — ``"Fat-Tree@d3"`` replicas serve logical queries
   at code distance 3 (Table 5 resources, Fig. 11 fidelity): a mixed
   bare + encoded fleet routes strict traffic to the encoded replica.

Run with ``python examples/serving_fidelity_slo.py``.
"""

from __future__ import annotations

from repro import QRAMService, TraceSource
from repro.hardware.parameters import TABLE3_PARAMETERS
from repro.workloads import poisson_trace

CAPACITY = 16
#: eps0 = 1e-4 — well below the code threshold (1e-2), where distance-3
#: encoding improves on bare hardware (at the paper's default 2e-3 it
#: would not: QEC only pays below threshold).
PARAMETERS = TABLE3_PARAMETERS[1e-4]


def _print_stats(label: str, stats) -> None:
    print(f"{label}:")
    print(f"  served {stats.total_queries}/{stats.offered_queries} offered "
          f"in {stats.makespan_layers:.0f} layers "
          f"(fidelity-rejected {stats.fidelity_rejected_queries})")
    print(f"  fidelity mean/min   : {stats.mean_fidelity:.5f} / "
          f"{stats.min_fidelity:.5f}")
    if stats.fidelity_slo_misses or stats.fidelity_slo_miss_rate:
        print(f"  fidelity miss rate  : {stats.fidelity_slo_miss_rate:.1%} "
              f"({stats.fidelity_slo_misses} misses)")
    for name, backend in stats.per_backend.items():
        print(f"  {name:<14}: {backend.queries:2d} queries, "
              f"mean fidelity {backend.mean_fidelity:.5f}")
    print()


def predicted_fidelity() -> None:
    """Timing-only serving still reports per-slot predicted fidelity."""
    service = QRAMService(CAPACITY, num_shards=2, functional=False,
                          parameters=PARAMETERS)
    trace = poisson_trace(CAPACITY, 24, mean_interarrival=10.0,
                          num_tenants=3, num_shards=2, seed=7)
    report = service.serve(trace)
    _print_stats("predicted fidelity (bare 2-shard Fat-Tree fleet)",
                 report.stats)


def mixed_encoded_fleet() -> None:
    """Bare + distance-3 replicas; strict tenants land on the encoded one."""
    service = QRAMService(
        CAPACITY, num_shards=2, functional=False,
        architectures=["Fat-Tree", "Fat-Tree@d3"],
        placement="shortest-queue", parameters=PARAMETERS,
    )
    bare, encoded = service.shards
    print(f"replica fidelity: bare {bare.predicted_query_fidelity():.5f}, "
          f"encoded {encoded.predicted_query_fidelity():.5f} "
          f"({encoded.qubit_count} vs {bare.qubit_count} qubits)\n")
    trace = poisson_trace(CAPACITY, 24, mean_interarrival=40.0,
                          num_tenants=3, seed=5, min_fidelity=0.995)
    report = service.serve_workload(TraceSource(trace))
    _print_stats("fidelity SLO 0.995 on a mixed bare + @d3 fleet",
                 report.stats)


def distillation_retry() -> None:
    """A target above the bare bound, met by spending parallel copies."""
    service = QRAMService(CAPACITY, num_shards=1, functional=False,
                          parameters=PARAMETERS)
    solo = service.shards[0].predicted_query_fidelity()
    target = 1.0 - (1.0 - solo) ** 2 * 2.0     # needs 2 distilled copies
    trace = poisson_trace(CAPACITY, 12, mean_interarrival=120.0, seed=3,
                          min_fidelity=target)
    report = service.serve_workload(TraceSource(trace),
                                    max_distillation_copies=4)
    copies = [r.distillation_copies for r in report.served]
    _print_stats(f"distillation retry (bare bound {solo:.5f}, "
                 f"target {target:.5f})", report.stats)
    print(f"  copies per query    : {copies}\n")


def main() -> None:
    print(f"fidelity-aware serving — capacity {CAPACITY}, eps0 = 1e-4\n")
    predicted_fidelity()
    mixed_encoded_fleet()
    distillation_retry()


if __name__ == "__main__":
    main()
