"""Fidelity-aware serving: noise-model backends, SLOs and encoded fleets.

Quality-of-result as a first-class serving axis (Sec. 8 wired into the
serving stack):

1. **predicted fidelity** — every slot of every window carries the
   Sec. 8.1 bound evaluated at the fleet's hardware parameters, degraded
   by pipelining depth, so even timing-only serving reports quality;
2. **fidelity SLOs** — ``QueryRequest.min_fidelity`` targets: infeasible
   requests are refused (``fidelity-infeasible``), feasible ones are
   placed on a replica that can meet them, and batches shrink so
   pipelining never drags an admitted slot below its SLO;
3. **distillation retry** — a copy budget lets the engine spend parallel
   query copies (Sec. 8.2 virtual distillation) to lift a shard over a
   target it cannot meet bare, charging the copies to the window;
4. **encoded fleets** — ``"Fat-Tree@d3"`` replicas serve logical queries
   at code distance 3 (Table 5 resources, Fig. 11 fidelity): a mixed
   bare + encoded fleet routes strict traffic to the encoded replica.

Each experiment is one :class:`repro.scenarios.ScenarioSpec` in
``SCENARIOS`` — the noise model rides in ``FleetSpec.parameters``, the
SLO in ``WorkloadSpec.min_fidelity``, the copy budget in
``RunSpec.max_distillation_copies`` (bit-identity vs the hand-wired
constructions is pinned in ``tests/test_scenarios.py``).

Run with ``python examples/serving_fidelity_slo.py``.
"""

from __future__ import annotations

from repro import QRAMService
from repro.hardware.parameters import TABLE3_PARAMETERS
from repro.scenarios import FleetSpec, RunSpec, ScenarioSpec, WorkloadSpec

CAPACITY = 16
#: eps0 = 1e-4 — well below the code threshold (1e-2), where distance-3
#: encoding improves on bare hardware (at the paper's default 2e-3 it
#: would not: QEC only pays below threshold).
PARAMETERS = TABLE3_PARAMETERS[1e-4]


def predicted_fidelity_scenario() -> ScenarioSpec:
    """Timing-only serving still reports per-slot predicted fidelity."""
    return ScenarioSpec(
        name="predicted-fidelity",
        fleet=FleetSpec(
            capacity=CAPACITY,
            shards=("Fat-Tree", "Fat-Tree"),
            functional=False,
            parameters=PARAMETERS,
        ),
        workload=WorkloadSpec(
            kind="poisson",
            num_queries=24,
            mean_interarrival=10.0,
            num_tenants=3,
            seed=7,
        ),
    )


def mixed_encoded_scenario() -> ScenarioSpec:
    """Bare + distance-3 replicas; strict tenants land on the encoded one."""
    return ScenarioSpec(
        name="mixed-encoded",
        fleet=FleetSpec(
            capacity=CAPACITY,
            shards=("Fat-Tree", "Fat-Tree@d3"),
            placement="shortest-queue",
            functional=False,
            parameters=PARAMETERS,
        ),
        workload=WorkloadSpec(
            kind="poisson",
            num_queries=24,
            mean_interarrival=40.0,
            num_tenants=3,
            seed=5,
            min_fidelity=0.995,
        ),
    )


def _bare_solo_fidelity() -> float:
    """The lone-query bound of one bare shard at the example's noise."""
    probe = QRAMService(CAPACITY, num_shards=1, functional=False,
                        parameters=PARAMETERS)
    return probe.shards[0].predicted_query_fidelity()


def distillation_scenario() -> ScenarioSpec:
    """A target above the bare bound, met by spending parallel copies."""
    solo = _bare_solo_fidelity()
    target = 1.0 - (1.0 - solo) ** 2 * 2.0     # needs 2 distilled copies
    return ScenarioSpec(
        name="distillation-retry",
        fleet=FleetSpec(
            capacity=CAPACITY,
            shards=("Fat-Tree",),
            functional=False,
            parameters=PARAMETERS,
        ),
        workload=WorkloadSpec(
            kind="poisson",
            num_queries=12,
            mean_interarrival=120.0,
            seed=3,
            min_fidelity=target,
        ),
        run=RunSpec(max_distillation_copies=4),
    )


#: Every scenario this example serves, importable by tests and benchmarks.
SCENARIOS: dict[str, ScenarioSpec] = {
    "predicted-fidelity": predicted_fidelity_scenario(),
    "mixed-encoded": mixed_encoded_scenario(),
    "distillation-retry": distillation_scenario(),
}


def _print_stats(label: str, stats) -> None:
    print(f"{label}:")
    print(f"  served {stats.total_queries}/{stats.offered_queries} offered "
          f"in {stats.makespan_layers:.0f} layers "
          f"(fidelity-rejected {stats.fidelity_rejected_queries})")
    print(f"  fidelity mean/min   : {stats.mean_fidelity:.5f} / "
          f"{stats.min_fidelity:.5f}")
    if stats.fidelity_slo_misses or stats.fidelity_slo_miss_rate:
        print(f"  fidelity miss rate  : {stats.fidelity_slo_miss_rate:.1%} "
              f"({stats.fidelity_slo_misses} misses)")
    for name, backend in stats.per_backend.items():
        print(f"  {name:<14}: {backend.queries:2d} queries, "
              f"mean fidelity {backend.mean_fidelity:.5f}")
    print()


def predicted_fidelity() -> None:
    report = SCENARIOS["predicted-fidelity"].execute()
    _print_stats("predicted fidelity (bare 2-shard Fat-Tree fleet)",
                 report.stats)


def mixed_encoded_fleet() -> None:
    built = SCENARIOS["mixed-encoded"].build()
    bare, encoded = built.service.shards
    print(f"replica fidelity: bare {bare.predicted_query_fidelity():.5f}, "
          f"encoded {encoded.predicted_query_fidelity():.5f} "
          f"({encoded.qubit_count} vs {bare.qubit_count} qubits)\n")
    report = built.run()
    _print_stats("fidelity SLO 0.995 on a mixed bare + @d3 fleet",
                 report.stats)


def distillation_retry() -> None:
    spec = SCENARIOS["distillation-retry"]
    solo = _bare_solo_fidelity()
    report = spec.execute()
    copies = [r.distillation_copies for r in report.served]
    _print_stats(f"distillation retry (bare bound {solo:.5f}, "
                 f"target {spec.workload.min_fidelity:.5f})", report.stats)
    print(f"  copies per query    : {copies}\n")


def main() -> None:
    print(f"fidelity-aware serving — capacity {CAPACITY}, eps0 = 1e-4\n")
    predicted_fidelity()
    mixed_encoded_fleet()
    distillation_retry()


if __name__ == "__main__":
    main()
