"""Bounded-memory serving with a live telemetry time series.

A 2-shard Fat-Tree fleet drains a 20,000-query open-loop Poisson trace
that is *never materialized*: ``WorkloadSpec(delivery="streaming")``
yields one request at a time through a
:class:`~repro.engine.StreamingTraceSource` feeding the engine one arrival
ahead.  The engine runs with ``retention="none"`` — no per-request records
are kept, the report's statistics come from the online aggregators in
:mod:`repro.metrics.streaming` — and a periodic ``TelemetryTick`` emits
one interval sample every 10,000 layers, so the run is observable *while
it happens* rather than through a post-hoc record dump.  A
:class:`~repro.metrics.sinks.JsonlSink` tee shows how to keep durable full
telemetry on disk without resident memory — sinks are runtime objects, so
they ride on ``spec.execute(sink=...)`` rather than in the spec itself.

This is exactly how ``benchmarks/bench_service_scale.py`` serves a million
queries in ~50 MB of RSS; see ``BENCH_service_scale.json`` for the
recorded trajectory.

Run with ``python examples/serving_scale_telemetry.py``.
"""

from __future__ import annotations

import os
import tempfile

from repro.metrics.sinks import JsonlSink, load_jsonl
from repro.scenarios import FleetSpec, RunSpec, ScenarioSpec, WorkloadSpec

CAPACITY = 16
NUM_SHARDS = 2
NUM_QUERIES = 20_000
MEAN_INTERARRIVAL = 16.0
TELEMETRY_INTERVAL = 10_000.0


def telemetry_scenario() -> ScenarioSpec:
    """The full bounded-memory run as one declarative spec."""
    return ScenarioSpec(
        name="scale-telemetry",
        fleet=FleetSpec(
            capacity=CAPACITY,
            shards=("Fat-Tree",) * NUM_SHARDS,
            functional=False,
        ),
        workload=WorkloadSpec(
            kind="poisson",
            num_queries=NUM_QUERIES,
            mean_interarrival=MEAN_INTERARRIVAL,
            addresses_per_query=1,
            num_tenants=4,
            seed=5,
            delivery="streaming",
        ),
        run=RunSpec(
            retention="none",
            telemetry_interval=TELEMETRY_INTERVAL,
        ),
    )


#: Every scenario this example serves, importable by tests and benchmarks.
SCENARIOS: dict[str, ScenarioSpec] = {"telemetry": telemetry_scenario()}


def main() -> None:
    spec = SCENARIOS["telemetry"]
    jsonl_path = os.path.join(tempfile.gettempdir(), "qram_telemetry.jsonl")
    with JsonlSink(jsonl_path) as sink:
        report = spec.execute(sink=sink)

    stats = report.stats
    print(f"served {stats.total_queries} queries in "
          f"{stats.makespan_layers:.0f} layers with no retained records "
          f"(report.served has {len(report.served)} entries)")
    print(f"latency mean/p50/p95/p99: {stats.mean_latency_layers:.1f} / "
          f"{stats.p50_latency_layers:.1f} / {stats.p95_latency_layers:.1f} / "
          f"{stats.p99_latency_layers:.1f} layers  (percentiles sketched)\n")

    print("interval time series (one row per TelemetryTick):")
    print("  window [layers]        arrivals  served  q/layer  depth  rej%")
    for interval in report.telemetry[:12]:
        print(f"  [{interval.start_layer:>8.0f}, {interval.end_layer:>8.0f}] "
              f"{interval.arrivals:>9} {interval.served:>7} "
              f"{interval.throughput_queries_per_layer:>8.4f} "
              f"{interval.queue_depth_max:>6} "
              f"{interval.rejection_rate:>5.1%}")
    remaining = len(report.telemetry) - 12
    if remaining > 0:
        print(f"  ... {remaining} more intervals")

    records = load_jsonl(jsonl_path)
    served = sum(1 for r in records if type(r).__name__ == "ServedQuery")
    print(f"\nJSONL tee at {jsonl_path}: {len(records)} records "
          f"({served} served) — full per-request telemetry on disk while "
          "the process held none in memory")


if __name__ == "__main__":
    main()
