"""Hardware feasibility analysis of Fat-Tree QRAM nodes (Sec. 4.2).

The script prints, for a capacity-32 Fat-Tree QRAM:

* the per-node bill of materials of the modular implementation (cavities,
  transmons, beam-splitters, couplers, coax wires),
* the H-tree placement statistics (wire lengths),
* the planarity analysis of the on-chip implementation — the full qubit
  coupling graph is *not* planar, but the two-plane (thickness-2)
  decomposition with TSVs is, which is the paper's key feasibility claim.

Run with ``python examples/hardware_layout_analysis.py``.
"""

from __future__ import annotations

from repro.hardware import (
    HTreeLayout,
    ModularNodeLayout,
    OnChipLayout,
    fat_tree_connectivity_graph,
    is_planar,
    node_bill_of_materials,
)
from repro.hardware.components import tree_bill_of_materials

CAPACITY = 32


def main() -> None:
    print(f"Fat-Tree QRAM hardware analysis, capacity N = {CAPACITY}\n")

    print("Modular implementation — per-node bill of materials:")
    for level in range(5):
        node = node_bill_of_materials(CAPACITY, level)
        layout = ModularNodeLayout(CAPACITY, level)
        wires = layout.wire_count()
        c = node.components
        print(f"  level {level}: {node.num_routers} routers | "
              f"{c.cavities} cavities, {c.transmons} transmons, "
              f"{c.beam_splitters} beam-splitters, {c.couplers} couplers | "
              f"wires in/out = {wires['incoming']}/{wires['outgoing']} | "
              f"internal crossings: {layout.has_internal_crossings()}")
    total = tree_bill_of_materials(CAPACITY)
    print(f"  whole tree: {total.cavities} cavities, {total.transmons} transmons, "
          f"{total.coax_wires} coax wire terminations")

    print("\nH-tree placement:")
    htree = HTreeLayout(CAPACITY)
    print(f"  total Manhattan wire length: {htree.total_wire_length():.3f} chip units")
    print(f"  longest parent-child wire  : {htree.max_wire_length():.3f} chip units")

    print("\nOn-chip (two-plane) implementation:")
    graph = fat_tree_connectivity_graph(CAPACITY)
    onchip = OnChipLayout(CAPACITY)
    plane0, plane1 = onchip.planes_balanced()
    print(f"  coupling graph: {graph.number_of_nodes()} qubits, "
          f"{graph.number_of_edges()} couplings")
    print(f"  single-plane planar?       : {is_planar(graph)}")
    print(f"  thickness-2 decomposition? : {onchip.both_planes_planar()}")
    print(f"  nodes per plane            : {plane0} / {plane1}")
    print(f"  TSV (inter-plane) links    : {onchip.tsv_count()}")


if __name__ == "__main__":
    main()
