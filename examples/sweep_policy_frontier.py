"""Design-space sweep to Pareto frontier, end to end.

A serving campaign in four steps:

1. **Declare** — one base :class:`repro.scenarios.ScenarioSpec` crossed
   with axes (:class:`repro.sweep.SweepSpec`): admission policy × QEC
   distance × workload intensity, 12 points.
2. **Execute** — :func:`repro.sweep.run_sweep` runs every point.  Equal
   specs are deduplicated, and on a persistent fork-start worker pool
   each worker's process-wide
   :class:`~repro.schedule_cache.ScheduleCacheRegistry` keeps compiled
   schedules warm *across* runs — ``CacheStats`` proves it (``hits``
   climb while ``prewarms`` stays flat at the unique configurations).
   Rows are bit-identical for every pool size and submission order;
   this script asserts inline == pool.
3. **Stream** — one canonical-JSON row per point (JSONL): point index,
   axis coordinates, the full replayable spec, metrics (including the
   fleet's physical-qubit cost) and the report digest.
4. **Extract** — :func:`repro.sweep.frontier_report` keeps the
   non-dominated points on cost / p99 latency / fidelity and emits each
   winner's spec as replayable JSON.

The same campaign runs from the command line:

    python -m repro.sweep sweep.json --pool 4 --out rows.jsonl \\
        --frontier frontier.json

Run with ``python examples/sweep_policy_frontier.py``.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.scenarios import FleetSpec, ScenarioSpec, WorkloadSpec
from repro.sweep import SweepSpec, frontier_report, run_sweep


def campaign() -> SweepSpec:
    """12 design points: 2 policies x 2 QEC distances x 3 intensities."""
    base = ScenarioSpec(
        name="frontier-demo",
        fleet=FleetSpec(
            capacity=16, shards=("Fat-Tree", "BB"), functional=False
        ),
        workload=WorkloadSpec(
            kind="poisson",
            num_queries=32,
            mean_interarrival=3.0,
            deadline_layers=400.0,
            seed=5,
        ),
    )
    return SweepSpec(
        base=base,
        axes=(
            ("policy.admission", ("fifo", "priority")),
            ("fleet.qec_distance", (1, 3)),
            ("workload.mean_interarrival", (2.0, 4.0, 8.0)),
        ),
        name="policy-frontier",
    )


def main() -> None:
    sweep = campaign()
    print(f"campaign '{sweep.name}': {sweep.num_points} points over "
          f"{len(sweep.axes)} axes")

    # -- execute inline (serial) and on a pool: identical rows ----------
    with tempfile.TemporaryDirectory() as tmp:
        rows_path = Path(tmp) / "rows.jsonl"
        inline = run_sweep(sweep, pool_size=0, jsonl_path=str(rows_path))
        pooled = run_sweep(sweep, pool_size=2)
        assert pooled.rows == inline.rows, "pool changed results!"
        print(f"rows identical at pool 0 and pool {pooled.pool_size}; "
              f"{inline.executions} unique executions for "
              f"{len(inline.rows)} points")
        print(pooled.cache_stats.summary())

        # -- the JSONL stream: one canonical row per point --------------
        first = json.loads(rows_path.read_text().splitlines()[0])
        print(f"row 0: status={first['status']} "
              f"coords={first['coords']} "
              f"cost={first['metrics']['cost_qubits']} qubits "
              f"p99={first['metrics']['p99_latency_layers']:.1f} layers")

    # -- Pareto frontier: cost vs tail latency vs fidelity --------------
    report = frontier_report(inline.rows)
    print(f"frontier: {len(report['frontier'])} of "
          f"{report['candidates']} ranked points")
    for entry in report["frontier"]:
        objectives = ", ".join(
            f"{key}={value:.4g}" if isinstance(value, float)
            else f"{key}={value}"
            for key, value in entry["objectives"].items()
        )
        print(f"  point {entry['point']:2d}  {objectives}")
        print(f"           {entry['coords']}")

    # -- every winner is replayable JSON --------------------------------
    winner = report["frontier"][0]
    replay = ScenarioSpec.from_dict(winner["spec"]).execute()
    assert replay.stats.total_queries == (
        winner["metrics"]["total_queries"]
    )
    print(f"replayed winning point {winner['point']}: "
          f"{replay.stats.total_queries} queries, report digest matches "
          f"{winner['point'] in {row['point'] for row in inline.rows}}")


if __name__ == "__main__":
    main()
