"""Serving one trace through a heterogeneous QRAM fleet.

Every architecture of the paper's evaluation is servable through the
:class:`repro.backends.QRAMBackend` protocol, so a single
:class:`repro.QRAMService` can mix them: here a 4-shard fleet puts the
address space behind two Fat-Tree shards, one BB shard and one Virtual
shard, drains one Poisson trace across all of them, and prints the
per-backend comparison (queries absorbed, latency, busy time) that
:mod:`repro.metrics.service_stats` reports.

A second fleet replicates the full memory over the five architectures —
one shard each — with shortest-queue placement, so every query lands on
the least-loaded architecture regardless of its addresses.

Both fleets are declarative :class:`repro.scenarios.ScenarioSpec` entries
in ``SCENARIOS`` — the shard architecture list is just the
``FleetSpec.shards`` tuple (bit-identity vs the hand-wired construction
is pinned in ``tests/test_scenarios.py``).

Run with ``python examples/serving_mixed_backends.py``.
"""

from __future__ import annotations

from repro import backend_names
from repro.scenarios import FleetSpec, ScenarioSpec, WorkloadSpec

CAPACITY = 32
NUM_QUERIES = 60
MEAN_INTERARRIVAL = 6.0       # raw layers between arrivals (Poisson)


def interleaved_scenario() -> ScenarioSpec:
    """Per-shard architecture choice behind one interleaved address space."""
    return ScenarioSpec(
        name="mixed-interleaved",
        fleet=FleetSpec(
            capacity=CAPACITY,
            shards=("Fat-Tree", "Fat-Tree", "BB", "Virtual"),
            data="random",
            data_seed=1,
        ),
        workload=WorkloadSpec(
            kind="poisson",
            num_queries=NUM_QUERIES,
            mean_interarrival=MEAN_INTERARRIVAL,
            num_tenants=3,
            seed=7,
        ),
    )


def replicated_scenario() -> ScenarioSpec:
    """All five architectures replicate the memory, shortest-queue placed."""
    return ScenarioSpec(
        name="mixed-replicated",
        fleet=FleetSpec(
            capacity=CAPACITY,
            shards=tuple(backend_names()),
            placement="shortest-queue",
            functional=False,
            data="random",
            data_seed=1,
        ),
        workload=WorkloadSpec(
            kind="poisson",
            num_queries=NUM_QUERIES,
            mean_interarrival=MEAN_INTERARRIVAL / 2,
            num_tenants=3,
            seed=11,
        ),
    )


#: Every scenario this example serves, importable by tests and benchmarks.
SCENARIOS: dict[str, ScenarioSpec] = {
    "interleaved": interleaved_scenario(),
    "replicated": replicated_scenario(),
}


def print_backend_stats(title: str, stats) -> None:
    print(title)
    for name, b in stats.per_backend.items():
        print(f"  {name:11s}: {b.queries:3d} queries on {b.shards} shard(s) "
              f"in {b.windows:3d} windows, "
              f"mean latency {b.mean_latency_layers:7.1f} layers, "
              f"busy {b.busy_layers:7.1f} layers")
    print()


def main() -> None:
    # --- interleaved fleet: per-shard architecture choice -----------------
    spec = SCENARIOS["interleaved"]
    report = spec.execute()
    worst = min(r.fidelity for r in report.served)
    print(f"interleaved fleet: {dict(enumerate(spec.fleet.shards))}")
    print(f"served {report.stats.total_queries} queries in "
          f"{report.stats.makespan_layers:.0f} raw layers "
          f"(worst-case fidelity {worst:.6f})\n")
    print_backend_stats("per-backend (interleaved):", report.stats)

    # --- replicated fleet: all five architectures, shortest queue --------
    spec = SCENARIOS["replicated"]
    report = spec.execute()
    print(f"replicated fleet ({spec.fleet.num_shards} architectures, "
          f"shortest-queue placement): {report.stats.total_queries} queries "
          f"in {report.stats.makespan_layers:.0f} raw layers\n")
    print_backend_stats("per-backend (replicated):", report.stats)


if __name__ == "__main__":
    main()
