"""Serving one trace through a heterogeneous QRAM fleet.

Every architecture of the paper's evaluation is servable through the
:class:`repro.backends.QRAMBackend` protocol, so a single
:class:`repro.QRAMService` can mix them: here a 4-shard fleet puts the
address space behind two Fat-Tree shards, one BB shard and one Virtual
shard, drains one Poisson trace across all of them, and prints the
per-backend comparison (queries absorbed, latency, busy time) that
:mod:`repro.metrics.service_stats` reports.

A second fleet replicates the full memory over the five architectures —
one shard each — with shortest-queue placement, so every query lands on
the least-loaded architecture regardless of its addresses.

Run with ``python examples/serving_mixed_backends.py``.
"""

from __future__ import annotations

from repro import QRAMService, backend_names
from repro.workloads import poisson_trace, random_data

CAPACITY = 32
NUM_QUERIES = 60
MEAN_INTERARRIVAL = 6.0       # raw layers between arrivals (Poisson)


def print_backend_stats(title: str, stats) -> None:
    print(title)
    for name, b in stats.per_backend.items():
        print(f"  {name:11s}: {b.queries:3d} queries on {b.shards} shard(s) "
              f"in {b.windows:3d} windows, "
              f"mean latency {b.mean_latency_layers:7.1f} layers, "
              f"busy {b.busy_layers:7.1f} layers")
    print()


def main() -> None:
    data = random_data(CAPACITY, seed=1)

    # --- interleaved fleet: per-shard architecture choice -----------------
    architectures = ["Fat-Tree", "Fat-Tree", "BB", "Virtual"]
    service = QRAMService(
        CAPACITY, num_shards=4, data=data, architectures=architectures
    )
    trace = poisson_trace(
        CAPACITY, NUM_QUERIES, mean_interarrival=MEAN_INTERARRIVAL,
        num_tenants=3, num_shards=4, seed=7,
    )
    report = service.serve(trace)
    worst = min(r.fidelity for r in report.served)
    print(f"interleaved fleet: {dict(zip(range(4), architectures))}")
    print(f"served {report.stats.total_queries} queries in "
          f"{report.stats.makespan_layers:.0f} raw layers "
          f"(worst-case fidelity {worst:.6f})\n")
    print_backend_stats("per-backend (interleaved):", report.stats)

    # --- replicated fleet: all five architectures, shortest queue --------
    fleet = backend_names()
    replicated = QRAMService(
        CAPACITY, num_shards=len(fleet), data=data, architectures=fleet,
        placement="shortest-queue", functional=False,
    )
    # Replication lifts the shard-alignment constraint: full-range traces.
    open_trace = poisson_trace(
        CAPACITY, NUM_QUERIES, mean_interarrival=MEAN_INTERARRIVAL / 2,
        num_tenants=3, num_shards=1, seed=11,
    )
    report = replicated.serve(open_trace)
    print(f"replicated fleet ({len(fleet)} architectures, shortest-queue "
          f"placement): {report.stats.total_queries} queries in "
          f"{report.stats.makespan_layers:.0f} raw layers\n")
    print_backend_stats("per-backend (replicated):", report.stats)


if __name__ == "__main__":
    main()
