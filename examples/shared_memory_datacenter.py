"""Shared-memory quantum data centre: several QPUs contending for one QRAM.

Reproduces the Fig. 1(a)/Fig. 7 scenario: a pool of QPUs each runs an
algorithm that alternates a QRAM query with local processing.  The script
compares how a Bucket-Brigade QRAM and a Fat-Tree QRAM (same O(N) qubit
budget) serve the same workload, and prints overall depth, queueing delay and
utilization — the quantities behind Fig. 10.

Run with ``python examples/shared_memory_datacenter.py``.
"""

from __future__ import annotations

from repro import build_architecture
from repro.scheduling import (
    AlgorithmWorkload,
    QRAMServiceModel,
    SharedQRAMSimulation,
)

CAPACITY = 1024
NUM_QPUS = 12
ROUNDS = 10
PROCESSING_RATIO = 0.5        # d / t1 of the synthetic workload


def run(architecture: str) -> None:
    qram = build_architecture(architecture, CAPACITY)
    model = QRAMServiceModel.from_architecture(qram)
    workloads = [
        AlgorithmWorkload(
            qpu,
            rounds=ROUNDS,
            processing_layers=PROCESSING_RATIO * model.weighted_query_latency,
        )
        for qpu in range(NUM_QPUS)
    ]
    report = SharedQRAMSimulation(model).run(workloads)
    print(f"\n{architecture} QRAM (N = {CAPACITY}, {NUM_QPUS} QPUs, "
          f"{ROUNDS} query/process rounds each)")
    print(f"  query latency          : {model.weighted_query_latency:.3f} layers")
    print(f"  admission interval     : {model.admission_interval:.3f} layers")
    print(f"  query parallelism      : {model.parallelism}")
    print(f"  overall algorithm depth: {report.overall_depth:.1f} layers")
    print(f"  total queueing delay   : {report.total_queue_delay_layers:.1f} layers")
    print(f"  average utilization    : {report.average_utilization:.2f}")
    print(f"  queries served         : {report.total_queries}")


def main() -> None:
    for architecture in ("BB", "Fat-Tree", "D-BB"):
        run(architecture)
    print("\nFat-Tree serves the same pool of QPUs with an overall depth close "
          "to the log(N)-times more expensive D-BB, while BB is memory-"
          "bandwidth bound.")


if __name__ == "__main__":
    main()
