"""Serving query traffic through a sharded Fat-Tree QRAM service.

A 2-shard :class:`repro.QRAMService` (address-interleaved over a capacity-16
memory) drains a 100-query Poisson trace issued by three tenants.  Every
query runs gate-level on its shard's cached executor — batched into pipeline
windows of up to log2(N/K) concurrent queries — and the report prints the
per-tenant latency, queue-delay and throughput statistics a shared memory
serving many callers is judged by.

The whole run is one declarative :class:`repro.scenarios.ScenarioSpec`:
``SCENARIOS["traffic"]`` names the fleet, the workload, the policy and the
run knobs, ``build()`` assembles the exact service/engine/trace objects
the hand-wired path constructs (bit-identity pinned in
``tests/test_scenarios.py``), and ``spec.to_json()`` is the shareable form.

Run with ``python examples/serving_traffic.py``.
"""

from __future__ import annotations

from repro.scenarios import FleetSpec, ScenarioSpec, WorkloadSpec

CAPACITY = 16
NUM_SHARDS = 2
NUM_QUERIES = 100
NUM_TENANTS = 3
MEAN_INTERARRIVAL = 8.0       # raw layers between arrivals (Poisson)


def traffic_scenario() -> ScenarioSpec:
    """The example's full run as one declarative spec."""
    return ScenarioSpec(
        name="serving-traffic",
        fleet=FleetSpec(
            capacity=CAPACITY,
            shards=("Fat-Tree",) * NUM_SHARDS,
            data="random",
            data_seed=1,
        ),
        workload=WorkloadSpec(
            kind="poisson",
            num_queries=NUM_QUERIES,
            mean_interarrival=MEAN_INTERARRIVAL,
            num_tenants=NUM_TENANTS,
            seed=7,
        ),
    )


#: Every scenario this example serves, importable by tests and benchmarks.
SCENARIOS: dict[str, ScenarioSpec] = {"traffic": traffic_scenario()}


def main() -> None:
    spec = SCENARIOS["traffic"]
    built = spec.build()
    service = built.service
    report = built.run()
    stats = report.stats

    print(f"QRAM service: {NUM_SHARDS} Fat-Tree shards x capacity "
          f"{service.shard_map.shard_capacity}, window = "
          f"{service.window_size} queries/shard")
    print(f"trace: {NUM_QUERIES} Poisson arrivals from {NUM_TENANTS} tenants, "
          f"mean interarrival {MEAN_INTERARRIVAL} layers\n")

    worst = min(r.fidelity for r in report.served)
    print(f"served {stats.total_queries} queries in "
          f"{stats.makespan_layers:.0f} raw layers "
          f"(worst-case fidelity {worst:.6f})")
    print(f"  bandwidth        : {stats.bandwidth_queries_per_sec:,.0f} queries/s "
          f"at 1 MHz CLOPS")
    print(f"  mean latency     : {stats.mean_latency_layers:.1f} layers")
    print(f"  mean queue delay : {stats.mean_queue_delay_layers:.1f} layers\n")

    print("per-tenant:")
    for tenant, t in stats.per_tenant.items():
        print(f"  tenant {tenant}: {t.queries:3d} queries, "
              f"mean latency {t.mean_latency_layers:7.1f} layers, "
              f"max {t.max_latency_layers:7.1f}, "
              f"throughput {t.throughput_queries_per_sec:,.0f} q/s")

    print("per-shard:")
    for shard, s in stats.per_shard.items():
        print(f"  shard {shard}: {s.queries:3d} queries in {s.windows} windows "
              f"(mean batch {s.mean_batch_size:.2f}), "
              f"utilization {s.utilization:.2f}, "
              f"max queue depth {s.max_queue_depth}")


if __name__ == "__main__":
    main()
