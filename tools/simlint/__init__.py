"""simlint — an AST-based simulation-safety analyzer for ``src/repro``.

The discrete-event serving engine is only parallelizable if it is *provably*
deterministic: no wall-clock reads, no unseeded randomness, no unordered-set
iteration feeding event order, no stale memoized caches, a pinned heap-key
shape, and a single unit convention for every duration-valued field.  simlint
encodes those invariants as machine-checked rules:

========  ==============================================================
SIM001    determinism: wall-clock / unseeded RNG / unordered iteration
SIM002    virtual-clock discipline: no events scheduled in the past,
          only ``ServiceEngine`` / ``EventHeap`` advance the clock
SIM003    cache-invalidation pairing: every mutating method of a class
          with a ``*_cache`` attribute must invalidate that cache
SIM004    event-priority registry: unique integer ``PRIORITY`` per event
          type, pinned heap-key shape
SIM005    shared-mutable-state inventory: module-level / class-level
          mutable state that would race under a worker-parallel core
SIM006    units: duration-valued fields and parameters carry an explicit
          unit suffix and units never mix in arithmetic
========  ==============================================================

Run it as ``python -m tools.simlint src``.  Findings can be suppressed per
line (``# simlint: disable=SIM001``) or per file
(``# simlint: disable-file=SIM005`` near the top of the module); the JSON
baseline (``tools/simlint/baseline.json``) is an allowlist of known
findings and ships empty — the tree is lint-clean.
"""

from tools.simlint.framework import (
    Finding,
    LintResult,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    load_baseline,
)

__all__ = [
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
]
