"""Shared AST helpers for simlint rules."""

from __future__ import annotations

import ast
from collections.abc import Iterator


def attach_parents(tree: ast.AST) -> None:
    """Annotate every node with a ``parent`` attribute (None for the root)."""
    tree.parent = None  # type: ignore[attr-defined]
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> ast.AST | None:
    """Parent node attached by :func:`attach_parents` (None at the root)."""
    return getattr(node, "parent", None)


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str | None:
    """Dotted name of a call's callee (``sorted``, ``time.time``, ...)."""
    return dotted_name(call.func)


def is_self_attribute(node: ast.AST) -> str | None:
    """Return the attribute name when ``node`` is ``self.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, ast.ClassDef | None]]:
    """Yield every function with its immediately enclosing class (or None)."""

    def walk(node: ast.AST, cls: ast.ClassDef | None) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls
                yield from walk(child, cls)
            else:
                yield from walk(child, cls)

    yield from walk(tree, None)


def function_params(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.arg]:
    """All positional / keyword-only / vararg parameters of a function."""
    a = fn.args
    params = list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs)
    if a.vararg:
        params.append(a.vararg)
    if a.kwarg:
        params.append(a.kwarg)
    return params


def annotation_text(node: ast.AST | None) -> str:
    """Source text of an annotation node ('' when absent)."""
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed annotation
        return ""


def const_int(node: ast.AST) -> int | None:
    """The value of an integer Constant node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        if not isinstance(node.value, bool):
            return node.value
    return None
