"""SIM006 — unit-suffix convention for durations.

Every duration-valued field and parameter says what it is measured in, and
two different units never meet in a ``+`` / ``-``:

* a dataclass field or function parameter annotated ``int`` / ``float``
  whose name contains ``latency`` / ``duration`` / ``delay`` / ``elapsed``
  must end in one of the unit suffixes ``_layers`` (raw circuit layers,
  the engine's native clock), ``_intervals`` (pipeline admission
  intervals), ``_ns`` / ``_seconds`` (wall-clock conversions for reports)
  — or start with ``weighted_`` (weighted circuit layers, the paper's
  fast-layers-count-1/8 convention);
* an expression ``a + b`` / ``a - b`` whose two operand names carry *two
  different* recognized unit suffixes is flagged regardless of the field
  names involved.
"""

from __future__ import annotations

import ast

from tools.simlint.astutil import (
    annotation_text,
    dotted_name,
    function_params,
)
from tools.simlint.framework import Finding, ModuleInfo, Project, Rule, register

_DURATION_KEYWORDS = ("latency", "duration", "delay", "elapsed")
_UNIT_SUFFIXES = ("_layers", "_intervals", "_ns", "_seconds")
_UNIT_PREFIXES = ("weighted_",)


def _is_numeric_annotation(text: str) -> bool:
    return "int" in text or "float" in text


def _duration_name(name: str) -> bool:
    return any(keyword in name.lower() for keyword in _DURATION_KEYWORDS)


def _has_unit(name: str) -> bool:
    lowered = name.lower()
    return lowered.endswith(_UNIT_SUFFIXES) or lowered.startswith(_UNIT_PREFIXES)


def _unit_of(name: str) -> str | None:
    """Unit family of a name: weighted_* and *_layers share the layer time
    base (their scale factor is applied at explicit conversion points), so
    the mixing check only separates layers / intervals / ns / seconds."""
    lowered = name.lower()
    if lowered.startswith(_UNIT_PREFIXES):
        return "_layers"
    for suffix in _UNIT_SUFFIXES:
        if lowered.endswith(suffix):
            return suffix
    return None


@register
class UnitSuffixRule(Rule):
    code = "SIM006"
    name = "duration-unit-suffixes"
    summary = (
        "duration fields/params carry a unit suffix (_layers/_intervals/"
        "_ns/_seconds or weighted_*) and units never mix in +/-"
    )

    def check(self, module: ModuleInfo, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        findings.extend(self._check_fields(module))
        findings.extend(self._check_params(module))
        findings.extend(self._check_mixing(module))
        return findings

    def _check_fields(self, module: ModuleInfo) -> list[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if not (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                ):
                    continue
                name = stmt.target.id
                if not _duration_name(name) or _has_unit(name):
                    continue
                if _is_numeric_annotation(annotation_text(stmt.annotation)):
                    findings.append(
                        self.finding(
                            module,
                            stmt,
                            f"field `{node.name}.{name}` is duration-valued "
                            "but carries no unit suffix "
                            f"({'/'.join(_UNIT_SUFFIXES)} or weighted_*)",
                        )
                    )
        return findings

    def _check_params(self, module: ModuleInfo) -> list[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for arg in function_params(node):
                name = arg.arg
                if not _duration_name(name) or _has_unit(name):
                    continue
                if _is_numeric_annotation(annotation_text(arg.annotation)):
                    findings.append(
                        self.finding(
                            module,
                            arg,
                            f"parameter `{name}` of `{node.name}()` is "
                            "duration-valued but carries no unit suffix "
                            f"({'/'.join(_UNIT_SUFFIXES)} or weighted_*)",
                        )
                    )
        return findings

    def _check_mixing(self, module: ModuleInfo) -> list[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, (ast.Add, ast.Sub))
            ):
                continue
            left = dotted_name(node.left)
            right = dotted_name(node.right)
            if left is None or right is None:
                continue
            left_unit = _unit_of(left.rsplit(".", 1)[-1])
            right_unit = _unit_of(right.rsplit(".", 1)[-1])
            if (
                left_unit is not None
                and right_unit is not None
                and left_unit != right_unit
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"`{left}` ({left_unit.lstrip('_')}) and `{right}` "
                        f"({right_unit.lstrip('_')}) mix units in "
                        "arithmetic — convert explicitly first",
                    )
                )
        return findings
