"""SIM002 — virtual-clock discipline.

The virtual clock only moves forward, and only the engine moves it:

* event handlers may not schedule events in the past: inside any function
  that receives the current virtual time (a parameter named ``now`` /
  ``admit`` / ``time`` / ``current_time``), every ``heap.push(ts, ...)`` or
  ``heapq.heappush(heap, (ts, ...))`` must use a timestamp provable to be
  ``>= now`` by a forward dataflow walk (the time parameter itself, ``t +
  delta``, ``max(..., t)``, or a local / ``self.attr[i]`` previously bound
  to such a value — ``t - delta`` is rejected);
* only ``ServiceEngine`` / ``EventHeap`` may advance the clock: stores to a
  ``_now`` / ``now`` *attribute* and direct ``._heap`` manipulation outside
  those classes are flagged;
* every raw ``heapq.heappush`` key must be a tuple carrying an explicit
  monotone sequence element (a name containing ``seq``) so ties never fall
  through to payload comparison.
"""

from __future__ import annotations

import ast

from tools.simlint.astutil import call_name, dotted_name, function_params
from tools.simlint.framework import Finding, ModuleInfo, Project, Rule, register

#: Only these classes may own / advance the virtual clock.
CLOCK_OWNERS = ("ServiceEngine", "EventHeap")

#: Parameter names that carry the current virtual time into a handler.
_TIME_PARAMS = ("now", "admit", "time", "current_time")


def _seq_element(node: ast.AST) -> bool:
    """Does a heap-key element look like a monotone sequence counter?"""
    name = dotted_name(node)
    return name is not None and "seq" in name.rsplit(".", 1)[-1].lower()


class _TimeSafety:
    """Forward dataflow: which expressions are provably >= the time param."""

    def __init__(self, time_params: set[str]) -> None:
        self.safe_names: set[str] = set(time_params)
        self.safe_subscripts: set[tuple[str, str]] = set()

    def observe(self, stmt: ast.stmt) -> None:
        """Track local / self-attribute-subscript bindings to safe values."""
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        elif isinstance(stmt, ast.AugAssign):
            # ``t += delta`` keeps t safe only for Add.
            if isinstance(stmt.target, ast.Name) and isinstance(stmt.op, ast.Add):
                return
            if isinstance(stmt.target, ast.Name):
                self.safe_names.discard(stmt.target.id)
            return
        else:
            return
        safe = self.is_safe(value)
        for target in targets:
            if isinstance(target, ast.Name):
                if safe:
                    self.safe_names.add(target.id)
                else:
                    self.safe_names.discard(target.id)
            elif isinstance(target, ast.Subscript):
                key = self._subscript_key(target)
                if key is not None:
                    if safe:
                        self.safe_subscripts.add(key)
                    else:
                        self.safe_subscripts.discard(key)

    @staticmethod
    def _subscript_key(node: ast.Subscript) -> tuple[str, str] | None:
        base = dotted_name(node.value)
        index = dotted_name(node.slice)
        if base is not None and index is not None:
            return (base, index)
        return None

    def is_safe(self, node: ast.AST) -> bool:
        """Is this timestamp expression provably >= the current time?"""
        if isinstance(node, ast.Name):
            return node.id in self.safe_names
        if isinstance(node, ast.Subscript):
            key = self._subscript_key(node)
            return key is not None and key in self.safe_subscripts
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return self.is_safe(node.left) or self.is_safe(node.right)
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name == "max":
                return any(self.is_safe(arg) for arg in node.args)
            if name in ("float", "int"):
                return len(node.args) == 1 and self.is_safe(node.args[0])
        if isinstance(node, ast.IfExp):
            return self.is_safe(node.body) and self.is_safe(node.orelse)
        return False


@register
class ClockDisciplineRule(Rule):
    code = "SIM002"
    name = "virtual-clock-discipline"
    summary = (
        "handlers never schedule events in the past; only "
        "ServiceEngine/EventHeap advance the clock; heap keys carry a "
        "sequence tie-breaker"
    )

    def check(self, module: ModuleInfo, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        findings.extend(self._check_clock_owners(module))
        findings.extend(self._check_heap_keys(module))
        findings.extend(self._check_push_timestamps(module))
        return findings

    # -------------------------------------------------- clock ownership
    def _check_clock_owners(self, module: ModuleInfo) -> list[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                owner = node.name in CLOCK_OWNERS
                for inner in ast.walk(node):
                    if owner:
                        break
                    if isinstance(inner, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                        targets = (
                            inner.targets
                            if isinstance(inner, ast.Assign)
                            else [inner.target]
                        )
                        for target in targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and target.attr in ("_now", "now")
                            ):
                                findings.append(
                                    self.finding(
                                        module,
                                        inner,
                                        f"class `{node.name}` advances the "
                                        "virtual clock (stores to "
                                        f"`.{target.attr}`) — only "
                                        f"{'/'.join(CLOCK_OWNERS)} may",
                                    )
                                )
                    if isinstance(inner, ast.Call) and isinstance(
                        inner.func, ast.Attribute
                    ):
                        receiver = dotted_name(inner.func.value)
                        if (
                            receiver is not None
                            and receiver.endswith("._heap")
                            and inner.func.attr in ("push", "pop", "heappush", "heappop")
                        ):
                            findings.append(
                                self.finding(
                                    module,
                                    inner,
                                    f"class `{node.name}` manipulates an "
                                    "event heap directly — only "
                                    f"{'/'.join(CLOCK_OWNERS)} may",
                                )
                            )
        return findings

    # ---------------------------------------------------- heap key shape
    def _check_heap_keys(self, module: ModuleInfo) -> list[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node) != "heapq.heappush" or len(node.args) < 2:
                continue
            key = node.args[1]
            if not isinstance(key, ast.Tuple):
                findings.append(
                    self.finding(
                        module,
                        node,
                        "heappush key must be a tuple with an explicit "
                        "sequence tie-breaker",
                    )
                )
                continue
            if not any(_seq_element(elt) for elt in key.elts):
                findings.append(
                    self.finding(
                        module,
                        node,
                        "heap key lacks a monotone sequence tie-breaker — "
                        "equal timestamps would compare payloads "
                        "(nondeterministic or TypeError)",
                    )
                )
        return findings

    # ------------------------------------------------- push-in-the-past
    def _check_push_timestamps(self, module: ModuleInfo) -> list[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            time_params = {
                arg.arg
                for arg in function_params(node)
                if arg.arg in _TIME_PARAMS
            }
            if not time_params:
                continue
            findings.extend(self._walk_function(module, node, time_params))
        return findings

    def _walk_function(
        self,
        module: ModuleInfo,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        time_params: set[str],
    ) -> list[Finding]:
        findings: list[Finding] = []
        flow = _TimeSafety(time_params)

        def check_expr(expr_root: ast.AST) -> None:
            for expr in ast.walk(expr_root):
                ts = self._pushed_timestamp(expr)
                if ts is not None and not flow.is_safe(ts):
                    findings.append(
                        self.finding(
                            module,
                            expr,
                            "event scheduled at a timestamp not provably "
                            ">= the current virtual time "
                            f"(`{ast.unparse(ts)}`)",
                        )
                    )

        def visit_stmt(stmt: ast.stmt) -> None:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                return  # nested scopes get their own walk
            flow.observe(stmt)
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    visit_stmt(child)
                elif isinstance(child, (ast.ExceptHandler,)):
                    for sub in child.body:
                        visit_stmt(sub)
                elif isinstance(child, ast.expr):
                    check_expr(child)

        for stmt in fn.body:
            visit_stmt(stmt)
        return findings

    @staticmethod
    def _pushed_timestamp(node: ast.AST) -> ast.AST | None:
        """The timestamp expression of a heap push, if this is one."""
        if not isinstance(node, ast.Call):
            return None
        name = call_name(node)
        if name == "heapq.heappush" and len(node.args) >= 2:
            key = node.args[1]
            if isinstance(key, ast.Tuple) and key.elts:
                return key.elts[0]
            return key
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "push"
            and node.args
        ):
            receiver = dotted_name(node.func.value)
            if receiver is not None and "heap" in receiver.lower():
                return node.args[0]
        return None
