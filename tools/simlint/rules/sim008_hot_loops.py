"""SIM008 — no per-slot Python loops in the window hot path.

The serving hot path evaluates all of a window's slots in single array
expressions (:func:`repro.backends.noise.pipelined_fidelities`, the
adapters' vectorized ``_window_offsets``); a per-element Python loop over
slot offsets or fidelities in one of those modules silently reverts the
vectorization — the tests still pass (the scalar result is bit-identical
by contract) but the throughput trajectory regresses.

The rule watches the designated hot modules (``noise`` / ``fat_tree`` /
``bucket_brigade`` / ``analytic`` / ``encoded`` under ``repro/backends``)
and flags a ``for`` loop or comprehension that

* iterates a slot-valued sequence directly (a name containing ``offset``
  or ``fidelit``), bare or wrapped in ``zip`` / ``enumerate`` /
  ``reversed`` / ``sorted``, or
* indexes a slot-valued sequence element-by-element with its own loop
  variable (``start_offsets[s]`` inside ``for s in range(count)``).

Pinned scalar oracles are the sanctioned exception: a function whose name
ends in ``_scalar`` or ``_reference`` is exempt wholesale (the parity
tests need a loop whose evaluation order is self-evident).  Anything else
that genuinely must loop carries an explicit
``# simlint: disable=SIM008`` with a justification.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.simlint.astutil import dotted_name
from tools.simlint.framework import Finding, ModuleInfo, Project, Rule, register

#: File names of the designated hot modules (the window-slot math).
_HOT_MODULE_NAMES = frozenset(
    {
        "noise.py",
        "fat_tree.py",
        "bucket_brigade.py",
        "analytic.py",
        "encoded.py",
    }
)

#: Name fragments marking a slot-valued sequence.
_SLOT_FRAGMENTS = ("offset", "fidelit")

#: Sequence-shaped wrappers whose arguments keep per-element iteration.
_ITER_WRAPPERS = frozenset({"zip", "enumerate", "reversed", "sorted"})

#: Function-name suffixes exempting a pinned scalar oracle.
_EXEMPT_SUFFIXES = ("_scalar", "_reference")

_LOOP_NODES = (ast.For, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _is_slot_name(name: str | None) -> bool:
    if name is None:
        return False
    terminal = name.rsplit(".", 1)[-1].lower()
    return any(fragment in terminal for fragment in _SLOT_FRAGMENTS)


def _slot_iterable(node: ast.AST) -> str | None:
    """The slot-valued name an iterable expression walks, if any."""
    name = dotted_name(node)
    if _is_slot_name(name):
        return name
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        if callee is not None and callee.rsplit(".", 1)[-1] in _ITER_WRAPPERS:
            for arg in node.args:
                inner = _slot_iterable(arg)
                if inner is not None:
                    return inner
    return None


def _loop_variables(target: ast.AST) -> set[str]:
    """Bare names bound by a loop/comprehension target."""
    return {
        child.id
        for child in ast.walk(target)
        if isinstance(child, ast.Name)
    }


def _targets_and_iters(
    node: ast.AST,
) -> list[tuple[ast.AST, ast.AST, list[ast.AST]]]:
    """(target, iterable, body) triples of a For node or comprehension."""
    if isinstance(node, ast.For):
        return [(node.target, node.iter, list(node.body))]
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
        body: list[ast.AST] = (
            [node.key, node.value]
            if isinstance(node, ast.DictComp)
            else [node.elt]
        )
        return [(gen.target, gen.iter, body) for gen in node.generators]
    return []


@register
class HotLoopRule(Rule):
    code = "SIM008"
    name = "hot-path-slot-loops"
    summary = (
        "window-slot math in the designated hot modules stays vectorized: "
        "no per-element Python loops over offsets/fidelities (scalar "
        "oracles named *_scalar/*_reference are exempt)"
    )

    def check(self, module: ModuleInfo, project: Project) -> list[Finding]:
        if Path(module.rel).name not in _HOT_MODULE_NAMES:
            return []
        findings: list[Finding] = []
        for fn, node in self._loops_by_function(module.tree):
            if fn is not None and fn.name.endswith(_EXEMPT_SUFFIXES):
                continue
            for target, iterable, body in _targets_and_iters(node):
                slot_name = _slot_iterable(iterable)
                if slot_name is not None:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"per-slot loop over `{slot_name}` in hot module "
                            "— evaluate the window in one array expression "
                            "(or name the function *_scalar/*_reference if "
                            "it is a pinned oracle)",
                        )
                    )
                    continue
                bound = _loop_variables(target)
                indexed = self._per_element_subscript(body, bound)
                if indexed is not None:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"loop indexes `{indexed}` element by element "
                            "in hot module — evaluate the window in one "
                            "array expression (or name the function "
                            "*_scalar/*_reference if it is a pinned oracle)",
                        )
                    )
        return findings

    @staticmethod
    def _loops_by_function(
        tree: ast.Module,
    ) -> list[tuple[ast.FunctionDef | ast.AsyncFunctionDef | None, ast.AST]]:
        """Every loop node paired with its innermost enclosing function."""
        pairs: list[
            tuple[ast.FunctionDef | ast.AsyncFunctionDef | None, ast.AST]
        ] = []

        def walk(
            node: ast.AST, fn: ast.FunctionDef | ast.AsyncFunctionDef | None
        ) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    walk(child, child)
                    continue
                if isinstance(child, _LOOP_NODES):
                    pairs.append((fn, child))
                walk(child, fn)

        walk(tree, None)
        return pairs

    @staticmethod
    def _per_element_subscript(
        body: list[ast.AST], loop_vars: set[str]
    ) -> str | None:
        """A slot-valued name subscripted by a bare loop variable, if any."""
        if not loop_vars:
            return None
        for stmt in body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Subscript):
                    continue
                name = dotted_name(node.value)
                if not _is_slot_name(name):
                    continue
                index = node.slice
                if isinstance(index, ast.Name) and index.id in loop_vars:
                    return name
        return None
