"""SIM001 — determinism.

Simulation results must be a pure function of (workload, configuration,
seed).  This rule bans the classic sources of hidden nondeterminism:

* wall-clock reads (``time.time``, ``datetime.now``, ...);
* unseeded randomness (module-level ``random.*`` calls, ``random.Random()``
  with no seed, ``os.urandom``, ``uuid.uuid4``, ``secrets.*``);
* iteration over set-typed values — Python sets iterate in hash order, which
  varies across processes — unless the iteration is wrapped in ``sorted()``
  or feeds an order-insensitive reduction (``sum`` / ``min`` / ``max`` /
  ``any`` / ``all`` / ``len`` / ``set`` / ``frozenset``);
* iterating ``d.keys()`` instead of the mapping itself: insertion order is
  deterministic, but spelling it ``.keys()`` hides whether ordering was
  considered — iterate the dict directly or sort explicitly.
"""

from __future__ import annotations

import ast

from tools.simlint.astutil import call_name, parent_of
from tools.simlint.framework import Finding, ModuleInfo, Project, Rule, register

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
}

_UNSEEDED_RANDOM = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "betavariate",
    "triangular",
    "vonmisesvariate",
    "paretovariate",
    "weibullvariate",
    "getrandbits",
    "randbytes",
}

_ENTROPY = {"os.urandom", "uuid.uuid4", "uuid.uuid1"}

#: Calls that consume an iterable order-insensitively (or impose an order).
_ORDER_NEUTRAL_CALLS = {
    "sorted",
    "sum",
    "min",
    "max",
    "any",
    "all",
    "len",
    "set",
    "frozenset",
}

#: Methods whose return value is set-typed regardless of the receiver.
_SET_RETURNING_METHODS = {
    "difference",
    "union",
    "intersection",
    "symmetric_difference",
}


def _is_set_expr(node: ast.AST, set_vars: set[str]) -> bool:
    """Best-effort: does this expression evaluate to a set?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name) and node.id in set_vars:
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("set", "frozenset") and node.args:
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_RETURNING_METHODS
        ):
            return True
    return False


def _neutralized(iter_node: ast.AST) -> bool:
    """Is this iteration consumed by an order-neutral call (e.g. sorted)?"""
    parent = parent_of(iter_node)
    if isinstance(parent, ast.Call) and call_name(parent) in _ORDER_NEUTRAL_CALLS:
        return True
    # generator expression directly inside sorted()/min()/... :
    # ``min(x for x in some_set)`` — the comprehension node's parent call.
    if isinstance(parent, ast.comprehension):
        comp = parent_of(parent)
        outer = parent_of(comp) if comp is not None else None
        if isinstance(comp, ast.GeneratorExp) and isinstance(outer, ast.Call):
            if call_name(outer) in _ORDER_NEUTRAL_CALLS:
                return True
    return False


def _walk_scope(body: list[ast.stmt]):
    """Walk a scope's statements without descending into nested functions."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


class _Scope(ast.NodeVisitor):
    """Collect names bound to set-typed expressions within one scope body."""

    def __init__(self) -> None:
        self.set_vars: set[str] = set()

    def collect(self, body: list[ast.stmt]) -> set[str]:
        for stmt in body:
            self.visit(stmt)
        return self.set_vars

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested scopes are analyzed separately

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_ClassDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value, self.set_vars):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.set_vars.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and _is_set_expr(node.value, self.set_vars):
            if isinstance(node.target, ast.Name):
                self.set_vars.add(node.target.id)
        self.generic_visit(node)


@register
class DeterminismRule(Rule):
    code = "SIM001"
    name = "determinism"
    summary = (
        "no wall-clock reads, unseeded randomness, or iteration over "
        "unordered sets"
    )

    def check(self, module: ModuleInfo, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        findings.extend(self._check_calls(module))
        findings.extend(self._check_iteration(module))
        return findings

    # ------------------------------------------------------ wall clock / RNG
    def _check_calls(self, module: ModuleInfo) -> list[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            tail2 = ".".join(name.split(".")[-2:])
            if name in _WALL_CLOCK or tail2 in _WALL_CLOCK:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"wall-clock read `{name}()` — simulation time must "
                        "come from the virtual clock",
                    )
                )
            elif name.startswith("secrets.") or name in _ENTROPY:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"entropy source `{name}()` is nondeterministic",
                    )
                )
            elif name.startswith("random.") and name.split(".", 1)[1] in (
                _UNSEEDED_RANDOM
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"`{name}()` uses the unseeded global RNG — "
                        "use a seeded `random.Random(seed)` instance",
                    )
                )
            elif name in ("random.Random", "Random", "random.SystemRandom"):
                if name.endswith("SystemRandom"):
                    findings.append(
                        self.finding(
                            module, node, "`SystemRandom` draws OS entropy"
                        )
                    )
                elif not node.args and not node.keywords:
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "`random.Random()` without a seed is "
                            "nondeterministic — pass an explicit seed",
                        )
                    )
        return findings

    # ------------------------------------------------------------- iteration
    def _check_iteration(self, module: ModuleInfo) -> list[Finding]:
        findings: list[Finding] = []
        scopes: list[list[ast.stmt]] = [module.tree.body]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node.body)
        for body in scopes:
            set_vars = _Scope().collect(body)
            for node in _walk_scope(body):
                for iter_node in self._iter_exprs(node):
                    findings.extend(
                        self._check_one_iter(module, iter_node, set_vars)
                    )
        return findings

    @staticmethod
    def _iter_exprs(node: ast.AST) -> list[ast.AST]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            return [node.iter]
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            return [gen.iter for gen in node.generators]
        return []

    def _check_one_iter(
        self, module: ModuleInfo, iter_node: ast.AST, set_vars: set[str]
    ) -> list[Finding]:
        if _is_set_expr(iter_node, set_vars):
            if _neutralized(iter_node):
                return []
            return [
                self.finding(
                    module,
                    iter_node,
                    "iteration over a set is hash-ordered and "
                    "nondeterministic — wrap it in sorted()",
                )
            ]
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Attribute)
            and iter_node.func.attr == "keys"
            and not iter_node.args
        ):
            if _neutralized(iter_node):
                return []
            return [
                self.finding(
                    module,
                    iter_node,
                    "iterate the mapping directly (or via sorted()) instead "
                    "of `.keys()` so ordering intent is explicit",
                )
            ]
        return []
