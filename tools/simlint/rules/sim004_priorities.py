"""SIM004 — event-priority registry.

Same-timestamp events resolve by a per-type integer ``PRIORITY``; the whole
determinism story of the engine rests on that ordering being total and the
heap key having a pinned shape.  Within any module that declares event
classes:

* every ``PRIORITY`` must be a literal ``int`` and unique module-wide;
* every member of the module's ``Event`` union must declare one;
* any heap push whose key tuple contains ``.PRIORITY`` must use the pinned
  shape ``(time, event.PRIORITY, sequence, event)`` — priority in slot 1,
  a monotone sequence counter in slot 2 — so an accidental reordering of
  the key is caught at lint time, not as a Heisenbug under load.
"""

from __future__ import annotations

import ast

from tools.simlint.astutil import const_int, dotted_name
from tools.simlint.framework import Finding, ModuleInfo, Project, Rule, register


def _priority_assignment(cls: ast.ClassDef) -> tuple[ast.stmt, ast.AST] | None:
    """The (statement, value) declaring PRIORITY in a class body, if any."""
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.target.id == "PRIORITY" and stmt.value is not None:
                return stmt, stmt.value
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "PRIORITY":
                    return stmt, stmt.value
    return None


def _event_union_members(tree: ast.Module) -> tuple[ast.stmt | None, list[str]]:
    """Names in a module-level ``Event = Union[...]`` / ``Event = A | B``."""
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not (isinstance(target, ast.Name) and target.id == "Event"):
            continue
        value = stmt.value
        names: list[str] = []
        if isinstance(value, ast.Subscript) and dotted_name(value.value) in (
            "Union",
            "typing.Union",
        ):
            elts = (
                value.slice.elts
                if isinstance(value.slice, ast.Tuple)
                else [value.slice]
            )
            names = [elt.id for elt in elts if isinstance(elt, ast.Name)]
        else:  # A | B | C
            node: ast.AST = value
            while isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
                if isinstance(node.right, ast.Name):
                    names.append(node.right.id)
                node = node.left
            if isinstance(node, ast.Name):
                names.append(node.id)
            names.reverse()
        return stmt, names
    return None, []


@register
class EventPriorityRule(Rule):
    code = "SIM004"
    name = "event-priority-registry"
    summary = (
        "unique literal int PRIORITY per event type; heap key pinned to "
        "(time, PRIORITY, sequence, event)"
    )

    def check(self, module: ModuleInfo, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        priorities: dict[int, str] = {}
        declared: set[str] = set()
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            assignment = _priority_assignment(stmt)
            if assignment is None:
                continue
            declared.add(stmt.name)
            node, value = assignment
            priority = const_int(value)
            if priority is None:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"`{stmt.name}.PRIORITY` must be a literal int "
                        "(got a non-constant expression)",
                    )
                )
                continue
            if priority in priorities:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"`{stmt.name}.PRIORITY = {priority}` collides with "
                        f"`{priorities[priority]}` — same-timestamp ordering "
                        "between them falls through to insertion order only",
                    )
                )
            else:
                priorities[priority] = stmt.name
        union_stmt, members = _event_union_members(module.tree)
        if union_stmt is not None and declared:
            for member in members:
                if member not in declared:
                    findings.append(
                        self.finding(
                            module,
                            union_stmt,
                            f"event type `{member}` is in the Event union "
                            "but declares no PRIORITY",
                        )
                    )
        findings.extend(self._check_key_shape(module))
        return findings

    def _check_key_shape(self, module: ModuleInfo) -> list[Finding]:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if dotted_name(node.func) != "heapq.heappush" or len(node.args) < 2:
                continue
            key = node.args[1]
            if not isinstance(key, ast.Tuple):
                continue
            priority_slots = [
                i
                for i, elt in enumerate(key.elts)
                if isinstance(elt, ast.Attribute) and elt.attr == "PRIORITY"
            ]
            if not priority_slots:
                continue
            ok = (
                len(key.elts) == 4
                and priority_slots == [1]
                and "seq" in (dotted_name(key.elts[2]) or "").lower()
            )
            if not ok:
                findings.append(
                    self.finding(
                        module,
                        node,
                        "event heap key must be pinned to "
                        "(time, event.PRIORITY, sequence, event)",
                    )
                )
        return findings
