"""SIM003 — cache-invalidation pairing.

Memoized caches (any instance attribute matching ``*_cache``, including
ones created lazily via ``self.__dict__.setdefault("..._cache", {})``) must
be invalidated by every method that mutates the state they were computed
from.  Concretely, for each class (methods merged over its known bases):

1. *cache attributes* are discovered from stores and lazy-setdefault calls;
2. the attributes a cache *depends on* are every ``self.<attr>`` read —
   transitively through ``self``-method calls and properties — inside the
   methods that populate that cache;
3. a *mutating method* is one that rebinds / item-assigns / deletes a
   dependency attribute, or calls a mutator-named method
   (``write_* / set_* / add_* / update_* / append / clear / pop`` ...) on
   one;
4. every mutating method must, directly or through a ``self``-method call,
   invalidate the cache: rebind it, ``clear()`` / ``pop()`` it, ``del`` it,
   or ``self.__dict__.pop("<cache>")``.

Constructors (``__init__`` / ``__new__`` / ``__post_init__``) are exempt:
they run before any cache can be populated.
"""

from __future__ import annotations

import ast
import re

from tools.simlint.astutil import is_self_attribute
from tools.simlint.framework import Finding, ModuleInfo, Project, Rule, register

_CACHE_RE = re.compile(r".*_cache$")
_MUTATOR_RE = re.compile(
    r"^(write|set|add|remove|delete|update|push|insert|load|retire|rebuild|"
    r"assign|put|register|reset)(_|$)|^(append|extend|clear|pop|popitem|"
    r"discard|setdefault|sort|reverse)$"
)
_CONSTRUCTORS = {"__init__", "__new__", "__post_init__", "__set_name__"}


def _self_dict_string_arg(call: ast.Call, methods: tuple[str, ...]) -> str | None:
    """The string key of ``self.__dict__.<method>("key", ...)`` calls."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in methods
        and isinstance(func.value, ast.Attribute)
        and func.value.attr == "__dict__"
        and isinstance(func.value.value, ast.Name)
        and func.value.value.id == "self"
        and call.args
        and isinstance(call.args[0], ast.Constant)
        and isinstance(call.args[0].value, str)
    ):
        return call.args[0].value
    return None


class _ClassView:
    """Merged-method analysis of one class."""

    def __init__(self, project: Project, name: str) -> None:
        self.project = project
        self.name = name
        self.methods, self.properties = project.merged_methods(name)

    # ----------------------------------------------------- cache discovery
    def cache_attrs(self) -> set[str]:
        caches: set[str] = set()
        for fn in self.methods.values():
            for node in ast.walk(fn):
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign) else [node.target]
                    )
                    for target in targets:
                        attr = is_self_attribute(target)
                        if attr and _CACHE_RE.match(attr):
                            caches.add(attr)
                elif isinstance(node, ast.Call):
                    key = _self_dict_string_arg(
                        node, ("setdefault", "get", "pop")
                    )
                    if key and _CACHE_RE.match(key):
                        caches.add(key)
        return caches

    # ------------------------------------------------------- method scans
    def _local_cache_aliases(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, cache: str
    ) -> set[str]:
        """Local names bound to ``self.<cache>`` or its lazy setdefault."""
        aliases: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                value = node.value
                if is_self_attribute(value) == cache:
                    aliases.add(target.id)
                elif (
                    isinstance(value, ast.Call)
                    and _self_dict_string_arg(value, ("setdefault", "get")) == cache
                ):
                    aliases.add(target.id)
        return aliases

    def populates(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, cache: str
    ) -> bool:
        """Does this method write entries into the cache?"""
        aliases = self._local_cache_aliases(fn, cache)
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        base = target.value
                        if is_self_attribute(base) == cache:
                            return True
                        if isinstance(base, ast.Name) and base.id in aliases:
                            return True
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in ("setdefault", "update"):
                    receiver = node.func.value
                    if is_self_attribute(receiver) == cache:
                        return True
                    if isinstance(receiver, ast.Name) and receiver.id in aliases:
                        return True
        return False

    def reads(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        caches: set[str],
        _seen: set[str] | None = None,
    ) -> set[str]:
        """``self.<attr>`` reads, transitively through self-calls/properties."""
        seen = _seen if _seen is not None else set()
        deps: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
                attr = is_self_attribute(node)
                if attr is None or attr in caches or attr == "__dict__":
                    continue
                if attr in self.methods:
                    if attr in self.properties and attr not in seen:
                        seen.add(attr)
                        deps |= self.reads(self.methods[attr], caches, seen)
                    continue
                deps.add(attr)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                # self.method(...) — follow the call.
                name = is_self_attribute(node.func)
                if name in self.methods and name not in seen:
                    seen.add(name)
                    deps |= self.reads(self.methods[name], caches, seen)
        return deps

    def mutated_deps(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, deps: set[str]
    ) -> set[str]:
        """Dependency attributes this method mutates."""
        mutated: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    attr = is_self_attribute(target)
                    if attr in deps:
                        mutated.add(attr)
                    elif isinstance(target, ast.Subscript):
                        attr = is_self_attribute(target.value)
                        if attr in deps:
                            mutated.add(attr)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    attr = is_self_attribute(target)
                    if attr in deps:
                        mutated.add(attr)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if _MUTATOR_RE.match(node.func.attr):
                    receiver = node.func.value
                    attr = is_self_attribute(receiver)
                    if attr is None and isinstance(receiver, ast.Subscript):
                        attr = is_self_attribute(receiver.value)
                    if attr in deps:
                        mutated.add(attr)
        return mutated

    def invalidates(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        cache: str,
        _seen: set[str] | None = None,
    ) -> bool:
        """Does this method (transitively) invalidate the cache?"""
        seen = _seen if _seen is not None else set()
        for node in ast.walk(fn):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if is_self_attribute(target) == cache:
                        return True
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if is_self_attribute(target) == cache:
                        return True
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in ("clear", "pop", "popitem"):
                    if is_self_attribute(node.func.value) == cache:
                        return True
                if _self_dict_string_arg(node, ("pop",)) == cache:
                    return True
                callee = is_self_attribute(node.func)
                if callee in self.methods and callee not in seen:
                    seen.add(callee)
                    if self.invalidates(self.methods[callee], cache, seen):
                        return True
        return False


@register
class CacheInvalidationRule(Rule):
    code = "SIM003"
    name = "cache-invalidation-pairing"
    summary = (
        "every method mutating state a *_cache was computed from must "
        "invalidate that cache"
    )

    def check(self, module: ModuleInfo, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            view = _ClassView(project, node.name)
            caches = view.cache_attrs()
            if not caches:
                continue
            for cache in sorted(caches):
                fillers = [
                    fn
                    for fn in view.methods.values()
                    if view.populates(fn, cache)
                ]
                if not fillers:
                    continue
                deps: set[str] = set()
                for fn in fillers:
                    deps |= view.reads(fn, caches)
                deps -= {attr for attr in deps if attr.isupper()}  # class consts
                if not deps:
                    continue
                for method_name, fn in sorted(view.methods.items()):
                    if method_name in _CONSTRUCTORS:
                        continue
                    mutated = view.mutated_deps(fn, deps)
                    if not mutated:
                        continue
                    if view.invalidates(fn, cache):
                        continue
                    # Report at the defining method; identical inherited
                    # findings from sibling subclasses dedupe in the runner.
                    findings.append(
                        Finding(
                            rule=self.code,
                            path=_defining_module(project, fn, module).rel,
                            line=fn.lineno,
                            col=fn.col_offset,
                            message=(
                                f"method `{method_name}` mutates "
                                f"`{'`, `'.join(sorted(mutated))}` but never "
                                f"invalidates `{cache}` (computed from it)"
                            ),
                        )
                    )
        return findings


def _defining_module(
    project: Project, fn: ast.FunctionDef | ast.AsyncFunctionDef, fallback: ModuleInfo
) -> ModuleInfo:
    """The module that actually defines a (possibly inherited) method."""
    for decl in project.classes.values():
        if fn in decl.methods.values():
            return decl.module
    return fallback
