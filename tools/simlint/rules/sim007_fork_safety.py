"""SIM007 — fork-safety of worker-dispatched state.

The parallel serving core (:mod:`repro.engine.parallel`) runs partitions
in ``fork``-start worker processes: children inherit the parent's memory
copy-on-write, then diverge.  Two classes of state silently break under
that model:

* **module-global mutable caches** — a dict/list/set named like a cache
  (``*cache*`` / ``*registry*`` / ``*memo*``) that the code mutates:
  every forked worker fills its own private copy (no sharing, no
  prewarm benefit) and the parent never observes invalidations a worker
  performs.  Shared derived state must be routed through
  :class:`repro.schedule_cache.ScheduleCacheRegistry`, which is built to
  be fork-aware: prewarmed before the fork, write-invalidated per
  backend.
* **fork-divergent RNG** — an RNG constructed without an explicit seed
  (``numpy.random.default_rng()``; the stdlib twin is SIM001's), or
  seeded from process identity or host wall time (``os.getpid()``,
  ``time.time()``...): each worker draws a different stream, so results
  depend on the worker count — exactly the nondeterminism the
  ``workers=N`` bit-identity contract forbids.  Per-worker seeds must
  derive from stable simulation ids (the shard id), never from the
  process.
"""

from __future__ import annotations

import ast

from tools.simlint.astutil import call_name
from tools.simlint.framework import Finding, ModuleInfo, Project, Rule, register
from tools.simlint.rules.sim005_shared_state import (
    _module_globals,
    _mutations_of,
)

#: Module-level names treated as caches (substring match, case-insensitive).
_CACHE_NAME_HINTS = ("cache", "registry", "memo")

#: RNG constructors that draw a fork-divergent stream when unseeded.
#: (``random.Random()`` is already SIM001's; this is the numpy twin.)
_NUMPY_RNG_CALLS = {
    "numpy.random.default_rng",
    "np.random.default_rng",
    "random.default_rng",
    "default_rng",
    "numpy.random.RandomState",
    "np.random.RandomState",
    "RandomState",
}

#: Callees whose arguments are RNG seeds.
_SEED_SINK_SUFFIXES = ("Random", "default_rng", "RandomState", "seed")

#: Calls producing process-identity or host-time values: seeding from any
#: of these makes every forked worker draw a different stream.
_FORK_DIVERGENT_SOURCES = {
    "os.getpid",
    "getpid",
    "os.getppid",
    "multiprocessing.current_process",
    "threading.get_ident",
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.datetime.now",
    "datetime.utcnow",
    "datetime.datetime.utcnow",
    "uuid.uuid1",
    "uuid.uuid4",
    "uuid1",
    "uuid4",
}


def _is_cache_name(name: str) -> bool:
    lowered = name.lower()
    return any(hint in lowered for hint in _CACHE_NAME_HINTS)


def _divergent_source(node: ast.AST) -> str | None:
    """Dotted name of the first fork-divergent call inside ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            name = call_name(child)
            if name is None:
                continue
            tail = ".".join(name.split(".")[-2:])
            if name in _FORK_DIVERGENT_SOURCES or tail in _FORK_DIVERGENT_SOURCES:
                return name
    return None


@register
class ForkSafetyRule(Rule):
    code = "SIM007"
    name = "fork-safety"
    summary = (
        "state that diverges across forked workers: mutated module-global "
        "caches outside ScheduleCacheRegistry, unseeded or pid/time-seeded "
        "RNG"
    )

    def check(self, module: ModuleInfo, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for name, stmt, kind in _module_globals(module.tree):
            if not _is_cache_name(name):
                continue
            sites = _mutations_of(project, name)
            if not sites:
                continue  # read-only tables are fork-safe (inherited as-is)
            where = sites[0]
            findings.append(
                self.finding(
                    module,
                    stmt,
                    f"module-level {kind} `{name}` is a mutated cache "
                    f"({where[0].rel}:{where[1].lineno}) — fork-unsafe: "
                    "each worker fills a private copy-on-write copy and "
                    "invalidations never cross the process boundary; route "
                    "it through repro.schedule_cache.ScheduleCacheRegistry",
                )
            )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            if name in _NUMPY_RNG_CALLS and not node.args and not node.keywords:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"`{name}()` without a seed is fork-divergent: "
                        "every worker draws a different stream, so results "
                        "depend on the worker count — seed it from a stable "
                        "simulation id (e.g. the shard id)",
                    )
                )
                continue
            if name.rsplit(".", 1)[-1] in _SEED_SINK_SUFFIXES:
                for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                    source = _divergent_source(arg)
                    if source is not None:
                        findings.append(
                            self.finding(
                                module,
                                node,
                                f"RNG seeded from `{source}()` is "
                                "fork-divergent: process identity and host "
                                "time differ per worker — derive per-worker "
                                "seeds from stable simulation ids instead",
                            )
                        )
                        break
        return findings
