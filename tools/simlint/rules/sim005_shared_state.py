"""SIM005 — shared-mutable-state inventory.

The planned worker-parallel core will run replicas of the engine in one
process; anything mutable that is shared across instances is a data race
waiting to happen.  This rule:

* flags module-level mutable containers (``list`` / ``dict`` / ``set`` /
  ``deque`` / ``defaultdict`` / ``Counter`` literals or constructor calls)
  that are **mutated anywhere in the scanned tree** — a frozen
  module-level registry that is only ever read is allowed (but still
  inventoried);
* flags mutable containers in a *class body* (shared across every
  instance) unless they are ``tuple`` / ``frozenset`` /
  ``MappingProxyType`` or dataclass ``field(default_factory=...)``;
* maintains the *inventory*: every module-level / class-level container,
  mutated or not, is reported through ``python -m tools.simlint --inventory``
  and in the JSON output, so the parallel-core work starts from an explicit
  list of shared objects.
"""

from __future__ import annotations

import ast

from tools.simlint.astutil import call_name
from tools.simlint.framework import Finding, ModuleInfo, Project, Rule, register

_MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "collections.defaultdict",
    "defaultdict",
    "collections.deque",
    "deque",
    "collections.OrderedDict",
    "OrderedDict",
    "collections.Counter",
    "Counter",
}

_FROZEN_CALLS = {
    "tuple",
    "frozenset",
    "MappingProxyType",
    "types.MappingProxyType",
    "field",
    "dataclasses.field",
}

_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "sort",
    "reverse",
    "appendleft",
    "popleft",
}


def _mutable_value(node: ast.AST) -> str | None:
    """Container kind when the expression builds a mutable container."""
    if isinstance(node, (ast.List, ast.ListComp)):
        return "list"
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in _FROZEN_CALLS:
            return None
        if name in _MUTABLE_CALLS:
            return name.rsplit(".", 1)[-1]
    return None


def _module_globals(tree: ast.Module) -> list[tuple[str, ast.stmt, str]]:
    """(name, statement, kind) for module-level mutable containers."""
    out = []
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target = stmt.target
            value = stmt.value
        else:
            continue
        if not isinstance(target, ast.Name):
            continue
        kind = _mutable_value(value)
        if kind is not None:
            out.append((target.id, stmt, kind))
    return out


def _mutations_of(project: Project, name: str) -> list[tuple[ModuleInfo, ast.AST]]:
    """Every site in the scanned tree that mutates global ``name``."""
    sites = []
    for module in project.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == name
                    ):
                        sites.append((module, node))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == name
                    ):
                        sites.append((module, node))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name
            ):
                sites.append((module, node))
            elif isinstance(node, ast.Global) and name in node.names:
                sites.append((module, node))
    return sites


@register
class SharedMutableStateRule(Rule):
    code = "SIM005"
    name = "shared-mutable-state"
    summary = (
        "module-level mutable containers that are mutated, and class-body "
        "mutable containers, would race under a worker-parallel core"
    )

    def check(self, module: ModuleInfo, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for name, stmt, kind in _module_globals(module.tree):
            sites = _mutations_of(project, name)
            if sites:
                where = sites[0]
                findings.append(
                    self.finding(
                        module,
                        stmt,
                        f"module-level {kind} `{name}` is mutated "
                        f"({where[0].rel}:{where[1].lineno}) — shared "
                        "mutable state races under a worker-parallel core; "
                        "freeze it or move it into instance state",
                    )
                )
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                    target, value = stmt.target, stmt.value
                else:
                    continue
                if not isinstance(target, ast.Name):
                    continue
                kind = _mutable_value(value)
                if kind is not None:
                    findings.append(
                        self.finding(
                            module,
                            stmt,
                            f"class-body {kind} `{node.name}.{target.id}` is "
                            "shared across every instance — use a default "
                            "factory or an immutable container",
                        )
                    )
        return findings

    # ----------------------------------------------------------- inventory
    def inventory(self, module: ModuleInfo, project: Project) -> list[str]:
        items = []
        for name, stmt, kind in _module_globals(module.tree):
            mutated = "mutated" if _mutations_of(project, name) else "read-only"
            items.append(
                f"{module.rel}:{stmt.lineno} module-level {kind} `{name}` "
                f"({mutated})"
            )
        return items
