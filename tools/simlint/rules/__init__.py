"""Rule modules; importing this package registers every rule."""

from tools.simlint.rules import (  # noqa: F401
    sim001_determinism,
    sim002_clock,
    sim003_caches,
    sim004_priorities,
    sim005_shared_state,
    sim006_units,
    sim007_fork_safety,
    sim008_hot_loops,
)
