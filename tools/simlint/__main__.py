"""Command-line entry point: ``python -m tools.simlint src``.

Exit status: 0 when the tree is clean, 1 when any finding survives
suppressions and the baseline, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.simlint.framework import all_rules, lint_paths, load_baseline


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.simlint",
        description="simulation-safety static analysis for src/repro",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline allowlist (default: tools/simlint/baseline.json)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline allowlist",
    )
    parser.add_argument(
        "--inventory",
        action="store_true",
        help="also print the shared-mutable-state inventory (SIM005)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    args = parser.parse_args(argv)

    registry = all_rules()
    if args.list_rules:
        for code, rule in registry.items():
            print(f"{code}  {rule.name}: {rule.summary}")
        return 0

    rules = None
    if args.rules:
        rules = [code.strip() for code in args.rules.split(",") if code.strip()]
        unknown = [code for code in rules if code not in registry]
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"no such path(s): {', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2

    baseline = set() if args.no_baseline else load_baseline(args.baseline)
    result = lint_paths(paths, rules=rules, baseline=baseline)

    if args.format == "json":
        print(json.dumps(result.to_json(), indent=2))
    else:
        for finding in result.findings:
            print(finding.render())
        if args.inventory and result.inventory:
            print("\nshared-state inventory:")
            for item in result.inventory:
                print(f"  {item}")
        summary = (
            f"{len(result.findings)} finding(s) in {result.files} file(s)"
            f" ({result.suppressed} suppressed, {result.baselined} baselined)"
        )
        print(("FAIL: " if result.findings else "OK: ") + summary)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
