"""simlint core: findings, the rule registry, suppressions, and the runner.

A :class:`Rule` inspects one module at a time but sees the whole
:class:`Project` (every parsed module plus a cross-module class index), so
rules like SIM003 can reason about inherited methods and rules like SIM005
can prove that a module-level container is never mutated anywhere in the
scanned tree.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from tools.simlint.astutil import attach_parents, is_self_attribute

#: Line suppression: ``some_code()  # simlint: disable=SIM001,SIM006``
_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Z0-9,\s]+)")
#: File suppression (first 10 lines): ``# simlint: disable-file=SIM005``
_SUPPRESS_FILE_RE = re.compile(r"#\s*simlint:\s*disable-file=([A-Z0-9,\s]+)")

DEFAULT_BASELINE = Path(__file__).with_name("baseline.json")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Line-number-insensitive identity used by the baseline allowlist."""
        return f"{self.rule}:{Path(self.path).name}:{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass
class ModuleInfo:
    """One parsed source module."""

    path: Path
    rel: str
    source: str
    tree: ast.Module
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    file_suppressions: set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, path: Path, rel: str, source: str) -> "ModuleInfo":
        tree = ast.parse(source, filename=rel)
        attach_parents(tree)
        info = cls(path=path, rel=rel, source=source, tree=tree)
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                info.line_suppressions.setdefault(lineno, set()).update(
                    code.strip() for code in match.group(1).split(",") if code.strip()
                )
            if lineno <= 10:
                match = _SUPPRESS_FILE_RE.search(line)
                if match:
                    info.file_suppressions.update(
                        code.strip()
                        for code in match.group(1).split(",")
                        if code.strip()
                    )
        return info

    def suppresses(self, finding: Finding) -> bool:
        if finding.rule in self.file_suppressions:
            return True
        codes = self.line_suppressions.get(finding.line, set())
        return finding.rule in codes or "ALL" in codes


@dataclass
class ClassDecl:
    """A class definition with enough structure for cross-module analysis."""

    name: str
    module: ModuleInfo
    node: ast.ClassDef
    bases: list[str]
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef]
    properties: set[str]


class Project:
    """Every parsed module plus a cross-module class index."""

    def __init__(self, modules: list[ModuleInfo]) -> None:
        self.modules = modules
        self.classes: dict[str, ClassDecl] = {}
        for module in modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
                properties: set[str] = set()
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        methods[item.name] = item
                        for deco in item.decorator_list:
                            if (
                                isinstance(deco, ast.Name)
                                and deco.id in ("property", "cached_property")
                            ) or (
                                isinstance(deco, ast.Attribute)
                                and deco.attr in ("getter", "cached_property")
                            ):
                                properties.add(item.name)
                bases = []
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        bases.append(base.id)
                    elif isinstance(base, ast.Attribute):
                        bases.append(base.attr)
                # Last definition wins on (rare) duplicate class names; the
                # rules only need a best-effort merged view.
                self.classes[node.name] = ClassDecl(
                    name=node.name,
                    module=module,
                    node=node,
                    bases=bases,
                    methods=methods,
                    properties=properties,
                )

    def merged_methods(
        self, name: str
    ) -> tuple[dict[str, ast.FunctionDef | ast.AsyncFunctionDef], set[str]]:
        """(methods, properties) of a class merged over its known bases.

        Subclass definitions shadow base-class ones; unknown bases (object,
        Protocol, anything outside the scanned tree) are ignored.
        """
        methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        properties: set[str] = set()
        seen: set[str] = set()

        def visit(cls_name: str) -> None:
            if cls_name in seen or cls_name not in self.classes:
                return
            seen.add(cls_name)
            decl = self.classes[cls_name]
            for method_name, fn in decl.methods.items():
                methods.setdefault(method_name, fn)
                if method_name in decl.properties:
                    properties.add(method_name)
            for base in decl.bases:
                visit(base)

        visit(name)
        return methods, properties


class Rule:
    """Base class for simlint rules.

    Subclasses set ``code`` / ``name`` / ``summary`` and implement
    :meth:`check`; registration happens through :func:`register`.
    """

    code: str = "SIM000"
    name: str = "base"
    summary: str = ""

    def check(self, module: ModuleInfo, project: Project) -> list[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.code,
            path=module.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


# Write-once at import time (the @register decorators), read-only after.
_REGISTRY: dict[str, type[Rule]] = {}  # simlint: disable=SIM005


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> dict[str, type[Rule]]:
    """Registered rules by code (importing the rule package on first use)."""
    import tools.simlint.rules  # noqa: F401  (registers on import)

    return dict(sorted(_REGISTRY.items()))


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding]
    suppressed: int
    baselined: int
    files: int
    inventory: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json(self) -> dict[str, object]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return {
            "findings": [finding.to_json() for finding in self.findings],
            "counts": counts,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "files": self.files,
            "inventory": self.inventory,
            "ok": self.ok,
        }


def load_baseline(path: Path | None = None) -> set[str]:
    """Fingerprints allowlisted by the JSON baseline (empty by default)."""
    baseline_path = DEFAULT_BASELINE if path is None else path
    if not baseline_path.exists():
        return set()
    data = json.loads(baseline_path.read_text())
    return {str(entry) for entry in data.get("findings", [])}


def _collect_files(paths: list[Path]) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def build_project(paths: list[Path], root: Path | None = None) -> Project:
    """Parse every ``.py`` file under ``paths`` into a :class:`Project`."""
    root = root or Path.cwd()
    modules = []
    for file_path in _collect_files(paths):
        try:
            rel = str(file_path.relative_to(root))
        except ValueError:
            rel = str(file_path)
        source = file_path.read_text()
        modules.append(ModuleInfo.parse(file_path, rel, source))
    return Project(modules)


def run_rules(
    project: Project,
    rules: list[str] | None = None,
    baseline: set[str] | None = None,
) -> LintResult:
    """Run (a subset of) the registered rules over a parsed project."""
    registry = all_rules()
    selected = rules if rules is not None else list(registry)
    unknown = [code for code in selected if code not in registry]
    if unknown:
        raise KeyError(f"unknown rule(s): {', '.join(unknown)}")
    baseline = baseline or set()
    instances = [registry[code]() for code in selected]
    findings: list[Finding] = []
    inventory: list[str] = []
    suppressed = 0
    baselined = 0
    seen: set[tuple[str, str, int, str]] = set()
    by_rel = {module.rel: module for module in project.modules}
    for module in project.modules:
        for rule in instances:
            for finding in rule.check(module, project):
                key = (finding.rule, finding.path, finding.line, finding.message)
                if key in seen:
                    continue
                seen.add(key)
                # Suppressions live in the module the finding points at
                # (which, for inherited-method findings, can differ from the
                # module being checked).
                home = by_rel.get(finding.path, module)
                if home.suppresses(finding):
                    suppressed += 1
                elif finding.fingerprint in baseline:
                    baselined += 1
                else:
                    findings.append(finding)
            collect = getattr(rule, "inventory", None)
            if collect is not None:
                inventory.extend(collect(module, project))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintResult(
        findings=findings,
        suppressed=suppressed,
        baselined=baselined,
        files=len(project.modules),
        inventory=sorted(set(inventory)),
    )


def lint_paths(
    paths: list[Path],
    rules: list[str] | None = None,
    baseline: set[str] | None = None,
    root: Path | None = None,
) -> LintResult:
    """Lint files / directories and return the aggregate result."""
    return run_rules(build_project(paths, root=root), rules=rules, baseline=baseline)


def lint_source(
    source: str,
    filename: str = "<fixture>.py",
    rules: list[str] | None = None,
) -> LintResult:
    """Lint one in-memory module (the test-fixture entry point)."""
    module = ModuleInfo.parse(Path(filename), filename, source)
    return run_rules(Project([module]), rules=rules)
