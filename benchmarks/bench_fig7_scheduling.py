"""Fig. 7 — algorithms alternating queries and processing on one Fat-Tree."""

from conftest import print_rows

from repro.analysis import generate_fig7_schedule
from repro.scheduling.utilization import fig7_total_time


def test_fig7_query_scheduling(benchmark):
    report = benchmark(
        generate_fig7_schedule, 8, 3, 20.0, 3
    )
    print_rows("Fig. 7 — 3 algorithms, d = 20 layers, capacity 8", report)
    assert report["queries_served"] == 9
    assert 0.0 < report["average_utilization"] <= 1.0
    # The paper's closed form 30 n + 2 d + 17 (raw layers) is an upper bound
    # of the same order as the simulated weighted makespan.
    closed_form = fig7_total_time(3, 20.0)
    assert report["total_time"] < 2 * closed_form
