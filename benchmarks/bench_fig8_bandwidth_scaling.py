"""Fig. 8 — QRAM bandwidth vs capacity for all five architectures."""

from conftest import print_rows

from repro.analysis import generate_fig8_bandwidth

CAPACITIES = (4, 8, 16, 32, 64, 128, 256, 512, 1024)


def test_fig8_bandwidth_scaling(benchmark):
    series = benchmark(generate_fig8_bandwidth, CAPACITIES)
    print_rows("Fig. 8 — bandwidth (qubits/s) vs capacity", series)
    fat_tree = series["Fat-Tree"]
    bb = series["BB"]
    virtual = series["Virtual"]
    d_fat_tree = series["D-Fat-Tree"]
    # Fat-Tree: capacity-independent constant bandwidth ~1.21e5.
    assert max(fat_tree) - min(fat_tree) < 1e-6
    assert abs(fat_tree[0] - 1.2121e5) < 2e2
    # BB and Virtual decay with capacity; Fat-Tree dominates them everywhere.
    assert bb == sorted(bb, reverse=True)
    assert all(ft > b for ft, b in zip(fat_tree, bb))
    assert all(ft > v for ft, v in zip(fat_tree, virtual))
    # D-Fat-Tree bandwidth grows ~ log N (the expensive group).
    assert d_fat_tree == sorted(d_fat_tree)
