"""Persistent-pool sweep engine: cross-run cache reuse (BENCH_sweep).

The perf claim of the campaign layer, measured three ways over the same
64-point design-space sweep (admission policy × QEC distance × shard
count × workload intensity over a capacity-64 timing-only fleet):

* **serial-cold** — ``pool_size=1, recycle_after=1``: every point forks
  a fresh worker that rebuilds fleet, schedules and fidelity vectors
  from a cold :class:`~repro.schedule_cache.ScheduleCacheRegistry`.
  This *is* the fork-per-run execution model the persistent pool
  replaces, kept as the honest baseline.
* **pool-1** — one persistent worker: zero parallelism, so any speedup
  over serial-cold is *pure cross-run cache reuse* (plus amortized
  forks).  Gated at >= 2x regardless of host CPU count.
* **pool-8** — eight persistent workers: reuse plus parallelism.  Gated
  at >= 5x over serial-cold *only on hosts with >= 8 CPUs*; a 1-CPU
  host records its honest (flat) number and skips the gate, exactly
  like ``bench_service_scale``'s workers axis.

All three executions must produce bit-identical row sets (asserted) —
the pool buys speed, never results.  The run *appends* one entry to the
``"runs"`` trajectory in ``BENCH_sweep.json``; entries are never
rewritten.

Run the full benchmark:

    PYTHONPATH=src python benchmarks/bench_sweep.py

Environment knobs:

* ``QRAM_SWEEP_INTENSITIES`` — workload-intensity axis length (default
  8; the sweep has ``2 * 2 * 2 * intensities`` points, so the default
  is the 64-point headline and CI smoke can shrink it).
* ``QRAM_SWEEP_MIN_REUSE_SPEEDUP`` — required pool-1 speedup over
  serial-cold (default 2.0; enforced on every host).
* ``QRAM_SWEEP_MIN_SPEEDUP`` — required pool-8 speedup over serial-cold
  (default 5.0; only enforced when the host has >= 8 CPUs).

The pytest entry point runs a reduced sweep with the same identity and
reuse assertions.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.scenarios.spec import FleetSpec, ScenarioSpec, WorkloadSpec
from repro.sweep import SweepSpec, frontier_report, run_sweep

INTENSITY_STEPS = int(os.environ.get("QRAM_SWEEP_INTENSITIES", "8"))
MIN_REUSE_SPEEDUP = float(
    os.environ.get("QRAM_SWEEP_MIN_REUSE_SPEEDUP", "2.0")
)
MIN_SPEEDUP = float(os.environ.get("QRAM_SWEEP_MIN_SPEEDUP", "5.0"))
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_sweep.json"

#: Every key a trajectory row carries (new file — no historical backfill
#: yet; the normalizer still runs so future keys can be added the same
#: way ``bench_service_scale`` grew).
ROW_SCHEMA = (
    "label",
    "cpu_count",
    "points",
    "unique_executions",
    "serial_cold_seconds",
    "pool1_seconds",
    "pool8_seconds",
    "speedup_pool1_vs_cold",
    "speedup_pool8_vs_cold",
    "cache_hits",
    "cache_misses",
    "cache_prewarms",
    "cache_hit_rate",
    "rows_identical",
    "frontier_points",
)

#: Keys every new row must populate (the whole schema — this file has no
#: historical nulls to preserve).
NON_NULL_KEYS = ROW_SCHEMA


def headline_sweep(intensity_steps: int = INTENSITY_STEPS) -> SweepSpec:
    """The benchmark campaign: 2 x 2 x 2 x ``intensity_steps`` points.

    Timing-only windows (``functional=False``) keep per-point serving
    cheap, so the measured contrast is exactly what the pool amortizes:
    fleet build, schedule compilation and fidelity-vector derivation.
    """
    base = ScenarioSpec(
        fleet=FleetSpec(
            capacity=64, shards=("Fat-Tree", "BB"), functional=False
        ),
        workload=WorkloadSpec(
            kind="poisson",
            num_queries=40,
            mean_interarrival=3.0,
            seed=11,
        ),
        name="bench",
    )
    intensities = tuple(
        2.0 + 14.0 * step / max(1, intensity_steps - 1)
        for step in range(intensity_steps)
    )
    return SweepSpec(
        base=base,
        axes=(
            ("policy.admission", ("fifo", "priority")),
            ("fleet.qec_distance", (1, 3)),
            ("fleet.shard_count", (2, 4)),
            ("workload.mean_interarrival", intensities),
        ),
        name="bench-sweep",
    )


def run_modes(sweep: SweepSpec) -> dict:
    """Time the three execution modes; assert their rows identical.

    serial-cold runs first: the parent process never executes a spec
    itself, so its registry stays cold and every ``recycle_after=1``
    fork genuinely pays the cold path.
    """
    timings: dict[str, float] = {}
    rows_by_mode = {}
    modes = (
        ("serial_cold", dict(pool_size=1, recycle_after=1)),
        ("pool1", dict(pool_size=1)),
        ("pool8", dict(pool_size=8)),
    )
    cache_stats = None
    for name, kwargs in modes:
        start = time.perf_counter()
        result = run_sweep(sweep, **kwargs)
        timings[name] = time.perf_counter() - start
        rows_by_mode[name] = result.rows
        if name == "pool1":
            cache_stats = result.cache_stats
    baseline = rows_by_mode["serial_cold"]
    for name, rows in rows_by_mode.items():
        assert rows == baseline, f"mode {name} diverged from serial-cold"
    assert cache_stats is not None
    frontier = frontier_report(baseline)
    return {
        "label": f"sweep-{len(baseline)}pt",
        "cpu_count": os.cpu_count(),
        "points": len(baseline),
        "unique_executions": len(
            {row["fingerprint"] for row in baseline}
        ),
        "serial_cold_seconds": round(timings["serial_cold"], 3),
        "pool1_seconds": round(timings["pool1"], 3),
        "pool8_seconds": round(timings["pool8"], 3),
        "speedup_pool1_vs_cold": round(
            timings["serial_cold"] / timings["pool1"], 2
        ),
        "speedup_pool8_vs_cold": round(
            timings["serial_cold"] / timings["pool8"], 2
        ),
        "cache_hits": cache_stats.hits,
        "cache_misses": cache_stats.misses,
        "cache_prewarms": cache_stats.prewarms,
        "cache_hit_rate": round(cache_stats.hit_rate, 4),
        "rows_identical": True,
        "frontier_points": len(frontier["frontier"]),
    }


def _load_trajectory() -> list[dict]:
    if not RESULT_PATH.exists():
        return []
    data = json.loads(RESULT_PATH.read_text(encoding="utf-8"))
    return data["runs"] if isinstance(data, dict) else [data]


def _normalize_trajectory(runs: list[dict]) -> list[dict]:
    """Backfill ``null`` for schema keys future historical rows predate."""
    for row in runs:
        for key in ROW_SCHEMA:
            row.setdefault(key, None)
    return runs


def _check_row(row: dict) -> None:
    """A fresh row must carry the full schema, populated, nothing ad hoc."""
    missing = [key for key in ROW_SCHEMA if key not in row]
    extra = [key for key in row if key not in ROW_SCHEMA]
    assert not missing and not extra, (
        f"trajectory row schema drift: missing={missing} extra={extra} — "
        f"update ROW_SCHEMA alongside run_modes()"
    )
    nulled = [key for key in NON_NULL_KEYS if row[key] is None]
    assert not nulled, (
        f"new trajectory row records null for {nulled} — populate them at "
        f"write time"
    )


def test_trajectory_row_schema():
    """The normalizer backfills; the new-row check rejects nulls/drift."""
    partial = {"points": 8}
    rows = _normalize_trajectory([partial])
    assert rows[0] is partial and set(partial) == set(ROW_SCHEMA)
    try:
        _check_row(partial)
    except AssertionError:
        pass
    else:  # pragma: no cover - nulls must be rejected
        raise AssertionError("null keys went undetected")


def test_sweep_modes_identical_and_reuse(benchmark):
    """Reduced entry: cold/persistent rows identical, reuse observable."""
    sweep = headline_sweep(intensity_steps=2)  # 16 points
    metrics = run_modes(sweep)
    benchmark(lambda: metrics)
    _check_row(metrics)
    assert metrics["points"] == 16
    assert metrics["unique_executions"] == 16
    assert metrics["rows_identical"] is True
    # Reuse proof: a persistent worker compiles each unique
    # configuration once (prewarms flat at unique configs) and then
    # hits — across 16 runs the hit side must dominate.
    assert metrics["cache_prewarms"] < metrics["cache_hits"]
    assert metrics["cache_hit_rate"] > 0.5
    try:
        from conftest import print_rows
    except ImportError:  # pragma: no cover - direct invocation
        return
    print_rows(
        "Persistent-pool sweep — 16 points, cold fork-per-run vs pool",
        {
            "serial_cold_seconds": metrics["serial_cold_seconds"],
            "pool1_seconds": metrics["pool1_seconds"],
            "speedup_pool1_vs_cold": metrics["speedup_pool1_vs_cold"],
            "cache_hit_rate": metrics["cache_hit_rate"],
        },
    )


def main() -> None:
    metrics = run_modes(headline_sweep())
    _check_row(metrics)
    runs = _normalize_trajectory(_load_trajectory())
    runs.append(metrics)
    RESULT_PATH.write_text(
        json.dumps({"runs": runs}, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {RESULT_PATH} ({len(runs)} run(s) in the trajectory)")
    for key, value in metrics.items():
        print(f"  {key}: {value}")
    failures = []
    if metrics["speedup_pool1_vs_cold"] < MIN_REUSE_SPEEDUP:
        failures.append(
            f"pool-1 cache-reuse speedup {metrics['speedup_pool1_vs_cold']}x "
            f"is below the QRAM_SWEEP_MIN_REUSE_SPEEDUP bound of "
            f"{MIN_REUSE_SPEEDUP}x"
        )
    cpu_count = os.cpu_count() or 1
    if cpu_count >= 8:
        if metrics["speedup_pool8_vs_cold"] < MIN_SPEEDUP:
            failures.append(
                f"pool-8 speedup {metrics['speedup_pool8_vs_cold']}x is "
                f"below the QRAM_SWEEP_MIN_SPEEDUP bound of {MIN_SPEEDUP}x "
                f"(host has {cpu_count} CPUs)"
            )
    else:
        print(
            f"  (pool-8 speedup gate skipped: host has {cpu_count} CPU(s); "
            f"recorded as {metrics['speedup_pool8_vs_cold']}x)"
        )
    if failures:
        sys.exit("\n".join(failures))


if __name__ == "__main__":
    main()
