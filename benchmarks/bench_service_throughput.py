"""Serving-layer throughput, the schedule-cache speedups, and the backend axis.

Measurements:

* the Fat-Tree schedule-cache hit: repeated queries at a fixed capacity
  reuse the memoized relative schedule, lowered gate sequences and minimum
  feasible interval, where the seed code re-derived all three through a
  fresh ``FatTreeExecutor`` on every call — the cached path must be at
  least 5x faster;
* the BB schedule-cache hit: the serving path's cached ``BBExecutor``
  reuses the memoized query schedule and lowered gate sequences, against
  the seed's fresh-executor-per-call re-derivation — same >= 5x guarantee,
  so the BB serving path is not orders of magnitude slower than Fat-Tree's;
* end-to-end service throughput: a multi-shard :class:`QRAMService`
  draining a Poisson trace, reported as queries/second of simulated
  hardware time and wall-clock serving rate;
* the backend axis: the same trace drained by every registered
  architecture (Fat-Tree, BB, Virtual, D-Fat-Tree, D-BB), comparing
  makespans and bandwidths across the fleet choices;
* the offered-load saturation axis: the same fleet under light to
  saturating Poisson load with SLO deadlines, bounded queues and expired-
  deadline shedding — the discrete-event engine's p95 latency, deadline-
  miss-rate and reject/shed accounting as the load crosses capacity;
* the fidelity axis: the same trace drained by a bare fleet, a mixed
  bare + ``distance=3`` encoded fleet, and the mixed fleet under a
  per-request fidelity SLO — comparing predicted mean/min fidelity,
  fidelity-reject counts and the throughput cost of quality;
* the workers axis: one partitioned Poisson trace served at
  ``workers`` = 1 / 2 / 4 — the merged report must compare equal at every
  worker count (the parallel core's bit-identity contract) while each
  worker regenerates only its own shards' requests;
* the shared schedule-cache registry: an autoscaled replica added mid-run
  resolves its executor from the process-wide warm cache (a registry hit,
  never a fresh derivation), and memory writes fan invalidations out;
* the scenario axis: every named adversarial scenario of
  :mod:`repro.scenarios.library` (diurnal cycle, flash crowd, hot-key
  skew, misbehaving tenant, deadline-impossible) drained end to end from
  its declarative :class:`~repro.scenarios.ScenarioSpec`, comparing how
  each stress pattern trades served counts, rejections and tail latency;
* the retention axis: one 5,000-query streaming trace served under
  ``retention="full"`` vs ``retention="none"`` — identical counts and
  means, sketched percentiles within a few percent, and an
  order-of-magnitude drop in peak traced memory (the bounded-memory
  observation path of ``bench_service_scale.py`` at benchmark scale).
"""

import time
import tracemalloc

import pytest
from conftest import print_rows

from repro.baselines.registry import backend_names
from repro.bucket_brigade.executor import BBExecutor
from repro.bucket_brigade.qram import BucketBrigadeQRAM
from repro.core.executor import FatTreeExecutor
from repro.core.qram import FatTreeQRAM
from repro.core.query import QueryRequest
from repro.engine import (
    AutoscalerConfig,
    PartitionedTraceSource,
    StreamingTraceSource,
    TraceSource,
)
from repro.hardware.parameters import TABLE3_PARAMETERS
from repro.scenarios import (
    FleetSpec,
    PolicySpec,
    ScenarioSpec,
    WorkloadSpec,
    library_names,
    library_scenario,
)
from repro.schedule_cache import default_registry
from repro.service import QRAMService
from repro.workloads import iter_poisson_trace, poisson_trace, random_data

CAPACITY = 32
BATCH = 4
REPEATS = 10


def _derive_schedules_fresh() -> int:
    """The seed's per-call path: construct an executor and re-derive every
    schedule artefact (this is what each run_pipelined_queries call paid)."""
    executor = FatTreeExecutor(CAPACITY, [0] * CAPACITY)
    interval = executor.minimum_feasible_interval(BATCH)
    for query in range(BATCH):
        executor.relative_schedule(query)
    return interval


def _derive_schedules_cached(qram: FatTreeQRAM) -> int:
    """The serving layer's path: one cached executor, memoized artefacts."""
    executor = qram.cached_executor()
    interval = executor.minimum_feasible_interval(BATCH)
    for query in range(BATCH):
        executor.relative_schedule(query)
    return interval


def test_schedule_cache_speedup(benchmark):
    qram = FatTreeQRAM(CAPACITY, [0] * CAPACITY)
    _derive_schedules_cached(qram)        # warm the caches once

    start = time.perf_counter()
    for _ in range(REPEATS):
        _derive_schedules_fresh()
    fresh_seconds = (time.perf_counter() - start) / REPEATS

    start = time.perf_counter()
    for _ in range(REPEATS * 100):
        _derive_schedules_cached(qram)
    cached_seconds = (time.perf_counter() - start) / (REPEATS * 100)

    speedup = fresh_seconds / cached_seconds
    benchmark(_derive_schedules_cached, qram)
    print_rows(
        f"Fat-Tree schedule caching — capacity {CAPACITY}, {BATCH}-query windows",
        {
            "fresh_ms_per_call": fresh_seconds * 1e3,
            "cached_ms_per_call": cached_seconds * 1e3,
            "speedup": speedup,
        },
    )
    # Both paths must agree on the derived interval.
    assert _derive_schedules_fresh() == _derive_schedules_cached(qram)
    assert speedup >= 5.0


def _derive_bb_schedule_fresh() -> int:
    """The seed's BB path: fresh executor, schedule rebuilt and re-lowered."""
    executor = BBExecutor(CAPACITY, [0] * CAPACITY)
    total = 0
    for instruction in executor.schedule(0).instructions:
        total += len(executor._lowered_operations(instruction))
    return total


def _derive_bb_schedule_cached(qram: BucketBrigadeQRAM) -> int:
    """The serving layer's BB path: cached executor, memoized artefacts."""
    executor = qram.cached_executor()
    total = 0
    for instruction in executor.schedule(0).instructions:
        total += len(executor._lowered_operations(instruction))
    return total


def test_bb_schedule_cache_speedup(benchmark):
    """The BB executor's new schedule cache matches the Fat-Tree guarantee."""
    qram = BucketBrigadeQRAM(CAPACITY, [0] * CAPACITY)
    _derive_bb_schedule_cached(qram)      # warm the caches once

    start = time.perf_counter()
    for _ in range(REPEATS):
        _derive_bb_schedule_fresh()
    fresh_seconds = (time.perf_counter() - start) / REPEATS

    start = time.perf_counter()
    for _ in range(REPEATS * 100):
        _derive_bb_schedule_cached(qram)
    cached_seconds = (time.perf_counter() - start) / (REPEATS * 100)

    speedup = fresh_seconds / cached_seconds
    benchmark(_derive_bb_schedule_cached, qram)
    print_rows(
        f"BB schedule caching — capacity {CAPACITY}, repeated windows",
        {
            "fresh_ms_per_call": fresh_seconds * 1e3,
            "cached_ms_per_call": cached_seconds * 1e3,
            "speedup": speedup,
        },
    )
    # Both paths lower the same gate sequence.
    assert _derive_bb_schedule_fresh() == _derive_bb_schedule_cached(qram)
    assert speedup >= 5.0


def test_service_throughput_poisson(benchmark):
    capacity = 16
    data = random_data(capacity, seed=1)
    trace = poisson_trace(
        capacity, 60, mean_interarrival=8.0, num_tenants=3, num_shards=2, seed=7
    )

    def serve():
        service = QRAMService(capacity, num_shards=2, data=data)
        return service.serve(trace)

    start = time.perf_counter()
    report = serve()
    wall_seconds = time.perf_counter() - start
    benchmark(lambda: report)
    stats = report.stats
    print_rows(
        "Service throughput — 2 shards, 60-query Poisson trace, capacity 16",
        {
            "queries": stats.total_queries,
            "makespan_layers": stats.makespan_layers,
            "bandwidth_queries_per_sec": stats.bandwidth_queries_per_sec,
            "mean_latency_layers": stats.mean_latency_layers,
            "mean_queue_delay_layers": stats.mean_queue_delay_layers,
            "wall_clock_queries_per_sec": stats.total_queries / wall_seconds,
            "shard_utilization": {
                shard: round(s.utilization, 3) for shard, s in stats.per_shard.items()
            },
        },
    )
    assert stats.total_queries == 60
    assert all(r.fidelity is not None and abs(r.fidelity - 1.0) < 1e-6
               for r in report.served)


def test_service_throughput_backend_axis(benchmark):
    """The same trace drained by every registered architecture."""
    capacity = 16
    data = random_data(capacity, seed=2)
    trace = poisson_trace(
        capacity, 40, mean_interarrival=6.0, num_tenants=2, num_shards=2, seed=3
    )

    def serve_all():
        results = {}
        for name in backend_names():
            service = QRAMService(
                capacity, num_shards=2, data=data, architecture=name,
                functional=False,
            )
            results[name] = service.serve(trace).stats
        return results

    results = serve_all()
    benchmark(serve_all)
    rows = {}
    for name, stats in results.items():
        rows[name] = {
            "makespan_layers": round(stats.makespan_layers, 1),
            "bandwidth_q_per_s": round(stats.bandwidth_queries_per_sec),
            "mean_latency_layers": round(stats.mean_latency_layers, 1),
        }
    print_rows(
        "Backend axis — 40-query Poisson trace, 2 shards, capacity 16",
        rows,
    )
    assert set(results) == set(backend_names())
    for name, stats in results.items():
        assert stats.total_queries == 40, name
        assert name in stats.per_backend


def _saturation_scenario(mean_interarrival: float) -> ScenarioSpec:
    """One point on the offered-load axis as a declarative scenario."""
    return ScenarioSpec(
        name=f"saturation-{mean_interarrival:g}",
        fleet=FleetSpec(
            capacity=16, shards=("Fat-Tree", "Fat-Tree"), functional=False,
        ),
        workload=WorkloadSpec(
            kind="poisson", num_queries=48,
            mean_interarrival=mean_interarrival, num_tenants=3, seed=13,
            deadline_layers=150.0,
        ),
        policy=PolicySpec(max_queue_depth=8, shed_expired=True),
    )


def test_service_saturation_axis(benchmark):
    """Offered load from light to saturating, under SLO-aware serving.

    The same 2-shard fleet drains Poisson traces whose mean interarrival
    shrinks past the fleet's service rate, with per-request deadlines,
    bounded queues and expired-deadline shedding.  Under light load
    nothing is rejected; under saturation the engine sheds / rejects and
    the deadline-miss-rate climbs — the accounting a serving system is
    sized by.  Each load point is one :class:`ScenarioSpec`.
    """
    num_queries = 48
    loads = {"light": 120.0, "moderate": 30.0, "saturated": 2.0}

    def sweep():
        return {
            label: _saturation_scenario(mean_interarrival).execute().stats
            for label, mean_interarrival in loads.items()
        }

    results = sweep()
    benchmark(sweep)
    rows = {}
    for label, stats in results.items():
        rows[label] = {
            "offered": stats.offered_queries,
            "served": stats.total_queries,
            "rejected": stats.rejected_queries,
            "shed": stats.shed_queries,
            "p95_latency_layers": round(stats.p95_latency_layers, 1),
            "deadline_miss_rate": round(stats.deadline_miss_rate, 3),
            "bandwidth_q_per_s": round(stats.bandwidth_queries_per_sec),
        }
    print_rows(
        "Saturation axis — 2 shards, capacity 16, 48-query Poisson traces",
        rows,
    )
    for stats in results.values():
        assert stats.offered_queries == num_queries
    light, saturated = results["light"], results["saturated"]
    assert light.rejected_queries == 0 and light.shed_queries == 0
    assert light.deadline_miss_rate == 0.0
    assert saturated.rejected_queries + saturated.shed_queries > 0
    assert saturated.deadline_miss_rate > light.deadline_miss_rate
    assert saturated.p95_latency_layers >= light.p95_latency_layers


def _fidelity_scenario(
    architectures: tuple[str, ...], min_fidelity: float | None
) -> ScenarioSpec:
    """One fleet choice on the quality axis as a declarative scenario."""
    return ScenarioSpec(
        name="fidelity-axis",
        fleet=FleetSpec(
            capacity=16, shards=architectures, placement="shortest-queue",
            functional=False, parameters=TABLE3_PARAMETERS[1e-4],
        ),
        workload=WorkloadSpec(
            kind="poisson", num_queries=32, mean_interarrival=30.0,
            num_tenants=2, seed=11, min_fidelity=min_fidelity,
        ),
    )


def test_service_fidelity_axis(benchmark):
    """Quality-of-result as a serving axis: bare vs mixed-encoded fleets.

    The same Poisson trace is drained by an all-bare Fat-Tree fleet, a
    mixed bare + ``distance=3`` encoded fleet, and the mixed fleet again
    with every request carrying a ``min_fidelity`` SLO only the encoded
    replica can meet.  The encoded replica lifts mean/min fidelity, and
    the SLO pins all traffic onto it — quality bought with makespan.
    Each fleet choice is one :class:`ScenarioSpec` (eps0 = 1e-4 is below
    the code threshold, where d=3 helps).
    """
    num_queries = 32
    fleets = {
        "bare": (("Fat-Tree", "Fat-Tree"), None),
        "mixed": (("Fat-Tree", "Fat-Tree@d3"), None),
        "mixed+slo": (("Fat-Tree", "Fat-Tree@d3"), 0.995),
    }

    def sweep():
        return {
            label: _fidelity_scenario(arch, slo).execute().stats
            for label, (arch, slo) in fleets.items()
        }

    results = sweep()
    benchmark(sweep)
    rows = {}
    for label, stats in results.items():
        rows[label] = {
            "served": stats.total_queries,
            "fidelity_rejected": stats.fidelity_rejected_queries,
            "mean_fidelity": round(stats.mean_fidelity, 5),
            "min_fidelity": round(stats.min_fidelity, 5),
            "slo_miss_rate": round(stats.fidelity_slo_miss_rate, 3),
            "makespan_layers": round(stats.makespan_layers, 1),
            "per_backend_mean": {
                name: round(b.mean_fidelity, 5)
                for name, b in stats.per_backend.items()
            },
        }
    print_rows(
        "Fidelity axis — 2 shards, capacity 16, 32-query Poisson trace",
        rows,
    )
    bare, mixed, slo = results["bare"], results["mixed"], results["mixed+slo"]
    for stats in results.values():
        assert stats.total_queries == num_queries
        assert stats.mean_fidelity is not None
    # The encoded replica lifts the fleet's fidelity aggregates.
    assert mixed.mean_fidelity > bare.mean_fidelity
    assert mixed.per_backend["Fat-Tree@d3"].mean_fidelity > (
        mixed.per_backend["Fat-Tree"].mean_fidelity
    )
    # Under the SLO every query serves on the encoded replica and meets it.
    assert slo.fidelity_slo_misses == 0
    assert slo.min_fidelity >= 0.995
    assert set(slo.per_backend) == {"Fat-Tree@d3"}
    # Quality costs time: one encoded replica absorbs the whole trace.
    assert slo.makespan_layers > mixed.makespan_layers


def test_service_retention_axis(benchmark):
    """Record retention vs memory: the streaming observation path.

    The same lazily generated 5,000-query Poisson trace is served twice —
    once retaining every record (the historical behaviour) and once with
    ``retention="none"`` (streaming aggregates only).  The two reports
    must agree on every count and mean; the record-free run's peak traced
    memory must be far below the full-retention run's, which grows with
    the trace.
    """
    capacity = 8
    num_queries = 5_000

    def serve(retention):
        trace = iter_poisson_trace(
            capacity, num_queries, mean_interarrival=14.0,
            addresses_per_query=1, num_tenants=4, num_shards=2, seed=5,
        )
        service = QRAMService(capacity, num_shards=2, functional=False)
        return service.serve_workload(
            StreamingTraceSource(trace), retention=retention,
            telemetry_interval=10_000.0,
        )

    serve("none")                          # warm schedule caches
    results = {}
    for retention in ("full", "none"):
        tracemalloc.start()
        start = time.perf_counter()
        report = serve(retention)
        wall = time.perf_counter() - start
        peak = tracemalloc.get_traced_memory()[1]
        tracemalloc.stop()
        results[retention] = (report, wall, peak)

    benchmark(lambda: results)
    rows = {}
    for retention, (report, wall, peak) in results.items():
        rows[retention] = {
            "served": report.stats.total_queries,
            "records_retained": len(report.served),
            "wall_seconds": round(wall, 2),
            "traced_peak_kb": round(peak / 1024, 1),
            "p95_latency_layers": round(report.stats.p95_latency_layers, 1),
            "telemetry_intervals": len(report.telemetry),
        }
    print_rows(
        "Retention axis — 5,000-query streaming Poisson trace, 2 shards",
        rows,
    )
    full_report, _, full_peak = results["full"]
    none_report, _, none_peak = results["none"]
    assert full_report.stats.total_queries == num_queries
    assert none_report.stats.total_queries == num_queries
    assert none_report.served == []
    assert none_report.stats.mean_latency_layers == pytest.approx(
        full_report.stats.mean_latency_layers
    )
    assert none_report.stats.p95_latency_layers == pytest.approx(
        full_report.stats.p95_latency_layers, rel=0.1
    )
    # The record-free observation path is the memory win the scale
    # benchmark builds on.
    assert none_peak < full_peak / 4


def test_service_workers_axis(benchmark):
    """The partitioned-parallel serving axis: equal reports, one trace."""
    capacity = 16
    num_shards = 4
    num_queries = 400

    def factory(shards):
        return iter_poisson_trace(
            capacity,
            num_queries,
            mean_interarrival=6.0,
            num_tenants=3,
            num_shards=num_shards,
            seed=9,
            shards=shards,
        )

    results = {}
    for workers in (1, 2, 4):
        service = QRAMService(capacity, num_shards=num_shards, functional=False)
        start = time.perf_counter()
        report = service.serve_workload(
            PartitionedTraceSource(factory), workers=workers
        )
        results[workers] = (report, time.perf_counter() - start)

    benchmark(lambda: results)
    baseline = results[1][0]
    rows = {}
    for workers, (report, wall) in results.items():
        assert report == baseline, f"workers={workers} diverged"
        info = report.parallel
        assert info is not None and info.fallback_reason is None
        rows[f"workers={workers}"] = {
            "wall_seconds": round(wall, 3),
            "speedup_vs_1": round(results[1][1] / wall, 2),
            "partitions": info.partitions,
        }
    print_rows(
        "Workers axis — 4 shards, 400-query partitioned Poisson trace",
        rows,
    )
    assert baseline.stats.total_queries == num_queries


def test_service_scenario_axis(benchmark):
    """The adversarial-scenario axis: every library scenario, end to end.

    Each named scenario of :mod:`repro.scenarios.library` stresses one
    failure mode (diurnal load swing, flash crowd on a bounded queue,
    hot-key shard skew, a flooding tenant, impossible deadlines under
    EDF + shedding); draining them from their declarative specs compares
    how the engine's accounting — served/rejected/shed splits, tail
    latency, per-shard utilization — responds to each stress pattern.
    """

    def sweep():
        return {
            name: library_scenario(name).execute().stats
            for name in library_names()
        }

    results = sweep()
    benchmark(sweep)
    rows = {}
    for name, stats in results.items():
        rows[name] = {
            "offered": stats.offered_queries,
            "served": stats.total_queries,
            "rejected": stats.rejected_queries,
            "shed": stats.shed_queries,
            "p95_latency_layers": round(stats.p95_latency_layers, 1),
            "max_shard_depth": max(
                s.max_queue_depth for s in stats.per_shard.values()
            ),
        }
    print_rows("Scenario axis — the adversarial workload library", rows)
    for name, stats in results.items():
        assert stats.offered_queries == (
            stats.total_queries + stats.rejected_queries + stats.shed_queries
        ), name
    # Each stress pattern leaves its signature in the accounting.
    assert results["flash-crowd"].rejected_queries > 0
    assert results["misbehaving-tenant"].rejected_queries > 0
    assert results["deadline-impossible"].shed_queries > 0
    skew = results["hot-key-skew"].per_shard
    hot = max(s.queries for s in skew.values())
    assert hot >= results["hot-key-skew"].total_queries // 2
    assert results["diurnal-cycle"].rejected_queries == 0


def test_autoscaled_replica_hits_warm_schedule_cache(benchmark):
    """A replica added mid-run must resolve from the warm shared cache."""
    capacity = 8
    registry = default_registry()
    registry.clear()
    service = QRAMService(capacity, num_shards=1, functional=False,
                          placement="shortest-queue")
    built = registry.stats()
    assert built.entries > 0, "fleet build must prewarm the registry"

    requests = [
        QueryRequest(i, {i % capacity: 1.0}, request_time=0.0)
        for i in range(12)
    ]
    requests.append(QueryRequest(99, {3: 1.0}, request_time=50_000.0))
    config = AutoscalerConfig(period=100.0, high_watermark=4, low_watermark=0,
                              min_shards=1, max_shards=3)
    report = service.serve_workload(TraceSource(requests), autoscaler=config)
    benchmark(lambda: report)
    scaled = registry.stats()

    assert any(event.action == "up" for event in report.scale_events)
    # Every replica holds the same memory image: the scale-up's prewarm
    # must hit the shared executor, never derive a fresh one.
    assert scaled.misses == built.misses, (
        "autoscaled replica missed the warm schedule cache"
    )
    assert scaled.hits > built.hits
    print_rows(
        "Shared schedule-cache registry under autoscaling",
        {
            "entries": scaled.entries,
            "hits": scaled.hits,
            "misses": scaled.misses,
            "hit_rate": round(scaled.hit_rate, 3),
            "scale_ups": sum(
                1 for event in report.scale_events if event.action == "up"
            ),
        },
    )


def test_fleet_build_precompiles_fidelity_vectors(benchmark):
    """Serving never derives a fidelity vector: fleet build precompiled it.

    Building the fleet derives each configuration's per-occupancy predicted
    fidelity vector once into the shared registry; from then on every
    window prediction is a memo lookup (instance first, registry on the
    first touch).  Pinned: after serving a full trace, the registry's
    fidelity-vector miss count is exactly what the build left — the serve
    hot path performed zero derivations.
    """
    capacity = 8
    num_queries = 500
    registry = default_registry()
    registry.clear()
    service = QRAMService(capacity, num_shards=2, functional=False)
    built = registry.stats()
    assert built.fidelity_entries > 0, (
        "fleet build must precompile fidelity vectors into the registry"
    )

    trace = iter_poisson_trace(
        capacity, num_queries, mean_interarrival=14.0, addresses_per_query=1,
        num_tenants=4, num_shards=2, seed=5,
    )
    report = service.serve_workload(StreamingTraceSource(trace))
    benchmark(lambda: report)
    served = registry.stats()

    assert report.stats.total_queries == num_queries
    assert served.fidelity_misses == built.fidelity_misses, (
        "the serve hot path derived a fidelity vector instead of hitting "
        "the fleet-build precompiled memo"
    )
    print_rows(
        "Fleet-build fidelity precompilation — 500-query serve",
        {
            "fidelity_entries": served.fidelity_entries,
            "build_misses": built.fidelity_misses,
            "serve_misses": served.fidelity_misses - built.fidelity_misses,
            "registry_hits": served.fidelity_hits,
        },
    )
