"""Fig. 1(b) — asymptotic cost comparison for log N parallel queries."""

import math

from conftest import print_rows

from repro.baselines import build_architecture
from repro.fidelity import bb_query_infidelity, fat_tree_query_infidelity


def _cost_comparison(capacity: int) -> list[dict]:
    n = int(math.log2(capacity))
    rows = []
    for name in ("Fat-Tree", "BB"):
        qram = build_architecture(name, capacity)
        infidelity = (
            fat_tree_query_infidelity(capacity)
            if name == "Fat-Tree"
            else bb_query_infidelity(capacity)
        )
        rows.append(
            {
                "architecture": name,
                "qubits": qram.qubit_count,
                "query_parallelism": qram.query_parallelism,
                "latency_logN_queries": qram.parallel_query_latency(n),
                "infidelity": infidelity,
            }
        )
    return rows


def test_fig1_shared_qram_cost_comparison(benchmark):
    rows = benchmark(_cost_comparison, 1024)
    print_rows("Fig. 1(b) — shared QRAM cost for log N queries (N = 1024)", rows)
    fat_tree, bb = rows
    # O(N) qubits both, log(N) vs log^2(N) latency, same infidelity scaling.
    assert fat_tree["qubits"] == 2 * bb["qubits"]
    assert fat_tree["query_parallelism"] == 10 and bb["query_parallelism"] == 1
    assert bb["latency_logN_queries"] / fat_tree["latency_logN_queries"] > 5
    assert fat_tree["infidelity"] < 2 * bb["infidelity"]
