"""Table 5 — error-corrected queries: noisy Fat-Tree vs encoded BB QRAM."""

from conftest import print_rows

from repro.analysis import generate_table5


def test_table5_error_corrected_queries(benchmark):
    rows = benchmark(generate_table5, 1024, 5, 3)
    print_rows("Table 5 ([[5,1,3]] code, D = 4, N = 1024)", rows)
    noisy, encoded = rows
    assert noisy["physical_qubits"] * 5 == encoded["physical_qubits"]
    assert noisy["logical_query_parallelism"] == 2
    assert encoded["logical_query_parallelism"] == 1
    assert noisy["logical_query_latency"] == encoded["logical_query_latency"] + 5
