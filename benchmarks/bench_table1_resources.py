"""Table 1 — space (qubits) and time (latency) across shared-QRAM models."""

from conftest import print_rows

from repro.metrics import table1_rows


def test_table1_resources(benchmark):
    rows = benchmark(table1_rows, 1024)
    print_rows("Table 1 (N = 1024)", rows)
    by_name = {r["architecture"]: r for r in rows}
    # Headline checks (paper closed forms).
    assert by_name["Fat-Tree"]["qubits"] == 16 * 1024
    assert by_name["BB"]["qubits"] == 8 * 1024
    assert abs(by_name["Fat-Tree"]["single_query_latency"] - 82.375) < 1e-9
    assert abs(by_name["Fat-Tree"]["parallel_query_latency"] - 156.625) < 1e-9
    assert abs(by_name["Fat-Tree"]["amortized_query_latency"] - 8.25) < 1e-9
    assert abs(by_name["BB"]["parallel_query_latency"] - 801.25) < 1e-9
