"""Ablation — how much of Fat-Tree's advantage comes from query pipelining,
and how sensitive Table 1/2 are to the fast-layer cost ratio.

These ablations are called out in DESIGN.md: (i) a Fat-Tree with its
pipelining disabled (sequential admission) degenerates to BB-like behaviour,
(ii) charging intra-node SWAPs the full layer cost (ratio 1 instead of 1/8)
changes the constants of Table 1 but none of the orderings, (iii) FIFO vs
alternative admission orders under bursty arrivals.
"""

from conftest import print_rows

from repro.baselines import build_architecture
from repro.core.pipeline import fat_tree_raw_query_layers
from repro.scheduling import (
    burst_arrivals,
    schedule_queries,
    total_latency,
)


def _pipelining_ablation(capacity: int, num_queries: int) -> dict[str, float]:
    ft = build_architecture("Fat-Tree", capacity)
    bb = build_architecture("BB", capacity)
    pipelined = ft.parallel_query_latency(num_queries)
    sequential_fat_tree = num_queries * ft.single_query_latency()
    sequential_bb = bb.parallel_query_latency(num_queries)
    return {
        "pipelined_fat_tree": pipelined,
        "sequential_fat_tree": sequential_fat_tree,
        "sequential_bb": sequential_bb,
        "pipelining_speedup": sequential_fat_tree / pipelined,
    }


def test_ablation_query_pipelining(benchmark):
    result = benchmark(_pipelining_ablation, 1024, 10)
    print_rows("Ablation — pipelining on/off (N = 1024, 10 queries)", result)
    # Without pipelining a Fat-Tree is slightly *worse* than BB (extra swap
    # layers); pipelining is what buys the ~log N speedup.
    assert result["sequential_fat_tree"] > result["sequential_bb"]
    assert result["pipelining_speedup"] > 5


def _swap_cost_ablation(capacity: int) -> dict[str, float]:
    import math

    n = int(math.log2(capacity))
    cheap_swaps = 8 * n + (2 * n - 1) * 0.125       # paper's 1/8 cost
    expensive_swaps = 8 * n + (2 * n - 1) * 1.0      # swaps as full layers
    bb = 8 * n + 0.125
    return {
        "fat_tree_fast_swaps": cheap_swaps,
        "fat_tree_full_cost_swaps": expensive_swaps,
        "bb": bb,
        "raw_layers": fat_tree_raw_query_layers(capacity),
    }


def test_ablation_swap_layer_cost(benchmark):
    result = benchmark(_swap_cost_ablation, 1024)
    print_rows("Ablation — intra-node SWAP cost ratio (N = 1024)", result)
    # Even charging swaps at full cost, the single-query overhead over BB is
    # bounded by ~25% and the parallel-query advantage (driven by the
    # pipeline interval) is unchanged.
    assert result["fat_tree_full_cost_swaps"] / result["bb"] < 1.25
    assert result["fat_tree_fast_swaps"] / result["bb"] < 1.03


def _scheduling_ablation() -> dict[str, float]:
    arrivals = burst_arrivals(4, 5, 50.0)
    out = {}
    for policy in ("fifo", "lifo", "random"):
        schedule = schedule_queries(arrivals, 24.625, 8.25, 3, policy)
        out[policy] = total_latency(schedule)
    return out


def test_ablation_scheduling_policy(benchmark):
    result = benchmark(_scheduling_ablation)
    print_rows("Ablation — admission policy under bursty arrivals", result)
    assert result["fifo"] <= result["lifo"] + 1e-9
    assert result["fifo"] <= result["random"] + 1e-9
