"""Fig. 10 — synthetic algorithms: depth and utilization heat maps."""

from conftest import print_rows

from repro.analysis import generate_fig10_synthetic

RATIOS = (0.0, 0.5, 1.0, 2.0)
COUNTS = (1, 10, 20, 30)


def test_fig10_synthetic_heatmaps(benchmark):
    grids = benchmark(
        generate_fig10_synthetic, 1024, RATIOS, COUNTS, 10, ("BB", "Fat-Tree")
    )
    for name in ("BB", "Fat-Tree"):
        print_rows(
            f"Fig. 10 — {name} overall depth (rows = d/t1, cols = p)",
            {
                f"d/t1={ratio}": [round(v, 0) for v in row]
                for ratio, row in zip(grids[name]["processing_ratios"],
                                      grids[name]["overall_depth"])
            },
        )
        print_rows(
            f"Fig. 10 — {name} utilization",
            {
                f"d/t1={ratio}": [round(v, 2) for v in row]
                for ratio, row in zip(grids[name]["processing_ratios"],
                                      grids[name]["utilization"])
            },
        )
    bb_depth = grids["BB"]["overall_depth"]
    ft_depth = grids["Fat-Tree"]["overall_depth"]
    # At d/t1 = 0.5 and p = 30, BB is memory-bandwidth bound: its depth blows
    # up relative to Fat-Tree.
    ratio_index, count_index = 1, len(COUNTS) - 1
    assert bb_depth[ratio_index][count_index] > 3 * ft_depth[ratio_index][count_index]
    # With a single algorithm the two architectures are within ~15%.
    assert abs(bb_depth[0][0] - ft_depth[0][0]) / bb_depth[0][0] < 0.15
    # Fat-Tree utilization increases with the number of algorithms.
    ft_util = grids["Fat-Tree"]["utilization"]
    assert ft_util[1][0] < ft_util[1][count_index]
