"""Table 3 — query infidelity vs capacity for three base error rates."""

from conftest import print_rows

from repro.fidelity import table3_rows


def test_table3_query_infidelity(benchmark):
    rows = benchmark(table3_rows)
    print_rows("Table 3 (eps1 = eps0, eps2 = eps0/2)", rows)
    by_capacity = {r["capacity"]: r for r in rows}
    assert abs(by_capacity[8]["infidelity_eps0_0.001"] - 0.045) < 1e-12
    assert abs(by_capacity[16]["infidelity_eps0_0.001"] - 0.08) < 1e-12
    assert abs(by_capacity[32]["infidelity_eps0_0.001"] - 0.125) < 1e-12
    assert abs(by_capacity[64]["infidelity_eps0_0.001"] - 0.18) < 1e-12
    assert abs(by_capacity[64]["infidelity_eps0_1e-05"] - 0.0018) < 1e-12
