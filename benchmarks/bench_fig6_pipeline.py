"""Fig. 6 / Fig. 12 — pipelining 3 queries on a capacity-8 Fat-Tree QRAM.

Also exercises the gate-level executor on the same scenario to confirm the
pipelined queries are functionally correct (Eq. (1)) while sharing routers.
"""

from conftest import print_rows

from repro.analysis import generate_fig6_pipeline
from repro.core.executor import FatTreeExecutor
from repro.core.query import QueryRequest
from repro.workloads import structured_data


def test_fig6_pipeline_schedule(benchmark):
    data = benchmark(generate_fig6_pipeline, 8, 3)
    print_rows("Fig. 6 — capacity-8 Fat-Tree, 3 pipelined queries", data)
    assert data["per_query_raw_layers"] == 29
    assert data["finish_layers"] == [29, 39, 49]
    assert data["bb_single_query_layers"] == 25


def test_fig6_gate_level_functional_check(benchmark):
    executor = FatTreeExecutor(8, structured_data(8, "parity"))
    requests = [QueryRequest(i, {i: 1.0, 7 - i: 1.0}) for i in range(3)]

    def run():
        return executor.run_pipelined_queries(requests, interval=22)

    summary, outputs = benchmark.pedantic(run, iterations=1, rounds=1)
    fidelities = [
        executor.query_fidelity(r, outputs[r.query_id]) for r in requests
    ]
    print_rows(
        "Fig. 6 — gate-level execution",
        {
            "interval_raw_layers": summary.interval,
            "per_query_raw_layers": summary.per_query_raw_layers,
            "max_concurrent_queries": summary.max_concurrent,
            "query_fidelities": [round(f, 6) for f in fidelities],
        },
    )
    assert all(abs(f - 1.0) < 1e-9 for f in fidelities)
    assert summary.per_query_raw_layers == 29
