"""Million-query open-loop serving in bounded memory (BENCH_service_scale).

The scale proof for the serving core, in two measurements:

* **Bounded memory** — a >= 1,000,000-request open-loop Poisson trace is
  generated lazily (``iter_poisson_trace``), fed through a
  :class:`~repro.engine.StreamingTraceSource` and served with
  ``retention="none"`` — no per-request records, no materialized trace,
  no arrival backlog in the event heap; peak traced memory is *asserted*
  independent of request count.
* **Workers axis** — the same lazy trace, wrapped in a
  :class:`~repro.engine.PartitionedTraceSource` over an 8-shard fleet and
  served at ``workers`` = 1 / 2 / 4 / 8: every worker regenerates only
  its partition, the merged reports must compare equal across worker
  counts, and the wall-clock speedup against ``workers=1`` is recorded
  per worker count.

The run *appends* one entry to the ``"runs"`` trajectory in
``BENCH_service_scale.json`` (requests/sec, wall time, peak RSS, host CPU
count, the workers axis) so every subsequent performance PR has a recorded
trajectory to compare against — entries are never rewritten.

Run the full benchmark (a few minutes):

    PYTHONPATH=src python benchmarks/bench_service_scale.py

Environment knobs:

* ``QRAM_SCALE_REQUESTS`` — request count of the headline run
  (default 1,000,000; CI uses a reduced size).
* ``QRAM_SCALE_PARALLEL_REQUESTS`` — request count of the workers axis
  (default: headline count capped at 50,000).
* ``QRAM_SCALE_MAX_RSS_MIB`` — when set (> 0), fail if the process's peak
  RSS after the headline run exceeds this many MiB (the CI memory gate).
* ``QRAM_SCALE_MIN_RPS`` — when set (> 0), fail if the headline run's
  requests/sec falls below this bound (the CI throughput-regression
  gate; set it from the trajectory's recorded floor).
* ``QRAM_SCALE_MIN_SPEEDUP`` — required 8-worker speedup over 1 worker
  (default 5.0); *only enforced when the host has >= 8 CPUs* — a
  single-core host records the honest (flat) numbers and skips the gate.
* ``REPRO_PROFILE`` — profile the headline run's engine stages and print
  the stage-time table (the CI profiling smoke test); the row records
  ``"profiled": true`` since profiling slows serving by a few µs/request.

The pytest entry point (``pytest benchmarks/bench_service_scale.py``) runs
reduced versions of the same measurements so the harness stays cheap.
"""

from __future__ import annotations

import json
import os
import resource
import sys
import time
import tracemalloc
from pathlib import Path

import repro.engine.parallel
import repro.perf.profiler
from repro.engine import PartitionedTraceSource, StreamingTraceSource
from repro.service import QRAMService
from repro.workloads import iter_poisson_trace

CAPACITY = 8
NUM_SHARDS = 2
NUM_TENANTS = 4
#: Feasible offered load: the 2-shard capacity-8 Fat-Tree fleet serves one
#: query every ~12.2 raw layers, so a 14-layer mean interarrival keeps the
#: service stable (~87% utilization) and queues — and therefore memory —
#: bounded at any trace length.
MEAN_INTERARRIVAL = 14.0
SEED = 5

#: The workers axis runs a wider fleet so there is real work to partition.
PARALLEL_CAPACITY = 16
PARALLEL_SHARDS = 8
WORKER_COUNTS = (1, 2, 4, 8)

REQUESTS = int(os.environ.get("QRAM_SCALE_REQUESTS", "1000000"))
PARALLEL_REQUESTS = int(
    os.environ.get("QRAM_SCALE_PARALLEL_REQUESTS", str(min(REQUESTS, 50_000)))
)
MAX_RSS_MIB = float(os.environ.get("QRAM_SCALE_MAX_RSS_MIB", "0"))
MIN_RPS = float(os.environ.get("QRAM_SCALE_MIN_RPS", "0"))
MIN_SPEEDUP = float(os.environ.get("QRAM_SCALE_MIN_SPEEDUP", "5.0"))
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_service_scale.json"

# Simulation code never reads host wall time; measurement harnesses opt in
# so ParallelRunInfo.worker_seconds reports real per-worker elapsed times
# and (under REPRO_PROFILE=1) the stage profiler attributes real seconds.
repro.engine.parallel.host_clock = time.perf_counter
repro.perf.profiler.host_clock = time.perf_counter

#: Every key a trajectory row carries.  Historical rows predate some keys
#: (the seed row has no ``cpu_count`` or ``workers_axis``; rows before the
#: profiler have no ``profiled``); :func:`_normalize_trajectory` backfills
#: ``null`` so consumers can rely on one uniform row shape, and new rows
#: are checked against the full schema before being appended.
ROW_SCHEMA = (
    "label",
    "cpu_count",
    "requests",
    "workers",
    "wall_seconds",
    "requests_per_sec",
    "requests_per_second",
    "peak_rss_mib",
    "retention",
    "makespan_layers",
    "bandwidth_queries_per_sec",
    "mean_latency_layers",
    "p50_latency_layers",
    "p99_latency_layers",
    "telemetry_intervals",
    "bounded_memory_check",
    "workers_axis",
    "profiled",
)

#: Keys every *new* row must populate at write time.  Historical rows
#: predate them and keep their backfilled ``null``; a fresh measurement
#: recording ``null`` here is a writer bug (the regression this guards
#: against: rows appended with labels/worker counts silently missing).
NON_NULL_KEYS = (
    "label",
    "workers",
    "requests_per_sec",
    "requests_per_second",
)


def _serve(num_requests: int, telemetry_interval: float | None = None):
    """One bounded-memory open-loop run: lazy trace, no record retention."""
    trace = iter_poisson_trace(
        CAPACITY,
        num_requests,
        mean_interarrival=MEAN_INTERARRIVAL,
        addresses_per_query=1,
        num_tenants=NUM_TENANTS,
        num_shards=NUM_SHARDS,
        seed=SEED,
    )
    service = QRAMService(CAPACITY, num_shards=NUM_SHARDS, functional=False)
    return service.serve_workload(
        StreamingTraceSource(trace),
        retention="none",
        telemetry_interval=telemetry_interval,
    )


def _traced_peak_bytes(num_requests: int) -> int:
    """Peak traced allocation of one run (tracemalloc; ~2x slowdown)."""
    tracemalloc.start()
    try:
        _serve(num_requests)
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def check_bounded_memory(small: int, large: int) -> tuple[int, int]:
    """Assert peak memory does not scale with the request count.

    Serves ``small`` and ``large`` (>= 5x larger) requests under
    tracemalloc and requires the larger run's peak to stay within a small
    constant factor — the defining property of the streaming observation
    path (a list-retention engine fails this immediately: its peak grows
    linearly with the trace).
    """
    peak_small = _traced_peak_bytes(small)
    peak_large = _traced_peak_bytes(large)
    budget = 1.5 * peak_small + 256 * 1024
    assert peak_large <= budget, (
        f"peak traced memory grew with request count: {small} requests -> "
        f"{peak_small / 1e6:.2f} MB but {large} requests -> "
        f"{peak_large / 1e6:.2f} MB (budget {budget / 1e6:.2f} MB)"
    )
    return peak_small, peak_large


def _parallel_source(num_requests: int) -> PartitionedTraceSource:
    """The workers-axis trace: each worker regenerates only its shards."""

    def factory(shards):
        return iter_poisson_trace(
            PARALLEL_CAPACITY,
            num_requests,
            mean_interarrival=MEAN_INTERARRIVAL,
            addresses_per_query=1,
            num_tenants=NUM_TENANTS,
            num_shards=PARALLEL_SHARDS,
            seed=SEED,
            shards=shards,
        )

    return PartitionedTraceSource(factory)


def _serve_parallel(num_requests: int, workers: int):
    service = QRAMService(
        PARALLEL_CAPACITY, num_shards=PARALLEL_SHARDS, functional=False
    )
    return service.serve_workload(
        _parallel_source(num_requests), retention="none", workers=workers
    )


def run_workers_axis(
    num_requests: int, worker_counts=WORKER_COUNTS
) -> list[dict]:
    """Serve the same partitioned trace at each worker count.

    Returns one row per worker count (wall seconds, requests/sec, speedup
    over one worker, per-worker busy seconds) and asserts every merged
    report equals the one-worker report — the bit-identity contract, at
    benchmark scale.
    """
    rows: list[dict] = []
    baseline_report = None
    baseline_seconds = None
    for workers in worker_counts:
        start = time.perf_counter()
        report = _serve_parallel(num_requests, workers)
        wall_seconds = time.perf_counter() - start
        info = report.parallel
        assert info is not None and info.fallback_reason is None
        assert report.stats.total_queries == num_requests
        if baseline_report is None:
            baseline_report, baseline_seconds = report, wall_seconds
        else:
            assert report == baseline_report, (
                f"workers={workers} diverged from workers=1"
            )
        rows.append(
            {
                "workers": info.workers,
                "partitions": info.partitions,
                "wall_seconds": round(wall_seconds, 3),
                "requests_per_sec": round(num_requests / wall_seconds, 1),
                "speedup_vs_1_worker": round(baseline_seconds / wall_seconds, 2),
                "worker_busy_seconds": [
                    round(s, 3) for s in info.worker_seconds
                ],
            }
        )
    return rows


def run_scale(num_requests: int) -> dict:
    """The headline run plus the bounded-memory assertion; returns the
    metrics dict appended to ``BENCH_service_scale.json``."""
    small = max(2_000, num_requests // 50)
    large = max(5 * small, num_requests // 10)
    peak_small, peak_large = check_bounded_memory(small, large)

    telemetry_interval = MEAN_INTERARRIVAL * num_requests / 100.0
    start = time.perf_counter()
    report = _serve(num_requests, telemetry_interval=telemetry_interval)
    wall_seconds = time.perf_counter() - start
    stats = report.stats
    assert stats.total_queries == num_requests
    assert report.served == [] and report.windows == []

    if report.profile is not None:
        print("stage profile (headline run):")
        print(report.profile.table())
        if report.cache_stats is not None:
            print(report.cache_stats.summary())

    # ru_maxrss is KiB on Linux but bytes on macOS.
    rss_raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    per_mib = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    info = report.parallel
    requests_per_sec = round(num_requests / wall_seconds, 1)
    return {
        "label": os.environ.get(
            "QRAM_SCALE_LABEL", f"scale-{num_requests}"
        ),
        "cpu_count": os.cpu_count(),
        "requests": num_requests,
        # Worker processes the headline run used (1 = in-process serial).
        "workers": info.workers if info is not None else 1,
        "wall_seconds": round(wall_seconds, 3),
        "requests_per_sec": requests_per_sec,
        "requests_per_second": requests_per_sec,
        "peak_rss_mib": round(rss_raw / per_mib, 1),
        "retention": "none",
        "makespan_layers": stats.makespan_layers,
        "bandwidth_queries_per_sec": round(stats.bandwidth_queries_per_sec, 1),
        "mean_latency_layers": round(stats.mean_latency_layers, 3),
        "p50_latency_layers": round(stats.p50_latency_layers, 3),
        "p99_latency_layers": round(stats.p99_latency_layers, 3),
        "telemetry_intervals": len(report.telemetry),
        "bounded_memory_check": {
            "small_requests": small,
            "large_requests": large,
            "traced_peak_small_bytes": peak_small,
            "traced_peak_large_bytes": peak_large,
        },
        "profiled": report.profile is not None,
    }


def test_service_scale_bounded_memory(benchmark):
    """Reduced pytest entry: the same memory-independence guarantee."""
    peak_small, peak_large = check_bounded_memory(2_000, 10_000)
    report = _serve(4_000, telemetry_interval=2_000.0)
    benchmark(lambda: report)
    assert report.stats.total_queries == 4_000
    assert report.served == [] and report.rejected == []
    assert len(report.telemetry) > 1
    try:
        from conftest import print_rows
    except ImportError:  # pragma: no cover - direct invocation
        return
    print_rows(
        "Bounded-memory serving — retention='none', streaming Poisson trace",
        {
            "traced_peak_2k_requests_kb": round(peak_small / 1024, 1),
            "traced_peak_10k_requests_kb": round(peak_large / 1024, 1),
            "telemetry_intervals": len(report.telemetry),
        },
    )


def test_service_scale_workers_axis(benchmark):
    """Reduced pytest entry: bit-identity along the workers axis."""
    rows = run_workers_axis(4_000, worker_counts=(1, 2))
    benchmark(lambda: rows)
    assert [row["workers"] for row in rows] == [1, 2]
    assert all(row["partitions"] == PARALLEL_SHARDS for row in rows)
    if (os.cpu_count() or 1) >= 8:
        assert rows[-1]["speedup_vs_1_worker"] > 1.0
    try:
        from conftest import print_rows
    except ImportError:  # pragma: no cover - direct invocation
        return
    print_rows(
        "Partitioned parallel serving — PartitionedTraceSource, 8 shards",
        {
            f"workers_{row['workers']}_wall_seconds": row["wall_seconds"]
            for row in rows
        },
    )


def _load_trajectory() -> list[dict]:
    """Existing runs (wrapping the pre-trajectory single-object format)."""
    if not RESULT_PATH.exists():
        return []
    data = json.loads(RESULT_PATH.read_text(encoding="utf-8"))
    if isinstance(data, dict) and isinstance(data.get("runs"), list):
        return data["runs"]
    return [data]  # legacy layout: one bare metrics object


def _normalize_trajectory(runs: list[dict]) -> list[dict]:
    """Backfill ``null`` for schema keys historical rows predate.

    Recorded measurements are never rewritten — only missing keys gain an
    explicit ``None`` so every row exposes the full :data:`ROW_SCHEMA`.
    """
    for row in runs:
        for key in ROW_SCHEMA:
            row.setdefault(key, None)
    return runs


def _check_row(row: dict) -> None:
    """A freshly measured row must carry the full schema, nothing ad hoc —
    and must actually populate the keys only historical rows may null."""
    missing = [key for key in ROW_SCHEMA if key not in row]
    extra = [key for key in row if key not in ROW_SCHEMA]
    assert not missing and not extra, (
        f"trajectory row schema drift: missing={missing} extra={extra} — "
        f"update ROW_SCHEMA alongside run_scale()"
    )
    nulled = [key for key in NON_NULL_KEYS if row[key] is None]
    assert not nulled, (
        f"new trajectory row records null for {nulled} — these keys must "
        f"be populated at write time (only historical rows stay null)"
    )


def test_trajectory_row_schema():
    """Normalization backfills exactly the missing keys, as ``None``."""
    legacy = {"requests": 10, "requests_per_sec": 1.0}
    rows = _normalize_trajectory([legacy])
    assert rows[0] is legacy  # in place: recorded values untouched
    assert set(legacy) == set(ROW_SCHEMA)
    assert legacy["requests"] == 10 and legacy["requests_per_sec"] == 1.0
    assert legacy["cpu_count"] is None and legacy["workers_axis"] is None
    # Historical rows may stay null; a *new* row must populate the
    # write-time keys, so the normalized legacy shape itself no longer
    # passes the new-row check.
    try:
        _check_row(legacy)
    except AssertionError:
        pass
    else:  # pragma: no cover - the check must reject null write-time keys
        raise AssertionError("null label/workers went undetected")
    fresh = {
        **legacy,
        "label": "scale-10",
        "workers": 1,
        "requests_per_second": 1.0,
    }
    _check_row(fresh)
    try:
        _check_row({**fresh, "ad_hoc": 1})
    except AssertionError:
        pass
    else:  # pragma: no cover - the check must reject drift
        raise AssertionError("schema drift went undetected")


def main() -> None:
    metrics = run_scale(REQUESTS)
    metrics["workers_axis"] = run_workers_axis(PARALLEL_REQUESTS)
    _check_row(metrics)
    runs = _normalize_trajectory(_load_trajectory())
    runs.append(metrics)
    RESULT_PATH.write_text(
        json.dumps({"runs": runs}, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {RESULT_PATH} ({len(runs)} run(s) in the trajectory)")
    for key, value in metrics.items():
        print(f"  {key}: {value}")
    failures = []
    if MAX_RSS_MIB > 0 and metrics["peak_rss_mib"] > MAX_RSS_MIB:
        failures.append(
            f"peak RSS {metrics['peak_rss_mib']} MiB exceeds the "
            f"QRAM_SCALE_MAX_RSS_MIB bound of {MAX_RSS_MIB} MiB"
        )
    if MIN_RPS > 0 and metrics["requests_per_sec"] < MIN_RPS:
        failures.append(
            f"throughput regressed: {metrics['requests_per_sec']} "
            f"requests/sec is below the QRAM_SCALE_MIN_RPS floor of "
            f"{MIN_RPS}"
        )
    cpu_count = os.cpu_count() or 1
    eight = next(
        (row for row in metrics["workers_axis"] if row["workers"] == 8), None
    )
    if cpu_count >= 8 and eight is not None:
        if eight["speedup_vs_1_worker"] < MIN_SPEEDUP:
            failures.append(
                f"8-worker speedup {eight['speedup_vs_1_worker']}x is below "
                f"the QRAM_SCALE_MIN_SPEEDUP bound of {MIN_SPEEDUP}x "
                f"(host has {cpu_count} CPUs)"
            )
    elif eight is not None:
        print(
            f"  (speedup gate skipped: host has {cpu_count} CPU(s); "
            f"8-worker speedup recorded as {eight['speedup_vs_1_worker']}x)"
        )
    if failures:
        sys.exit("\n".join(failures))


if __name__ == "__main__":
    main()
