"""Million-query open-loop serving in bounded memory (BENCH_service_scale).

The scale proof for the streaming telemetry core: a >= 1,000,000-request
open-loop Poisson trace is generated lazily (``iter_poisson_trace``), fed
through a :class:`~repro.engine.StreamingTraceSource` and served with
``retention="none"`` — no per-request records, no materialized trace, no
arrival backlog in the event heap.  The run writes
``BENCH_service_scale.json`` (requests/sec, wall time, peak RSS, telemetry
interval count) so every subsequent performance PR has a recorded
trajectory to compare against, and *asserts* that peak traced memory is
independent of request count (a 5x larger run may not allocate more than a
small constant factor over the smaller one).

Run the full benchmark (about two minutes):

    PYTHONPATH=src python benchmarks/bench_service_scale.py

Environment knobs:

* ``QRAM_SCALE_REQUESTS`` — request count of the headline run
  (default 1,000,000; CI uses a reduced size).
* ``QRAM_SCALE_MAX_RSS_MIB`` — when set (> 0), fail if the process's peak
  RSS after the headline run exceeds this many MiB (the CI memory gate).

The pytest entry point (``pytest benchmarks/bench_service_scale.py``) runs
a reduced version of the same measurement so the harness stays cheap.
"""

from __future__ import annotations

import json
import os
import resource
import sys
import time
import tracemalloc
from pathlib import Path

from repro.engine import StreamingTraceSource
from repro.service import QRAMService
from repro.workloads import iter_poisson_trace

CAPACITY = 8
NUM_SHARDS = 2
NUM_TENANTS = 4
#: Feasible offered load: the 2-shard capacity-8 Fat-Tree fleet serves one
#: query every ~12.2 raw layers, so a 14-layer mean interarrival keeps the
#: service stable (~87% utilization) and queues — and therefore memory —
#: bounded at any trace length.
MEAN_INTERARRIVAL = 14.0
SEED = 5

REQUESTS = int(os.environ.get("QRAM_SCALE_REQUESTS", "1000000"))
MAX_RSS_MIB = float(os.environ.get("QRAM_SCALE_MAX_RSS_MIB", "0"))
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_service_scale.json"


def _serve(num_requests: int, telemetry_interval: float | None = None):
    """One bounded-memory open-loop run: lazy trace, no record retention."""
    trace = iter_poisson_trace(
        CAPACITY,
        num_requests,
        mean_interarrival=MEAN_INTERARRIVAL,
        addresses_per_query=1,
        num_tenants=NUM_TENANTS,
        num_shards=NUM_SHARDS,
        seed=SEED,
    )
    service = QRAMService(CAPACITY, num_shards=NUM_SHARDS, functional=False)
    return service.serve_workload(
        StreamingTraceSource(trace),
        retention="none",
        telemetry_interval=telemetry_interval,
    )


def _traced_peak_bytes(num_requests: int) -> int:
    """Peak traced allocation of one run (tracemalloc; ~2x slowdown)."""
    tracemalloc.start()
    try:
        _serve(num_requests)
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def check_bounded_memory(small: int, large: int) -> tuple[int, int]:
    """Assert peak memory does not scale with the request count.

    Serves ``small`` and ``large`` (>= 5x larger) requests under
    tracemalloc and requires the larger run's peak to stay within a small
    constant factor — the defining property of the streaming observation
    path (a list-retention engine fails this immediately: its peak grows
    linearly with the trace).
    """
    peak_small = _traced_peak_bytes(small)
    peak_large = _traced_peak_bytes(large)
    budget = 1.5 * peak_small + 256 * 1024
    assert peak_large <= budget, (
        f"peak traced memory grew with request count: {small} requests -> "
        f"{peak_small / 1e6:.2f} MB but {large} requests -> "
        f"{peak_large / 1e6:.2f} MB (budget {budget / 1e6:.2f} MB)"
    )
    return peak_small, peak_large


def run_scale(num_requests: int) -> dict:
    """The headline run plus the bounded-memory assertion; returns the
    metrics dict written to ``BENCH_service_scale.json``."""
    small = max(2_000, num_requests // 50)
    large = max(5 * small, num_requests // 10)
    peak_small, peak_large = check_bounded_memory(small, large)

    telemetry_interval = MEAN_INTERARRIVAL * num_requests / 100.0
    start = time.perf_counter()
    report = _serve(num_requests, telemetry_interval=telemetry_interval)
    wall_seconds = time.perf_counter() - start
    stats = report.stats
    assert stats.total_queries == num_requests
    assert report.served == [] and report.windows == []

    # ru_maxrss is KiB on Linux but bytes on macOS.
    rss_raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    per_mib = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return {
        "requests": num_requests,
        "wall_seconds": round(wall_seconds, 3),
        "requests_per_sec": round(num_requests / wall_seconds, 1),
        "peak_rss_mib": round(rss_raw / per_mib, 1),
        "retention": "none",
        "makespan_layers": stats.makespan_layers,
        "bandwidth_queries_per_sec": round(stats.bandwidth_queries_per_sec, 1),
        "mean_latency_layers": round(stats.mean_latency_layers, 3),
        "p50_latency_layers": round(stats.p50_latency_layers, 3),
        "p99_latency_layers": round(stats.p99_latency_layers, 3),
        "telemetry_intervals": len(report.telemetry),
        "bounded_memory_check": {
            "small_requests": small,
            "large_requests": large,
            "traced_peak_small_bytes": peak_small,
            "traced_peak_large_bytes": peak_large,
        },
    }


def test_service_scale_bounded_memory(benchmark):
    """Reduced pytest entry: the same memory-independence guarantee."""
    peak_small, peak_large = check_bounded_memory(2_000, 10_000)
    report = _serve(4_000, telemetry_interval=2_000.0)
    benchmark(lambda: report)
    assert report.stats.total_queries == 4_000
    assert report.served == [] and report.rejected == []
    assert len(report.telemetry) > 1
    try:
        from conftest import print_rows
    except ImportError:  # pragma: no cover - direct invocation
        return
    print_rows(
        "Bounded-memory serving — retention='none', streaming Poisson trace",
        {
            "traced_peak_2k_requests_kb": round(peak_small / 1024, 1),
            "traced_peak_10k_requests_kb": round(peak_large / 1024, 1),
            "telemetry_intervals": len(report.telemetry),
        },
    )


def main() -> None:
    metrics = run_scale(REQUESTS)
    RESULT_PATH.write_text(json.dumps(metrics, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {RESULT_PATH}")
    for key, value in metrics.items():
        print(f"  {key}: {value}")
    if MAX_RSS_MIB > 0 and metrics["peak_rss_mib"] > MAX_RSS_MIB:
        sys.exit(
            f"peak RSS {metrics['peak_rss_mib']} MiB exceeds the "
            f"QRAM_SCALE_MAX_RSS_MIB bound of {MAX_RSS_MIB} MiB"
        )


if __name__ == "__main__":
    main()
