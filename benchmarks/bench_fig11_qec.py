"""Fig. 11 — infidelity vs tree depth with and without QEC."""

from conftest import print_rows

from repro.analysis import generate_fig11_qec
from repro.fidelity.qec import max_depth_below_infidelity

DEPTHS = tuple(range(2, 19, 2))


def test_fig11_qec_infidelity(benchmark):
    series = benchmark(generate_fig11_qec, DEPTHS)
    print_rows(
        "Fig. 11 — infidelity vs tree depth (eps0 = 1e-3)",
        {k: [f"{v:.3g}" for v in vals] for k, vals in series.items()},
    )
    # QRAM circuits scale polynomially in depth; generic circuits saturate
    # (exponential growth hits the infidelity ceiling) much earlier.
    for distance in (1, 3, 5):
        gc = series[f"GC d={distance}"]
        ft = series[f"Fat-Tree d={distance}"]
        bb = series[f"BB d={distance}"]
        assert gc[-1] >= ft[-1]
        assert gc[-1] >= bb[-1]
        # Fat-Tree pays only a small constant factor over BB.
        for a, b in zip(ft, bb):
            if 0 < b < 1:
                assert a / b < 1.3
    # Increasing the code distance lowers every curve.
    assert all(a >= b for a, b in zip(series["Fat-Tree d=3"], series["Fat-Tree d=5"]))
    # At the same QEC cost, a QRAM circuit can be much deeper than a generic
    # circuit for the same infidelity target (Sec. 8.3 narrative).
    assert max_depth_below_infidelity("Fat-Tree", 3, 5e-3) > max_depth_below_infidelity("GC", 3, 5e-3)
