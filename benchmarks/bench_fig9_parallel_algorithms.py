"""Fig. 9 — overall circuit depth of parallel algorithms at N = 2^10."""

from conftest import print_rows

from repro.algorithms import fig9_depths

ARCHITECTURES = ("Fat-Tree", "BB", "Virtual", "D-Fat-Tree", "D-BB")


def test_fig9_parallel_algorithm_depths(benchmark):
    depths = benchmark(fig9_depths, 1024, ARCHITECTURES)
    rows = [
        {"algorithm": algorithm, **{k: round(v, 1) for k, v in row.items()}}
        for algorithm, row in depths.items()
    ]
    print_rows("Fig. 9 — overall circuit depth (N = 2^10, d = 30 for QSP)", rows)
    for algorithm, row in depths.items():
        # Fat-Tree beats the same-qubit-budget baselines (BB, Virtual) ...
        assert row["Fat-Tree"] < row["BB"]
        assert row["Fat-Tree"] < row["Virtual"]
        # ... by a factor approaching log N (paper: up to ~10x).
        assert row["BB"] / row["Fat-Tree"] > 4
        assert row["BB"] / row["Fat-Tree"] <= 11
        # and is competitive with the log N-times-more-expensive D-BB.
        assert row["Fat-Tree"] < 1.2 * row["D-BB"]
