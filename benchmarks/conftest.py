"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints the
reproduced rows/series (so running ``pytest benchmarks/ --benchmark-only -s``
produces a textual version of the evaluation section), while
``pytest-benchmark`` captures the wall-clock cost of regenerating it.
"""

from __future__ import annotations


def pytest_configure(config) -> None:
    """Keep benchmark calibration cheap.

    Several benchmarks regenerate full evaluation sweeps (tens of seconds per
    round); the default pytest-benchmark calibration would repeat them dozens
    of times.  One to a few rounds is enough for the reproduction numbers,
    which are deterministic.
    """
    for option, value in (
        ("benchmark_min_rounds", 1),
        ("benchmark_max_time", 0.5),
        ("benchmark_calibration_precision", 1),
        ("benchmark_warmup", False),
    ):
        if hasattr(config.option, option):
            setattr(config.option, option, value)


def print_rows(title: str, rows) -> None:
    """Print a reproduced table in a compact, diff-friendly format."""
    print(f"\n=== {title} ===")
    if isinstance(rows, dict):
        for key, value in rows.items():
            print(f"  {key}: {value}")
        return
    for row in rows:
        print("  " + ", ".join(f"{k}={_fmt(v)}" for k, v in row.items()))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
