"""Table 2 — bandwidth, space-time volume and classical-memory-swap budget."""

from conftest import print_rows

from repro.metrics import table2_rows


def test_table2_bandwidth_and_spacetime(benchmark):
    rows = benchmark(table2_rows, 1024)
    print_rows("Table 2 (N = 1024, CLOPS = 1e6)", rows)
    by_name = {r["architecture"]: r for r in rows}
    assert abs(by_name["Fat-Tree"]["bandwidth_qubits_per_sec"] - 1.21e5) < 2e3
    assert abs(by_name["Fat-Tree"]["spacetime_volume_per_query"] - 132 * 1024) < 1e-6
    assert abs(by_name["Fat-Tree"]["memory_swap_budget_us"] - 8.25) < 1e-9
    assert by_name["BB"]["bandwidth_qubits_per_sec"] < by_name["Fat-Tree"]["bandwidth_qubits_per_sec"]
    assert by_name["D-Fat-Tree"]["bandwidth_qubits_per_sec"] > 1e6
