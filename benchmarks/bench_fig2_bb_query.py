"""Fig. 2(a) — a capacity-8 BB QRAM query takes 25 circuit layers."""

from conftest import print_rows

from repro.analysis import generate_fig2_milestones
from repro.bucket_brigade import BBQuerySchedule


def test_fig2_bb_query_layers(benchmark):
    milestones = benchmark(generate_fig2_milestones, 8)
    print_rows("Fig. 2(a) — BB QRAM query milestones (N = 8)", milestones)
    assert milestones["query_complete"] == 25
    assert milestones["data_retrieval"] == 13
    schedule = BBQuerySchedule(8)
    schedule.verify_no_conflicts()
    assert schedule.weighted_latency == 24.125
