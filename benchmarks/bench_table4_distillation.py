"""Table 4 — virtual distillation: Fat-Tree vs two BB QRAMs at 256 qubits."""

from conftest import print_rows

from repro.fidelity import table4_comparison
from repro.hardware.parameters import HardwareParameters

PARAMS = HardwareParameters(
    cswap_error=0.002, inter_node_swap_error=0.002, intra_node_swap_error=0.001
)


def test_table4_virtual_distillation(benchmark):
    table = benchmark(table4_comparison, 16, PARAMS)
    print_rows("Table 4 (capacity-16, 256 qubits)", table)
    fat_tree = table["Fat-Tree"]
    two_bb = table["2 BB"]
    assert fat_tree["copies"] == 4 and two_bb["copies"] == 2
    assert abs(fat_tree["fidelity_before"] - 0.84) < 1e-9
    assert abs(two_bb["fidelity_before"] - 0.872) < 1e-9
    assert fat_tree["fidelity_after"] > 0.999
    assert 0.98 < two_bb["fidelity_after"] < 0.99
