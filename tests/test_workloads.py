"""Trace-generator determinism and shard-map properties."""

import pytest

from repro import build_backend
from repro.baselines.registry import backend_names
from repro.service.sharding import InterleavedShardMap
from repro.workloads import (
    burst_times,
    bursty_trace,
    exponential_times,
    iter_burst_times,
    iter_exponential_times,
    poisson_trace,
    random_data,
    shard_aligned_superposition,
)


def _trace_signature(trace):
    return [
        (r.query_id, r.request_time, r.qpu, sorted(r.address_amplitudes.items()))
        for r in trace
    ]


# -------------------------------------------------------------- determinism
def test_poisson_trace_is_deterministic_per_seed():
    kwargs = dict(
        capacity=16,
        num_queries=25,
        mean_interarrival=6.0,
        num_tenants=3,
        num_shards=2,
    )
    first = poisson_trace(seed=42, **kwargs)
    second = poisson_trace(seed=42, **kwargs)
    assert _trace_signature(first) == _trace_signature(second)
    other = poisson_trace(seed=43, **kwargs)
    assert _trace_signature(first) != _trace_signature(other)


def test_bursty_trace_is_deterministic_per_seed():
    kwargs = dict(
        capacity=16,
        num_bursts=3,
        burst_size=5,
        burst_spacing=50.0,
        num_tenants=2,
        num_shards=4,
    )
    first = bursty_trace(seed=7, **kwargs)
    second = bursty_trace(seed=7, **kwargs)
    assert _trace_signature(first) == _trace_signature(second)
    assert [r.request_time for r in first] == sorted(r.request_time for r in first)
    other = bursty_trace(seed=8, **kwargs)
    assert _trace_signature(first) != _trace_signature(other)


def test_random_data_is_deterministic_per_seed():
    assert random_data(32, seed=5) == random_data(32, seed=5)
    assert random_data(32, seed=5) != random_data(32, seed=6)


@pytest.mark.parametrize("name", backend_names())
def test_traces_are_shard_aligned_for_every_backend(name):
    """Generated traces route cleanly onto any registered backend fleet.

    Every request's superposition stays inside one interleaved shard, and
    window batching up to the backend's parallelism never needs to split a
    request — so the same trace serves any architecture choice.
    """
    capacity, num_shards = 32, 4
    backend = build_backend(name, capacity // num_shards)
    assert backend.query_parallelism >= 1
    shard_map = InterleavedShardMap(capacity, num_shards)
    trace = poisson_trace(
        capacity, 12, mean_interarrival=5.0, num_shards=num_shards, seed=11
    )
    for request in trace:
        shard, local = shard_map.route(request.address_amplitudes)
        assert 0 <= shard < num_shards
        assert all(0 <= a < shard_map.shard_capacity for a in local)


def test_shard_aligned_superposition_stays_in_shard():
    for shard in range(4):
        amps = shard_aligned_superposition(32, 4, shard, num_addresses=4, seed=shard)
        assert {a % 4 for a in amps} == {shard}
        assert sum(abs(a) ** 2 for a in amps.values()) == pytest.approx(1.0)


# ----------------------------------------------------------- shard-map laws
@pytest.mark.parametrize("capacity,num_shards", [
    (8, 1), (8, 2), (8, 4),
    (32, 1), (32, 2), (32, 4), (32, 8), (32, 16),
    (128, 8),
])
def test_interleaved_round_trip_across_shard_counts(capacity, num_shards):
    shard_map = InterleavedShardMap(capacity, num_shards)
    assert shard_map.shard_capacity * num_shards == capacity
    seen = set()
    for address in range(capacity):
        shard = shard_map.shard_of(address)
        local = shard_map.local_address(address)
        assert 0 <= shard < num_shards
        assert 0 <= local < shard_map.shard_capacity
        assert shard_map.global_address(shard, local) == address
        assert shard_map.owners(address) == [shard]
        seen.add((shard, local))
    # The mapping is a bijection onto shard-local coordinates.
    assert len(seen) == capacity


@pytest.mark.parametrize("capacity,num_shards", [(16, 2), (64, 8)])
def test_interleaved_shard_data_partitions_memory(capacity, num_shards):
    shard_map = InterleavedShardMap(capacity, num_shards)
    data = list(range(capacity))
    slices = [shard_map.shard_data(data, s) for s in range(num_shards)]
    rebuilt = [
        slices[shard_map.shard_of(a)][shard_map.local_address(a)]
        for a in range(capacity)
    ]
    assert rebuilt == data


@pytest.mark.parametrize("num_shards", [0, -1, 3, 5, 6, 12])
def test_interleaved_rejects_non_power_of_two_shards(num_shards):
    with pytest.raises(ValueError, match="power of two"):
        InterleavedShardMap(16, num_shards)


def test_interleaved_rejects_undersized_shards():
    with pytest.raises(ValueError, match="fewer than 2 addresses"):
        InterleavedShardMap(16, 16)
    with pytest.raises(ValueError, match="fewer than 2 addresses"):
        InterleavedShardMap(8, 8)


def test_interleaved_rejects_invalid_capacity():
    with pytest.raises(ValueError):
        InterleavedShardMap(12, 2)       # not a power of two
    with pytest.raises(ValueError):
        InterleavedShardMap(0, 1)


def test_interleaved_rejects_out_of_range_coordinates():
    shard_map = InterleavedShardMap(16, 2)
    with pytest.raises(ValueError):
        shard_map.shard_of(-1)
    with pytest.raises(ValueError):
        shard_map.local_address(16)
    with pytest.raises(ValueError):
        shard_map.global_address(2, 0)
    with pytest.raises(ValueError):
        shard_map.global_address(0, 8)
    with pytest.raises(ValueError):
        shard_map.shard_data([0] * 8, 0)  # wrong data length


def test_periodic_times_validates_period_and_stagger():
    """Regression: non-positive periods / negative staggers used to produce
    negative, non-monotone arrival times silently."""
    from repro.workloads.arrivals import periodic_times

    with pytest.raises(ValueError):
        periodic_times(2, 3, period=0.0)
    with pytest.raises(ValueError):
        periodic_times(2, 3, period=-5.0)
    with pytest.raises(ValueError):
        periodic_times(2, 3, period=10.0, stagger=-1.0)
    with pytest.raises(ValueError):
        periodic_times(-1, 3, period=10.0)
    # A valid call stays monotone per source and starts at s * stagger.
    pairs = periodic_times(2, 2, period=10.0, stagger=3.0)
    assert pairs == [(0.0, 0), (10.0, 0), (3.0, 1), (13.0, 1)]


def test_trace_generators_carry_min_fidelity():
    trace = poisson_trace(8, 5, mean_interarrival=4.0, seed=1, min_fidelity=0.9)
    assert all(r.min_fidelity == 0.9 for r in trace)
    trace = bursty_trace(8, 2, 2, 50.0, seed=1)
    assert all(r.min_fidelity is None for r in trace)


def test_lazy_arrival_cores_match_batch():
    """The iterator cores yield the batch lists element for element — one
    RNG stream and one accumulation order, whichever surface is used.

    ``exponential_times`` materializes the iterator, so the reference here
    is computed independently the way the pre-streaming implementation
    did — one vectorized draw plus ``np.cumsum`` — and the pinned length
    crosses the iterator's draw-block boundary (4096), the one seam where
    the chunked stream could diverge from a single vectorized draw."""
    import numpy as np

    reference = [
        float(t)
        for t in np.cumsum(np.random.default_rng(13).exponential(7.5, size=5000))
    ]
    assert list(iter_exponential_times(5000, 7.5, seed=13)) == reference
    assert exponential_times(5000, 7.5, seed=13) == reference
    assert list(iter_burst_times(5, 4, 25.0)) == burst_times(5, 4, 25.0)
    assert list(iter_exponential_times(0, 1.0)) == []


def test_lazy_arrival_cores_validate_eagerly():
    """Bad arguments raise at the call site, not on first consumption."""
    with pytest.raises(ValueError):
        iter_exponential_times(-1, 1.0)
    with pytest.raises(ValueError):
        iter_exponential_times(3, 0.0)
    with pytest.raises(ValueError):
        iter_burst_times(2, 0, 10.0)
    with pytest.raises(ValueError):
        iter_burst_times(2, 2, 0.0)
