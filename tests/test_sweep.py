"""The sweep engine's contracts: determinism, dedup, reuse, frontiers.

The campaign layer extends the repo's oracle-equality discipline from one
run to many: every row is a pure function of its point's spec, so the
whole result set — rows, JSONL bytes, retained reports, the Pareto
frontier — must be identical at pool sizes 0/1/2/4, under shuffled
submission order, and under fork-per-run worker recycling.  Alongside
determinism this file pins the perf machinery's observable semantics
(full-spec dedup, prewarms staying flat while hits climb) and the
frontier algebra (weak dominance, ties kept, merge stability).
"""

from __future__ import annotations

import dataclasses
import json
import random

import pytest

from repro.scenarios.fuzz import draw_spec
from repro.scenarios.spec import (
    FleetSpec,
    PolicySpec,
    ScenarioSpec,
    SpecError,
    WorkloadSpec,
    axis_paths,
)
from repro.schedule_cache import default_registry
from repro.sweep import (
    DEFAULT_OBJECTIVES,
    Objective,
    SweepSpec,
    dominates,
    frontier_report,
    objective_vector,
    pareto_frontier,
    run_sweep,
)


def small_base(**workload_overrides) -> ScenarioSpec:
    """A fast-to-execute base scenario (capacity 16, tens of queries)."""
    workload = dict(
        kind="poisson", num_queries=24, mean_interarrival=3.0, seed=7
    )
    workload.update(workload_overrides)
    return ScenarioSpec(
        fleet=FleetSpec(capacity=16, shards=("Fat-Tree", "BB")),
        workload=WorkloadSpec(**workload),
        name="base",
    )


def small_sweep() -> SweepSpec:
    return SweepSpec(
        base=small_base(),
        axes=(
            ("policy.admission", ("fifo", "priority")),
            ("workload.mean_interarrival", (2.0, 6.0)),
        ),
        name="small",
    )


# ------------------------------------------------------------ spec hooks
def test_fingerprint_ignores_name_and_tracks_content():
    spec = small_base()
    assert dataclasses.replace(spec, name="other").fingerprint() == (
        spec.fingerprint()
    )
    changed = spec.with_value("policy.admission", "priority")
    assert changed.fingerprint() != spec.fingerprint()
    # Round-tripping through JSON preserves the digest.
    assert ScenarioSpec.from_json(spec.to_json()).fingerprint() == (
        spec.fingerprint()
    )


def test_fleet_fingerprint_equal_iff_fleet_equal():
    spec = small_base()
    assert spec.with_value(
        "workload.mean_interarrival", 9.0
    ).fleet.fingerprint() == spec.fleet.fingerprint()
    assert spec.with_value(
        "fleet.qec_distance", 3
    ).fleet.fingerprint() != spec.fleet.fingerprint()


def test_qec_distance_axis_rewrites_shard_names():
    fleet = FleetSpec(capacity=16, shards=("Fat-Tree", "BB@d3"))
    assert fleet.with_qec_distance(5).shards == ("Fat-Tree@d5", "BB@d5")
    assert fleet.with_qec_distance(1).shards == ("Fat-Tree", "BB")
    with pytest.raises(SpecError):
        fleet.with_qec_distance(0)


def test_shard_count_axis_cycles_the_pattern():
    fleet = FleetSpec(capacity=16, shards=("Fat-Tree", "BB"))
    assert fleet.with_shard_count(4).shards == (
        "Fat-Tree", "BB", "Fat-Tree", "BB",
    )
    assert fleet.with_shard_count(1).shards == ("Fat-Tree",)
    with pytest.raises(SpecError):
        fleet.with_shard_count(0)


def test_with_value_validates_section_and_field():
    spec = small_base()
    with pytest.raises(SpecError):
        spec.with_value("nope.field", 1)
    with pytest.raises(SpecError):
        spec.with_value("fleet.nonexistent", 1)
    with pytest.raises(SpecError):
        spec.with_value("fleet.capacity", 63)  # revalidated on replace
    with pytest.raises(SpecError):
        # Cross-section check re-runs: autoscaler needs shortest-queue.
        spec.with_value(
            "policy.autoscaler",
            {
                "min_shards": 1,
                "max_shards": 4,
                "high_watermark": 8,
                "low_watermark": 1,
                "period": 50.0,
            },
        )


def test_axis_paths_cover_sections_and_virtual_axes():
    paths = axis_paths()
    assert "fleet.qec_distance" in paths
    assert "fleet.shard_count" in paths
    assert "policy.admission" in paths
    assert "workload.mean_interarrival" in paths
    assert "run.retention" in paths
    assert "fleet.nonexistent" not in paths


# -------------------------------------------------------------- SweepSpec
def test_sweep_spec_validates_axes():
    base = small_base()
    with pytest.raises(SpecError):
        SweepSpec(base=base, axes=(("bogus.path", (1,)),))
    with pytest.raises(SpecError):
        SweepSpec(
            base=base,
            axes=(
                ("policy.admission", ("fifo",)),
                ("policy.admission", ("priority",)),
            ),
        )
    with pytest.raises(SpecError):
        SweepSpec(base=base, axes=(("policy.admission", ()),))


def test_sweep_spec_expansion_order_and_round_trip():
    sweep = small_sweep()
    assert sweep.num_points == 4
    points = sweep.expand()
    assert [p.index for p in points] == [0, 1, 2, 3]
    # Last axis varies fastest.
    assert [dict(p.coords)["workload.mean_interarrival"] for p in points] == [
        2.0, 6.0, 2.0, 6.0,
    ]
    assert [dict(p.coords)["policy.admission"] for p in points] == [
        "fifo", "fifo", "priority", "priority",
    ]
    rebuilt = SweepSpec.from_json(sweep.to_json())
    assert rebuilt.to_dict() == sweep.to_dict()
    assert [p.spec.fingerprint() for p in rebuilt.expand()] == [
        p.spec.fingerprint() for p in points
    ]


def test_sweep_spec_rejects_unknown_keys():
    with pytest.raises(SpecError):
        SweepSpec.from_dict({"base": small_base().to_dict(), "bogus": 1})
    with pytest.raises(SpecError):
        SweepSpec.from_dict({})


def test_expand_names_invalid_point():
    # placement axis alone: the autoscaler-less base is fine, but an
    # interleaved 2-shard fleet over capacity 16 sweeping shard_count to
    # a non-divisor must fail *naming the point*.
    sweep = SweepSpec(
        base=small_base(), axes=(("fleet.shard_count", (2, 3)),)
    )
    with pytest.raises(SpecError, match="sweep point 1"):
        sweep.expand()


# ----------------------------------------------------------- determinism
def test_rows_identical_across_pool_sizes_and_orders():
    sweep = small_sweep()
    baseline = run_sweep(sweep, pool_size=0)
    assert [row["point"] for row in baseline.rows] == [0, 1, 2, 3]
    assert all(row["status"] == "ok" for row in baseline.rows)

    points = list(sweep.expand())
    random.Random(13).shuffle(points)
    for pool_size in (1, 2, 4):
        result = run_sweep(points, pool_size=pool_size)
        assert result.rows == baseline.rows, f"pool {pool_size} diverged"
    shuffled_inline = run_sweep(points, pool_size=0)
    assert shuffled_inline.rows == baseline.rows


def test_reports_identical_across_pool_sizes():
    sweep = small_sweep()
    baseline = run_sweep(sweep, pool_size=0, keep_reports=True)
    assert baseline.reports is not None
    assert sorted(baseline.reports) == [0, 1, 2, 3]
    for pool_size in (1, 2):
        result = run_sweep(sweep, pool_size=pool_size, keep_reports=True)
        assert result.reports is not None
        for index, report in baseline.reports.items():
            assert result.reports[index] == report, (
                f"point {index} report diverged at pool {pool_size}"
            )


def test_jsonl_bytes_identical_across_pool_sizes(tmp_path):
    sweep = small_sweep()
    paths = []
    for pool_size in (0, 2):
        path = tmp_path / f"rows_p{pool_size}.jsonl"
        run_sweep(sweep, pool_size=pool_size, jsonl_path=str(path))
        paths.append(path)
    assert paths[0].read_bytes() == paths[1].read_bytes()
    rows = [
        json.loads(line)
        for line in paths[0].read_text().splitlines()
    ]
    assert [row["point"] for row in rows] == [0, 1, 2, 3]
    # Every row's spec is replayable JSON.
    replayed = ScenarioSpec.from_dict(rows[0]["spec"])
    assert replayed.fingerprint() == rows[0]["fingerprint"]


def test_recycled_workers_match_persistent_pool():
    sweep = small_sweep()
    persistent = run_sweep(sweep, pool_size=2)
    recycled = run_sweep(sweep, pool_size=2, recycle_after=1)
    assert recycled.rows == persistent.rows


def test_error_rows_are_deterministic_data():
    # A replay pointing at a missing file fails at build time; the
    # failure must become a row, not an abort, and stay identical
    # across pool sizes.
    base = small_base()
    bad = dataclasses.replace(
        base,
        workload=WorkloadSpec(kind="replay", path="/nonexistent/rows.jsonl"),
    )
    sweep = SweepSpec(
        base=bad, axes=(("policy.admission", ("fifo", "priority")),)
    )
    inline = run_sweep(sweep, pool_size=0)
    pooled = run_sweep(sweep, pool_size=2)
    assert pooled.rows == inline.rows
    for row in inline.rows:
        assert row["status"] == "error"
        assert row["metrics"] is None and row["report_digest"] is None
        assert "FileNotFoundError" in row["error"]


def test_fuzz_drawn_sweep_reruns_identically():
    rng = random.Random(2026)
    specs = []
    seen = set()
    while len(specs) < 8:
        spec = draw_spec(rng)
        # Keep the fuzz corpus fast: capacity-16 timing-only draws.
        if spec.fleet.capacity != 16 or spec.fleet.functional:
            continue
        if spec.fingerprint() in seen:
            continue
        seen.add(spec.fingerprint())
        specs.append(spec)
    sweep_points = SweepSpec(base=specs[0]).expand()  # smoke the API
    assert len(sweep_points) == 1
    from repro.sweep.spec import SweepPoint

    points = tuple(
        SweepPoint(
            index=i, name=f"fuzz#{i}", coords=(), spec=spec
        )
        for i, spec in enumerate(specs)
    )
    first = run_sweep(points, pool_size=0)
    second = run_sweep(points, pool_size=2)
    assert second.rows == first.rows


# -------------------------------------------------------- dedup and reuse
def test_equal_specs_execute_once():
    base = small_base()
    from repro.sweep.spec import SweepPoint

    points = tuple(
        SweepPoint(
            index=i,
            name=f"dup#{i}",
            coords=(),
            spec=dataclasses.replace(base, name=f"dup#{i}"),
        )
        for i in range(5)
    )
    result = run_sweep(points, pool_size=0, keep_reports=True)
    assert result.executions == 1
    assert len(result.rows) == 5
    digests = {row["report_digest"] for row in result.rows}
    assert len(digests) == 1
    assert result.reports is not None and sorted(result.reports) == list(
        range(5)
    )


def test_cache_reuse_hits_climb_prewarms_stay_flat():
    registry = default_registry()
    registry.clear()
    # Eight points over ONE fleet: the fleet compiles once (prewarms
    # counts builds, not fleet builds), then every later point hits.
    sweep = SweepSpec(
        base=small_base(),
        axes=(
            ("policy.admission", ("fifo", "priority")),
            ("workload.mean_interarrival", (2.0, 4.0, 6.0, 8.0)),
        ),
    )
    result = run_sweep(sweep, pool_size=0)
    assert result.executions == 8
    stats = result.cache_stats
    # Two shard architectures -> two compiled executors, ever.
    assert stats.misses == 2
    assert stats.prewarms == 2
    assert stats.entries == 2
    # Seven warm fleet builds x two shards of pure hits (plus run-time
    # lookups): reuse dominates.
    assert stats.hits >= 14
    assert stats.hit_rate > 0.8
    assert stats.fidelity_hits > stats.fidelity_misses


def test_per_run_cache_stats_surface_on_report():
    registry = default_registry()
    registry.clear()
    before = registry.stats()
    report = small_base().execute()
    assert report.cache_stats is not None
    delta = report.cache_stats.delta(before)
    assert delta.misses >= 1  # this run compiled its fleet
    # The snapshot never affects report identity.
    again = small_base().execute()
    assert again == report
    assert again.cache_stats is not None
    assert again.cache_stats.hits > report.cache_stats.hits


# ----------------------------------------------------------------- pareto
def row(point, **metrics):
    return {
        "point": point,
        "name": f"p{point}",
        "coords": {},
        "spec": {"stub": point},
        "status": "ok",
        "error": None,
        "metrics": metrics,
        "report_digest": "x",
    }


OBJS = (Objective("cost", "min"), Objective("latency", "min"))


def test_dominates_is_weak():
    assert dominates((1.0, 1.0), (2.0, 2.0))
    assert dominates((1.0, 2.0), (1.0, 3.0))
    assert not dominates((1.0, 1.0), (1.0, 1.0))
    assert not dominates((1.0, 3.0), (2.0, 1.0))


def test_objective_vector_normalizes_and_rejects_unranked():
    objectives = (Objective("fid", "max"),)
    assert objective_vector(row(0, fid=0.75), objectives) == (-0.75,)
    assert objective_vector(row(0, fid=None), objectives) is None
    errored = row(1, fid=0.5)
    errored["status"] = "error"
    assert objective_vector(errored, objectives) is None
    with pytest.raises(ValueError):
        Objective("fid", "sideways")


def test_frontier_keeps_ties_and_drops_dominated():
    rows = [
        row(0, cost=1.0, latency=5.0),
        row(1, cost=3.0, latency=3.0),
        row(2, cost=5.0, latency=1.0),
        row(3, cost=3.0, latency=3.0),  # tie with 1: both kept
        row(4, cost=4.0, latency=4.0),  # dominated by 1/3
    ]
    frontier = pareto_frontier(rows, OBJS)
    assert [r["point"] for r in frontier] == [0, 1, 3, 2]


def test_frontier_is_order_independent_and_merge_stable():
    rng = random.Random(5)
    rows = [
        row(i, cost=float(rng.randrange(10)), latency=float(rng.randrange(10)))
        for i in range(30)
    ]
    baseline = pareto_frontier(rows, OBJS)
    shuffled = list(rows)
    rng.shuffle(shuffled)
    assert pareto_frontier(shuffled, OBJS) == baseline
    # Merge property: frontier(A u B) == frontier(frontier(A) u frontier(B)).
    merged = pareto_frontier(
        pareto_frontier(rows[:15], OBJS) + pareto_frontier(rows[15:], OBJS),
        OBJS,
    )
    assert merged == baseline


def test_frontier_report_shape_and_default_objectives():
    sweep = small_sweep()
    result = run_sweep(sweep, pool_size=0)
    report = frontier_report(result.rows)
    assert [o["key"] for o in report["objectives"]] == [
        o.key for o in DEFAULT_OBJECTIVES
    ]
    assert report["candidates"] >= len(report["frontier"]) >= 1
    entry = report["frontier"][0]
    replay = ScenarioSpec.from_dict(entry["spec"])
    assert replay.fingerprint() == result.rows[entry["point"]]["fingerprint"]
    assert set(entry["objectives"]) == {o.key for o in DEFAULT_OBJECTIVES}
