"""Instruction set, lowering and the qubit namer."""

import pytest

from repro.bucket_brigade.instructions import (
    Instruction,
    InstructionKind,
    QubitNamer,
    lower_instruction,
)
from repro.sim.sparse import SparseState


def test_instruction_kind_costs():
    assert InstructionKind.ROUTE.layer_cost == 1.0
    assert InstructionKind.SWAP_MIGRATE.layer_cost == 0.125
    assert InstructionKind.CLASSICAL_GATES.is_fast
    assert InstructionKind.UNSTORE.is_inverse
    assert not InstructionKind.STORE.is_inverse


def test_namer_plain_and_multiplexed():
    plain = QubitNamer("bb", multiplexed=False)
    multiplexed = QubitNamer("ft", multiplexed=True)
    assert plain.input_qubit(1, 0) == ("bb", "in", 1, 0)
    assert multiplexed.input_qubit(1, 0, 3) == ("ft", "in", 1, 0, 3)
    assert multiplexed.output_qubit(1, 0, 1, 3) == ("ft", "out", 1, 0, 3, 1)
    assert QubitNamer.address_qubit(2, 0) == ("addr", 2, 0)
    assert QubitNamer.bus_qubit(2) == ("bus", 2)


def test_route_lowering_routes_by_router_state():
    namer = QubitNamer("bb")
    instruction = Instruction(InstructionKind.ROUTE, 0, 2, 0, 0, raw_layer=1)
    ops = lower_instruction(instruction, namer, address_width=2)
    # Level 0 has one router -> ANTI_CSWAP + CSWAP.
    assert [op.gate for op in ops] == ["ANTI_CSWAP", "CSWAP"]
    state = SparseState()
    state.ensure_qubits([namer.router_qubit(0, 0), namer.input_qubit(0, 0),
                         namer.output_qubit(0, 0, 0), namer.output_qubit(0, 0, 1)])
    state.apply_gate("X", (namer.router_qubit(0, 0),))   # router holds |1>
    state.apply_gate("X", (namer.input_qubit(0, 0),))    # payload |1>
    for op in ops:
        state.apply_operation(op)
    assert state.probability({namer.output_qubit(0, 0, 1): 1}) == pytest.approx(1.0)
    assert state.probability({namer.input_qubit(0, 0): 1}) == pytest.approx(0.0)


def test_classical_gates_lowering_targets_only_set_bits():
    namer = QubitNamer("bb")
    instruction = Instruction(InstructionKind.CLASSICAL_GATES, 0, 0, 1, 0, raw_layer=1)
    ops = lower_instruction(instruction, namer, address_width=2, data=[1, 0, 0, 1])
    targets = {op.qubits[0] for op in ops}
    assert targets == {namer.output_qubit(1, 0, 0), namer.output_qubit(1, 1, 1)}
    assert all(op.gate == "Z" for op in ops)
    with pytest.raises(ValueError):
        lower_instruction(instruction, namer, address_width=2)
    with pytest.raises(ValueError):
        lower_instruction(instruction, namer, address_width=2, data=[1, 0])


def test_swap_migrate_lowering_covers_inputs_and_routers():
    namer = QubitNamer("ft", multiplexed=True)
    instruction = Instruction(
        InstructionKind.SWAP_MIGRATE, 0, 0, level=1, label=1, raw_layer=5
    )
    ops = lower_instruction(instruction, namer, address_width=3)
    # Levels 0..1 (= 3 routers), 2 swaps each (input + router qubit).
    assert len(ops) == 2 * (1 + 2)
    for op in ops:
        assert op.gate == "SWAP"
        assert op.qubits[0][4] == 1 and op.qubits[1][4] == 2   # labels 1 <-> 2


def test_load_lowering_uses_external_register():
    namer = QubitNamer("bb")
    load_bus = Instruction(InstructionKind.LOAD, 3, 3, -1, 0, raw_layer=1)
    ops = lower_instruction(load_bus, namer, address_width=2)
    assert ops[0].qubits == (("bus", 3), namer.input_qubit(0, 0, 0))
    load_addr = Instruction(InstructionKind.LOAD, 3, 1, -1, 0, raw_layer=1)
    ops = lower_instruction(load_addr, namer, address_width=2)
    assert ops[0].qubits[0] == ("addr", 3, 0)
