"""Fat-Tree structure: router counts, wiring, sub-QRAM decomposition (Sec. 4.1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fat_tree import FatTreeRouterId, FatTreeStructure
from repro.core.subqram import SubQRAM, decompose


@pytest.mark.parametrize("capacity,expected", [(4, 4), (8, 11), (32, 57), (1024, 2036)])
def test_router_count_formula(capacity, expected):
    structure = FatTreeStructure(capacity)
    assert structure.num_routers == expected
    assert structure.num_routers == len(list(structure.routers()))


def test_node_sizes_decrease_down_the_tree():
    structure = FatTreeStructure(32)
    assert [structure.routers_in_node(level) for level in range(5)] == [5, 4, 3, 2, 1]
    assert structure.routers_at_level(0) == 5
    assert structure.routers_at_level(4) == 16


def test_wire_counts_match_paper():
    structure = FatTreeStructure(32)
    assert structure.external_ports == 5
    assert [structure.wires_to_children(level) for level in range(5)] == [4, 3, 2, 1, 0]


def test_output_rule_transient_routers():
    structure = FatTreeStructure(16)
    n = structure.address_width
    for router in structure.routers():
        expected = router.label > router.level or router.level == n - 1
        assert structure.has_outputs(router) == expected
        assert structure.is_transient(router) != expected
    # Transient routers expose no output qubits.
    transient = FatTreeRouterId(1, 0, 1)
    with pytest.raises(ValueError):
        structure.output_qubit(transient, 0)


def test_router_id_validation():
    with pytest.raises(ValueError):
        FatTreeRouterId(2, 0, 1)      # label < level
    with pytest.raises(ValueError):
        FatTreeRouterId(1, 2, 1)      # node index out of range
    assert FatTreeRouterId(1, 1, 3).slot == 2


def test_leaf_qubits_unique_and_on_last_level():
    structure = FatTreeStructure(16)
    leaves = {structure.leaf_qubit(a) for a in range(16)}
    assert len(leaves) == 16
    for leaf in leaves:
        assert leaf[2] == structure.address_width - 1


def test_all_qubits_counts_outputs_only_where_present():
    structure = FatTreeStructure(8)
    # 11 routers; transient routers (one per node except the last level)
    # contribute 2 qubits, the rest 4.
    transient = sum(
        1 for r in structure.routers() if structure.is_transient(r)
    )
    expected = 4 * structure.num_routers - 2 * transient
    assert structure.num_tree_qubits == expected


def test_subqram_decomposition():
    structure = FatTreeStructure(16)
    subqrams = decompose(structure)
    assert [s.address_width for s in subqrams] == [1, 2, 3, 4]
    assert [s.num_routers for s in subqrams] == [1, 3, 7, 15]
    assert sum(s.num_routers for s in subqrams) == structure.num_routers
    assert subqrams[-1].reaches_data and not subqrams[0].reaches_data
    assert subqrams[1].neighbour_above().label == 2
    assert subqrams[0].neighbour_below() is None
    assert list(subqrams[2].swap_partner_levels()) == [0, 1, 2]


def test_subqram_label_validation():
    structure = FatTreeStructure(8)
    with pytest.raises(ValueError):
        SubQRAM(structure, 3)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=8))
def test_router_count_is_about_twice_bb(n):
    capacity = 2**n
    structure = FatTreeStructure(capacity)
    assert structure.num_routers == 2 * capacity - 2 - n
    # Never more than twice the BB router count.
    assert structure.num_routers <= 2 * (capacity - 1)


def test_qubit_count_per_node_grows_with_height():
    structure = FatTreeStructure(64)
    counts = [structure.qubit_count_per_node(level) for level in range(6)]
    assert counts == sorted(counts, reverse=True)
