"""simlint: each SIM rule pinned on violating and clean fixtures.

Every rule gets at least one fixture it must flag and one it must pass;
the framework (suppressions, baseline, CLI, JSON output) is exercised
end-to-end; and the acceptance gate — the real tree lints clean with an
empty baseline — runs as a test so it can never silently regress.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.simlint import (  # noqa: E402
    all_rules,
    lint_paths,
    lint_source,
    load_baseline,
)


def codes(result):
    return [finding.rule for finding in result.findings]


# -------------------------------------------------------------------- registry
def test_all_eight_rules_registered():
    assert sorted(all_rules()) == [
        "SIM001",
        "SIM002",
        "SIM003",
        "SIM004",
        "SIM005",
        "SIM006",
        "SIM007",
        "SIM008",
    ]


# --------------------------------------------------------------------- SIM001
def test_sim001_flags_wall_clock_and_unseeded_rng():
    result = lint_source(
        "import time, random\n"
        "def stamp():\n"
        "    return time.time() + random.random()\n",
        rules=["SIM001"],
    )
    messages = " ".join(f.message for f in result.findings)
    assert codes(result) == ["SIM001", "SIM001"]
    assert "wall-clock" in messages and "unseeded" in messages


def test_sim001_flags_set_iteration_feeding_order():
    result = lint_source(
        "def schedule(batch):\n"
        "    pending = set(batch)\n"
        "    for query in pending:\n"
        "        emit(query)\n",
        rules=["SIM001"],
    )
    assert codes(result) == ["SIM001"]
    assert "hash-ordered" in result.findings[0].message


def test_sim001_flags_keys_iteration():
    result = lint_source(
        "def walk(d):\n"
        "    for k in d.keys():\n"
        "        emit(k)\n",
        rules=["SIM001"],
    )
    assert codes(result) == ["SIM001"]


def test_sim001_clean_sorted_sets_and_seeded_rng():
    result = lint_source(
        "import random\n"
        "def schedule(batch):\n"
        "    rng = random.Random(42)\n"
        "    for query in sorted(set(batch)):\n"
        "        emit(query, rng.random())\n"
        "    total = sum(x for x in set(batch))\n"
        "    for k in sorted(d.keys()):\n"
        "        emit(k)\n",
        rules=["SIM001"],
    )
    assert result.ok, codes(result)


# --------------------------------------------------------------------- SIM002
def test_sim002_flags_push_into_the_past():
    # ServiceEngine owns the clock, so only the dataflow check can fire here.
    result = lint_source(
        "class ServiceEngine:\n"
        "    def on_drain(self, now):\n"
        "        self._heap.push(now - 1.0, object())\n",
        rules=["SIM002"],
    )
    assert codes(result) == ["SIM002"]
    assert "virtual time" in result.findings[0].message


def test_sim002_flags_foreign_clock_advance_and_bare_heap_keys():
    result = lint_source(
        "import heapq\n"
        "class Rogue:\n"
        "    def advance(self, t):\n"
        "        self._now = t\n"
        "def enqueue(heap, item):\n"
        "    heapq.heappush(heap, (item.time, item))\n",
        rules=["SIM002"],
    )
    assert codes(result) == ["SIM002", "SIM002"]


def test_sim002_clean_forward_scheduling():
    result = lint_source(
        "import heapq\n"
        "class ServiceEngine:\n"
        "    def _execute(self, shard, admit):\n"
        "        self._busy_until[shard] = admit + self.total\n"
        "        self._heap.push(self._busy_until[shard], object())\n"
        "    def _on_tick(self, now):\n"
        "        self._heap.push(now + self.period, object())\n"
        "    def schedule_think(self, time):\n"
        "        self._heap.push(max(0.0, time), object())\n"
        "def enqueue(heap, item, sequence):\n"
        "    heapq.heappush(heap, (item.time, sequence, item))\n",
        rules=["SIM002"],
    )
    assert result.ok, [f.message for f in result.findings]


# --------------------------------------------------------------------- SIM003
_CACHE_VIOLATION = """
class Executor:
    def __init__(self, data):
        self.data = data
        self._schedule_cache = {}

    def schedule(self, n):
        if n not in self._schedule_cache:
            self._schedule_cache[n] = build(self.data, n)
        return self._schedule_cache[n]

    def write_data(self, address, value):
        self.data[address] = value
"""


def test_sim003_flags_mutation_without_invalidation():
    result = lint_source(_CACHE_VIOLATION, rules=["SIM003"])
    assert codes(result) == ["SIM003"]
    assert "write_data" in result.findings[0].message
    assert "_schedule_cache" in result.findings[0].message


def test_sim003_clean_when_mutator_invalidates():
    fixed = _CACHE_VIOLATION + "        self._schedule_cache.clear()\n"
    assert lint_source(fixed, rules=["SIM003"]).ok


def test_sim003_sees_lazy_dict_caches_and_inherited_mutators():
    source = """
class Mixin:
    def predictions(self, n):
        cache = self.__dict__.setdefault("_prediction_cache", {})
        if n not in cache:
            cache[n] = predict(self.model, n)
        return cache[n]

class Backend(Mixin):
    def write_memory(self, address, value):
        self.model.write_memory(address, value)
"""
    result = lint_source(source, rules=["SIM003"])
    assert codes(result) == ["SIM003"]
    assert "_prediction_cache" in result.findings[0].message

    fixed = source + "        self.__dict__.pop('_prediction_cache', None)\n"
    assert lint_source(fixed, rules=["SIM003"]).ok


def test_sim003_clean_when_invalidation_is_transitive():
    source = """
class Backend:
    def fill(self, n):
        self._f_cache = {n: predict(self.model, n)}

    def _invalidate(self):
        self._f_cache = {}

    def write_memory(self, address, value):
        self.model.write_memory(address, value)
        self._invalidate()
"""
    assert lint_source(source, rules=["SIM003"]).ok


# --------------------------------------------------------------------- SIM004
_EVENTS_TEMPLATE = """
from typing import ClassVar, Union

class Arrival:
    PRIORITY: ClassVar[int] = 0

class Drain:
    PRIORITY: ClassVar[int] = {drain_priority}

Event = Union[Arrival, Drain]
"""


def test_sim004_flags_duplicate_priorities():
    result = lint_source(
        _EVENTS_TEMPLATE.format(drain_priority=0), rules=["SIM004"]
    )
    assert codes(result) == ["SIM004"]
    assert "collides" in result.findings[0].message


def test_sim004_flags_union_member_without_priority():
    source = (
        "from typing import ClassVar, Union\n"
        "class Arrival:\n"
        "    PRIORITY: ClassVar[int] = 0\n"
        "class Stray:\n"
        "    pass\n"
        "Event = Union[Arrival, Stray]\n"
    )
    result = lint_source(source, rules=["SIM004"])
    assert codes(result) == ["SIM004"]
    assert "Stray" in result.findings[0].message


def test_sim004_pins_heap_key_shape():
    source = (
        "import heapq\n"
        "def push(heap, time, event, seq):\n"
        "    heapq.heappush(heap, (time, seq, event.PRIORITY, event))\n"
    )
    result = lint_source(source, rules=["SIM004"])
    assert codes(result) == ["SIM004"]
    assert "pinned" in result.findings[0].message


def test_sim004_clean_registry_and_key():
    clean = _EVENTS_TEMPLATE.format(drain_priority=1) + (
        "import heapq\n"
        "def push(heap, time, event, sequence):\n"
        "    heapq.heappush(heap, (time, event.PRIORITY, sequence, event))\n"
    )
    assert lint_source(clean, rules=["SIM004"]).ok


# --------------------------------------------------------------------- SIM005
def test_sim005_flags_mutated_module_global():
    result = lint_source(
        "REGISTRY = {}\n"
        "def register(name, spec):\n"
        "    REGISTRY[name] = spec\n",
        rules=["SIM005"],
    )
    assert codes(result) == ["SIM005"]
    assert "mutated" in result.findings[0].message


def test_sim005_flags_class_body_mutable():
    result = lint_source(
        "class Shard:\n"
        "    pending = []\n",
        rules=["SIM005"],
    )
    assert codes(result) == ["SIM005"]
    assert "shared across every instance" in result.findings[0].message


def test_sim005_clean_frozen_and_readonly_state():
    result = lint_source(
        "from dataclasses import dataclass, field\n"
        "KINDS = frozenset({'a', 'b'})\n"
        "NAMES = {'fifo': 1, 'lifo': 2}\n"  # read-only: never mutated
        "@dataclass\n"
        "class Queue:\n"
        "    items: list = field(default_factory=list)\n"
        "def lookup(name):\n"
        "    return NAMES[name]\n",
        rules=["SIM005"],
    )
    assert result.ok, [f.message for f in result.findings]
    assert any("read-only" in item for item in result.inventory)


# --------------------------------------------------------------------- SIM006
def test_sim006_flags_unsuffixed_duration_field_and_param():
    result = lint_source(
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Stats:\n"
        "    latency: float\n"
        "def wait(delay: float) -> None:\n"
        "    pass\n",
        rules=["SIM006"],
    )
    assert codes(result) == ["SIM006", "SIM006"]


def test_sim006_flags_mixed_unit_arithmetic():
    result = lint_source(
        "def convert(latency_ns, latency_layers):\n"
        "    return latency_ns + latency_layers\n",
        rules=["SIM006"],
    )
    assert codes(result) == ["SIM006"]
    assert "mix units" in result.findings[0].message


def test_sim006_clean_suffixed_and_weighted_names():
    result = lint_source(
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Stats:\n"
        "    latency_layers: float\n"
        "    weighted_latency: float\n"
        "    queue_delay_layers: float\n"
        "def wait(delay_seconds: float, latency_ns: int) -> None:\n"
        "    total_layers = 1.0\n"
        "    span = total_layers + weighted_total\n",  # same unit family
        rules=["SIM006"],
    )
    assert result.ok, [f.message for f in result.findings]


# --------------------------------------------------------------------- SIM007
def test_sim007_flags_mutated_module_global_cache():
    result = lint_source(
        "_SCHEDULE_CACHE = {}\n"
        "def lookup(key, build):\n"
        "    if key not in _SCHEDULE_CACHE:\n"
        "        _SCHEDULE_CACHE[key] = build()\n"
        "    return _SCHEDULE_CACHE[key]\n",
        rules=["SIM007"],
    )
    assert codes(result) == ["SIM007"]
    assert "ScheduleCacheRegistry" in result.findings[0].message


def test_sim007_flags_unseeded_numpy_rng():
    result = lint_source(
        "import numpy as np\n"
        "def jitter():\n"
        "    return np.random.default_rng().normal()\n",
        rules=["SIM007"],
    )
    assert codes(result) == ["SIM007"]
    assert "fork-divergent" in result.findings[0].message


def test_sim007_flags_pid_and_time_seeded_rng():
    result = lint_source(
        "import os, random, time\n"
        "from numpy.random import default_rng\n"
        "def make_rngs():\n"
        "    a = random.Random(os.getpid())\n"
        "    b = default_rng(seed=int(time.time()))\n"
        "    return a, b\n",
        rules=["SIM007"],
    )
    assert codes(result) == ["SIM007", "SIM007"]
    messages = " ".join(f.message for f in result.findings)
    assert "os.getpid" in messages and "time.time" in messages


def test_sim007_clean_registry_and_stable_seeds():
    result = lint_source(
        "from numpy.random import default_rng\n"
        "from repro.schedule_cache import default_registry\n"
        "REGISTRY = default_registry()\n"
        "KIND_TABLE = {'fat-tree': 1, 'bb': 2}\n"  # read-only: fork-safe
        "def sampler(shard):\n"
        "    return default_rng(1000 + shard)\n"
        "def lookup(kind):\n"
        "    return KIND_TABLE[kind]\n",
        rules=["SIM007"],
    )
    assert result.ok, [f.message for f in result.findings]


# --------------------------------------------------------------------- SIM008
_HOT_LOOP_ITERATION = (
    "def window_fidelities(start_offsets, finish_offsets):\n"
    "    out = []\n"
    "    for start, finish in zip(start_offsets, finish_offsets):\n"
    "        out.append(finish - start)\n"
    "    return out\n"
)

_HOT_LOOP_INDEXING = (
    "def window_fidelities(start_offsets, finish_offsets):\n"
    "    out = []\n"
    "    for s in range(len(start_offsets)):\n"
    "        out.append(finish_offsets[s] - start_offsets[s])\n"
    "    return out\n"
)


def test_sim008_flags_slot_loops_in_hot_modules():
    for fixture in (_HOT_LOOP_ITERATION, _HOT_LOOP_INDEXING):
        result = lint_source(fixture, filename="noise.py", rules=["SIM008"])
        assert codes(result) == ["SIM008"], fixture
        assert "array expression" in result.findings[0].message


def test_sim008_flags_slot_comprehension():
    result = lint_source(
        "def degrade(fidelities, penalty):\n"
        "    return tuple(f * penalty for f in fidelities)\n",
        filename="analytic.py",
        rules=["SIM008"],
    )
    assert codes(result) == ["SIM008"]


def test_sim008_ignores_modules_outside_the_hot_set():
    result = lint_source(_HOT_LOOP_ITERATION, rules=["SIM008"])
    assert result.ok
    result = lint_source(
        _HOT_LOOP_INDEXING, filename="service.py", rules=["SIM008"]
    )
    assert result.ok


def test_sim008_exempts_pinned_scalar_oracles():
    exempt = _HOT_LOOP_INDEXING.replace(
        "def window_fidelities(", "def window_fidelities_scalar("
    )
    assert lint_source(exempt, filename="noise.py", rules=["SIM008"]).ok
    reference = _HOT_LOOP_ITERATION.replace(
        "def window_fidelities(", "def offsets_reference("
    )
    assert lint_source(reference, filename="fat_tree.py", rules=["SIM008"]).ok


def test_sim008_clean_non_slot_loops_and_vector_math():
    result = lint_source(
        "import numpy as np\n"
        "def run_window(requests):\n"
        "    outputs = [execute(request) for request in requests]\n"
        "    for occupancy in range(1, 4):\n"
        "        warm(occupancy)\n"
        "    return outputs\n"
        "def vectorized(start_offsets, finish_offsets):\n"
        "    starts = np.asarray(start_offsets)\n"
        "    return np.asarray(finish_offsets) - starts\n",
        filename="encoded.py",
        rules=["SIM008"],
    )
    assert result.ok, [f.message for f in result.findings]


def test_sim008_suppressible_per_line():
    suppressed = (
        "def interleave(fidelities):\n"
        "    for f in fidelities:  # simlint: disable=SIM008\n"
        "        emit(f)\n"
    )
    result = lint_source(suppressed, filename="noise.py", rules=["SIM008"])
    assert result.ok
    assert result.suppressed == 1


# ------------------------------------------------------------------ framework
def test_line_suppression_comment():
    result = lint_source(
        "import time\n"
        "def stamp():\n"
        "    return time.time()  # simlint: disable=SIM001\n",
        rules=["SIM001"],
    )
    assert result.ok
    assert result.suppressed == 1


def test_file_level_suppression():
    result = lint_source(
        "# simlint: disable-file=SIM005\n"
        "REGISTRY = {}\n"
        "def register(name, spec):\n"
        "    REGISTRY[name] = spec\n",
        rules=["SIM005"],
    )
    assert result.ok
    assert result.suppressed == 1


def test_suppression_is_per_rule():
    result = lint_source(
        "import time\n"
        "def stamp():\n"
        "    return time.time()  # simlint: disable=SIM006\n",
        rules=["SIM001"],
    )
    assert codes(result) == ["SIM001"]


def test_unknown_rule_selection_raises():
    with pytest.raises(KeyError):
        lint_source("x = 1\n", rules=["SIM999"])


# ------------------------------------------------------------------------ CLI
def _run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "tools.simlint", *args],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


def test_cli_json_output_on_violating_file(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nSTAMP = time.time()\n")
    proc = _run_cli(str(bad), "--format", "json")
    assert proc.returncode == 1
    payload = json.loads(proc.stdout)
    assert payload["counts"] == {"SIM001": 1}
    assert not payload["ok"]


def test_cli_list_rules():
    proc = _run_cli("--list-rules")
    assert proc.returncode == 0
    for code in ("SIM001", "SIM006"):
        assert code in proc.stdout


def test_cli_unknown_path_is_usage_error(tmp_path):
    proc = _run_cli(str(tmp_path / "missing_dir"))
    assert proc.returncode == 2


# ------------------------------------------------------------ acceptance gate
def test_baseline_allowlist_is_empty():
    assert load_baseline() == set()


def test_src_tree_is_simlint_clean():
    result = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
    assert result.ok, "\n".join(f.render() for f in result.findings)
    assert result.suppressed == 0, "the tree must be clean, not suppressed"
