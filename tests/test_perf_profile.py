"""The hot-path profiler: observational by contract, and the hot-path
allocation trims it guided.

``REPRO_PROFILE=1`` (or ``ServiceEngine(profile=True)``) must land a
stage-time table on the report without perturbing a single simulated
value — the engine wraps its stage methods but never changes them.  These
tests pin that contract, the profiler/StageProfile mechanics, and the
bit-exactness of the allocation trims the profile motivated (fast record
construction, the interleaved route fast path, the unrolled P² update).
"""

from __future__ import annotations

import pickle

import pytest

import repro.perf.profiler as profiler_module
from repro.engine.workload import StreamingTraceSource
from repro.metrics.service_stats import ServedQuery, WindowRecord, _percentile
from repro.metrics.streaming import P2Quantile
from repro.perf import HotPathProfiler, StageProfile, env_profile
from repro.service.service import QRAMService
from repro.service.sharding import InterleavedShardMap
from repro.workloads.generators import iter_poisson_trace


def _serve(profile=None, retention="full"):
    trace = iter_poisson_trace(
        8, 300, mean_interarrival=14.0, addresses_per_query=1,
        num_tenants=4, num_shards=2, seed=5,
    )
    service = QRAMService(8, num_shards=2, functional=False)
    return service.serve_workload(
        StreamingTraceSource(trace),
        retention=retention,
        telemetry_interval=2000.0,
        profile=profile,
    )


# --------------------------------------------------------------------------
# Observational contract
# --------------------------------------------------------------------------
def test_profiled_run_is_observational():
    """profile=True changes nothing but the report's profile field."""
    plain = _serve(profile=False)
    profiled = _serve(profile=True)
    assert plain.profile is None
    assert profiled.profile is not None
    assert profiled.served == plain.served
    assert profiled.windows == plain.windows
    assert profiled.stats == plain.stats
    assert profiled.telemetry == plain.telemetry


def test_profile_counts_match_run_shape():
    """Stage counts equal the run's actual event counts."""
    report = _serve(profile=True)
    counts = report.profile.counts
    assert counts["admission"] == 300
    assert counts["sketch_update"] == len(report.served) == 300
    assert counts["window_execute"] == len(report.windows)
    assert counts["run_window"] == len(report.windows)
    # No wall clock was injected: counting only, zero seconds.
    assert not report.profile.timed
    assert all(spent == 0.0 for spent in report.profile.seconds.values())


def test_env_variable_enables_profiling(monkeypatch):
    monkeypatch.setenv(profiler_module.PROFILE_ENV, "1")
    assert env_profile()
    report = _serve(profile=None)
    assert report.profile is not None
    monkeypatch.setenv(profiler_module.PROFILE_ENV, "0")
    assert not env_profile()
    assert _serve(profile=None).profile is None


def test_engine_reusable_after_profiled_run():
    """A second run on the same engine must not double-count stages."""
    from repro.engine.core import ServiceEngine

    service = QRAMService(8, num_shards=2, functional=False)
    engine = ServiceEngine(service, retention="full", profile=True)

    def trace():
        return iter_poisson_trace(
            8, 100, mean_interarrival=14.0, addresses_per_query=1,
            num_tenants=2, num_shards=2, seed=3,
        )

    first = engine.run(StreamingTraceSource(trace()))
    second = engine.run(StreamingTraceSource(trace()))
    assert first.profile.counts == second.profile.counts
    assert first.stats == second.stats


# --------------------------------------------------------------------------
# Profiler / StageProfile mechanics
# --------------------------------------------------------------------------
def test_profiler_counts_without_clock():
    profiler = HotPathProfiler()
    work = profiler.timed("stage", lambda x: x + 1)
    assert work(1) == 2 and work(2) == 3
    snapshot = profiler.snapshot()
    assert snapshot.counts == {"stage": 2}
    assert not snapshot.timed


def test_profiler_times_with_injected_clock(monkeypatch):
    ticks = iter(range(100))
    monkeypatch.setattr(profiler_module, "host_clock", lambda: float(next(ticks)))
    profiler = HotPathProfiler()
    assert profiler.call("once", lambda: "done") == "done"
    wrapped = profiler.timed("wrapped", lambda: None)
    wrapped()
    snapshot = profiler.snapshot()
    assert snapshot.timed
    assert snapshot.counts == {"once": 1, "wrapped": 1}
    assert snapshot.seconds["once"] == 1.0
    assert snapshot.seconds["wrapped"] == 1.0


def test_stage_profile_merge_and_table():
    first = StageProfile(counts={"a": 2, "b": 1}, seconds={"a": 0.5}, timed=True)
    second = StageProfile(counts={"a": 3, "c": 4}, seconds={"a": 0.25, "c": 1.0})
    merged = first.merged(second)
    assert merged.counts == {"a": 5, "b": 1, "c": 4}
    assert merged.seconds == {"a": 0.75, "c": 1.0}
    assert merged.timed
    table = merged.table()
    assert "stage" in table and "a" in table and "c" in table
    assert StageProfile().table() == "(no profiled stages)"
    assert pickle.loads(pickle.dumps(merged)) == merged


# --------------------------------------------------------------------------
# Hot-path trim parity (profile-guided allocation trims)
# --------------------------------------------------------------------------
def test_fast_record_constructors_equal_normal_construction():
    fields = dict(
        query_id=7, tenant=1, shard=0, request_time=10.0, admit_layer=12.0,
        start_layer=13.0, finish_layer=20.0, fidelity=0.99,
        architecture="Fat-Tree", deadline=None, predicted_fidelity=0.99,
        min_fidelity=None, distillation_copies=1,
    )
    fast = ServedQuery._from_fields(**fields)
    normal = ServedQuery(**fields)
    assert fast == normal
    assert hash(fast) == hash(normal)
    assert fast.latency_layers == normal.latency_layers
    assert pickle.loads(pickle.dumps(fast)) == normal

    window_fields = dict(
        shard=0, admit_layer=5.0, batch_size=4, interval=3,
        total_layers=30.0, architecture="BB",
    )
    assert WindowRecord._from_fields(**window_fields) == WindowRecord(
        **window_fields
    )


def test_interleaved_route_single_address_fast_path():
    shard_map = InterleavedShardMap(16, 4)
    for address in range(16):
        amplitudes = {address: 0.6 + 0.8j}
        assert shard_map.route(amplitudes) == (
            address % 4, {address // 4: 0.6 + 0.8j}
        )
    with pytest.raises(ValueError):
        shard_map.route({16: 1.0})
    # Multi-address superpositions still validate shard alignment.
    assert shard_map.route({1: 0.5, 5: 0.5}) == (1, {0: 0.5, 1: 0.5})
    with pytest.raises(ValueError):
        shard_map.route({0: 0.5, 1: 0.5})


class _ReferenceP2:
    """The original P² update, verbatim (the pinned oracle for the
    unrolled hot-path version)."""

    def __init__(self, quantile):
        self.quantile = quantile
        self._count = 0
        self._heights = []
        self._positions = []
        self._desired = []
        self._increments = [
            0.0, quantile / 2.0, quantile, (1.0 + quantile) / 2.0, 1.0
        ]

    def add(self, value):
        self._count += 1
        heights = self._heights
        if self._count <= 5:
            heights.append(value)
            heights.sort()
            if self._count == 5:
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0 + 4.0 * inc for inc in self._increments]
            return
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 3
            for i in range(1, 4):
                if value < heights[i]:
                    cell = i - 1
                    break
        positions = self._positions
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1.0 and positions[i + 1] - positions[i] > 1.0) or (
                delta <= -1.0 and positions[i - 1] - positions[i] < -1.0
            ):
                step = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(i, step)
                if not heights[i - 1] < candidate < heights[i + 1]:
                    candidate = self._linear(i, step)
                heights[i] = candidate
                positions[i] += step

    def _parabolic(self, i, step):
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i, step):
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def value(self):
        if not self._count:
            return 0.0
        if self._count <= 5:
            return _percentile(self._heights, self.quantile * 100.0)
        return self._heights[2]


@pytest.mark.parametrize("quantile", [0.5, 0.9, 0.95, 0.99])
def test_p2_unrolled_update_bitwise_parity(quantile):
    """The unrolled P² add matches the original loop state for state."""
    import numpy as np

    rng = np.random.default_rng(42)
    optimized = P2Quantile(quantile)
    reference = _ReferenceP2(quantile)
    for value in rng.exponential(25.0, size=5000).tolist():
        optimized.add(value)
        reference.add(value)
    assert [h.hex() for h in optimized._heights] == [
        h.hex() for h in reference._heights
    ]
    assert optimized._positions == reference._positions
    assert [d.hex() for d in optimized._desired] == [
        d.hex() for d in reference._desired
    ]
    assert optimized.value.hex() == reference.value.hex()
