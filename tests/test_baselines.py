"""Baseline architectures and the registry (Sec. 6.1, Table 1)."""

import math

import pytest

from repro.baselines import (
    DistributedBBQRAM,
    DistributedFatTreeQRAM,
    VirtualQRAM,
    architecture_names,
    build_architecture,
)
from repro.workloads import structured_data


def test_registry_contains_all_five_architectures():
    assert architecture_names() == ["Fat-Tree", "BB", "Virtual", "D-Fat-Tree", "D-BB"]
    with pytest.raises(KeyError):
        build_architecture("Unknown", 8)


@pytest.mark.parametrize("name", architecture_names())
def test_common_interface(name):
    qram = build_architecture(name, 64)
    assert qram.capacity == 64
    assert qram.qubit_count > 0
    assert qram.query_parallelism >= 1
    assert qram.single_query_latency() > 0
    assert qram.parallel_query_latency(6) >= qram.amortized_query_latency(6)


def test_table1_qubit_counts():
    n = 10
    capacity = 2**n
    assert build_architecture("Fat-Tree", capacity).qubit_count == 16 * capacity
    assert build_architecture("BB", capacity).qubit_count == 8 * capacity
    assert build_architecture("Virtual", capacity).qubit_count == 16 * capacity
    assert build_architecture("D-Fat-Tree", capacity).qubit_count == 16 * capacity * n
    assert build_architecture("D-BB", capacity).qubit_count == 8 * capacity * n


def test_table1_parallelism():
    capacity = 1024
    assert build_architecture("Fat-Tree", capacity).query_parallelism == 10
    assert build_architecture("BB", capacity).query_parallelism == 1
    assert build_architecture("Virtual", capacity).query_parallelism == 10
    assert build_architecture("D-Fat-Tree", capacity).query_parallelism == 100
    assert build_architecture("D-BB", capacity).query_parallelism == 10


def test_virtual_qram_structure_and_latency():
    virtual = VirtualQRAM(1024)
    assert virtual.num_pages * virtual.page_size == 1024
    assert virtual.page_size >= 2
    # Latency grows ~ log^2 N and exceeds both BB and Fat-Tree.
    bb = build_architecture("BB", 1024)
    ft = build_architecture("Fat-Tree", 1024)
    assert virtual.single_query_latency() > bb.single_query_latency()
    assert virtual.single_query_latency() > ft.single_query_latency()
    closed_form = VirtualQRAM.paper_closed_form_latency(1024)
    assert closed_form == pytest.approx(
        4 * 100 + 4.0625 * 10 - 40 * math.log2(10), rel=1e-12
    )
    # The implemented configuration is within ~15% of the closed form
    # (difference comes from rounding the page count to a power of two).
    assert virtual.single_query_latency() == pytest.approx(closed_form, rel=0.15)


def test_virtual_qram_functional_query():
    data = structured_data(16, "alternating")
    virtual = VirtualQRAM(16, data)
    out = virtual.query({1: 1.0, 9: 1.0, 4: 1.0})
    assert set(out) == {(1, 1), (9, 1), (4, 0)}
    total = sum(abs(a) ** 2 for a in out.values())
    assert total == pytest.approx(1.0)


def test_virtual_rejects_bad_page_configuration():
    with pytest.raises(ValueError):
        VirtualQRAM(16, num_pages=3)
    with pytest.raises(ValueError):
        VirtualQRAM(4, num_pages=4)


def test_distributed_copies_and_memory_mirroring():
    dbb = DistributedBBQRAM(16)
    assert dbb.num_copies == 4
    dbb.write_memory(3, 1)
    assert all(copy.data[3] == 1 for copy in dbb.copies)
    out = dbb.query({3: 1.0}, copy_index=2)
    assert set(out) == {(3, 1)}


def test_distributed_latency_spreads_queries():
    dft = DistributedFatTreeQRAM(1024)
    assert dft.parallel_query_latency(10) == pytest.approx(82.375)
    assert dft.amortized_query_latency(10) == pytest.approx(8.2375)
    dbb = DistributedBBQRAM(1024)
    assert dbb.parallel_query_latency(10) == pytest.approx(80.125)
    assert dbb.bandwidth() == pytest.approx(10 * 1e6 / 80.125)


def test_fat_tree_beats_bb_for_parallel_queries_at_equal_qubits():
    """The headline comparison: same O(N) qubits, log N queries."""
    for capacity in (64, 256, 1024):
        ft = build_architecture("Fat-Tree", capacity)
        bb = build_architecture("BB", capacity)
        virtual = build_architecture("Virtual", capacity)
        n = int(math.log2(capacity))
        assert ft.parallel_query_latency(n) < bb.parallel_query_latency(n)
        assert ft.parallel_query_latency(n) < virtual.parallel_query_latency(n)
        # The gap grows with capacity (asymptotic advantage).
    gap_small = build_architecture("BB", 64).parallel_query_latency(6) / \
        build_architecture("Fat-Tree", 64).parallel_query_latency(6)
    gap_large = build_architecture("BB", 1024).parallel_query_latency(10) / \
        build_architecture("Fat-Tree", 1024).parallel_query_latency(10)
    assert gap_large > gap_small
