"""The declarative scenario layer: validation, round-trips, bit-identity.

Four pillars:

* **field-precise validation** — every bad field raises a
  :class:`~repro.scenarios.SpecError` naming ``Class.field``, and fields
  a workload kind ignores cannot carry non-default values;
* **JSON round-trips** — ``to_dict``/``from_dict`` and
  ``to_json``/``from_json`` reproduce every spec exactly, and unknown
  keys are rejected at every section;
* **bit-identity** — for every ported example scenario, the spec-built
  run produces the *identical* ``ServiceReport`` the original
  hand-wired construction produces (the tentpole contract: the
  declarative layer adds vocabulary, never behaviour);
* **characterization** — each adversarial library scenario
  deterministically reproduces its pinned accounting signature.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path

import pytest

from repro import (
    AutoscalerConfig,
    QRAMService,
    ServiceEngine,
    StreamingTraceSource,
    TraceSource,
    backend_names,
)
from repro.engine import PartitionedTraceSource
from repro.hardware.parameters import TABLE3_PARAMETERS
from repro.metrics.sinks import JsonlSink
from repro.scenarios import (
    FleetSpec,
    PolicySpec,
    RunSpec,
    ScenarioSpec,
    SpecError,
    WorkloadSpec,
    library_names,
    library_scenario,
)
from repro.workloads import (
    bursty_trace,
    closed_loop_source,
    iter_poisson_trace,
    poisson_trace,
    random_data,
)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _example(name: str):
    """Load one ``examples/`` module by file path (they are not a package)."""
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ------------------------------------------------------------------ validation
class TestFleetSpecValidation:
    def test_capacity_must_be_power_of_two(self):
        with pytest.raises(SpecError, match="FleetSpec.capacity"):
            FleetSpec(capacity=24)
        with pytest.raises(SpecError, match="FleetSpec.capacity"):
            FleetSpec(capacity=0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SpecError, match="FleetSpec.shards"):
            FleetSpec(capacity=16, shards=("Fat-Tree", "NoSuchTree"))

    def test_unencodable_distance_rejected(self):
        with pytest.raises(SpecError, match="FleetSpec.shards"):
            FleetSpec(capacity=16, shards=("Fat-Tree@dX",))

    def test_interleaved_divisibility(self):
        with pytest.raises(SpecError, match="interleaved"):
            FleetSpec(capacity=16, shards=("Fat-Tree",) * 3)
        # The same shard count is fine replicated.
        FleetSpec(
            capacity=16, shards=("Fat-Tree",) * 3, placement="shortest-queue"
        )

    def test_bad_placement(self):
        with pytest.raises(SpecError, match="FleetSpec.placement"):
            FleetSpec(capacity=16, placement="round-robin")

    def test_bad_data_pattern_and_density(self):
        with pytest.raises(SpecError, match="FleetSpec.data "):
            FleetSpec(capacity=16, data="striped")
        with pytest.raises(SpecError, match="FleetSpec.data_density"):
            FleetSpec(capacity=16, data="random", data_density=1.5)

    def test_bad_window_size(self):
        with pytest.raises(SpecError, match="FleetSpec.window_size"):
            FleetSpec(capacity=16, window_size=0)


class TestWorkloadSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(SpecError, match="WorkloadSpec.kind"):
            WorkloadSpec(kind="tsunami")

    def test_inapplicable_field_rejected(self):
        with pytest.raises(SpecError, match="WorkloadSpec.crowd_size"):
            WorkloadSpec(
                kind="poisson", num_queries=10, mean_interarrival=5.0,
                crowd_size=3,
            )
        with pytest.raises(SpecError, match="WorkloadSpec.think_layers"):
            WorkloadSpec(
                kind="bursty", num_bursts=2, burst_size=4, burst_spacing=10.0,
                think_layers=5.0,
            )

    def test_kind_positivity(self):
        with pytest.raises(SpecError, match="WorkloadSpec.num_queries"):
            WorkloadSpec(kind="poisson", num_queries=0, mean_interarrival=5.0)
        with pytest.raises(SpecError, match="WorkloadSpec.mean_interarrival"):
            WorkloadSpec(kind="poisson", num_queries=10, mean_interarrival=0.0)
        with pytest.raises(SpecError, match="WorkloadSpec.crowd_size"):
            WorkloadSpec(
                kind="flash-crowd", num_queries=10, mean_interarrival=5.0,
                crowd_size=0,
            )

    def test_diurnal_amplitude_range(self):
        with pytest.raises(SpecError, match="WorkloadSpec.amplitude"):
            WorkloadSpec(
                kind="diurnal", num_queries=10, mean_interarrival=5.0,
                period=100.0, amplitude=1.0,
            )

    def test_closed_loop_requires_trace_delivery(self):
        with pytest.raises(SpecError, match="WorkloadSpec.delivery"):
            WorkloadSpec(
                kind="closed-loop", num_clients=2, queries_per_client=3,
                delivery="streaming",
            )

    def test_replay_requires_path(self):
        with pytest.raises(SpecError, match="WorkloadSpec.path"):
            WorkloadSpec(kind="replay")

    def test_tenant_weights_length(self):
        with pytest.raises(SpecError, match="WorkloadSpec.tenant_weights"):
            WorkloadSpec(
                kind="poisson", num_queries=10, mean_interarrival=5.0,
                num_tenants=3, tenant_weights=(0.5, 0.5),
            )

    def test_min_fidelity_range(self):
        with pytest.raises(SpecError, match="WorkloadSpec.min_fidelity"):
            WorkloadSpec(
                kind="poisson", num_queries=10, mean_interarrival=5.0,
                min_fidelity=1.5,
            )

    def test_deadline_positive(self):
        with pytest.raises(SpecError, match="WorkloadSpec.deadline_layers"):
            WorkloadSpec(
                kind="poisson", num_queries=10, mean_interarrival=5.0,
                deadline_layers=0.0,
            )


class TestPolicyRunValidation:
    def test_unknown_admission(self):
        with pytest.raises(SpecError, match="PolicySpec.admission"):
            PolicySpec(admission="fair-share")

    def test_bad_queue_depth(self):
        with pytest.raises(SpecError, match="PolicySpec.max_queue_depth"):
            PolicySpec(max_queue_depth=0)

    def test_bad_retention(self):
        with pytest.raises(SpecError, match="RunSpec.retention"):
            RunSpec(retention="some")

    def test_bad_clops_workers_telemetry(self):
        with pytest.raises(SpecError, match="RunSpec.clops"):
            RunSpec(clops=0.0)
        with pytest.raises(SpecError, match="RunSpec.workers"):
            RunSpec(workers=-1)
        with pytest.raises(SpecError, match="RunSpec.telemetry_interval"):
            RunSpec(telemetry_interval=0.0)

    def test_autoscaler_needs_shortest_queue(self):
        config = AutoscalerConfig(
            period=100.0, high_watermark=4, low_watermark=0,
            min_shards=1, max_shards=2,
        )
        with pytest.raises(SpecError, match="shortest-queue"):
            ScenarioSpec(
                fleet=FleetSpec(capacity=16),
                workload=WorkloadSpec(
                    kind="poisson", num_queries=5, mean_interarrival=5.0
                ),
                policy=PolicySpec(autoscaler=config),
            )

    def test_shard_weights_must_match_fleet(self):
        with pytest.raises(SpecError, match="WorkloadSpec.shard_weights"):
            ScenarioSpec(
                fleet=FleetSpec(capacity=16, shards=("Fat-Tree", "Fat-Tree")),
                workload=WorkloadSpec(
                    kind="poisson", num_queries=5, mean_interarrival=5.0,
                    shard_weights=(0.5, 0.3, 0.2),
                ),
            )


# ----------------------------------------------------------------- round-trip
def _scenario_corpus() -> dict[str, ScenarioSpec]:
    corpus = {name: library_scenario(name) for name in library_names()}
    corpus["maximal"] = ScenarioSpec(
        name="maximal",
        fleet=FleetSpec(
            capacity=32,
            shards=("Fat-Tree", "Fat-Tree@d3", "BB"),
            placement="shortest-queue",
            window_size=2,
            functional=False,
            data="random",
            data_seed=9,
            data_density=0.25,
            parameters=TABLE3_PARAMETERS[1e-4],
        ),
        workload=WorkloadSpec(
            kind="poisson",
            num_queries=7,
            mean_interarrival=11.0,
            num_tenants=2,
            seed=42,
            deadline_layers=500.0,
            min_fidelity=0.5,
            tenant_weights=(0.75, 0.25),
            shard_weights=(1.0,),
            delivery="streaming",
        ),
        policy=PolicySpec(
            admission="random",
            admission_seed=13,
            max_queue_depth=5,
            shed_expired=True,
            autoscaler=AutoscalerConfig(
                period=50.0, high_watermark=3, low_watermark=1,
                min_shards=1, max_shards=4,
            ),
        ),
        run=RunSpec(
            retention="sampled",
            sample_size=8,
            sample_seed=3,
            telemetry_interval=250.0,
            max_distillation_copies=2,
            workers=0,
            sanitize=True,
            clops=2.0e6,
        ),
    )
    return corpus


@pytest.mark.parametrize("name", [*library_names(), "maximal"])
def test_round_trip(name):
    spec = _scenario_corpus()[name]
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec
    assert ScenarioSpec.from_json(spec.to_json()) == spec


@pytest.mark.parametrize(
    "section", ["top", "fleet", "workload", "policy", "run"]
)
def test_unknown_keys_rejected(section):
    payload = library_scenario("flash-crowd").to_dict()
    if section == "top":
        payload["extra"] = 1
        expected = "ScenarioSpec"
    else:
        payload[section][f"{section}_extra"] = 1
        expected = {
            "fleet": "FleetSpec", "workload": "WorkloadSpec",
            "policy": "PolicySpec", "run": "RunSpec",
        }[section]
    with pytest.raises(SpecError, match=f"unknown {expected} key"):
        ScenarioSpec.from_dict(payload)


def test_nested_config_unknown_keys_rejected():
    payload = ScenarioSpec(
        fleet=FleetSpec(capacity=16, parameters=TABLE3_PARAMETERS[1e-4]),
        workload=WorkloadSpec(
            kind="poisson", num_queries=4, mean_interarrival=5.0
        ),
    ).to_dict()
    payload["fleet"]["parameters"]["epsilon_zero"] = 1.0
    with pytest.raises(SpecError, match="FleetSpec.parameters"):
        ScenarioSpec.from_dict(payload)


def test_missing_required_sections():
    with pytest.raises(SpecError, match="'fleet' and 'workload'"):
        ScenarioSpec.from_dict({"name": "empty"})


# --------------------------------------------------- example bit-identity
def test_serving_traffic_bit_identity():
    spec = _example("serving_traffic").SCENARIOS["traffic"]
    service = QRAMService(16, num_shards=2, data=random_data(16, seed=1))
    trace = poisson_trace(
        16, 100, mean_interarrival=8.0, num_tenants=3, num_shards=2, seed=7
    )
    assert spec.execute() == service.serve(trace)


def test_serving_closed_loop_bit_identity():
    scenarios = _example("serving_closed_loop").SCENARIOS

    service = QRAMService(16, num_shards=2, data=random_data(16, seed=1))
    trace = poisson_trace(
        16, 40, mean_interarrival=8.0, num_tenants=4, num_shards=2, seed=7
    )
    assert scenarios["open-loop"].execute() == service.serve(trace)

    service = QRAMService(16, num_shards=2, functional=False)
    source = closed_loop_source(
        16, num_clients=4, queries_per_client=8, think_layers=60.0,
        num_shards=2, seed=3,
    )
    assert scenarios["closed-loop"].execute() == service.serve_workload(source)

    service = QRAMService(16, num_shards=2, functional=False, policy="edf")
    trace = poisson_trace(
        16, 60, mean_interarrival=2.0, num_tenants=4, num_shards=2, seed=5,
        deadline_layers=180.0,
    )
    assert scenarios["slo-aware"].execute() == service.serve_workload(
        TraceSource(trace), max_queue_depth=6, shed_expired=True
    )

    service = QRAMService(
        16, num_shards=1, functional=False, placement="shortest-queue"
    )
    trace = bursty_trace(16, 2, 12, 40_000.0)
    config = AutoscalerConfig(
        period=100.0, high_watermark=4, low_watermark=0,
        min_shards=1, max_shards=3,
    )
    report = service.serve_workload(TraceSource(trace), autoscaler=config)
    assert scenarios["elastic"].execute() == report
    assert any(event.action == "up" for event in report.scale_events)


def test_serving_mixed_backends_bit_identity():
    scenarios = _example("serving_mixed_backends").SCENARIOS

    data = random_data(32, seed=1)
    service = QRAMService(
        32, num_shards=4, data=data,
        architectures=["Fat-Tree", "Fat-Tree", "BB", "Virtual"],
    )
    trace = poisson_trace(
        32, 60, mean_interarrival=6.0, num_tenants=3, num_shards=4, seed=7
    )
    assert scenarios["interleaved"].execute() == service.serve(trace)

    fleet = backend_names()
    service = QRAMService(
        32, num_shards=len(fleet), data=data, architectures=fleet,
        placement="shortest-queue", functional=False,
    )
    trace = poisson_trace(
        32, 60, mean_interarrival=3.0, num_tenants=3, num_shards=1, seed=11
    )
    assert scenarios["replicated"].execute() == service.serve(trace)


def test_serving_fidelity_slo_bit_identity():
    scenarios = _example("serving_fidelity_slo").SCENARIOS
    params = TABLE3_PARAMETERS[1e-4]

    service = QRAMService(
        16, num_shards=2, functional=False, parameters=params
    )
    trace = poisson_trace(
        16, 24, mean_interarrival=10.0, num_tenants=3, num_shards=2, seed=7
    )
    assert scenarios["predicted-fidelity"].execute() == service.serve(trace)

    service = QRAMService(
        16, num_shards=2, functional=False,
        architectures=["Fat-Tree", "Fat-Tree@d3"],
        placement="shortest-queue", parameters=params,
    )
    trace = poisson_trace(
        16, 24, mean_interarrival=40.0, num_tenants=3, seed=5,
        min_fidelity=0.995,
    )
    assert scenarios["mixed-encoded"].execute() == service.serve_workload(
        TraceSource(trace)
    )

    service = QRAMService(
        16, num_shards=1, functional=False, parameters=params
    )
    solo = service.shards[0].predicted_query_fidelity()
    target = 1.0 - (1.0 - solo) ** 2 * 2.0
    trace = poisson_trace(
        16, 12, mean_interarrival=120.0, seed=3, min_fidelity=target
    )
    report = service.serve_workload(
        TraceSource(trace), max_distillation_copies=4
    )
    assert scenarios["distillation-retry"].execute() == report
    assert all(r.distillation_copies == 2 for r in report.served)


def test_serving_parallel_bit_identity():
    scenarios = _example("serving_parallel").SCENARIOS

    service = QRAMService(16, num_shards=4, data=random_data(16, seed=3))
    requests = poisson_trace(
        16, 48, mean_interarrival=6.0, num_tenants=3, num_shards=4, seed=11
    )
    oracle = ServiceEngine(service, workers=0).run(TraceSource(requests))
    assert scenarios["oracle"].execute() == oracle

    def factory(shards=None):
        return iter_poisson_trace(
            16, 48, mean_interarrival=6.0, num_tenants=3, num_shards=4,
            seed=11, shards=shards,
        )

    service = QRAMService(16, num_shards=4, data=random_data(16, seed=3))
    lazy = ServiceEngine(service, workers=2, retention="none").run(
        PartitionedTraceSource(factory)
    )
    assert scenarios["lazy-partitioned"].execute() == lazy

    fallback = scenarios["fallback"].execute()
    assert fallback.parallel is not None
    assert fallback.parallel.workers == 0
    assert fallback.parallel.fallback_reason is not None


def test_serving_scale_telemetry_bit_identity():
    spec = _example("serving_scale_telemetry").SCENARIOS["telemetry"]
    trace = iter_poisson_trace(
        16, 20_000, mean_interarrival=16.0, addresses_per_query=1,
        num_tenants=4, num_shards=2, seed=5,
    )
    service = QRAMService(16, num_shards=2, functional=False)
    report = service.serve_workload(
        StreamingTraceSource(trace), retention="none",
        telemetry_interval=10_000.0,
    )
    assert spec.execute() == report
    assert report.served == [] and len(report.telemetry) >= 12


# ------------------------------------------------------------ library pins
#: The deterministic accounting signature of each adversarial scenario.
_LIBRARY_PINS = {
    "diurnal-cycle": dict(offered=120, served=120, rejected=0, shed=0),
    "flash-crowd": dict(offered=120, served=76, rejected=44, shed=0),
    "hot-key-skew": dict(offered=120, served=120, rejected=0, shed=0),
    "misbehaving-tenant": dict(offered=150, served=53, rejected=97, shed=0),
    "deadline-impossible": dict(offered=80, served=24, rejected=0, shed=56),
}


@pytest.mark.parametrize("name", sorted(_LIBRARY_PINS))
def test_library_characterization(name):
    pins = _LIBRARY_PINS[name]
    stats = library_scenario(name).execute().stats
    assert stats.offered_queries == pins["offered"]
    assert stats.total_queries == pins["served"]
    assert stats.rejected_queries == pins["rejected"]
    assert stats.shed_queries == pins["shed"]


def test_library_signatures():
    """Each scenario stresses what its name says."""
    skew = library_scenario("hot-key-skew").execute().stats.per_shard
    hot = max(skew.values(), key=lambda s: s.queries)
    assert hot.queries >= 101  # 85% weight on one of four shards

    tenants = library_scenario("misbehaving-tenant").execute().stats.per_tenant
    flooder = tenants[0]
    assert flooder.queries > sum(
        t.queries for tenant, t in tenants.items() if tenant != 0
    )

    impossible = library_scenario("deadline-impossible").execute().stats
    assert impossible.deadline_misses >= impossible.shed_queries
    assert impossible.total_queries > 0

    with pytest.raises(KeyError, match="unknown library scenario"):
        library_scenario("unknown-name")


# ------------------------------------------------------------------- replay
def test_jsonl_replay_round_trip(tmp_path):
    """A recorded run replays through WorkloadSpec(kind='replay')."""
    base = library_scenario("flash-crowd")
    path = tmp_path / "recorded.jsonl"
    with JsonlSink(str(path)) as sink:
        recorded = base.execute(sink=sink)

    replay = ScenarioSpec(
        name="replayed",
        fleet=base.fleet,
        workload=WorkloadSpec(
            kind="replay", path=str(path), addresses_per_query=1, seed=0
        ),
        policy=base.policy,
    )
    report = replay.execute()
    stats = report.stats
    # Served + rejected arrivals of the original run are re-offered.
    assert stats.offered_queries == (
        recorded.stats.total_queries + recorded.stats.rejected_queries
    )
    assert stats.offered_queries == (
        stats.total_queries + stats.rejected_queries + stats.shed_queries
    )
    # Replay is deterministic.
    assert replay.execute() == report


def test_replay_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    spec = ScenarioSpec(
        fleet=FleetSpec(capacity=16),
        workload=WorkloadSpec(kind="replay", path=str(path)),
    )
    with pytest.raises(SpecError, match="no replayable records"):
        spec.execute()
