"""Unit tests for the gate library."""

import numpy as np
import pytest

from repro.sim.gates import (
    GATES,
    controlled_swap_unitary,
    gate_unitary,
    is_permutation_gate,
    ry_unitary,
    swap_unitary,
)


@pytest.mark.parametrize("name", list(GATES))
def test_every_gate_is_unitary(name):
    if GATES[name].is_parametric:
        matrix = gate_unitary(name, theta=0.7)
    else:
        matrix = gate_unitary(name)
    dim = matrix.shape[0]
    assert matrix.shape == (dim, dim)
    assert np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=1e-12)


@pytest.mark.parametrize("name", ["X", "CX", "CCX", "SWAP", "CSWAP", "ANTI_CSWAP"])
def test_permutation_gates_are_self_inverse(name):
    matrix = gate_unitary(name)
    assert np.allclose(matrix @ matrix, np.eye(matrix.shape[0]), atol=1e-12)


def test_cswap_routes_on_control_one():
    cswap = controlled_swap_unitary()
    # |1,0,1> (control=1, a=0, b=1) -> |1,1,0>
    state = np.zeros(8)
    state[0b101] = 1.0
    out = cswap @ state
    assert np.isclose(out[0b110], 1.0)


def test_anti_cswap_routes_on_control_zero():
    anti = gate_unitary("ANTI_CSWAP")
    state = np.zeros(8)
    state[0b001] = 1.0  # control=0, a=0, b=1
    out = anti @ state
    assert np.isclose(out[0b010], 1.0)
    # control=1 leaves targets alone
    state = np.zeros(8)
    state[0b101] = 1.0
    out = anti @ state
    assert np.isclose(out[0b101], 1.0)


def test_permutation_bit_actions_match_unitaries():
    for name in ("X", "CX", "CCX", "SWAP", "CSWAP", "ANTI_CSWAP"):
        gate = GATES[name]
        k = gate.n_qubits
        matrix = gate_unitary(name)
        for value in range(2**k):
            bits = tuple((value >> (k - 1 - i)) & 1 for i in range(k))
            new_bits = gate.permute_bits(bits)
            new_value = 0
            for bit in new_bits:
                new_value = (new_value << 1) | bit
            column = matrix[:, value]
            assert np.isclose(abs(column[new_value]), 1.0)


def test_permute_bits_rejects_non_permutation_gates():
    with pytest.raises(ValueError):
        GATES["H"].permute_bits((0,))


def test_ry_rotation_angle():
    ry = ry_unitary(np.pi)
    # RY(pi)|0> = |1> up to sign convention
    out = ry @ np.array([1, 0], dtype=complex)
    assert np.isclose(abs(out[1]), 1.0)


def test_swap_unitary_swaps_basis_states():
    swap = swap_unitary()
    state = np.zeros(4)
    state[0b01] = 1.0
    assert np.isclose((swap @ state)[0b10], 1.0)


def test_unknown_gate_raises():
    with pytest.raises(KeyError):
        gate_unitary("FOO")
    assert not is_permutation_gate("FOO")


def test_parametric_gate_requires_theta():
    with pytest.raises(ValueError):
        gate_unitary("RY")
