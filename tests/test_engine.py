"""Discrete-event serving engine: determinism, closed loops, SLOs, scaling."""

import pytest

from repro import (
    AutoscalerConfig,
    ClosedLoopClient,
    ClosedLoopSource,
    QRAMService,
    QueryRequest,
    ServiceEngine,
    TraceSource,
)
from repro.engine.events import (
    Arrival,
    ClientThink,
    EventHeap,
    ScaleCheck,
    TelemetryTick,
    WindowDrain,
    WindowStart,
)
from repro.metrics.service_stats import REJECT_DEADLINE_EXPIRED, REJECT_QUEUE_FULL
from repro.scheduling.events import random_arrivals
from repro.workloads import (
    closed_loop_source,
    exponential_times,
    poisson_trace,
    random_data,
)


def _timing_signature(report):
    return [
        (s.query_id, s.tenant, s.shard, s.request_time, s.admit_layer,
         s.start_layer, s.finish_layer)
        for s in report.served
    ]


# ----------------------------------------------------------------- event heap
def test_event_heap_orders_by_time_then_priority():
    heap = EventHeap()
    heap.push(5.0, WindowStart(0))
    heap.push(5.0, Arrival(QueryRequest(0, {0: 1.0})))
    heap.push(5.0, WindowDrain(1))
    heap.push(1.0, WindowStart(2))
    kinds = [type(heap.pop()[1]) for _ in range(4)]
    # Earlier time first; at equal times arrivals < drains < starts.
    assert kinds == [WindowStart, Arrival, WindowDrain, WindowStart]


def test_event_priorities_are_unique_and_pinned():
    # The registry is part of the determinism contract (simlint SIM004):
    # renumbering silently changes every same-instant resolution order.
    priorities = {
        Arrival: 0,
        ClientThink: 1,
        WindowDrain: 2,
        ScaleCheck: 3,
        WindowStart: 4,
        TelemetryTick: 5,
    }
    for event_type, priority in priorities.items():
        assert event_type.PRIORITY == priority
    assert len(set(priorities.values())) == len(priorities)


def test_same_timestamp_events_pop_across_all_priority_levels():
    heap = EventHeap()
    q0, q1 = QueryRequest(0, {0: 1.0}), QueryRequest(1, {0: 1.0})
    scrambled = [
        WindowStart(0),
        Arrival(q0),
        TelemetryTick(),
        WindowDrain(0),
        ClientThink(1),
        ScaleCheck(),
        WindowStart(1),
        Arrival(q1),
        WindowDrain(1),
        ClientThink(2),
        ScaleCheck(),
        TelemetryTick(),
    ]
    for event in scrambled:
        heap.push(4.0, event)
    popped = [heap.pop()[1] for _ in range(len(scrambled))]
    # Priority levels resolve in order; within a level, insertion order.
    assert popped == [
        Arrival(q0),
        Arrival(q1),
        ClientThink(1),
        ClientThink(2),
        WindowDrain(0),
        WindowDrain(1),
        ScaleCheck(),
        ScaleCheck(),
        WindowStart(0),
        WindowStart(1),
        TelemetryTick(),
        TelemetryTick(),
    ]


def test_event_heap_ties_resolve_in_insertion_order_interleaved():
    heap = EventHeap()
    a, b, c, d = (Arrival(QueryRequest(i, {0: 1.0})) for i in range(4))
    heap.push(2.0, a)
    heap.push(2.0, b)
    assert heap.pop() == (2.0, a)
    heap.push(2.0, c)  # arrives after a pop, still behind b at t=2.0
    heap.push(1.0, d)  # earlier time beats every same-priority tie
    assert [heap.pop()[1] for _ in range(3)] == [d, b, c]
    assert not heap


def test_event_heap_key_shape_is_pinned():
    # (time, PRIORITY, sequence, event) — the shape SIM004 enforces; the
    # monotone sequence both breaks ties and keeps payloads un-compared.
    heap = EventHeap()
    heap.push(3.0, ScaleCheck())
    heap.push(3.0, ScaleCheck())
    sequences = []
    for entry in heap._heap:
        assert len(entry) == 4
        time, priority, sequence, event = entry
        assert time == 3.0
        assert priority == ScaleCheck.PRIORITY
        assert isinstance(event, ScaleCheck)
        sequences.append(sequence)
    assert sequences == sorted(sequences) and len(set(sequences)) == 2


# -------------------------------------------------- open loop == legacy serve
def test_open_loop_engine_matches_serve_wrapper():
    capacity = 16
    data = random_data(capacity, seed=3)
    trace = poisson_trace(capacity, 20, mean_interarrival=6.0, num_shards=2, seed=5)
    service = QRAMService(capacity, num_shards=2, data=data)
    via_wrapper = service.serve(trace)
    via_engine = ServiceEngine(service).run(TraceSource(trace))
    assert _timing_signature(via_wrapper) == _timing_signature(via_engine)
    assert via_wrapper.stats == via_engine.stats


def test_open_loop_runs_are_seed_stable():
    capacity = 16
    trace = poisson_trace(capacity, 30, mean_interarrival=4.0, num_shards=2, seed=9)
    service = QRAMService(capacity, num_shards=2, functional=False)
    first = service.serve(trace)
    second = service.serve(trace)
    assert _timing_signature(first) == _timing_signature(second)
    assert first.stats == second.stats


# ------------------------------------------------------------- closed loop
def test_closed_loop_runs_are_deterministic():
    capacity = 16
    service = QRAMService(capacity, num_shards=2, functional=False)
    reports = []
    for _ in range(2):
        source = closed_loop_source(
            capacity, num_clients=3, queries_per_client=4,
            think_layers=50.0, num_shards=2, seed=11,
        )
        reports.append(service.serve_workload(source))
    assert _timing_signature(reports[0]) == _timing_signature(reports[1])
    assert reports[0].stats == reports[1].stats
    assert reports[0].stats.total_queries == 12


def test_closed_loop_respects_think_time_feedback():
    """Each client's next request is issued exactly think_layers after its
    previous completion — arrivals depend on service latency."""
    capacity = 16
    think = 75.0
    service = QRAMService(capacity, num_shards=1, functional=False)
    source = closed_loop_source(
        capacity, num_clients=2, queries_per_client=5,
        think_layers=think, num_shards=1, seed=2,
    )
    report = service.serve_workload(source)
    assert report.stats.total_queries == 10
    by_client = {}
    for record in sorted(report.served, key=lambda s: s.request_time):
        by_client.setdefault(record.tenant, []).append(record)
    for records in by_client.values():
        assert len(records) == 5
        for previous, current in zip(records, records[1:]):
            assert current.request_time == pytest.approx(
                previous.finish_layer + think
            )


def test_closed_loop_client_validation():
    with pytest.raises(ValueError):
        ClosedLoopClient(0, queries=-1, think_layers=1.0)
    with pytest.raises(ValueError):
        ClosedLoopClient(0, queries=1, think_layers=-1.0)
    with pytest.raises(ValueError):
        ClosedLoopSource([], lambda client, index: {0: 1.0})
    duplicate = [
        ClosedLoopClient(0, queries=1, think_layers=0.0),
        ClosedLoopClient(0, queries=1, think_layers=0.0),
    ]
    with pytest.raises(ValueError):
        ClosedLoopSource(duplicate, lambda client, index: {0: 1.0})


# ----------------------------------------------------------------------- EDF
def test_edf_admits_in_deadline_order():
    capacity = 8
    # One shard, windows of one query: admission order is fully visible.
    # Deadlines are the reverse of arrival/id order.
    requests = [
        QueryRequest(i, {i % capacity: 1.0}, request_time=0.0,
                     deadline=1000.0 - 100 * i)
        for i in range(4)
    ]
    edf = QRAMService(capacity, num_shards=1, window_size=1,
                      functional=False, policy="edf")
    report = edf.serve(requests)
    admit_order = [s.query_id for s in sorted(report.served,
                                              key=lambda s: s.start_layer)]
    assert admit_order == [3, 2, 1, 0]

    fifo = QRAMService(capacity, num_shards=1, window_size=1, functional=False)
    report = fifo.serve(requests)
    admit_order = [s.query_id for s in sorted(report.served,
                                              key=lambda s: s.start_layer)]
    assert admit_order == [0, 1, 2, 3]


def test_edf_orders_best_effort_last():
    capacity = 8
    requests = [
        QueryRequest(0, {0: 1.0}, request_time=0.0, deadline=None),
        QueryRequest(1, {1: 1.0}, request_time=0.0, deadline=500.0),
    ]
    service = QRAMService(capacity, num_shards=1, window_size=1,
                          functional=False, policy="edf")
    report = service.serve(requests)
    order = [s.query_id for s in sorted(report.served,
                                        key=lambda s: s.start_layer)]
    assert order == [1, 0]


# --------------------------------------------------------------- backpressure
def test_bounded_queue_rejects_overflow():
    capacity = 8
    requests = [
        QueryRequest(i, {i % capacity: 1.0}, request_time=0.0) for i in range(10)
    ]
    service = QRAMService(capacity, num_shards=1, window_size=1, functional=False)
    report = service.serve_workload(TraceSource(requests), max_queue_depth=2)
    # All 10 arrive at t=0: the first two enter the bounded queue, the rest
    # are rejected before any window starts.
    assert report.stats.total_queries == 2
    assert report.stats.rejected_queries == 8
    assert report.stats.offered_queries == 10
    assert len(report.rejected) == 8
    assert all(r.reason == REJECT_QUEUE_FULL for r in report.rejected)
    assert {r.query_id for r in report.rejected} == set(range(2, 10))


def test_expired_deadlines_are_shed():
    capacity = 8
    # A burst with deadlines only the first window can meet; the stragglers
    # expire while queued and are shed, never executed.
    requests = [
        QueryRequest(i, {i % capacity: 1.0}, request_time=0.0, deadline=60.0)
        for i in range(6)
    ]
    service = QRAMService(capacity, num_shards=1, window_size=1, functional=False)
    report = service.serve_workload(TraceSource(requests), shed_expired=True)
    shed = [r for r in report.rejected if r.reason == REJECT_DEADLINE_EXPIRED]
    assert report.stats.shed_queries == len(shed) > 0
    assert report.stats.total_queries + len(shed) == 6
    assert report.stats.rejected_queries == 0
    # Every shed request is a deadline miss; the rate covers served + shed.
    assert report.stats.deadline_misses >= len(shed)
    assert 0.0 < report.stats.deadline_miss_rate <= 1.0


def test_closed_loop_clients_survive_rejections():
    """A rejected request must not stall its closed-loop client: the client
    learns of the failure and issues its remaining queries, so every query
    of the fleet is eventually offered (served or rejected)."""
    capacity = 8
    service = QRAMService(capacity, num_shards=1, window_size=1, functional=False)
    source = closed_loop_source(
        capacity, num_clients=6, queries_per_client=4,
        think_layers=0.0, num_shards=1, seed=1,
    )
    report = service.serve_workload(source, max_queue_depth=2)
    offered = report.stats.total_queries + len(report.rejected)
    assert offered == source.total_queries == 24
    assert len(report.rejected) > 0


def test_all_shed_tenant_appears_in_per_tenant_stats():
    capacity = 8
    # Tenant 1's only request has an already-tight deadline behind a long
    # window; it is shed, and must still appear in the per-tenant view.
    requests = [
        QueryRequest(0, {0: 1.0}, request_time=0.0, qpu=0),
        QueryRequest(1, {1: 1.0}, request_time=1.0, qpu=1, deadline=2.0),
    ]
    service = QRAMService(capacity, num_shards=1, window_size=1, functional=False)
    report = service.serve_workload(TraceSource(requests), shed_expired=True)
    assert report.stats.shed_queries == 1
    assert 1 in report.stats.per_tenant
    tenant = report.stats.per_tenant[1]
    assert tenant.queries == 0
    assert tenant.deadline_misses == 1
    assert tenant.deadline_miss_rate == 1.0


def test_fully_refused_run_raises_clearly():
    capacity = 8
    service = QRAMService(capacity, num_shards=1, window_size=1, functional=False)
    source = closed_loop_source(
        capacity, num_clients=1, queries_per_client=0,
        think_layers=1.0, num_shards=1,
    )
    with pytest.raises(ValueError, match="no requests"):
        service.serve_workload(source)


# -------------------------------------------------------------- percentiles
def test_latency_percentiles_and_miss_rate_fields():
    capacity = 16
    trace = poisson_trace(capacity, 40, mean_interarrival=3.0, num_shards=2,
                          seed=7, deadline_layers=250.0)
    service = QRAMService(capacity, num_shards=2, functional=False)
    report = service.serve(trace)
    stats = report.stats
    assert 0.0 < stats.p50_latency_layers <= stats.p95_latency_layers
    assert stats.p95_latency_layers <= stats.p99_latency_layers
    worst = max(r.finish_layer - r.request_time for r in report.served)
    assert stats.p99_latency_layers <= worst + 1e-9
    assert stats.offered_queries == 40
    assert 0.0 <= stats.deadline_miss_rate <= 1.0
    for tenant_stats in stats.per_tenant.values():
        assert tenant_stats.p95_latency_layers > 0.0


# ---------------------------------------------------------------- autoscaler
def test_autoscaler_requires_replicated_placement():
    service = QRAMService(16, num_shards=2, functional=False)
    config = AutoscalerConfig(period=50.0, high_watermark=3)
    with pytest.raises(ValueError, match="shortest-queue"):
        service.serve_workload(
            TraceSource([QueryRequest(0, {0: 1.0})]), autoscaler=config
        )
    with pytest.raises(ValueError):
        AutoscalerConfig(period=0.0, high_watermark=3)
    with pytest.raises(ValueError):
        AutoscalerConfig(period=10.0, high_watermark=1, low_watermark=2)
    with pytest.raises(ValueError):
        AutoscalerConfig(period=10.0, high_watermark=3, min_shards=4, max_shards=2)
    # The starting fleet must already lie inside the autoscaler's bounds.
    replicated = QRAMService(16, num_shards=1, functional=False,
                             placement="shortest-queue")
    with pytest.raises(ValueError, match="bounds"):
        replicated.serve_workload(
            TraceSource([QueryRequest(0, {0: 1.0})]),
            autoscaler=AutoscalerConfig(period=10.0, high_watermark=3,
                                        min_shards=2, max_shards=4),
        )


def test_autoscaler_scales_up_and_down():
    capacity = 8
    # A deep burst at t=0 overloads the single replica; one late straggler
    # keeps the clock alive so the fleet can drain and scale back down.
    requests = [
        QueryRequest(i, {i % capacity: 1.0}, request_time=0.0) for i in range(12)
    ]
    requests.append(QueryRequest(99, {3: 1.0}, request_time=50_000.0))
    service = QRAMService(capacity, num_shards=1, functional=False,
                          placement="shortest-queue")
    config = AutoscalerConfig(period=100.0, high_watermark=4, low_watermark=0,
                              min_shards=1, max_shards=3)
    report = service.serve_workload(TraceSource(requests), autoscaler=config)

    actions = [event.action for event in report.scale_events]
    assert "up" in actions
    assert "down" in actions
    # Replicas never exceed the ceiling and end back at the floor.
    assert max(e.active_shards for e in report.scale_events) <= 3
    assert report.scale_events[-1].active_shards == 1
    # All queries served, and the added replicas actually absorbed load.
    assert report.stats.total_queries == 13
    assert len(report.stats.per_shard) >= 2
    # Rebalanced queues are visible in the replica's depth accounting.
    replica_shards = [s for s in report.stats.per_shard if s != 0]
    assert any(
        report.stats.per_shard[s].max_queue_depth > 0 for s in replica_shards
    )
    # Scaled-up replicas serve the same architecture.
    assert all(s.architecture == "Fat-Tree" for s in report.served)


def test_autoscaler_reactivates_retired_replicas():
    """Oscillating load reuses the retired replica instead of building a
    fresh backend (and a fresh shard index) on every up-transition."""
    capacity = 8
    first_burst = [
        QueryRequest(i, {i % capacity: 1.0}, request_time=0.0) for i in range(10)
    ]
    second_burst = [
        QueryRequest(100 + i, {i % capacity: 1.0}, request_time=20_000.0)
        for i in range(10)
    ]
    straggler = [QueryRequest(999, {0: 1.0}, request_time=60_000.0)]
    service = QRAMService(capacity, num_shards=1, functional=False,
                          placement="shortest-queue")
    config = AutoscalerConfig(period=100.0, high_watermark=4, low_watermark=0,
                              min_shards=1, max_shards=3)
    report = service.serve_workload(
        TraceSource(first_burst + second_burst + straggler), autoscaler=config
    )
    ups = [e for e in report.scale_events if e.action == "up"]
    downs = [e for e in report.scale_events if e.action == "down"]
    assert len(ups) >= 2 and len(downs) >= 2
    # The second expansion reuses a shard index already seen, never minting
    # more distinct replicas than the concurrent maximum.
    assert set(e.shard for e in ups[1:]) <= set(e.shard for e in downs)
    assert max(e.active_shards for e in report.scale_events) <= 3
    assert report.stats.total_queries == 21


def test_autoscaled_run_is_deterministic():
    capacity = 8
    requests = [
        QueryRequest(i, {i % capacity: 1.0}, request_time=float(i)) for i in range(16)
    ]
    service = QRAMService(capacity, num_shards=1, functional=False,
                          placement="shortest-queue")
    config = AutoscalerConfig(period=40.0, high_watermark=3, low_watermark=0,
                              max_shards=4)
    first = service.serve_workload(TraceSource(requests), autoscaler=config)
    second = service.serve_workload(TraceSource(requests), autoscaler=config)
    assert _timing_signature(first) == _timing_signature(second)
    assert first.scale_events == second.scale_events


# ------------------------------------------------------- unified arrival core
def test_scheduling_and_serving_share_one_arrival_core():
    """random_arrivals and poisson_trace draw identical times from the
    shared exponential core for the same (num, mean, seed)."""
    times = exponential_times(15, 7.0, seed=4)
    stream = random_arrivals(15, 7.0, seed=4)
    trace = poisson_trace(16, 15, mean_interarrival=7.0, seed=4)
    assert [a.request_time for a in stream] == times
    assert [r.request_time for r in trace] == times
    with pytest.raises(ValueError):
        exponential_times(5, 0.0)
    with pytest.raises(ValueError):
        exponential_times(-1, 1.0)


# -------------------------------------------------------------- report index
def test_result_for_uses_constant_time_index():
    capacity = 16
    trace = poisson_trace(capacity, 12, mean_interarrival=10.0, num_shards=2, seed=1)
    report = QRAMService(capacity, num_shards=2, functional=False).serve(trace)
    for request in trace:
        assert report.result_for(request.query_id).query_id == request.query_id
    # The lazily built index is reused across lookups.
    assert report._result_index is not None
    assert len(report._result_index) == 12
    with pytest.raises(KeyError):
        report.result_for(404)


# --------------------------------------------------- deadline boundary cases
def test_deadline_equal_to_now_is_shed():
    """Boundary: a request whose deadline equals the shed-check instant can
    no longer finish on time and must be shed, not admitted-then-missed."""
    capacity = 8
    # Query 0 occupies the shard; query 1's deadline lands exactly on the
    # window drain, which is when the next shed check runs.
    service = QRAMService(capacity, num_shards=1, window_size=1, functional=False)
    drain = service.shards[0].run_window(
        [QueryRequest(99, {0: 1.0})], functional=False
    ).total_layers
    requests = [
        QueryRequest(0, {0: 1.0}, request_time=0.0),
        QueryRequest(1, {1: 1.0}, request_time=1.0, deadline=float(drain)),
    ]
    report = service.serve_workload(TraceSource(requests), shed_expired=True)
    shed = [r for r in report.rejected if r.reason == REJECT_DEADLINE_EXPIRED]
    assert [r.query_id for r in shed] == [1]
    assert report.stats.shed_queries == 1
    assert report.stats.total_queries == 1


def test_finish_exactly_at_deadline_is_not_a_miss():
    """Boundary: finish_layer == deadline is on time — the shed comparison
    and the miss accounting agree at the boundary."""
    capacity = 8
    service = QRAMService(capacity, num_shards=1, window_size=1, functional=False)
    drain = service.shards[0].run_window(
        [QueryRequest(99, {0: 1.0})], functional=False
    ).total_layers
    finish = service.shards[0].run_window(
        [QueryRequest(98, {0: 1.0})], functional=False
    ).finish_offsets[0]
    requests = [QueryRequest(0, {0: 1.0}, request_time=0.0, deadline=float(finish))]
    report = service.serve_workload(TraceSource(requests), shed_expired=True)
    record = report.result_for(0)
    assert record.finish_layer == record.deadline
    assert not record.missed_deadline
    assert report.stats.deadline_misses == 0
    assert report.stats.deadline_miss_rate == 0.0
    assert drain >= finish


# ----------------------------------------------------------- fidelity SLOs
def test_infeasible_fidelity_slo_is_rejected():
    """A target above what any placement can predict refuses at arrival."""
    from repro.metrics.service_stats import REJECT_FIDELITY

    capacity = 16
    service = QRAMService(capacity, num_shards=1, functional=False)
    solo = service.shards[0].predicted_query_fidelity()
    requests = [
        QueryRequest(0, {0: 1.0}, min_fidelity=min(1.0, solo + 0.01)),
        QueryRequest(1, {1: 1.0}, min_fidelity=solo),
    ]
    report = service.serve_workload(TraceSource(requests))
    assert [r.query_id for r in report.rejected] == [0]
    assert report.rejected[0].reason == REJECT_FIDELITY
    assert report.rejected[0].min_fidelity == pytest.approx(solo + 0.01)
    assert report.stats.fidelity_rejected_queries == 1
    assert report.stats.rejected_queries == 1      # non-shed refusals
    assert report.stats.shed_queries == 0
    assert report.stats.fidelity_slo_misses == 1   # a refusal is a miss
    served = report.result_for(1)
    assert served.min_fidelity == pytest.approx(solo)
    assert served.predicted_fidelity >= served.min_fidelity
    assert not served.missed_fidelity_slo
    assert report.stats.fidelity_slo_miss_rate == pytest.approx(0.5)


def test_distillation_retry_lifts_fidelity_and_charges_layers():
    """With a copy budget, a target above the bare bound is admitted via
    virtual distillation; the copies keep the backend busy longer."""
    capacity = 16
    solo = QRAMService(capacity, num_shards=1, functional=False)\
        .shards[0].predicted_query_fidelity()
    target = 1.0 - (1.0 - solo) ** 2 * 1.5     # needs exactly 2 copies
    assert solo < target < 1.0 - (1.0 - solo) ** 2

    def serve(copies):
        service = QRAMService(capacity, num_shards=1, functional=False)
        return service.serve_workload(
            TraceSource([QueryRequest(0, {0: 1.0}, min_fidelity=target)]),
            max_distillation_copies=copies,
        )

    with pytest.raises(ValueError):
        serve(1)                                # all offered requests refused
    report = serve(3)
    record = report.result_for(0)
    assert record.distillation_copies == 2
    # The two copies are extra pipelined admissions: the distillation
    # suppresses the *worst slot* of a 2-query window, not the lone-query
    # bound — crosstalk and suppression both enter the prediction.
    probe = QRAMService(capacity, num_shards=1, functional=False)
    worst_of_two = min(probe.shards[0].predicted_window_fidelities(2))
    assert record.predicted_fidelity == pytest.approx(
        1.0 - (1.0 - worst_of_two) ** 2
    )
    assert record.predicted_fidelity >= target
    assert not record.missed_fidelity_slo

    # The extra copy charges one admission interval to the window.
    plain = QRAMService(capacity, num_shards=1, functional=False)
    plain_report = plain.serve_workload(
        TraceSource([QueryRequest(0, {0: 1.0})])
    )
    interval = plain_report.windows[0].interval
    assert report.windows[0].total_layers == (
        plain_report.windows[0].total_layers + interval
    )


def test_fidelity_aware_batch_capping():
    """A window is shrunk until pipelining degradation stops violating the
    strictest SLO in the batch — the dropped requests run in later windows."""
    capacity = 16
    probe = QRAMService(capacity, num_shards=1, functional=False)
    solo = probe.shards[0].predicted_query_fidelity()
    full = probe.shards[0].predicted_window_fidelities(
        probe.window_sizes[0]
    )
    target = (min(full) + solo) / 2.0          # feasible solo, not in a full window
    assert min(full) < target < solo
    requests = [
        QueryRequest(i, {i: 1.0}, min_fidelity=target)
        for i in range(probe.window_sizes[0])
    ]
    service = QRAMService(capacity, num_shards=1, functional=False)
    report = service.serve_workload(TraceSource(requests))
    assert report.stats.total_queries == len(requests)
    assert report.stats.fidelity_slo_misses == 0
    for record in report.served:
        assert record.predicted_fidelity >= target
    # The capping forced more, smaller windows than the uncapped fleet.
    assert len(report.windows) > 1
    assert max(w.batch_size for w in report.windows) < len(requests)


def test_mixed_fleet_routes_slo_traffic_to_encoded_replicas():
    """Replicated placement prefers shards that can meet the SLO: strict
    traffic lands on the encoded replica, best-effort spreads anywhere."""
    from repro.hardware.parameters import TABLE3_PARAMETERS

    params = TABLE3_PARAMETERS[1e-4]
    capacity = 16
    service = QRAMService(
        capacity,
        num_shards=2,
        functional=False,
        architectures=["Fat-Tree", "Fat-Tree@d3"],
        placement="shortest-queue",
        parameters=params,
    )
    bare_solo = service.shards[0].predicted_query_fidelity()
    encoded_solo = service.shards[1].predicted_query_fidelity()
    assert bare_solo < 0.995 < encoded_solo
    requests = [
        QueryRequest(i, {i % capacity: 1.0}, request_time=float(5 * i),
                     min_fidelity=0.995)
        for i in range(4)
    ]
    report = service.serve_workload(TraceSource(requests))
    assert report.stats.total_queries == 4
    assert {r.shard for r in report.served} == {1}
    assert all(r.architecture == "Fat-Tree@d3" for r in report.served)
    assert report.stats.fidelity_slo_misses == 0


def test_min_fidelity_validation():
    service = QRAMService(8, num_shards=1, functional=False)
    with pytest.raises(ValueError, match="min_fidelity"):
        service.serve_workload(
            TraceSource([QueryRequest(0, {0: 1.0}, min_fidelity=1.5)])
        )
    with pytest.raises(ValueError):
        ServiceEngine(service, max_distillation_copies=0)


def test_autoscaled_replicas_inherit_fleet_parameters():
    """Regression: scale-up must build replicas under the fleet's noise
    model — a default-parameters replica would predict far lower fidelity
    and silently serve admitted SLO traffic below target."""
    from repro.hardware.parameters import TABLE3_PARAMETERS

    capacity = 16
    service = QRAMService(
        capacity, num_shards=1, functional=False,
        placement="shortest-queue", parameters=TABLE3_PARAMETERS[1e-4],
    )
    solo = service.shards[0].predicted_query_fidelity()
    target = solo - 0.001                  # feasible on the configured model
    burst = [
        QueryRequest(i, {i % capacity: 1.0}, request_time=0.0,
                     min_fidelity=target)
        for i in range(12)
    ]
    config = AutoscalerConfig(period=50.0, high_watermark=4, max_shards=3)
    report = service.serve_workload(TraceSource(burst), autoscaler=config)
    assert any(e.action == "up" for e in report.scale_events)
    assert report.stats.total_queries == 12
    assert report.stats.fidelity_slo_misses == 0
    assert {r.shard for r in report.served} != {0}    # replicas did serve
    for record in report.served:
        assert record.predicted_fidelity >= target


def test_rebalance_never_moves_slo_traffic_to_infeasible_replicas():
    """Regression: queue rebalancing must not hand strict-SLO requests to a
    replica that cannot meet them (and the window admission re-validates,
    so nothing is ever silently served below target)."""
    from repro.hardware.parameters import TABLE3_PARAMETERS

    capacity = 16
    params = TABLE3_PARAMETERS[1e-4]
    # The fleet starts with one encoded replica; the autoscaler grows it
    # with *bare* replicas that cannot meet the 0.995 target.
    service = QRAMService(
        capacity, num_shards=1, functional=False,
        architectures=["Fat-Tree@d3"], placement="shortest-queue",
        parameters=params,
    )
    burst = [
        QueryRequest(i, {i % capacity: 1.0}, request_time=0.0,
                     min_fidelity=0.995)
        for i in range(12)
    ]
    config = AutoscalerConfig(period=50.0, high_watermark=4, max_shards=3,
                              architecture="Fat-Tree")
    report = service.serve_workload(TraceSource(burst), autoscaler=config)
    assert report.stats.total_queries == 12
    assert report.stats.fidelity_slo_misses == 0
    assert report.stats.fidelity_rejected_queries == 0
    # Everything stayed on the encoded replica.
    assert {r.shard for r in report.served} == {0}
    assert all(r.architecture == "Fat-Tree@d3" for r in report.served)
