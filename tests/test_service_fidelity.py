"""End-to-end fidelity-aware serving: mixed bare + QEC-encoded fleets.

The acceptance scenario of the fidelity subsystem: a replicated fleet with
one bare and one ``distance=3`` encoded Fat-Tree replica serves three
tenants with different ``min_fidelity`` SLOs, under deadline shedding.
Every count below is deterministic (fixed trace, fixed placement rules).
"""

import pytest

from repro import QRAMService, QueryRequest, TraceSource
from repro.hardware.parameters import TABLE3_PARAMETERS
from repro.metrics.service_stats import (
    REJECT_DEADLINE_EXPIRED,
    REJECT_FIDELITY,
)

CAPACITY = 16
PARAMS = TABLE3_PARAMETERS[1e-4]     # below threshold: d=3 beats bare


def _mixed_fleet() -> QRAMService:
    return QRAMService(
        CAPACITY,
        num_shards=2,
        functional=False,
        architectures=["Fat-Tree", "Fat-Tree@d3"],
        placement="shortest-queue",
        parameters=PARAMS,
    )


def _trace(service: QRAMService) -> list[QueryRequest]:
    """Three tenants: best-effort (0), achievable-on-encoded SLO (1) and an
    infeasible SLO (2), plus one best-effort straggler with a hopeless
    deadline that must be shed."""
    bare = service.shards[0].predicted_query_fidelity()
    encoded = service.shards[1].predicted_query_fidelity()
    assert bare < 0.995 < encoded < 0.99999
    requests = []
    for i in range(9):
        tenant = i % 3
        requests.append(
            QueryRequest(
                query_id=i,
                address_amplitudes={i % CAPACITY: 1.0},
                request_time=float(10 * i),
                qpu=tenant,
                min_fidelity={0: None, 1: 0.995, 2: 0.99999}[tenant],
            )
        )
    requests.append(
        QueryRequest(
            query_id=9,
            address_amplitudes={9: 1.0},
            request_time=0.0,
            qpu=0,
            deadline=0.0,       # expires the instant it arrives
        )
    )
    return requests


def test_mixed_encoded_fleet_serves_fidelity_slos_end_to_end():
    service = _mixed_fleet()
    requests = _trace(service)
    report = service.serve_workload(TraceSource(requests), shed_expired=True)
    stats = report.stats

    # Deterministic refusal accounting: tenant 2's three requests are
    # fidelity-infeasible on every replica, the straggler is shed.
    fidelity_rejects = [r for r in report.rejected if r.reason == REJECT_FIDELITY]
    shed = [r for r in report.rejected if r.reason == REJECT_DEADLINE_EXPIRED]
    assert sorted(r.query_id for r in fidelity_rejects) == [2, 5, 8]
    assert all(r.tenant == 2 for r in fidelity_rejects)
    assert [r.query_id for r in shed] == [9]
    assert stats.offered_queries == 10
    assert stats.total_queries == 6
    assert stats.rejected_queries == 3           # == len(rejected) - shed
    assert stats.fidelity_rejected_queries == 3
    assert stats.shed_queries == 1
    assert stats.rejected_queries == len(report.rejected) - stats.shed_queries >= 0

    # Every served slot carries a non-None predicted fidelity.
    for record in report.served:
        assert record.fidelity is not None
        assert record.predicted_fidelity is not None
        assert 0.0 < record.predicted_fidelity < 1.0

    # SLO-carrying traffic (tenant 1) always lands on the encoded replica
    # and never misses; tenant 2's demand is 100% missed (refused).
    tenant1 = [r for r in report.served if r.tenant == 1]
    assert len(tenant1) == 3
    assert all(r.shard == 1 and r.architecture == "Fat-Tree@d3" for r in tenant1)
    assert all(not r.missed_fidelity_slo for r in tenant1)
    assert stats.per_tenant[1].fidelity_slo_misses == 0
    assert stats.per_tenant[1].fidelity_slo_miss_rate == 0.0
    assert stats.per_tenant[2].queries == 0
    assert stats.per_tenant[2].fidelity_slo_misses == 3
    assert stats.per_tenant[2].fidelity_slo_miss_rate == 1.0
    assert stats.fidelity_slo_misses == 3
    assert stats.fidelity_slo_miss_rate == pytest.approx(0.5)

    # Per-backend mean fidelity splits bare vs encoded: the encoded replica
    # predicts strictly higher quality.
    assert set(stats.per_backend) == {"Fat-Tree", "Fat-Tree@d3"}
    bare_stats = stats.per_backend["Fat-Tree"]
    encoded_stats = stats.per_backend["Fat-Tree@d3"]
    assert bare_stats.mean_fidelity is not None
    assert encoded_stats.mean_fidelity is not None
    assert encoded_stats.mean_fidelity > bare_stats.mean_fidelity
    assert encoded_stats.min_fidelity > 0.995
    assert stats.min_fidelity == pytest.approx(
        min(bare_stats.min_fidelity, encoded_stats.min_fidelity)
    )

    # Deadline accounting is untouched by the fidelity path.
    assert stats.deadline_misses == 1            # the shed straggler
    assert stats.deadline_miss_rate == 1.0       # only SLO-carrying demand


def test_mixed_fleet_report_is_deterministic():
    first = _mixed_fleet()
    second = _mixed_fleet()
    report_a = first.serve_workload(TraceSource(_trace(first)), shed_expired=True)
    report_b = second.serve_workload(TraceSource(_trace(second)), shed_expired=True)
    signature = lambda report: [          # noqa: E731 - local shorthand
        (s.query_id, s.shard, s.finish_layer, s.predicted_fidelity)
        for s in report.served
    ]
    assert signature(report_a) == signature(report_b)
    assert [r.query_id for r in report_a.rejected] == [
        r.query_id for r in report_b.rejected
    ]
