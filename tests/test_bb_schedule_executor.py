"""BB QRAM schedule layer counts (Fig. 2a) and functional correctness (Eq. 1)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.bucket_brigade import BBExecutor, BBQuerySchedule, BucketBrigadeQRAM
from repro.bucket_brigade.instructions import InstructionKind, weighted_latency
from repro.workloads import structured_data, uniform_superposition


def test_n8_query_takes_25_layers():
    schedule = BBQuerySchedule(8)
    assert schedule.raw_layers == 25
    assert max(i.raw_layer for i in schedule.instructions) == 25
    assert schedule.weighted_latency == pytest.approx(24.125)
    milestones = schedule.milestone_layers()
    assert milestones["data_retrieval"] == 13
    assert milestones["bus_at_leaves"] == 12
    assert milestones["query_complete"] == 25


@pytest.mark.parametrize("capacity", [2, 4, 8, 16, 32, 64])
def test_layer_count_formula(capacity):
    n = int(math.log2(capacity))
    schedule = BBQuerySchedule(capacity)
    assert schedule.raw_layers == 8 * n + 1
    assert max(i.raw_layer for i in schedule.instructions) == 8 * n + 1
    assert schedule.weighted_latency == pytest.approx(8 * n + 0.125)
    schedule.verify_no_conflicts()


def test_schedule_is_time_symmetric():
    schedule = BBQuerySchedule(16)
    total = schedule.raw_layers + 1
    forward = {
        (i.raw_layer, i.item, i.level)
        for i in schedule.instructions
        if not i.kind.is_inverse and i.kind is not InstructionKind.CLASSICAL_GATES
    }
    backward = {
        (total - i.raw_layer, i.item, i.level)
        for i in schedule.instructions
        if i.kind.is_inverse
    }
    assert forward == backward


def test_weighted_latency_helper_counts_fast_layers_once():
    schedule = BBQuerySchedule(8)
    assert weighted_latency(schedule.instructions) == pytest.approx(24.125)


def test_single_address_queries_return_stored_bits():
    data = structured_data(8, "parity")
    qram = BucketBrigadeQRAM(8, data)
    for address in range(8):
        out = qram.query({address: 1.0})
        assert set(out) == {(address, data[address])}
        assert abs(out[(address, data[address])]) == pytest.approx(1.0)


def test_superposition_query_matches_eq1():
    data = [1, 0, 1, 1, 0, 0, 1, 0]
    executor = BBExecutor(8, data)
    amplitudes = {0: 0.5, 3: 0.5j, 5: -0.5, 7: 0.5}
    assert executor.query_fidelity(amplitudes) == pytest.approx(1.0)


def test_query_leaves_tree_clean_and_unentangled():
    data = structured_data(16, "threshold")
    executor = BBExecutor(16, data)
    state = executor.run_query(uniform_superposition(16))
    assert executor.tree_is_clean(state)
    # The address/bus register must be extractable as a product state.
    output = executor.measured_output(state)
    assert len(output) == 16


def test_initial_bus_value_is_xored():
    data = [0, 1, 0, 1]
    qram = BucketBrigadeQRAM(4, data)
    out = qram.query({1: 1.0}, initial_bus=1)
    assert set(out) == {(1, 0)}          # 1 XOR 1 = 0


def test_memory_update_changes_query_result():
    qram = BucketBrigadeQRAM(4)
    assert set(qram.query({2: 1.0})) == {(2, 0)}
    qram.write_memory(2, 1)
    assert set(qram.query({2: 1.0})) == {(2, 1)}


def test_resource_properties():
    qram = BucketBrigadeQRAM(1024)
    assert qram.qubit_count == 8 * 1024
    assert qram.query_parallelism == 1
    assert qram.num_routers == 1023
    assert qram.single_query_latency() == pytest.approx(80.125)
    assert qram.parallel_query_latency(10) == pytest.approx(801.25)
    assert qram.bandwidth() == pytest.approx(1e6 / 80.125)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    capacity_power=st.integers(min_value=1, max_value=4),
)
def test_random_data_and_addresses_satisfy_query_unitary(seed, capacity_power):
    """Property: Eq. (1) holds for random data and random 2-address queries."""
    import numpy as np

    capacity = 2**capacity_power
    rng = np.random.default_rng(seed)
    data = [int(b) for b in rng.integers(0, 2, size=capacity)]
    addresses = rng.choice(capacity, size=min(2, capacity), replace=False)
    raw = rng.normal(size=len(addresses)) + 1j * rng.normal(size=len(addresses))
    amplitudes = {int(a): complex(x) for a, x in zip(addresses, raw)}
    executor = BBExecutor(capacity, data)
    assert executor.query_fidelity(amplitudes) == pytest.approx(1.0, abs=1e-9)
