"""End-to-end integration tests across the whole stack.

These tests tie the core claim of the paper together: the same classical
memory served through BB QRAM, Virtual QRAM and Fat-Tree QRAM returns the
same query results (Eq. (1)), while the architectural metrics preserve the
orderings reported in the evaluation.
"""

import math

import pytest

from repro import BucketBrigadeQRAM, FatTreeQRAM, VirtualQRAM, build_architecture
from repro.core.query import QueryRequest
from repro.metrics import bandwidth_qubits_per_second
from repro.scheduling import AlgorithmWorkload, QRAMServiceModel, SharedQRAMSimulation
from repro.workloads import random_data, random_address_superposition


@pytest.mark.parametrize("capacity", [4, 8])
def test_all_functional_architectures_agree_on_query_results(capacity):
    data = random_data(capacity, seed=11)
    amplitudes = random_address_superposition(capacity, min(3, capacity), seed=5)
    reference = BucketBrigadeQRAM(capacity, data).query(amplitudes)
    fat_tree = FatTreeQRAM(capacity, data).query(amplitudes)
    virtual = VirtualQRAM(capacity, data).query(amplitudes)

    def as_probabilities(result):
        return {key: abs(value) ** 2 for key, value in result.items()}

    assert as_probabilities(fat_tree) == pytest.approx(as_probabilities(reference))
    assert as_probabilities(virtual) == pytest.approx(as_probabilities(reference))
    # Every (address, bus) pair satisfies bus = data[address].
    for (address, bus) in reference:
        assert bus == data[address]


def test_pipelined_fat_tree_queries_match_sequential_bb_queries():
    capacity = 8
    data = random_data(capacity, seed=3)
    requests = [
        QueryRequest(i, random_address_superposition(capacity, 2, seed=20 + i))
        for i in range(3)
    ]
    executor = FatTreeQRAM(capacity, data).executor()
    _, outputs = executor.run_pipelined_queries(requests, interval=22)
    bb = BucketBrigadeQRAM(capacity, data)
    for request in requests:
        sequential = bb.query(request.address_amplitudes)
        pipelined = outputs[request.query_id]
        assert {k: abs(v) ** 2 for k, v in pipelined.items()} == pytest.approx(
            {k: abs(v) ** 2 for k, v in sequential.items()}
        )


def test_architecture_orderings_hold_end_to_end():
    capacity = 1024
    n = int(math.log2(capacity))
    fat_tree = build_architecture("Fat-Tree", capacity)
    bb = build_architecture("BB", capacity)
    # Same O(N) qubit group, log N parallel queries: Fat-Tree wins by ~ log N.
    speedup = bb.parallel_query_latency(n) / fat_tree.parallel_query_latency(n)
    assert speedup > n / 2
    # Bandwidth advantage grows with capacity.
    assert bandwidth_qubits_per_second("Fat-Tree", capacity) > 9 * bandwidth_qubits_per_second("BB", capacity)


def test_shared_memory_system_throughput_improves_with_fat_tree():
    """Three QPUs running query/process loops finish much sooner on Fat-Tree."""
    workloads = [AlgorithmWorkload(i, rounds=4, processing_layers=10.0) for i in range(3)]
    reports = {}
    for name in ("Fat-Tree", "BB"):
        model = QRAMServiceModel.from_architecture(build_architecture(name, 256))
        reports[name] = SharedQRAMSimulation(model).run(workloads)
    assert reports["Fat-Tree"].overall_depth < reports["BB"].overall_depth
    assert reports["Fat-Tree"].total_queue_delay_layers <= reports["BB"].total_queue_delay_layers


def test_memory_contents_are_respected_after_updates_everywhere():
    capacity = 8
    data = [0] * capacity
    architectures = [
        FatTreeQRAM(capacity, data),
        BucketBrigadeQRAM(capacity, data),
        VirtualQRAM(capacity, data),
    ]
    for qram in architectures:
        qram.write_memory(5, 1)
        out = qram.query({5: 1.0})
        assert set(out) == {(5, 1)}
