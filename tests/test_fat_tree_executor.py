"""Gate-level Fat-Tree executor: functional correctness of pipelined queries."""

import pytest

from repro.core import FatTreeQRAM, QueryRequest
from repro.core.executor import FatTreeExecutor
from repro.core.pipeline import PIPELINE_INTERVAL
from repro.bucket_brigade.instructions import InstructionKind
from repro.workloads import structured_data

DATA8 = [1, 0, 1, 1, 0, 0, 1, 0]


def test_relative_schedule_latency_is_10n_minus_1():
    for capacity in (2, 4, 8, 16):
        executor = FatTreeExecutor(capacity, [0] * capacity)
        n = executor.address_width
        assert executor.relative_raw_latency() == 10 * n - 1


def test_relative_schedule_routes_only_with_outputs():
    """No ROUTE ever targets a transient router (label == level), except the
    data-coupled bottom level."""
    executor = FatTreeExecutor(16, [0] * 16)
    n = executor.address_width
    for instr in executor.relative_schedule():
        if instr.kind in (InstructionKind.ROUTE, InstructionKind.UNROUTE):
            assert instr.label > instr.level or instr.level == n - 1


def test_relative_schedule_has_expected_fast_layers():
    executor = FatTreeExecutor(8, DATA8)
    schedule = executor.relative_schedule()
    migrations = [i for i in schedule if i.kind is InstructionKind.SWAP_MIGRATE]
    retrievals = [i for i in schedule if i.kind is InstructionKind.CLASSICAL_GATES]
    n = executor.address_width
    assert len(migrations) == 2 * (n - 1)
    assert len(retrievals) == 1
    assert retrievals[0].raw_layer == 5 * n


def test_single_query_fidelity_and_cleanliness():
    qram = FatTreeQRAM(8, DATA8)
    out = qram.query({0: 1, 3: 1j, 6: -1})
    assert set(out) == {(0, 1), (3, 1), (6, 1)}
    executor = qram.executor()
    request = QueryRequest(0, {0: 1, 3: 1j, 6: -1})
    _, outputs = executor.run_pipelined_queries([request], interval=40)
    assert executor.query_fidelity(request, outputs[0]) == pytest.approx(1.0)
    assert executor.tree_is_clean()


def test_two_pipelined_queries_are_independent_and_correct():
    executor = FatTreeExecutor(8, DATA8)
    requests = [
        QueryRequest(0, {1: 1.0, 4: -1.0}),
        QueryRequest(1, {2: 1.0, 7: 1.0j}, initial_bus=1),
    ]
    summary, outputs = executor.run_pipelined_queries(requests, interval=22)
    for request in requests:
        assert executor.query_fidelity(request, outputs[request.query_id]) == pytest.approx(1.0)
    assert executor.tree_is_clean()
    assert summary.per_query_raw_latency == 29
    assert summary.max_concurrent == 2


def test_three_pipelined_queries_capacity8():
    executor = FatTreeExecutor(8, structured_data(8, "parity"))
    requests = [QueryRequest(i, {i: 1.0, (i + 3) % 8: 1.0}) for i in range(3)]
    summary, outputs = executor.run_pipelined_queries(requests, interval=22)
    for request in requests:
        assert executor.query_fidelity(request, outputs[request.query_id]) == pytest.approx(1.0)
    assert summary.total_layers == 2 * 22 + 29


def test_minimum_feasible_interval_bounds():
    executor = FatTreeExecutor(8, DATA8)
    interval = executor.minimum_feasible_interval(2)
    assert PIPELINE_INTERVAL <= interval <= executor.relative_raw_latency()
    # Executing at that interval must be functionally correct.
    requests = [QueryRequest(i, {i: 1.0}) for i in range(2)]
    _, outputs = executor.run_pipelined_queries(requests, interval=interval)
    for request in requests:
        assert executor.query_fidelity(request, outputs[request.query_id]) == pytest.approx(1.0)


def test_capacity4_pipelined_queries():
    data = [0, 1, 1, 0]
    executor = FatTreeExecutor(4, data)
    requests = [QueryRequest(i, {0: 1.0, 3: 1.0}) for i in range(2)]
    summary, outputs = executor.run_pipelined_queries(requests)
    for request in requests:
        assert executor.query_fidelity(request, outputs[request.query_id]) == pytest.approx(1.0)
    assert summary.per_query_raw_latency == 19
    assert executor.tree_is_clean()


def test_resident_label_trajectory():
    executor = FatTreeExecutor(8, DATA8)
    lifetime = executor.relative_raw_latency()
    labels = [executor.resident_label(r) for r in range(1, lifetime + 1)]
    assert labels[0] == 0 and labels[-1] == 0
    assert max(labels) == executor.address_width - 1
    assert executor.resident_label(0) is None
    assert executor.resident_label(lifetime + 1) is None


def test_requests_require_amplitudes():
    executor = FatTreeExecutor(4, [0, 1, 0, 1])
    with pytest.raises(ValueError):
        executor.run_pipelined_queries([QueryRequest(0)])
    with pytest.raises(ValueError):
        executor.run_pipelined_queries([])


def test_qram_facade_resources():
    qram = FatTreeQRAM(1024)
    assert qram.qubit_count == 16 * 1024
    assert qram.query_parallelism == 10
    assert qram.num_routers == 2 * 1024 - 2 - 10
    assert qram.raw_query_layers == 99
    assert qram.single_query_latency() == pytest.approx(82.375)
    assert qram.amortized_query_latency() == pytest.approx(8.25)
    assert qram.bandwidth() == pytest.approx(121212.12, rel=1e-4)
