"""Gate-level Fat-Tree executor: functional correctness of pipelined queries."""

import pytest

from repro.core import FatTreeQRAM, QueryRequest
from repro.core.executor import FatTreeExecutor
from repro.core.pipeline import PIPELINE_INTERVAL
from repro.bucket_brigade.instructions import InstructionKind
from repro.workloads import structured_data

DATA8 = [1, 0, 1, 1, 0, 0, 1, 0]


def test_relative_schedule_latency_is_10n_minus_1():
    for capacity in (2, 4, 8, 16):
        executor = FatTreeExecutor(capacity, [0] * capacity)
        n = executor.address_width
        assert executor.relative_raw_latency() == 10 * n - 1


def test_relative_schedule_routes_only_with_outputs():
    """No ROUTE ever targets a transient router (label == level), except the
    data-coupled bottom level."""
    executor = FatTreeExecutor(16, [0] * 16)
    n = executor.address_width
    for instr in executor.relative_schedule():
        if instr.kind in (InstructionKind.ROUTE, InstructionKind.UNROUTE):
            assert instr.label > instr.level or instr.level == n - 1


def test_relative_schedule_has_expected_fast_layers():
    executor = FatTreeExecutor(8, DATA8)
    schedule = executor.relative_schedule()
    migrations = [i for i in schedule if i.kind is InstructionKind.SWAP_MIGRATE]
    retrievals = [i for i in schedule if i.kind is InstructionKind.CLASSICAL_GATES]
    n = executor.address_width
    assert len(migrations) == 2 * (n - 1)
    assert len(retrievals) == 1
    assert retrievals[0].raw_layer == 5 * n


def test_single_query_fidelity_and_cleanliness():
    qram = FatTreeQRAM(8, DATA8)
    out = qram.query({0: 1, 3: 1j, 6: -1})
    assert set(out) == {(0, 1), (3, 1), (6, 1)}
    executor = qram.executor()
    request = QueryRequest(0, {0: 1, 3: 1j, 6: -1})
    _, outputs = executor.run_pipelined_queries([request], interval=40)
    assert executor.query_fidelity(request, outputs[0]) == pytest.approx(1.0)
    assert executor.tree_is_clean()


def test_two_pipelined_queries_are_independent_and_correct():
    executor = FatTreeExecutor(8, DATA8)
    requests = [
        QueryRequest(0, {1: 1.0, 4: -1.0}),
        QueryRequest(1, {2: 1.0, 7: 1.0j}, initial_bus=1),
    ]
    summary, outputs = executor.run_pipelined_queries(requests, interval=22)
    for request in requests:
        assert executor.query_fidelity(request, outputs[request.query_id]) == pytest.approx(1.0)
    assert executor.tree_is_clean()
    assert summary.per_query_raw_layers == 29
    assert summary.max_concurrent == 2


def test_three_pipelined_queries_capacity8():
    executor = FatTreeExecutor(8, structured_data(8, "parity"))
    requests = [QueryRequest(i, {i: 1.0, (i + 3) % 8: 1.0}) for i in range(3)]
    summary, outputs = executor.run_pipelined_queries(requests, interval=22)
    for request in requests:
        assert executor.query_fidelity(request, outputs[request.query_id]) == pytest.approx(1.0)
    assert summary.total_layers == 2 * 22 + 29


def test_minimum_feasible_interval_bounds():
    executor = FatTreeExecutor(8, DATA8)
    interval = executor.minimum_feasible_interval(2)
    assert PIPELINE_INTERVAL <= interval <= executor.relative_raw_latency()
    # Executing at that interval must be functionally correct.
    requests = [QueryRequest(i, {i: 1.0}) for i in range(2)]
    _, outputs = executor.run_pipelined_queries(requests, interval=interval)
    for request in requests:
        assert executor.query_fidelity(request, outputs[request.query_id]) == pytest.approx(1.0)


def test_capacity4_pipelined_queries():
    data = [0, 1, 1, 0]
    executor = FatTreeExecutor(4, data)
    requests = [QueryRequest(i, {0: 1.0, 3: 1.0}) for i in range(2)]
    summary, outputs = executor.run_pipelined_queries(requests)
    for request in requests:
        assert executor.query_fidelity(request, outputs[request.query_id]) == pytest.approx(1.0)
    assert summary.per_query_raw_layers == 19
    assert executor.tree_is_clean()


def test_resident_label_trajectory():
    executor = FatTreeExecutor(8, DATA8)
    lifetime = executor.relative_raw_latency()
    labels = [executor.resident_label(r) for r in range(1, lifetime + 1)]
    assert labels[0] == 0 and labels[-1] == 0
    assert max(labels) == executor.address_width - 1
    assert executor.resident_label(0) is None
    assert executor.resident_label(lifetime + 1) is None


def test_requests_require_amplitudes():
    executor = FatTreeExecutor(4, [0, 1, 0, 1])
    with pytest.raises(ValueError):
        executor.run_pipelined_queries([QueryRequest(0)])
    with pytest.raises(ValueError):
        executor.run_pipelined_queries([])


def test_repeated_queries_reuse_cached_schedule():
    """Repeated query() calls hit the cached executor and schedule and give
    identical amplitudes."""
    qram = FatTreeQRAM(8, DATA8)
    first = qram.query({0: 1, 5: 1})
    executor = qram.cached_executor()
    schedule = executor.relative_schedule(0)
    second = qram.query({0: 1, 5: 1})
    assert first == second
    assert qram.cached_executor() is executor
    assert executor.relative_schedule(0) is schedule          # memoized
    assert executor.minimum_feasible_interval() == executor.minimum_feasible_interval()
    # A classical write invalidates the cached executor (new memory image).
    qram.write_memory(0, 0)
    assert qram.cached_executor() is not executor
    assert qram.query({0: 1, 5: 1}) != first


def test_schedules_of_different_queries_share_structure():
    executor = FatTreeExecutor(8, DATA8)
    base = executor.relative_schedule(0)
    other = executor.relative_schedule(7)
    assert len(base) == len(other)
    for a, b in zip(base, other):
        assert b.query == 7
        assert (a.kind, a.item, a.level, a.label, a.raw_layer) == (
            b.kind, b.item, b.level, b.label, b.raw_layer
        )


def test_executor_caches_stay_bounded_over_fresh_query_ids():
    """A long-lived executor serving ever-fresh query ids must not grow its
    memoized schedules without bound."""
    executor = FatTreeExecutor(8, DATA8)
    limit = FatTreeExecutor._CACHE_LIMIT
    for query in range(3 * limit):
        executor.relative_schedule(query)
    assert len(executor._schedule_cache) <= limit
    # Evictions must not change results: a re-derived schedule is identical.
    again = executor.relative_schedule(1)
    assert [i.raw_layer for i in again] == [
        i.raw_layer for i in executor.relative_schedule(0)
    ]
    # Correctness after heavy cache churn.
    requests = [QueryRequest(500, {1: 1.0}), QueryRequest(501, {2: 1.0})]
    _, outputs = executor.run_pipelined_queries(requests, interval=22)
    for request in requests:
        assert executor.query_fidelity(request, outputs[request.query_id]) == pytest.approx(1.0)


def test_tree_is_clean_raises_before_any_run():
    executor = FatTreeExecutor(8, DATA8)
    with pytest.raises(RuntimeError, match="no execution"):
        executor.tree_is_clean()


def test_shared_swap_dedup_under_custom_interval():
    """At interval 22 (capacity 8) the label-0 migrations of consecutive
    queries land on the same raw layer: they must execute as ONE shared
    sub-QRAM exchange, which the functional result verifies (a double swap
    would undo the exchange and corrupt both queries)."""
    executor = FatTreeExecutor(8, DATA8)
    interval = 22
    migrations = [
        (i.raw_layer, i.label, i.level)
        for i in executor.relative_schedule(0)
        if i.kind is InstructionKind.SWAP_MIGRATE
    ]
    shifted = {(layer + interval, label, level) for layer, label, level in migrations}
    assert shifted & set(migrations), "interval 22 must produce a shared swap"
    requests = [
        QueryRequest(0, {1: 1.0, 6: 1.0}),
        QueryRequest(1, {2: 1.0, 5: 1.0j}),
    ]
    _, outputs = executor.run_pipelined_queries(requests, interval=interval)
    for request in requests:
        assert executor.query_fidelity(request, outputs[request.query_id]) == pytest.approx(1.0)
    assert executor.tree_is_clean()


def test_query_result_units_are_consistent():
    """latency_layers is a pure layer count; request-to-finish time is a
    separate field on the request's arrival clock."""
    executor = FatTreeExecutor(8, DATA8)
    requests = [
        QueryRequest(0, {0: 1.0}, request_time=0.0),
        QueryRequest(1, {1: 1.0}, request_time=7.5),
    ]
    summary, _ = executor.run_pipelined_queries(requests, interval=22)
    lifetime = executor.relative_raw_latency()
    for slot, result in enumerate(summary.results):
        assert result.latency_layers == lifetime
        assert result.latency_layers == result.service_layers
        assert result.request_time == requests[slot].request_time
        assert result.request_to_finish == result.finish_layer - requests[slot].request_time
        assert result.queue_delay_layers == result.start_layer - requests[slot].request_time


def test_qram_facade_resources():
    qram = FatTreeQRAM(1024)
    assert qram.qubit_count == 16 * 1024
    assert qram.query_parallelism == 10
    assert qram.num_routers == 2 * 1024 - 2 - 10
    assert qram.raw_query_layers == 99
    assert qram.single_query_latency() == pytest.approx(82.375)
    assert qram.amortized_query_latency() == pytest.approx(8.25)
    assert qram.bandwidth() == pytest.approx(121212.12, rel=1e-4)
