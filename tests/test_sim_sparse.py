"""Unit and property tests for the sparse basis-state simulator."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.circuit import Circuit
from repro.sim.sparse import SparseState
from repro.sim.statevector import StatevectorSimulator


def test_single_qubit_gates_match_statevector():
    circuit = Circuit()
    circuit.append("H", ["a"])
    circuit.append("T", ["a"])
    circuit.append("H", ["b"])
    circuit.append("CX", ["a", "b"])
    circuit.append("Z", ["b"])
    sparse = SparseState(["a", "b"])
    sparse.run(circuit)
    dense = StatevectorSimulator(["a", "b"])
    dense.run(circuit)
    assert np.allclose(sparse.to_statevector(["a", "b"]), dense.state, atol=1e-12)


def test_permutation_gates_preserve_term_count():
    state = SparseState(["a", "b", "c"])
    state.prepare_superposition(["a", "b"], {0: 1, 1: 1, 2: 1, 3: 1})
    before = state.num_terms
    state.apply_gate("CSWAP", ["a", "b", "c"])
    state.apply_gate("SWAP", ["b", "c"])
    state.apply_gate("CX", ["a", "c"])
    assert state.num_terms == before
    assert math.isclose(state.norm(), 1.0, abs_tol=1e-12)


def test_prepare_superposition_normalises():
    state = SparseState()
    state.prepare_superposition(["x0", "x1"], {0: 3, 3: 4})
    dist = state.marginal_distribution(["x0", "x1"])
    assert math.isclose(dist[0], 9 / 25, abs_tol=1e-12)
    assert math.isclose(dist[3], 16 / 25, abs_tol=1e-12)


def test_prepare_superposition_requires_fresh_register():
    state = SparseState(["x"])
    state.apply_gate("X", ["x"])
    with pytest.raises(ValueError):
        state.prepare_superposition(["x"], {0: 1, 1: 1})


def test_register_amplitudes_product_state():
    state = SparseState()
    state.prepare_superposition(["a0", "a1"], {0: 1, 3: 1})
    state.prepare_superposition(["b0"], {0: 1, 1: -1})
    amps = state.register_amplitudes(["a0", "a1"])
    assert set(amps) == {0, 3}
    assert math.isclose(abs(amps[0]), 1 / math.sqrt(2), abs_tol=1e-9)


def test_register_amplitudes_detects_entanglement():
    state = SparseState(["a", "b"])
    state.apply_gate("H", ["a"])
    state.apply_gate("CX", ["a", "b"])
    with pytest.raises(ValueError):
        state.register_amplitudes(["a"])


def test_register_amplitudes_detects_phase_entanglement():
    state = SparseState(["a", "b"])
    state.apply_gate("H", ["a"])
    state.apply_gate("H", ["b"])
    state.apply_gate("CZ", ["a", "b"])
    with pytest.raises(ValueError):
        state.register_amplitudes(["a"])


def test_fidelity_with_self_and_orthogonal():
    plus = SparseState(["q"])
    plus.apply_gate("H", ["q"])
    minus = SparseState(["q"])
    minus.apply_gate("X", ["q"])
    minus.apply_gate("H", ["q"])
    assert math.isclose(plus.fidelity_with(plus), 1.0, abs_tol=1e-12)
    assert math.isclose(plus.fidelity_with(minus), 0.0, abs_tol=1e-12)


def test_classical_condition_controls_operation():
    circuit = Circuit()
    circuit.append("X", ["q"], condition=("flag", 1))
    state = SparseState(["q"])
    state.classical["flag"] = 0
    state.run(circuit)
    assert state.probability({"q": 1}) == pytest.approx(0.0)
    state.classical["flag"] = 1
    state.run(circuit)
    assert state.probability({"q": 1}) == pytest.approx(1.0)


@settings(max_examples=25, deadline=None)
@given(
    gates=st.lists(
        st.sampled_from(["X", "CX", "SWAP", "CSWAP", "CCX"]), min_size=1, max_size=20
    ),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_random_permutation_circuits_preserve_norm_and_sparsity(gates, seed):
    """Permutation circuits never change the number of terms or the norm."""
    rng = np.random.default_rng(seed)
    qubits = [f"q{i}" for i in range(5)]
    state = SparseState(qubits)
    state.prepare_superposition(qubits[:2], {0: 1, 1: 1j, 2: -1})
    before_terms = state.num_terms
    for name in gates:
        arity = {"X": 1, "CX": 2, "SWAP": 2, "CSWAP": 3, "CCX": 3}[name]
        targets = rng.choice(len(qubits), size=arity, replace=False)
        state.apply_gate(name, [qubits[i] for i in targets])
    assert state.num_terms == before_terms
    assert math.isclose(state.norm(), 1.0, abs_tol=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    value=st.integers(min_value=0, max_value=15),
)
def test_set_register_roundtrip(value):
    state = SparseState()
    qubits = [f"r{i}" for i in range(4)]
    state.set_register(qubits, value)
    assert state.marginal_distribution(qubits) == {value: pytest.approx(1.0)}
