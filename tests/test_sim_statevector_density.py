"""Tests for the dense statevector and density-matrix simulators."""

import math

import numpy as np
import pytest

from repro.sim.circuit import Circuit
from repro.sim.density import DensityMatrixSimulator
from repro.sim.noise import (
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    generic_kraus_channel,
    phase_flip_channel,
)
from repro.sim.statevector import StatevectorSimulator


def bell_circuit() -> Circuit:
    circuit = Circuit()
    circuit.append("H", ["q0"])
    circuit.append("CX", ["q0", "q1"])
    return circuit


def test_statevector_bell_state():
    sim = StatevectorSimulator(["q0", "q1"])
    sim.run(bell_circuit())
    dist = sim.marginal_distribution(["q0", "q1"])
    assert dist[0] == pytest.approx(0.5)
    assert dist[3] == pytest.approx(0.5)
    assert sim.probability({"q0": 0, "q1": 1}) == pytest.approx(0.0)


def test_statevector_set_register():
    sim = StatevectorSimulator(["a", "b", "c"])
    sim.set_register(["a", "b", "c"], 5)
    assert sim.probability({"a": 1, "b": 0, "c": 1}) == pytest.approx(1.0)


def test_statevector_cswap_routing():
    sim = StatevectorSimulator(["r", "in", "out"])
    sim.set_register(["r", "in", "out"], 0b110)
    sim.apply_gate("CSWAP", ["r", "in", "out"])
    assert sim.probability({"in": 0, "out": 1}) == pytest.approx(1.0)


def test_density_matrix_matches_statevector_when_noiseless():
    dense = StatevectorSimulator(["q0", "q1"])
    dense.run(bell_circuit())
    rho_sim = DensityMatrixSimulator(["q0", "q1"])
    rho_sim.run(bell_circuit())
    assert rho_sim.fidelity_with_state(dense.state) == pytest.approx(1.0)
    assert rho_sim.purity() == pytest.approx(1.0)


def test_density_matrix_noise_reduces_fidelity_and_purity():
    noisy = DensityMatrixSimulator(["q0", "q1"], gate_noise=depolarizing_channel(0.02))
    noisy.run(bell_circuit())
    dense = StatevectorSimulator(["q0", "q1"])
    dense.run(bell_circuit())
    fidelity = noisy.fidelity_with_state(dense.state)
    assert 0.8 < fidelity < 1.0
    assert noisy.purity() < 1.0


@pytest.mark.parametrize(
    "channel",
    [
        bit_flip_channel(0.1),
        phase_flip_channel(0.1),
        depolarizing_channel(0.1),
        amplitude_damping_channel(0.1),
        generic_kraus_channel(0.1, np.array([[0, 1], [1, 0]])),
    ],
)
def test_channels_are_trace_preserving(channel):
    rho = np.array([[0.7, 0.2], [0.2, 0.3]], dtype=complex)
    out = channel.apply(rho)
    assert np.isclose(np.trace(out).real, 1.0)


def test_bit_flip_probability_appears_in_population():
    sim = DensityMatrixSimulator(["q"])
    sim.apply_channel(bit_flip_channel(0.25), "q")
    assert sim.probability({"q": 1}) == pytest.approx(0.25)


def test_invalid_probability_rejected():
    with pytest.raises(ValueError):
        bit_flip_channel(1.5)


def test_density_simulator_qubit_limit():
    with pytest.raises(ValueError):
        DensityMatrixSimulator([f"q{i}" for i in range(13)])


def test_circuit_layers_and_inverse():
    circuit = Circuit()
    circuit.append("H", ["a"])
    circuit.append("CX", ["a", "b"])
    circuit.append("X", ["c"])
    # H and X commute onto the same layer; CX depends on H.
    assert circuit.depth() == 2
    inverse = circuit.inverse()
    sim = StatevectorSimulator(["a", "b", "c"])
    sim.run(circuit)
    sim.run(inverse)
    assert sim.probability({"a": 0, "b": 0, "c": 0}) == pytest.approx(1.0)


def test_circuit_rejects_bad_operations():
    circuit = Circuit()
    with pytest.raises(ValueError):
        circuit.append("CX", ["a"])
    with pytest.raises(ValueError):
        circuit.append("SWAP", ["a", "a"])
    with pytest.raises(ValueError):
        circuit.append("NOPE", ["a"])


def test_gate_counts():
    circuit = bell_circuit()
    assert circuit.gate_counts() == {"H": 1, "CX": 1}
    assert circuit.num_qubits == 2
