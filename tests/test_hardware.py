"""Hardware models: parameters, components, H-tree layout, planarity (Sec. 4.2)."""

import pytest

from repro.bucket_brigade.tree import RouterId
from repro.hardware import (
    DEFAULT_PARAMETERS,
    HardwareParameters,
    HTreeLayout,
    ModularNodeLayout,
    OnChipLayout,
    fat_tree_connectivity_graph,
    is_planar,
    node_bill_of_materials,
    two_plane_decomposition,
)
from repro.hardware.components import tree_bill_of_materials
from repro.hardware.parameters import TABLE3_PARAMETERS
from repro.hardware.planarity import (
    crossing_free_modular_wiring,
    thickness_is_at_most_two,
)


def test_default_parameters_match_paper():
    assert DEFAULT_PARAMETERS.cswap_time_us == pytest.approx(1.0)
    assert DEFAULT_PARAMETERS.clops == pytest.approx(1e6)
    assert DEFAULT_PARAMETERS.fast_layer_ratio == pytest.approx(0.125)
    assert DEFAULT_PARAMETERS.total_gate_error == pytest.approx(0.005)
    assert set(TABLE3_PARAMETERS) == {1e-3, 1e-4, 1e-5}


def test_parameter_validation_and_scaling():
    with pytest.raises(ValueError):
        HardwareParameters(cswap_time_us=0.0)
    with pytest.raises(ValueError):
        HardwareParameters(cswap_error=1.5)
    scaled = DEFAULT_PARAMETERS.scaled(0.1)
    assert scaled.cswap_error == pytest.approx(0.0002)


def test_node_bill_of_materials():
    root = node_bill_of_materials(32, 0)
    assert root.num_routers == 5
    # One transient router (2 cavities), four full routers (4 cavities).
    assert root.components.cavities == 2 + 4 * 4
    assert root.components.transmons == 5
    assert root.components.coax_wires == 5 + 2 * 4
    leaf = node_bill_of_materials(32, 4)
    assert leaf.num_routers == 1
    assert leaf.components.cavities == 4        # leaf router keeps its outputs
    with pytest.raises(ValueError):
        node_bill_of_materials(32, 5)


def test_tree_bill_of_materials_scales_linearly():
    small = tree_bill_of_materials(16)
    large = tree_bill_of_materials(64)
    assert large.cavities > 3 * small.cavities
    assert large.transmons == 2 * 64 - 2 - 6


def test_htree_layout_properties():
    layout = HTreeLayout(64)
    placements = layout.placements()
    assert len(placements) == 63
    positions = {(round(p.x, 9), round(p.y, 9)) for p in placements}
    assert len(positions) == 63              # no two nodes collide
    assert layout.position(RouterId(0, 0)) == (0.0, 0.0)
    assert len(layout.leaf_positions()) == 32
    # Wire lengths shrink as we go down the tree.
    assert layout.wire_length(RouterId(0, 0), 0) > layout.wire_length(RouterId(2, 0), 0)
    assert layout.max_wire_length() == pytest.approx(layout.wire_length(RouterId(0, 0), 0))
    lo_x, lo_y, hi_x, hi_y = layout.bounding_box()
    assert lo_x < 0 < hi_x and lo_y < 0 < hi_y


def test_full_connectivity_graph_is_not_planar_but_thickness_two():
    graph = fat_tree_connectivity_graph(16)
    assert graph.number_of_nodes() > 0
    assert not is_planar(graph)
    assert thickness_is_at_most_two(16)
    plane0, plane1 = two_plane_decomposition(16)
    assert plane0.number_of_edges() + plane1.number_of_edges() == graph.number_of_edges()


@pytest.mark.parametrize("capacity", [4, 8, 32])
def test_two_plane_decomposition_scales(capacity):
    assert thickness_is_at_most_two(capacity)


def test_onchip_layout_alternates_planes():
    layout = OnChipLayout(32)
    # Each internal node keeps exactly one child on its own plane.
    for level in range(4):
        for index in range(2**level):
            plane = layout.plane_of(level, index)
            children = [layout.plane_of(level + 1, 2 * index + d) for d in (0, 1)]
            assert sorted(children) == sorted([plane, 1 - plane])
    assert layout.tsv_count() == 15          # one crossing child per internal node
    plane0, plane1 = layout.planes_balanced()
    assert plane0 + plane1 == 31
    assert layout.both_planes_planar()


def test_modular_node_layout():
    node = ModularNodeLayout(32, 1)
    assert node.num_routers == 4
    assert node.wire_count() == {"incoming": 4, "outgoing": 6}
    assert len(node.top_ports()) == 4
    assert len(node.bottom_ports()) == 6
    assert not node.has_internal_crossings()
    assert crossing_free_modular_wiring(64)
    leaf_node = ModularNodeLayout(32, 4)
    assert leaf_node.bottom_ports() == []
    with pytest.raises(ValueError):
        ModularNodeLayout(32, 9)
