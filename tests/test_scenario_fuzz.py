"""The property-based engine fuzzer: smoke, mutation-testing, corpus.

Three layers of confidence in :mod:`repro.scenarios.fuzz`:

* **smoke** — a small seeded campaign passes every invariant (the CI job
  runs the full 200-draw campaigns; tier-1 keeps a fast canary);
* **mutation testing** — the harness *itself* is tested by injecting a
  known accounting bug into the report and asserting the conservation
  check catches it and the shrinker folds the reproducer down to a
  trivially small spec (≤ 3 shards, ≤ 10 offered requests);
* **reproducer corpus** — every bug the fuzzer has ever caught lives on
  as a JSON spec under ``tests/reproducers/``; replaying the corpus
  through :func:`check_spec` keeps the fixes pinned forever.
"""

from __future__ import annotations

import dataclasses
import json
import random
from pathlib import Path

import pytest

from repro.scenarios import (
    FuzzReport,
    ScenarioSpec,
    check_spec,
    draw_spec,
    offered_requests,
    run_fuzz,
)

REPRODUCERS = sorted(
    (Path(__file__).resolve().parent / "reproducers").glob("*.json")
)


# ------------------------------------------------------------------- smoke
def test_fuzz_smoke_campaign():
    report = run_fuzz(draws=25, seed=0)
    assert isinstance(report, FuzzReport)
    assert report.ok, (
        f"{report.violation.invariant}: {report.violation.detail}\n"
        f"{report.violation.spec.to_json()}"
    )
    assert report.checked == report.draws == 25
    # A campaign is useful only if most draws actually serve something.
    assert report.vacuous < report.draws // 2


def test_draw_spec_is_seed_deterministic():
    first = [draw_spec(random.Random(7)) for _ in range(10)]
    second = [draw_spec(random.Random(7)) for _ in range(10)]
    assert first == second
    # Different seeds explore different corners.
    assert first != [draw_spec(random.Random(8)) for _ in range(10)]


def test_draw_spec_round_trips():
    rng = random.Random(3)
    for _ in range(20):
        spec = draw_spec(rng)
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        offered = offered_requests(spec)
        assert offered is None or offered >= 1


# -------------------------------------------------------- mutation testing
def _corrupt_conservation(report):
    """Inject the bug class the conservation invariant exists to catch:
    an offered-query count that no longer equals served + rejected +
    shed."""
    stats = dataclasses.replace(
        report.stats, offered_queries=report.stats.offered_queries + 1
    )
    return dataclasses.replace(report, stats=stats)


def test_mutation_is_caught_and_shrunk(tmp_path):
    reproducer = tmp_path / "fuzz_reproducer.json"
    report = run_fuzz(
        draws=50, seed=0, mutate=_corrupt_conservation,
        reproducer_path=str(reproducer),
    )
    assert not report.ok
    assert report.violation.invariant == "conservation"
    assert report.checked == 1  # the very first draw trips it
    # The shrinker folds the reproducer down to a trivial spec.
    shrunk = report.shrunk
    assert shrunk is not None
    assert shrunk.fleet.num_shards <= 3
    offered = offered_requests(shrunk)
    assert offered is not None and offered <= 10
    # The shrunk spec still trips the same invariant.
    violation = check_spec(shrunk, mutate=_corrupt_conservation)
    assert violation is not None and violation.invariant == "conservation"
    # The dumped reproducer is self-contained, seeded JSON.
    payload = json.loads(reproducer.read_text())
    assert payload["invariant"] == "conservation"
    assert payload["seed"] == 0
    assert ScenarioSpec.from_dict(payload["shrunk_spec"]) == shrunk


def test_clean_run_writes_no_reproducer(tmp_path):
    reproducer = tmp_path / "fuzz_reproducer.json"
    report = run_fuzz(draws=5, seed=1, reproducer_path=str(reproducer))
    assert report.ok
    assert not reproducer.exists()


# ------------------------------------------------------- reproducer corpus
def test_corpus_is_not_empty():
    assert len(REPRODUCERS) >= 3


@pytest.mark.parametrize(
    "path", REPRODUCERS, ids=lambda path: path.stem
)
def test_reproducer_corpus_replays_clean(path):
    """Every past fuzzer catch stays fixed: the minimized spec that once
    violated an invariant now passes all of them."""
    spec = ScenarioSpec.from_json(path.read_text())
    violation = check_spec(spec)
    assert violation is None, (
        f"{path.name} regressed: {violation.invariant}: {violation.detail}"
    )
