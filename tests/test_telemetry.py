"""The streaming telemetry core: sketches, sinks, retention modes, ticks.

Covers the observation-path refactor end to end:

* online aggregates (:class:`StreamingStat`, :class:`P2Quantile`) against
  exact batch computations, including sketch error bounds on seed
  workloads;
* record sinks — list / reservoir sample / JSONL round-trip / null;
* engine retention modes: ``"full"`` reproduces the historical batch
  :class:`ServiceStats` byte for byte, ``"sampled"`` and ``"none"`` report
  exact counts and means from the streaming aggregator in bounded memory;
* the periodic :class:`TelemetryTick` time series;
* lazy traces and the :class:`StreamingTraceSource` equivalence;
* the satellite fixes: request-time validation, reusable engines, memoized
  fidelity predictions.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.query import QueryRequest
from repro.engine import (
    AutoscalerConfig,
    ServiceEngine,
    StreamingTraceSource,
    TraceSource,
)
from repro.metrics.service_stats import _percentile
from repro.metrics.sinks import (
    JsonlSink,
    ListSink,
    NullSink,
    SamplingSink,
    load_jsonl,
)
from repro.metrics.streaming import (
    P2Quantile,
    StreamingServiceAggregator,
    StreamingStat,
)
from repro.service import QRAMService
from repro.workloads import (
    bursty_trace,
    closed_loop_source,
    iter_bursty_trace,
    iter_poisson_trace,
    poisson_trace,
    random_data,
)

CAPACITY = 16


def _poisson_kwargs(**overrides):
    kwargs = dict(
        num_queries=60,
        mean_interarrival=8.0,
        num_tenants=3,
        num_shards=2,
        seed=7,
    )
    kwargs.update(overrides)
    return kwargs


@pytest.fixture()
def service():
    return QRAMService(CAPACITY, num_shards=2, data=random_data(CAPACITY, seed=1))


@pytest.fixture()
def trace():
    return poisson_trace(CAPACITY, **_poisson_kwargs())


# --------------------------------------------------------------- primitives
def test_streaming_stat_matches_batch():
    rng = np.random.default_rng(3)
    values = rng.exponential(10.0, size=500)
    stat = StreamingStat()
    for value in values:
        stat.add(float(value))
    assert stat.count == 500
    assert stat.mean == pytest.approx(float(np.mean(values)))
    assert stat.minimum == pytest.approx(float(np.min(values)))
    assert stat.maximum == pytest.approx(float(np.max(values)))
    empty = StreamingStat()
    assert empty.mean == 0.0 and empty.minimum is None and empty.maximum is None


def test_p2_quantile_exact_below_five_samples():
    sketch = P2Quantile(0.5)
    for value in (5.0, 1.0, 3.0):
        sketch.add(value)
    assert sketch.value == _percentile([5.0, 1.0, 3.0], 50)


@pytest.mark.parametrize("quantile", [0.5, 0.95, 0.99])
def test_p2_quantile_error_bounds(quantile):
    """The sketch tracks exact percentiles within a few percent of the
    sample range on heavy-tailed seed-workload-like data."""
    rng = np.random.default_rng(11)
    values = [float(v) for v in rng.exponential(50.0, size=4000)]
    sketch = P2Quantile(quantile)
    for value in values:
        sketch.add(value)
    exact = _percentile(values, quantile * 100.0)
    spread = max(values) - min(values)
    assert abs(sketch.value - exact) <= 0.05 * spread
    assert sketch.value == pytest.approx(exact, rel=0.15)


def test_p2_quantile_validates():
    with pytest.raises(ValueError):
        P2Quantile(0.0)
    with pytest.raises(ValueError):
        P2Quantile(1.0)


# --------------------------------------------------------------------- sinks
def test_sampling_sink_uniform_reservoir():
    sink = SamplingSink(8, seed=4)
    for i in range(200):
        sink.append(i)
    assert sink.seen == 200
    assert len(sink.records) == 8
    assert all(0 <= r < 200 for r in sink.records)
    assert len(set(sink.records)) == 8
    # Deterministic for a fixed seed.
    again = SamplingSink(8, seed=4)
    for i in range(200):
        again.append(i)
    assert again.records == sink.records
    # Short streams are retained completely.
    short = SamplingSink(8, seed=4)
    for i in range(5):
        short.append(i)
    assert short.records == list(range(5))
    with pytest.raises(ValueError):
        SamplingSink(0)


def test_list_and_null_sinks():
    keep, drop = ListSink(), NullSink()
    for i in range(3):
        keep.append(i)
        drop.append(i)
    assert keep.records == [0, 1, 2] and len(keep) == 3
    assert len(drop) == 0


def test_jsonl_sink_round_trip(tmp_path, service, trace):
    path = tmp_path / "records.jsonl"
    with JsonlSink(str(path)) as sink:
        report = service.serve_workload(
            TraceSource(trace), retention="none", sink=sink
        )
    records = load_jsonl(str(path))
    assert sink.written == len(records)
    # The tee received every record even though the report retained none.
    assert report.served == [] and report.windows == []
    served = [r for r in records if type(r).__name__ == "ServedQuery"]
    windows = [r for r in records if type(r).__name__ == "WindowRecord"]
    assert len(served) == report.stats.total_queries == 60
    assert len(windows) > 0
    # Byte-exact field round trip against a full-retention run.
    full = service.serve_workload(TraceSource(trace))
    assert sorted(served, key=lambda r: r.query_id) == sorted(
        full.served, key=lambda r: r.query_id
    )
    assert windows == full.windows


def test_jsonl_sink_rejects_unknown_records(tmp_path):
    with JsonlSink(str(tmp_path / "x.jsonl")) as sink:
        with pytest.raises(TypeError):
            sink.append({"not": "a record"})


# ----------------------------------------------------------- retention modes
def test_full_retention_is_byte_identical(service, trace):
    """The tentpole pin: rewiring through sinks + aggregator must not move
    a single bit of the full-retention ServiceStats."""
    legacy = service.serve(trace)
    rewired = service.serve_workload(TraceSource(trace), retention="full")
    assert rewired.stats == legacy.stats
    assert rewired.served == legacy.served
    assert rewired.windows == legacy.windows
    assert rewired.retention == "full"


def test_retention_none_stats_without_records(service, trace):
    full = service.serve_workload(TraceSource(trace))
    none = service.serve_workload(TraceSource(trace), retention="none")
    assert none.served == [] and none.windows == [] and none.rejected == []
    assert none.outputs == {}
    assert none.retention == "none"
    stats, exact = none.stats, full.stats
    assert stats.total_queries == exact.total_queries
    assert stats.offered_queries == exact.offered_queries
    assert stats.makespan_layers == exact.makespan_layers
    assert stats.mean_latency_layers == pytest.approx(exact.mean_latency_layers)
    assert stats.mean_queue_delay_layers == pytest.approx(
        exact.mean_queue_delay_layers
    )
    assert stats.mean_fidelity == pytest.approx(exact.mean_fidelity)
    assert stats.min_fidelity == pytest.approx(exact.min_fidelity)
    assert set(stats.per_tenant) == set(exact.per_tenant)
    assert set(stats.per_shard) == set(exact.per_shard)
    assert set(stats.per_backend) == set(exact.per_backend)
    for tenant, tenant_stats in stats.per_tenant.items():
        assert tenant_stats.queries == exact.per_tenant[tenant].queries
        assert tenant_stats.mean_latency_layers == pytest.approx(
            exact.per_tenant[tenant].mean_latency_layers
        )
        assert tenant_stats.max_latency_layers == pytest.approx(
            exact.per_tenant[tenant].max_latency_layers
        )
    for shard, shard_stats in stats.per_shard.items():
        assert shard_stats.windows == exact.per_shard[shard].windows
        assert shard_stats.busy_layers == pytest.approx(
            exact.per_shard[shard].busy_layers
        )
        assert shard_stats.utilization == pytest.approx(
            exact.per_shard[shard].utilization
        )
        assert shard_stats.max_queue_depth == exact.per_shard[shard].max_queue_depth
        assert shard_stats.architecture == exact.per_shard[shard].architecture
    # Sketched percentiles track the exact order statistics.
    assert stats.p50_latency_layers == pytest.approx(
        exact.p50_latency_layers, rel=0.15
    )
    assert stats.p95_latency_layers == pytest.approx(
        exact.p95_latency_layers, rel=0.15
    )


def test_retention_none_result_for_raises(service, trace):
    none = service.serve_workload(TraceSource(trace), retention="none")
    with pytest.raises(KeyError):
        none.result_for(trace[0].query_id)


def test_retention_sampled_reservoir(service, trace):
    sampled = service.serve_workload(
        TraceSource(trace), retention="sampled", sample_size=10
    )
    assert len(sampled.served) == 10
    assert sampled.retention == "sampled"
    assert sampled.stats.total_queries == 60
    full = service.serve_workload(TraceSource(trace))
    by_id = {record.query_id: record for record in full.served}
    for record in sampled.served:
        assert record == by_id[record.query_id]
    # Completion-ordered like the full list.
    keys = [(r.finish_layer, r.query_id) for r in sampled.served]
    assert keys == sorted(keys)


def test_retention_rejections_counted(service):
    """Rejection/shed accounting survives record-free serving."""
    trace = poisson_trace(
        CAPACITY, **_poisson_kwargs(mean_interarrival=2.0, deadline_layers=150.0)
    )
    kwargs = dict(max_queue_depth=8, shed_expired=True)
    full = service.serve_workload(TraceSource(trace), **kwargs)
    none = service.serve_workload(TraceSource(trace), retention="none", **kwargs)
    assert full.stats.rejected_queries > 0 or full.stats.shed_queries > 0
    assert none.stats.rejected_queries == full.stats.rejected_queries
    assert none.stats.shed_queries == full.stats.shed_queries
    assert none.stats.deadline_misses == full.stats.deadline_misses
    assert none.stats.deadline_miss_rate == pytest.approx(
        full.stats.deadline_miss_rate
    )
    for tenant, tenant_stats in none.stats.per_tenant.items():
        assert tenant_stats.deadline_misses == (
            full.stats.per_tenant[tenant].deadline_misses
        )


def test_queue_full_only_tenant_matches_batch_tenant_universe(service):
    """A tenant whose entire demand bounced off a full queue appears in
    neither path's per-tenant view — streaming must not invent a phantom
    zero-query row the batch summary would omit."""
    burst = [
        QueryRequest(
            query_id=i,
            address_amplitudes={0: 1.0},  # all on shard 0
            request_time=0.0,
            qpu=0 if i == 0 else 1,  # tenant 1 only ever sees a full queue
        )
        for i in range(6)
    ]
    full = service.serve_workload(TraceSource(burst), max_queue_depth=1)
    none = service.serve_workload(
        TraceSource(burst), max_queue_depth=1, retention="none"
    )
    assert full.stats.rejected_queries == 5
    assert set(full.stats.per_tenant) == {0}  # tenant 1 never served anything
    assert set(none.stats.per_tenant) == set(full.stats.per_tenant)


def test_sample_seed_passthrough(service, trace):
    a = service.serve_workload(
        TraceSource(trace), retention="sampled", sample_size=10, sample_seed=1
    )
    b = service.serve_workload(
        TraceSource(trace), retention="sampled", sample_size=10, sample_seed=2
    )
    assert a.stats == b.stats
    assert a.served != b.served  # different reservoirs, same statistics


def test_invalid_retention_rejected(service):
    with pytest.raises(ValueError):
        ServiceEngine(service, retention="forever")
    with pytest.raises(ValueError):
        ServiceEngine(service, sample_size=0)
    with pytest.raises(ValueError):
        ServiceEngine(service, telemetry_interval=0.0)


def test_streaming_aggregator_requires_served():
    with pytest.raises(ValueError):
        StreamingServiceAggregator().to_stats()


def test_retention_none_memory_is_bounded():
    """Peak traced memory does not grow with the request count."""

    def serve(num):
        svc = QRAMService(8, num_shards=2, functional=False)
        trace = iter_poisson_trace(
            8, num, mean_interarrival=14.0, addresses_per_query=1,
            num_tenants=4, num_shards=2, seed=5,
        )
        return svc.serve_workload(StreamingTraceSource(trace), retention="none")

    serve(500)  # warm import-time and schedule caches
    peaks = []
    for num in (1_000, 5_000):
        tracemalloc.start()
        report = serve(num)
        peaks.append(tracemalloc.get_traced_memory()[1])
        tracemalloc.stop()
        assert report.stats.total_queries == num
    assert peaks[1] <= 1.5 * peaks[0] + 256 * 1024


# ------------------------------------------------------------ telemetry ticks
def test_telemetry_time_series(service, trace):
    report = service.serve_workload(
        TraceSource(trace), retention="none", telemetry_interval=100.0
    )
    telemetry = report.telemetry
    assert len(telemetry) > 2
    # Contiguous cover of the run from t=0 through the last event.
    assert telemetry[0].start_layer == 0.0
    for prev, this in zip(telemetry, telemetry[1:]):
        assert this.start_layer == prev.end_layer
        assert this.end_layer > this.start_layer
    assert telemetry[-1].end_layer >= report.stats.makespan_layers
    # Interval counters sum to the run's totals.
    assert sum(i.served for i in telemetry) == report.stats.total_queries
    assert sum(i.arrivals for i in telemetry) == report.stats.offered_queries
    assert sum(i.windows for i in telemetry) > 0
    for interval in telemetry:
        assert interval.queue_depth_total >= interval.queue_depth_max >= 0
        assert 0.0 <= interval.rejection_rate <= 1.0
        assert interval.throughput_queries_per_layer >= 0.0
        if interval.mean_fidelity is not None:
            # Functional fidelities are |<ideal|actual>|^2 and may carry
            # float noise a hair above 1.
            assert 0.0 <= interval.mean_fidelity <= 1.0 + 1e-9
    assert any(i.mean_fidelity is not None for i in telemetry)


def test_telemetry_off_by_default(service, trace):
    assert service.serve_workload(TraceSource(trace)).telemetry == []


def test_telemetry_with_closed_loop():
    source = closed_loop_source(
        CAPACITY, num_clients=3, queries_per_client=5, think_layers=20.0,
        num_shards=2, seed=9,
    )
    service = QRAMService(CAPACITY, num_shards=2, functional=False)
    report = service.serve_workload(
        source, retention="sampled", sample_size=6, telemetry_interval=50.0
    )
    assert report.stats.total_queries == 15
    assert sum(i.served for i in report.telemetry) == 15
    assert len(report.served) == 6


# ----------------------------------------------- lazy traces / streaming source
def test_lazy_trace_generators_match_batch():
    kwargs = _poisson_kwargs(deadline_layers=100.0)
    assert list(iter_poisson_trace(CAPACITY, **kwargs)) == poisson_trace(
        CAPACITY, **kwargs
    )
    assert list(
        iter_bursty_trace(CAPACITY, 4, 3, 50.0, num_tenants=2, num_shards=2, seed=3)
    ) == bursty_trace(CAPACITY, 4, 3, 50.0, num_tenants=2, num_shards=2, seed=3)


def test_streaming_trace_source_matches_trace_source(service, trace):
    batch = service.serve_workload(TraceSource(trace))
    stream = service.serve_workload(StreamingTraceSource(iter(trace)))
    assert stream.stats == batch.stats
    assert stream.served == batch.served
    assert stream.windows == batch.windows


def test_streaming_trace_source_requires_sorted_times(service):
    out_of_order = [
        QueryRequest(query_id=0, address_amplitudes={0: 1.0}, request_time=10.0),
        QueryRequest(query_id=1, address_amplitudes={1: 1.0}, request_time=5.0),
    ]
    with pytest.raises(ValueError, match="sorted"):
        service.serve_workload(StreamingTraceSource(iter(out_of_order)))


def test_streaming_trace_source_requires_requests(service):
    with pytest.raises(ValueError):
        service.serve_workload(StreamingTraceSource(iter([])))


# ------------------------------------------------------------------ satellites
def test_negative_request_time_rejected(service):
    bad = QueryRequest(
        query_id=0, address_amplitudes={0: 1.0}, request_time=-5.0
    )
    with pytest.raises(ValueError, match="negative request_time"):
        service.serve([bad])
    engine = ServiceEngine(service)
    engine._reset(TraceSource([bad]))
    with pytest.raises(ValueError, match="negative request_time"):
        engine.submit(bad)


def test_engine_run_is_reusable(service, trace):
    """A second run() on the same engine is independent of the first."""
    engine = ServiceEngine(service)
    first = engine.run(TraceSource(trace))
    second = engine.run(TraceSource(trace))
    assert second.stats == first.stats
    assert second.served == first.served


def test_engine_run_reusable_after_autoscale():
    trace = poisson_trace(
        CAPACITY, **_poisson_kwargs(mean_interarrival=4.0, num_shards=1)
    )
    service = QRAMService(
        CAPACITY, num_shards=1, functional=False, placement="shortest-queue"
    )
    engine = ServiceEngine(
        service,
        autoscaler=AutoscalerConfig(period=60.0, high_watermark=4, max_shards=3),
    )
    first = engine.run(TraceSource(trace))
    assert first.scale_events  # the fleet actually scaled
    second = engine.run(TraceSource(trace))
    assert second.stats == first.stats
    assert second.scale_events == first.scale_events


def test_fidelity_prediction_memoized(service, trace):
    # workers=0: the engine hot path under test runs on this instance,
    # which a REPRO_WORKERS-partitioned run would never drive directly.
    # The memo itself lives on the backend (instance memo + the shared
    # registry vectors), so repeated engine lookups return the one tuple.
    engine = ServiceEngine(service, workers=0)
    engine.run(TraceSource(trace))
    first = engine._predicted_fidelities(0, 2)
    assert engine._predicted_fidelities(0, 2) is first
    assert first == service.shards[0].predicted_window_fidelities(2)


def test_fidelity_predictions_correct_after_scale_up():
    trace = poisson_trace(
        CAPACITY,
        **_poisson_kwargs(mean_interarrival=4.0, num_shards=1, min_fidelity=0.5),
    )
    service = QRAMService(
        CAPACITY, num_shards=1, functional=False, placement="shortest-queue"
    )
    engine = ServiceEngine(
        service,
        autoscaler=AutoscalerConfig(period=60.0, high_watermark=4, max_shards=3),
    )
    report = engine.run(TraceSource(trace))
    assert any(event.action == "up" for event in report.scale_events)
    # Engine lookups delegate to the live backends, so every shard added
    # by the autoscaler answers with its own (correct, registry-shared)
    # vectors — there is no engine-level cache left to go stale.
    for shard in range(len(engine._backends)):
        for occupancy in (1, 2):
            assert engine._predicted_fidelities(shard, occupancy) == (
                engine._backends[shard].predicted_window_fidelities(occupancy)
            )


def test_duplicate_ids_detected_after_watermark_compaction(service):
    requests = [
        QueryRequest(query_id=i, address_amplitudes={i % 2: 1.0}, request_time=float(i))
        for i in range(6)
    ]
    requests.append(
        QueryRequest(query_id=2, address_amplitudes={0: 1.0}, request_time=9.0)
    )
    with pytest.raises(ValueError, match="duplicate query_id"):
        service.serve(requests)
