"""Architectural pipeline model (Fig. 6, Table 1 latencies)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import (
    FatTreePipeline,
    fat_tree_amortized_query_latency,
    fat_tree_parallel_query_latency,
    fat_tree_raw_query_layers,
    fat_tree_single_query_latency,
)


def test_fig6_capacity8_numbers():
    pipeline = FatTreePipeline(8, num_queries=3)
    assert pipeline.query_raw_latency == 29
    timelines = pipeline.timelines()
    assert [t.finish_layer for t in timelines] == [29, 39, 49]
    assert [t.data_retrieval_layer for t in timelines] == [15, 25, 35]
    assert pipeline.total_raw_layers == 49
    pipeline.verify_no_conflicts()


def test_single_query_weighted_latency_table1():
    assert fat_tree_single_query_latency(8) == pytest.approx(8.25 * 3 - 0.125)
    assert fat_tree_single_query_latency(1024) == pytest.approx(82.375)


def test_parallel_and_amortized_latency_table1():
    assert fat_tree_parallel_query_latency(1024, 10) == pytest.approx(16.5 * 10 - 8.375)
    assert fat_tree_amortized_query_latency(1024) == pytest.approx(8.25)
    assert FatTreePipeline(1024).exact_amortized_latency() == pytest.approx(8.25)


def test_bandwidth_is_capacity_independent():
    values = {FatTreePipeline(2**n).bandwidth() for n in range(2, 11)}
    assert len({round(v, 6) for v in values}) == 1
    assert values.pop() == pytest.approx(1e6 / 8.25)


def test_latency_ratio_vs_bb_for_n3():
    # Fig. 6 caption: 29 raw layers vs 25 for BB QRAM.
    from repro.bucket_brigade.schedule import bb_raw_query_layers

    assert fat_tree_raw_query_layers(8) == 29
    assert bb_raw_query_layers(8) == 25


def test_swap_cadence_and_types():
    pipeline = FatTreePipeline(8, num_queries=2)
    swaps = pipeline.swap_layers()
    assert swaps[0] == 5 and all(layer % 5 == 0 for layer in swaps)
    assert pipeline.swap_type(5) == "SWAP-I"
    assert pipeline.swap_type(10) == "SWAP-II"
    assert pipeline.swap_type(7) is None


def test_label_trajectory_shape():
    pipeline = FatTreePipeline(8, num_queries=1)
    labels = [pipeline.label_at(0, layer) for layer in range(1, 30)]
    assert labels[0] == 0
    assert max(labels) == 2
    assert labels[-1] == 0
    # Monotone up, plateau, monotone down.
    peak = labels.index(2)
    assert all(b >= a for a, b in zip(labels[:peak], labels[1:peak + 1]))
    assert all(b <= a for a, b in zip(labels[peak:], labels[peak + 1:]))
    assert pipeline.label_at(0, 100) is None


def test_active_queries_and_utilization():
    pipeline = FatTreePipeline(8, num_queries=3)
    assert pipeline.active_queries(1) == [0]
    assert pipeline.active_queries(25) == [0, 1, 2]
    assert pipeline.active_queries(35) == [1, 2]
    profile = pipeline.utilization_profile()
    assert len(profile) == pipeline.total_raw_layers
    assert max(profile) <= 1.0
    assert pipeline.average_utilization() > 0.5


def test_bandwidth_honours_start_interval():
    """Regression: a pipeline with a slower admission interval must report
    proportionally less bandwidth, not the default 8.25-layer value."""
    default = FatTreePipeline(8)
    slow = FatTreePipeline(8, start_interval=15)
    assert default.interval_weighted_cost() == pytest.approx(8.25)
    assert default.bandwidth() == pytest.approx(1e6 / 8.25)
    # 15 raw layers = 12 full + 3 fast = 12.375 weighted.
    assert slow.interval_weighted_cost() == pytest.approx(12.375)
    assert slow.bandwidth() == pytest.approx(1e6 / 12.375)
    assert slow.bandwidth() < default.bandwidth()
    assert slow.amortized_weighted_latency() == pytest.approx(12.375)
    assert float(slow.exact_amortized_latency()) == pytest.approx(12.375)
    # Intervals that are not cadence multiples amortize fractionally: 12 raw
    # layers contain 12/5 = 2.4 fast layers on average (9.9 weighted), never
    # the floor-rounded 10.25.
    uneven = FatTreePipeline(8, start_interval=12)
    assert uneven.interval_weighted_cost() == pytest.approx(9.9)
    assert float(uneven.exact_amortized_latency()) == pytest.approx(9.9)
    # Cost scales linearly with the interval: no rounding steps.
    assert uneven.interval_weighted_cost() == pytest.approx(12 * 8.25 / 10)


def test_qram_amortized_latency_honours_num_queries():
    from repro.core.qram import FatTreeQRAM

    qram = FatTreeQRAM(1024)
    # Default: steady-state value of Table 1.
    assert qram.amortized_query_latency() == pytest.approx(8.25)
    # Explicit finite horizon: includes the pipeline-fill cost and converges
    # to the steady state from above.
    assert qram.amortized_query_latency(1) == pytest.approx(qram.single_query_latency())
    amortized = [qram.amortized_query_latency(k) for k in (1, 2, 5, 50, 5000)]
    assert all(b < a for a, b in zip(amortized, amortized[1:]))
    assert amortized[-1] == pytest.approx(8.25, rel=1e-2)


def test_interval_below_paper_value_rejected():
    with pytest.raises(ValueError):
        FatTreePipeline(8, num_queries=2, start_interval=9)
    with pytest.raises(ValueError):
        FatTreePipeline(8, num_queries=0)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=9), queries=st.integers(min_value=1, max_value=12))
def test_no_label_conflicts_for_any_size(n, queries):
    """Property: the Fig. 6 'no conflicting colors' invariant holds for every
    capacity and any number of back-to-back queries."""
    pipeline = FatTreePipeline(2**n, num_queries=queries)
    pipeline.verify_no_conflicts()
    assert pipeline.query_raw_latency == 10 * n - 1
    assert pipeline.total_raw_layers == 10 * (queries - 1) + 10 * n - 1


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=10))
def test_weighted_identities(n):
    """Raw layers = 8n full + (2n-1) fast; weighted = 8.25n - 0.125."""
    capacity = 2**n
    assert fat_tree_raw_query_layers(capacity) == 8 * n + (2 * n - 1)
    assert fat_tree_single_query_latency(capacity) == pytest.approx(
        8 * n + (2 * n - 1) * 0.125
    )
