"""Parallel algorithms, synthetic workloads, depth model and analysis outputs
(Sec. 6.3, 7.3, 7.4 — Figs. 9, 10)."""

import math

import pytest

from repro.algorithms import (
    AlgorithmProfile,
    algorithm_depth,
    asymptotic_depth_reduction,
    fig9_depths,
    grover_iterations,
    hamiltonian_simulation_profile,
    ksum_queries,
    parallel_grover_profile,
    parallel_ksum_profile,
    parallel_qsp_profile,
    qsp_query_count,
    synthetic_sweep,
)
from repro.algorithms.grover import run_grover_search
from repro.algorithms.synthetic import SyntheticAlgorithm, sweep_to_grids
from repro.analysis import (
    format_table,
    full_report,
    generate_fig2_milestones,
    generate_fig6_pipeline,
    generate_fig7_schedule,
    generate_fig8_bandwidth,
    generate_fig10_synthetic,
    generate_fig11_qec,
    generate_table1,
    generate_table3,
    generate_table4,
    generate_table5,
)
from repro.baselines import build_architecture
from repro.workloads import (
    query_trace,
    random_address_superposition,
    random_data,
    structured_data,
    uniform_superposition,
)


def test_profiles_are_consistent():
    grover = parallel_grover_profile(1024)
    assert grover.parallel_streams == 10
    assert grover.queries_per_stream == grover_iterations(1024 // 10)
    ksum = parallel_ksum_profile(1024)
    assert ksum.queries_per_stream == ksum_queries(1024, 2, 10)
    qsp = parallel_qsp_profile(1024, degree=30)
    assert qsp.queries_per_stream == qsp_query_count(30, 10) == 90
    ham = hamiltonian_simulation_profile(1024)
    assert ham.total_queries == ham.parallel_streams * ham.queries_per_stream
    with pytest.raises(ValueError):
        AlgorithmProfile("bad", 1024, 0, 1)


def test_grover_iteration_count():
    assert grover_iterations(1024) == round(math.pi / 4 * 32)
    with pytest.raises(ValueError):
        grover_iterations(0)


def test_grover_search_finds_marked_item():
    data = structured_data(64, "single")     # only address 0 marked
    best, probability = run_grover_search(data)
    assert best == 0
    assert probability > 0.9


def test_algorithm_depth_favours_fat_tree():
    profile = parallel_grover_profile(256, processing_layers=4.0)
    ft_depth = algorithm_depth(profile, build_architecture("Fat-Tree", 256))
    bb_depth = algorithm_depth(profile, build_architecture("BB", 256))
    assert ft_depth < bb_depth
    assert bb_depth / ft_depth > 3


def test_fig9_depths_and_reduction():
    depths = fig9_depths(256, architectures=("Fat-Tree", "BB", "Virtual"))
    assert set(depths) == {"Grover", "k-Sum", "Hamiltonian Sim.", "QSP"}
    for row in depths.values():
        assert row["Fat-Tree"] < row["BB"]
        assert row["Fat-Tree"] < row["Virtual"]
    reductions = asymptotic_depth_reduction(256)
    assert all(2.0 < factor <= 12.0 for factor in reductions.values())


def test_synthetic_sweep_grids():
    qram = build_architecture("Fat-Tree", 256)
    points = synthetic_sweep(qram, [0.0, 1.0], [1, 5], rounds=3)
    assert len(points) == 4
    ratios, counts, depth, utilization = sweep_to_grids(points)
    assert ratios == [0.0, 1.0] and counts == [1, 5]
    assert depth[0][1] >= depth[0][0]          # more algorithms, more depth
    assert all(0 <= u <= 1 for row in utilization for u in row)
    workloads = SyntheticAlgorithm(rounds=3, processing_ratio=1.0).workloads(2, 10.0)
    assert len(workloads) == 2 and workloads[0].processing_layers == pytest.approx(10.0)


def test_fig10_bb_hits_bandwidth_bound_faster_than_fat_tree():
    grids = generate_fig10_synthetic(
        256, processing_ratios=(0.5,), parallel_counts=(1, 10), rounds=3
    )
    bb_depth = grids["BB"]["overall_depth"][0]
    ft_depth = grids["Fat-Tree"]["overall_depth"][0]
    bb_slowdown = bb_depth[1] / bb_depth[0]
    ft_slowdown = ft_depth[1] / ft_depth[0]
    assert bb_slowdown > 3.0                   # memory bandwidth bound
    assert ft_slowdown < bb_slowdown           # Fat-Tree absorbs the load


def test_workload_generators():
    data = random_data(64, seed=1)
    assert len(data) == 64 and set(data) <= {0, 1}
    assert structured_data(8, "alternating") == [0, 1, 0, 1, 0, 1, 0, 1]
    with pytest.raises(ValueError):
        structured_data(8, "nope")
    amps = uniform_superposition(16)
    assert sum(abs(a) ** 2 for a in amps.values()) == pytest.approx(1.0)
    sparse = random_address_superposition(64, 4, seed=2)
    assert len(sparse) == 4
    assert sum(abs(a) ** 2 for a in sparse.values()) == pytest.approx(1.0)
    trace = query_trace(16, 5)
    assert len(trace) == 5 and trace[3].query_id == 3


def test_analysis_tables_and_figures():
    assert len(generate_table1(64)) == 5
    assert generate_table3()[0]["capacity"] == 8
    assert "Fat-Tree" in generate_table4()
    assert len(generate_table5(64)) == 2
    milestones = generate_fig2_milestones()
    assert milestones["query_complete"] == 25
    fig6 = generate_fig6_pipeline()
    assert fig6["finish_layers"] == [29, 39, 49]
    fig7 = generate_fig7_schedule(rounds=2)
    assert fig7["queries_served"] == 6
    fig8 = generate_fig8_bandwidth(capacities=(4, 16, 64))
    assert len(fig8["Fat-Tree"]) == 3
    fig11 = generate_fig11_qec(tree_depths=(2, 4))
    assert len(fig11["Fat-Tree d=3"]) == 2


def test_report_formatting():
    text = format_table([{"a": 1, "b": 2.5}], "title")
    assert "title" in text and "2.5" in text
    assert format_table([], "empty") .startswith("empty")
    report = full_report(64)
    assert "Table 1" in report and "Table 5" in report
