"""QRAM serving layer: sharding, batched windows, policies, tenant stats."""

import pytest

from repro import QRAMService
from repro.core.query import QueryRequest
from repro.service.sharding import InterleavedShardMap
from repro.workloads import (
    bursty_trace,
    poisson_trace,
    random_data,
    shard_aligned_superposition,
)


# ------------------------------------------------------------------ sharding
def test_shard_map_round_trip():
    shard_map = InterleavedShardMap(32, 4)
    assert shard_map.shard_capacity == 8
    for address in range(32):
        shard = shard_map.shard_of(address)
        local = shard_map.local_address(address)
        assert shard_map.global_address(shard, local) == address
    # Interleaving: consecutive addresses land on consecutive shards.
    assert [shard_map.shard_of(a) for a in range(4)] == [0, 1, 2, 3]


def test_shard_map_routes_aligned_superpositions():
    shard_map = InterleavedShardMap(16, 2)
    amps = shard_aligned_superposition(16, 2, shard=1, num_addresses=3, seed=0)
    assert all(a % 2 == 1 for a in amps)
    shard, local = shard_map.route(amps)
    assert shard == 1
    assert set(local) == {a // 2 for a in amps}


def test_shard_map_rejects_spanning_superpositions():
    shard_map = InterleavedShardMap(16, 2)
    with pytest.raises(ValueError, match="spans shards"):
        shard_map.route({0: 0.7, 1: 0.7})
    with pytest.raises(ValueError):
        shard_map.route({})


def test_shard_map_validates_configuration():
    with pytest.raises(ValueError):
        InterleavedShardMap(16, 3)        # not a power of two
    with pytest.raises(ValueError):
        InterleavedShardMap(8, 8)         # shards of capacity 1
    with pytest.raises(ValueError):
        InterleavedShardMap(16, 2).shard_of(16)


def test_shard_data_slices_interleaved_memory():
    shard_map = InterleavedShardMap(8, 2)
    data = [0, 1, 2, 3, 4, 5, 6, 7]
    assert shard_map.shard_data(data, 0) == [0, 2, 4, 6]
    assert shard_map.shard_data(data, 1) == [1, 3, 5, 7]


# ------------------------------------------------------------------- serving
def test_service_serves_poisson_trace_functionally():
    capacity = 16
    data = random_data(capacity, seed=3)
    service = QRAMService(capacity, num_shards=2, data=data)
    trace = poisson_trace(
        capacity, 24, mean_interarrival=10.0, num_tenants=3, num_shards=2, seed=5
    )
    report = service.serve(trace)

    assert report.stats.total_queries == 24
    assert len(report.outputs) == 24
    for record in report.served:
        assert record.fidelity == pytest.approx(1.0)
        assert record.finish_layer > record.start_layer > record.admit_layer
        assert record.queue_delay_layers >= 0.0
    # Functional check against the classical memory: every output address
    # carries data[address] XOR'd into the bus.
    for request in trace:
        for (address, bus), _amp in report.outputs[request.query_id].items():
            assert bus == data[address]


def test_service_batches_into_pipeline_windows():
    capacity = 16        # 2 shards of capacity 8 -> window of up to 3 queries
    service = QRAMService(capacity, num_shards=2, data=random_data(capacity))
    trace = bursty_trace(
        capacity, num_bursts=2, burst_size=8, burst_spacing=400.0, num_shards=2, seed=2
    )
    report = service.serve(trace)
    parallelism = service.shards[0].query_parallelism
    assert any(w.batch_size > 1 for w in report.windows)
    assert all(w.batch_size <= parallelism for w in report.windows)
    # Inside a window, admissions are spaced by the shard's cached interval.
    interval = service.shards[0].cached_executor().minimum_feasible_interval()
    for window in report.windows:
        assert window.interval == interval
        batch = [s for s in report.served
                 if s.shard == window.shard and s.admit_layer == window.admit_layer]
        starts = sorted(s.start_layer for s in batch)
        assert all(b - a == interval for a, b in zip(starts, starts[1:]))


def test_service_fifo_preserves_arrival_order_per_shard():
    capacity = 16
    service = QRAMService(capacity, num_shards=2, functional=False)
    trace = poisson_trace(capacity, 30, mean_interarrival=3.0, num_shards=2, seed=9)
    report = service.serve(trace)
    by_shard = {}
    for record in sorted(report.served, key=lambda s: s.start_layer):
        by_shard.setdefault(record.shard, []).append(record.request_time)
    for times in by_shard.values():
        assert times == sorted(times)


def test_service_policies_differ_under_backlog():
    capacity = 16
    trace = bursty_trace(
        capacity, num_bursts=1, burst_size=12, burst_spacing=100.0, num_shards=2, seed=4
    )
    latencies = {}
    for policy in ("fifo", "lifo"):
        service = QRAMService(capacity, num_shards=2, policy=policy, functional=False)
        report = service.serve(trace)
        latencies[policy] = report.stats.mean_latency_layers
        assert report.stats.total_queries == 12
    # FIFO minimises total latency (Sec. A.2); with a simultaneous burst the
    # two policies reorder admissions but the mean latency of FIFO is never
    # worse.
    assert latencies["fifo"] <= latencies["lifo"] + 1e-9


def test_service_per_tenant_and_per_shard_stats():
    capacity = 16
    service = QRAMService(capacity, num_shards=2, functional=False)
    trace = poisson_trace(
        capacity, 40, mean_interarrival=5.0, num_tenants=4, num_shards=2, seed=11
    )
    report = service.serve(trace)
    stats = report.stats
    assert sorted(stats.per_tenant) == [0, 1, 2, 3]
    assert sum(t.queries for t in stats.per_tenant.values()) == 40
    assert sum(s.queries for s in stats.per_shard.values()) == 40
    for tenant in stats.per_tenant.values():
        assert tenant.mean_latency_layers >= tenant.mean_queue_delay_layers
        assert tenant.throughput_queries_per_sec > 0
    for shard in stats.per_shard.values():
        assert 0.0 < shard.utilization <= 1.0
        assert shard.max_queue_depth >= 1
        assert shard.windows >= 1
    assert stats.bandwidth_queries_per_sec == pytest.approx(
        40 / stats.makespan_layers * 1.0e6
    )


def test_service_timing_matches_functional():
    """Timing-only serving reproduces the functional schedule exactly."""
    capacity = 16
    data = random_data(capacity, seed=6)
    trace = poisson_trace(capacity, 10, mean_interarrival=20.0, num_shards=2, seed=6)
    functional = QRAMService(capacity, num_shards=2, data=data).serve(trace)
    timing = QRAMService(capacity, num_shards=2, data=data, functional=False).serve(trace)
    for f, t in zip(functional.served, timing.served):
        assert (f.query_id, f.shard, f.start_layer, f.finish_layer) == (
            t.query_id, t.shard, t.start_layer, t.finish_layer
        )
    assert timing.outputs == {}


def test_service_write_memory_routes_to_shard():
    capacity = 8
    service = QRAMService(capacity, num_shards=2, data=[0] * capacity)
    service.write_memory(5, 1)            # shard 1, local address 2
    assert service.shards[1].data[2] == 1
    assert service.shards[0].data == [0, 0, 0, 0]
    request = QueryRequest(0, {5: 1.0}, request_time=0.0)
    report = service.serve([request])
    assert report.outputs[0] == {(5, 1): pytest.approx(1.0)}


def test_service_rejects_bad_input():
    service = QRAMService(16, num_shards=2)
    with pytest.raises(ValueError):
        service.serve([])
    with pytest.raises(ValueError):
        service.serve([QueryRequest(0)])          # no amplitudes
    with pytest.raises(ValueError, match="spans shards"):
        service.serve([QueryRequest(0, {0: 0.7, 1: 0.7})])
    with pytest.raises(ValueError, match="duplicate query_id"):
        service.serve([QueryRequest(0, {0: 1.0}), QueryRequest(0, {2: 1.0})])
    with pytest.raises(ValueError):
        QRAMService(16, num_shards=2, window_size=0)
    # Oversized windows are capped at the architectural parallelism.
    assert QRAMService(16, num_shards=2, window_size=99).window_size == 3


def test_service_parallelism_and_report_lookup():
    service = QRAMService(32, num_shards=4)
    assert service.query_parallelism == 4 * 3    # 4 shards of capacity 8
    trace = poisson_trace(32, 5, mean_interarrival=50.0, num_shards=4, seed=1)
    report = service.serve(trace)
    assert report.result_for(3).query_id == 3
    with pytest.raises(KeyError):
        report.result_for(99)
