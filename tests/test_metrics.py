"""Tables 1-2 metrics and the Fig. 8 bandwidth scaling."""

import math

import pytest

from repro.metrics import (
    bandwidth_qubits_per_second,
    bandwidth_scaling,
    classical_memory_swap_budget_us,
    latency_summary,
    memory_access_rate,
    resource_estimate,
    spacetime_volume_per_query,
    table1_rows,
    table2_rows,
)
from repro.metrics.latency import closed_form_latency, latency_in_microseconds


def test_table1_rows_complete():
    rows = table1_rows(1024)
    assert [r["architecture"] for r in rows] == ["Fat-Tree", "BB", "Virtual", "D-Fat-Tree", "D-BB"]
    by_name = {r["architecture"]: r for r in rows}
    assert by_name["Fat-Tree"]["qubits"] == 16 * 1024
    assert by_name["Fat-Tree"]["single_query_latency"] == pytest.approx(82.375)
    assert by_name["Fat-Tree"]["parallel_query_latency"] == pytest.approx(156.625)
    assert by_name["Fat-Tree"]["amortized_query_latency"] == pytest.approx(8.25)
    assert by_name["BB"]["parallel_query_latency"] == pytest.approx(801.25)
    assert by_name["D-BB"]["qubits"] == 8 * 1024 * 10


def test_model_latencies_match_closed_forms():
    for name in ("Fat-Tree", "BB"):
        for capacity in (64, 1024):
            model = latency_summary(name, capacity)
            closed = closed_form_latency(name, capacity)
            assert model.single_query == pytest.approx(closed.single_query)
            assert model.parallel_queries == pytest.approx(closed.parallel_queries)
            assert model.amortized == pytest.approx(closed.amortized)


def test_latency_unit_conversion():
    assert latency_in_microseconds(8.25) == pytest.approx(8.25)
    assert latency_in_microseconds(8.25, cswap_time_us=2.0) == pytest.approx(16.5)


def test_resource_estimates():
    estimate = resource_estimate("Fat-Tree", 1024)
    assert estimate.routers == 2 * 1024 - 2 - 10
    assert estimate.qubit_group == "O(N)"
    assert resource_estimate("D-BB", 1024).qubit_group == "O(N log N)"
    assert resource_estimate("BB", 1024).routers == 1023


def test_table2_values_match_paper():
    rows = {r["architecture"]: r for r in table2_rows(1024)}
    assert rows["Fat-Tree"]["bandwidth_qubits_per_sec"] == pytest.approx(1.2121e5, rel=1e-3)
    assert rows["Fat-Tree"]["spacetime_volume_per_query"] == pytest.approx(132 * 1024)
    assert rows["Fat-Tree"]["memory_swap_budget_us"] == pytest.approx(8.25)
    assert rows["BB"]["spacetime_volume_per_query"] == pytest.approx(64 * 1024 * 10 + 1024)
    assert rows["BB"]["memory_swap_budget_us"] == pytest.approx(80.125)
    assert rows["D-BB"]["bandwidth_qubits_per_sec"] == pytest.approx(10 * 1e6 / 80.125)
    assert rows["D-Fat-Tree"]["bandwidth_qubits_per_sec"] == pytest.approx(1.2121e6, rel=1e-3)
    assert rows["D-Fat-Tree"]["spacetime_volume_per_query"] == pytest.approx(132 * 1024)
    assert rows["D-Fat-Tree"]["memory_swap_budget_us"] == pytest.approx(8.25)


def test_fat_tree_bandwidth_independent_of_capacity():
    capacities = [4, 16, 64, 256, 1024]
    series = bandwidth_scaling(capacities, ["Fat-Tree", "BB", "Virtual"])
    ft = series["Fat-Tree"]
    assert all(v == pytest.approx(ft[0]) for v in ft)
    # BB bandwidth decays with capacity; Virtual decays overall (small local
    # non-monotonicities come from rounding the page count to a power of two).
    assert series["BB"] == sorted(series["BB"], reverse=True)
    assert series["Virtual"][0] > series["Virtual"][-1]
    # Fat-Tree dominates both at every capacity in the O(N) group.
    for i in range(len(capacities)):
        assert ft[i] > series["BB"][i]
        assert ft[i] > series["Virtual"][i]


def test_memory_access_rate_scales_with_capacity():
    small = memory_access_rate("Fat-Tree", 64)
    large = memory_access_rate("Fat-Tree", 1024)
    assert large == pytest.approx(small * 16)


def test_swap_budget_ordering():
    # Fat-Tree requires the fastest classical memory swapping (Table 2).
    budget_ft = classical_memory_swap_budget_us("Fat-Tree", 1024)
    budget_bb = classical_memory_swap_budget_us("BB", 1024)
    budget_virtual = classical_memory_swap_budget_us("Virtual", 1024)
    assert budget_ft < budget_bb < budget_virtual


def test_spacetime_volume_ordering():
    # Fat-Tree needs asymptotically less space-time volume per query.
    for capacity in (64, 1024):
        ft = spacetime_volume_per_query("Fat-Tree", capacity)
        bb = spacetime_volume_per_query("BB", capacity)
        virtual = spacetime_volume_per_query("Virtual", capacity)
        assert ft < bb and ft < virtual
    ratio_small = spacetime_volume_per_query("BB", 64) / spacetime_volume_per_query("Fat-Tree", 64)
    ratio_large = spacetime_volume_per_query("BB", 1024) / spacetime_volume_per_query("Fat-Tree", 1024)
    assert ratio_large > ratio_small      # gap grows ~ log N


def test_bandwidth_with_wider_bus():
    single = bandwidth_qubits_per_second("Fat-Tree", 256)
    double = bandwidth_qubits_per_second("Fat-Tree", 256, bus_width=2)
    assert double == pytest.approx(2 * single)


# ------------------------------------------------ fidelity aggregation edges
def _served(query_id, fidelity=None, min_fidelity=None, predicted=None,
            tenant=0, shard=0, finish=10.0):
    from repro.metrics import ServedQuery

    return ServedQuery(
        query_id=query_id,
        tenant=tenant,
        shard=shard,
        request_time=0.0,
        admit_layer=1.0,
        start_layer=1.0,
        finish_layer=finish,
        fidelity=fidelity,
        predicted_fidelity=predicted,
        min_fidelity=min_fidelity,
    )


def _window(shard=0, total=10.0):
    from repro.metrics import WindowRecord

    return WindowRecord(
        shard=shard, admit_layer=0.0, batch_size=1, interval=0, total_layers=total
    )


def test_all_none_fidelity_records_summarize_to_none():
    """Hand-built timing-only records without fidelities must not poison the
    aggregates: fidelity summaries stay None, everything else computes."""
    from repro.metrics import summarize_service

    stats = summarize_service(
        [_served(0), _served(1)], [_window()],
    )
    assert stats.mean_fidelity is None
    assert stats.min_fidelity is None
    assert stats.fidelity_slo_misses == 0
    assert stats.fidelity_slo_miss_rate == 0.0
    assert stats.per_tenant[0].mean_fidelity is None
    assert stats.per_shard[0].mean_fidelity is None
    assert stats.per_backend[""].mean_fidelity is None


def test_mixed_none_and_float_fidelities_average_the_floats():
    from repro.metrics import summarize_service

    stats = summarize_service(
        [_served(0, fidelity=0.9), _served(1), _served(2, fidelity=0.7)],
        [_window()],
    )
    assert stats.mean_fidelity == pytest.approx(0.8)
    assert stats.min_fidelity == pytest.approx(0.7)


def test_fidelity_slo_miss_falls_back_to_observed_fidelity():
    """Without a prediction the observed fidelity drives the miss check."""
    from repro.metrics import summarize_service

    served = [
        _served(0, fidelity=0.8, min_fidelity=0.9),            # miss (observed)
        _served(1, fidelity=0.8, predicted=0.95, min_fidelity=0.9),  # met
        _served(2, min_fidelity=0.9),                          # unknowable: no miss
    ]
    assert served[0].missed_fidelity_slo
    assert not served[1].missed_fidelity_slo
    assert not served[2].missed_fidelity_slo
    stats = summarize_service(served, [_window()])
    assert stats.fidelity_slo_misses == 1
    assert stats.fidelity_slo_miss_rate == pytest.approx(1.0 / 3.0)


def test_rejected_counts_invariant_never_negative():
    """rejected_queries == len(rejected) - shed for every reason mix."""
    from repro.metrics import (
        REJECT_DEADLINE_EXPIRED,
        REJECT_FIDELITY,
        REJECT_QUEUE_FULL,
        RejectedQuery,
        summarize_service,
    )

    def reject(query_id, reason, tenant=0):
        return RejectedQuery(
            query_id=query_id, tenant=tenant, shard=0, time=1.0, reason=reason
        )

    mixes = [
        [],
        [reject(10, REJECT_DEADLINE_EXPIRED), reject(11, REJECT_DEADLINE_EXPIRED)],
        [reject(10, REJECT_QUEUE_FULL), reject(11, REJECT_DEADLINE_EXPIRED)],
        [reject(10, REJECT_FIDELITY), reject(11, REJECT_DEADLINE_EXPIRED),
         reject(12, REJECT_QUEUE_FULL)],
    ]
    for rejected in mixes:
        stats = summarize_service(
            [_served(0, fidelity=1.0)], [_window()], rejected=rejected
        )
        shed = sum(1 for r in rejected if r.reason == REJECT_DEADLINE_EXPIRED)
        assert stats.rejected_queries == len(rejected) - shed
        assert stats.rejected_queries >= 0
        assert stats.shed_queries == shed
        assert stats.offered_queries == 1 + len(rejected)
        assert stats.fidelity_rejected_queries == sum(
            1 for r in rejected if r.reason == REJECT_FIDELITY
        )


def test_all_fidelity_rejected_tenant_appears_in_per_tenant_stats():
    """A tenant whose whole demand was refused for fidelity still shows up,
    mirroring the all-shed-tenant behaviour for deadlines."""
    from repro.metrics import REJECT_FIDELITY, RejectedQuery, summarize_service

    rejected = [
        RejectedQuery(query_id=5, tenant=7, shard=0, time=0.0,
                      reason=REJECT_FIDELITY, min_fidelity=0.999)
    ]
    stats = summarize_service([_served(0, fidelity=1.0)], [_window()],
                              rejected=rejected)
    assert 7 in stats.per_tenant
    assert stats.per_tenant[7].queries == 0
    assert stats.per_tenant[7].fidelity_slo_misses == 1
    assert stats.per_tenant[7].fidelity_slo_miss_rate == 1.0
