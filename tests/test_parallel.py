"""Partitioned parallel serving: bit-identity, fallbacks, shared caches.

The contract under test (module docstring of :mod:`repro.engine.parallel`):
``ServiceEngine(workers=N)`` produces a report *equal* to ``workers=1``
for every partitionable configuration and equal to the single-process
oracle (``workers=0``) under full retention — same served records, same
windows, same rejections, same stats, byte for byte.  Around that core:

* every unpartitionable configuration falls back to the oracle with an
  observable ``fallback_reason`` (never silently);
* :class:`PartitionedTraceSource` lets workers regenerate only their
  partition of a lazy trace, under a strictly-increasing-id contract;
* the process-wide :class:`ScheduleCacheRegistry` stays coherent across
  the serve/write/serve cycle (write invalidation, warm re-prewarm);
* sanitizer mode extends across the worker boundary (per-partition
  conservation, nondecreasing merged streams).
"""

from __future__ import annotations

import pytest

from repro.core.query import QueryRequest
from repro.engine import (
    AutoscalerConfig,
    ClosedLoopSource,
    ParallelRunInfo,
    PartitionedTraceSource,
    ServiceEngine,
    StreamingTraceSource,
    TraceSource,
    WORKERS_ENV,
    merge_sorted_records,
    partition_shards,
    partition_unsupported_reason,
)
from repro.engine.events import SanitizerViolation
from repro.metrics.service_stats import ServedQuery
from repro.metrics.sinks import ListSink
from repro.metrics.streaming import (
    StreamingServiceAggregator,
    merge_service_aggregators,
)
from repro.schedule_cache import default_registry
from repro.service import QRAMService
from repro.workloads import (
    closed_loop_source,
    iter_poisson_trace,
    poisson_trace,
    random_data,
)

CAPACITY = 16
NUM_SHARDS = 4


def _service(**overrides):
    kwargs = dict(num_shards=NUM_SHARDS, data=random_data(CAPACITY, seed=3))
    kwargs.update(overrides)
    return QRAMService(CAPACITY, **kwargs)


def _trace_kwargs(**overrides):
    kwargs = dict(
        num_queries=48,
        mean_interarrival=6.0,
        num_tenants=3,
        num_shards=NUM_SHARDS,
        seed=11,
    )
    kwargs.update(overrides)
    return kwargs


def _trace(**overrides):
    return poisson_trace(CAPACITY, **_trace_kwargs(**overrides))


def _serve(service, requests, workers, **engine_kwargs):
    engine = ServiceEngine(service, workers=workers, **engine_kwargs)
    return engine.run(TraceSource(requests))


# ------------------------------------------------------------- bit-identity
def test_workers_bit_identical_to_oracle_full_retention():
    requests = _trace()
    oracle = _serve(_service(), requests, workers=0)
    for workers in (1, 2, 4, 8):
        report = _serve(_service(), requests, workers=workers)
        assert report == oracle, f"workers={workers} diverged from oracle"
        assert report.parallel is not None
        assert report.parallel.fallback_reason is None
        assert report.parallel.workers == min(workers, NUM_SHARDS)
    assert oracle.parallel is None


def test_workers_bit_identical_with_backpressure_and_deadlines():
    requests = _trace(mean_interarrival=1.0, deadline_layers=600.0)
    kwargs = dict(max_queue_depth=2, shed_expired=True)
    oracle = _serve(_service(), requests, workers=0, **kwargs)
    assert oracle.stats.rejected_queries + oracle.stats.shed_queries > 0
    for workers in (1, 3):
        report = _serve(_service(), requests, workers=workers, **kwargs)
        assert report == oracle


def test_streaming_retention_worker_count_invariant():
    requests = _trace(num_queries=64)
    reports = [
        _serve(
            _service(),
            requests,
            workers=workers,
            retention="none",
            telemetry_interval=500.0,
        )
        for workers in (1, 3)
    ]
    assert reports[0] == reports[1]
    assert reports[0].telemetry, "telemetry intervals must survive the merge"
    assert reports[0].stats.total_queries == len(requests)


def test_sampled_retention_worker_count_invariant():
    requests = _trace(num_queries=64)
    one, two = (
        _serve(
            _service(),
            requests,
            workers=workers,
            retention="sampled",
            sample_size=16,
        )
        for workers in (1, 2)
    )
    assert one == two


def test_repeated_runs_are_seed_stable():
    requests = _trace()
    first = _serve(_service(), requests, workers=4)
    second = _serve(_service(), requests, workers=4)
    assert first == second


def test_partitioned_trace_source_matches_materialized_trace():
    def factory(shards):
        return iter_poisson_trace(
            CAPACITY, **_trace_kwargs(), shards=shards
        )

    oracle = _serve(_service(), list(factory(None)), workers=0)
    for workers in (1, 2, 4):
        engine = ServiceEngine(_service(), workers=workers)
        report = engine.run(PartitionedTraceSource(factory))
        assert report == oracle, f"workers={workers} diverged from oracle"
        assert report.parallel.fallback_reason is None


def test_error_messages_identical_across_worker_counts():
    requests = _trace(num_queries=12)
    duplicated = requests + [requests[-1]]
    messages = []
    for workers in (0, 1, 4):
        with pytest.raises(ValueError) as excinfo:
            _serve(_service(), duplicated, workers=workers)
        messages.append(str(excinfo.value))
    assert len(set(messages)) == 1
    assert "duplicate query_id" in messages[0]


# ------------------------------------------------------------ env / explicit
def test_workers_zero_is_the_plain_oracle():
    report = _serve(_service(), _trace(), workers=0)
    assert report.parallel is None


def test_negative_workers_rejected():
    with pytest.raises(ValueError, match="workers must be >= 0"):
        ServiceEngine(_service(), workers=-1)


def test_env_workers_auto_parallelizes_full_retention(monkeypatch):
    requests = _trace()
    oracle = _serve(_service(), requests, workers=0)
    monkeypatch.setenv(WORKERS_ENV, "2")
    report = ServiceEngine(_service()).run(TraceSource(requests))
    assert report == oracle
    assert report.parallel is not None and report.parallel.workers == 2


def test_env_workers_leaves_non_oracle_configs_alone(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "2")
    report = ServiceEngine(_service(), retention="sampled").run(
        TraceSource(_trace())
    )
    # Env-driven parallelism only engages where the merged report is
    # provably byte-equal to the oracle; sampled retention is invariant
    # across worker counts but not across the oracle boundary.
    assert report.parallel is None


# ----------------------------------------------------------------- fallbacks
@pytest.mark.parametrize(
    "build, fragment",
    [
        (
            lambda: (
                ServiceEngine(
                    _service(placement="shortest-queue"),
                    autoscaler=AutoscalerConfig(
                        period=500.0, high_watermark=3, max_shards=4
                    ),
                ),
                TraceSource(_trace()),
            ),
            "any replica",
        ),
        (
            lambda: (
                ServiceEngine(_service(), sink=ListSink()),
                TraceSource(_trace()),
            ),
            "external record sink",
        ),
        (
            lambda: (
                ServiceEngine(
                    QRAMService(
                        CAPACITY,
                        num_shards=1,
                        data=random_data(CAPACITY, seed=3),
                    )
                ),
                TraceSource(_trace(num_shards=1)),
            ),
            "single-shard fleet",
        ),
        (
            lambda: (
                ServiceEngine(_service(policy="random")),
                TraceSource(_trace()),
            ),
            "shared random state",
        ),
        (
            lambda: (
                ServiceEngine(_service()),
                StreamingTraceSource(iter(_trace())),
            ),
            "PartitionedTraceSource",
        ),
        (
            lambda: (
                ServiceEngine(_service()),
                closed_loop_source(
                    CAPACITY,
                    num_clients=3,
                    queries_per_client=4,
                    think_layers=50.0,
                    num_shards=NUM_SHARDS,
                    seed=5,
                ),
            ),
            "completion feedback",
        ),
    ],
    ids=[
        "autoscaler",
        "sink",
        "single-shard",
        "random-policy",
        "plain-streaming",
        "closed-loop",
    ],
)
def test_unpartitionable_configs_fall_back_with_reason(build, fragment):
    engine, source = build()
    reason = partition_unsupported_reason(engine, source)
    assert reason is not None and fragment in reason
    engine.workers = 4
    report = engine.run(source)
    assert report.parallel == ParallelRunInfo(
        workers=0, partitions=0, fallback_reason=reason, worker_seconds=()
    )


def test_autoscaled_run_still_serves_under_requested_workers():
    engine = ServiceEngine(
        _service(placement="shortest-queue"),
        autoscaler=AutoscalerConfig(
            period=200.0, high_watermark=2, max_shards=4
        ),
        workers=4,
    )
    report = engine.run(TraceSource(_trace(mean_interarrival=2.0)))
    assert report.stats.total_queries == 48
    assert report.parallel.workers == 0
    assert "any replica" in report.parallel.fallback_reason


# ------------------------------------------------- partitioned trace source
def test_partitioned_source_requires_increasing_ids():
    def factory(shards):
        yield QueryRequest(
            query_id=5, address_amplitudes={0: 1.0}, request_time=0.0
        )
        yield QueryRequest(
            query_id=3, address_amplitudes={1: 1.0}, request_time=1.0
        )

    source = PartitionedTraceSource(factory)
    with pytest.raises(ValueError, match="strictly increasing"):
        list(source.shard_requests((0,)))


def test_partition_shards_round_robin_drops_empty_groups():
    assert partition_shards(5, 2) == [[0, 2, 4], [1, 3]]
    assert partition_shards(2, 8) == [[0], [1]]
    assert partition_shards(3, 1) == [[0, 1, 2]]


def test_shard_filtered_generation_matches_unfiltered():
    full = list(iter_poisson_trace(CAPACITY, **_trace_kwargs()))
    service = _service()
    regenerated = []
    for shard in range(NUM_SHARDS):
        regenerated.extend(
            iter_poisson_trace(CAPACITY, **_trace_kwargs(), shards=(shard,))
        )
    regenerated.sort(key=lambda request: request.query_id)
    assert regenerated == full
    # and every filtered request really is owned by the claimed shard
    owned = set()
    for request in iter_poisson_trace(
        CAPACITY, **_trace_kwargs(), shards=(1,)
    ):
        owned.add(service.shard_map.route(request.address_amplitudes)[0])
    assert owned == {1}


# --------------------------------------------------------------- shared cache
def test_registry_shares_executors_and_invalidates_on_write():
    registry = default_registry()
    registry.clear()
    service = _service()
    first = registry.stats()
    assert first.entries > 0, "fleet build must prewarm the registry"
    assert first.misses > 0 and first.hits == 0

    # A second fleet holding the identical memory images resolves every
    # shard to the already-shared executors: all hits, no new entries.
    _service()
    warmed = registry.stats()
    assert warmed.hits >= first.misses
    assert warmed.misses == first.misses
    assert warmed.entries == first.entries

    requests = _trace(num_queries=24)
    report = _serve(service, requests, workers=1)
    assert report.stats.total_queries == 24

    invalidations = registry.stats().invalidations
    service.write_memory(1, 1)
    assert registry.stats().invalidations > invalidations, (
        "write_memory must fan the invalidation out to the registry"
    )
    rerun = _serve(service, requests, workers=1)
    assert rerun.stats.total_queries == 24


def test_forked_workers_match_with_cold_parent_cache():
    # Even a cleared registry must not change results — only speed.
    requests = _trace()
    registry = default_registry()
    service = _service()
    oracle = _serve(service, requests, workers=0)
    registry.clear()
    report = _serve(service, requests, workers=4)
    assert report == oracle


# ----------------------------------------------------------------- sanitizer
def test_sanitizer_clean_across_worker_boundary():
    requests = _trace()
    oracle = _serve(_service(), requests, workers=0, sanitize=True)
    for workers in (1, 4):
        report = _serve(_service(), requests, workers=workers, sanitize=True)
        assert report == oracle


def test_merge_sorted_records_flags_out_of_order_stream():
    with pytest.raises(SanitizerViolation, match="not nondecreasing"):
        merge_sorted_records(
            [[1, 2, 3], [5, 4]], key=lambda item: item, sanitize=True
        )
    merged = merge_sorted_records([[1, 3], [2, 4]], key=lambda item: item)
    assert merged == [1, 2, 3, 4]


# ----------------------------------------------------------- aggregator merge
def test_merge_service_aggregators_matches_single_aggregator():
    requests = _trace(num_queries=64)
    full = ServiceEngine(_service(), retention="none").run(
        TraceSource(requests)
    )
    split = ServiceEngine(_service(), retention="none", workers=2).run(
        TraceSource(requests)
    )
    assert split.stats.total_queries == full.stats.total_queries
    assert split.stats.mean_latency_layers == pytest.approx(
        full.stats.mean_latency_layers
    )
    for tenant, stats in full.stats.per_tenant.items():
        merged = split.stats.per_tenant[tenant]
        assert merged.queries == stats.queries
        assert merged.mean_latency_layers == pytest.approx(
            stats.mean_latency_layers
        )


def _served(query_id, latency, shard=0):
    return ServedQuery(
        query_id=query_id,
        tenant=0,
        shard=shard,
        request_time=0.0,
        admit_layer=0.0,
        start_layer=0.0,
        finish_layer=latency,
        architecture="Fat-Tree",
    )


def test_merged_percentiles_track_exact_for_unit_weights():
    # Few enough observations that the P2 sketches still hold the exact
    # heights: the weighted merge must then reproduce the exact batch
    # percentile, not an approximation.
    latencies = [5.0, 9.0, 2.0, 7.0]
    left = StreamingServiceAggregator()
    right = StreamingServiceAggregator()
    combined = StreamingServiceAggregator()
    for index, latency in enumerate(latencies):
        target = left if index % 2 == 0 else right
        record = _served(index, latency)
        target.observe_served(record)
        combined.observe_served(record)
    merged = merge_service_aggregators([left, right])
    exact = combined.to_stats({0: 0})
    merged_stats = merged.to_stats({0: 0})
    assert merged_stats.p95_latency_layers == pytest.approx(
        exact.p95_latency_layers
    )
    assert merged_stats.total_queries == exact.total_queries
