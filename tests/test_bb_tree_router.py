"""Tests for the BB QRAM tree structure and the router state machine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bucket_brigade.router import QuantumRouter, RouterState
from repro.bucket_brigade.tree import BBTree, RouterId, validate_capacity


def test_validate_capacity():
    assert validate_capacity(8) == 3
    for bad in (0, 1, 3, 6, 100):
        with pytest.raises(ValueError):
            validate_capacity(bad)


def test_router_id_relations():
    root = RouterId(0, 0)
    left = root.child(0)
    right = root.child(1)
    assert left == RouterId(1, 0) and right == RouterId(1, 1)
    assert left.parent == root and right.parent == root
    assert root.parent is None
    assert right.direction_from_parent == 1
    with pytest.raises(ValueError):
        RouterId(1, 5)


def test_tree_counts():
    tree = BBTree(16)
    assert tree.address_width == 4
    assert tree.num_routers == 15
    assert len(list(tree.routers())) == 15
    assert tree.num_tree_qubits == 60
    assert len(tree.all_qubits()) == 60


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
def test_path_to_leaf_consistent_with_address_bits(n, data):
    capacity = 2**n
    tree = BBTree(capacity)
    address = data.draw(st.integers(min_value=0, max_value=capacity - 1))
    path = tree.path_to_leaf(address)
    assert len(path) == n
    assert path[0] == RouterId(0, 0)
    # Each step follows the address bit of that level.
    for level in range(n - 1):
        bit = tree.address_bit(address, level)
        assert path[level + 1] == path[level].child(bit)
    router, direction = tree.leaf_position(address)
    assert router == path[-1]
    assert direction == address % 2
    assert tree.leaf_qubit(address) == tree.output_qubit(router, direction)


def test_leaf_qubits_are_distinct():
    tree = BBTree(32)
    leaves = {tree.leaf_qubit(a) for a in range(32)}
    assert len(leaves) == 32


def test_router_state_machine_store_route_cycle():
    router = QuantumRouter()
    assert not router.is_active
    router.input_value = 1
    router.store()
    assert router.state is RouterState.ONE and router.input_value is None
    router.input_value = 0          # next payload arrives
    router.route()
    assert router.output_values[1] == 0
    router.unroute()
    assert router.input_value == 0
    router.unstore()
    assert router.state is RouterState.WAIT and router.input_value == 1


def test_router_wait_state_does_not_move_payload():
    router = QuantumRouter()
    router.input_value = 1
    router.route()
    assert router.input_value == 1
    assert router.output_values == [None, None]


def test_router_store_empty_input_stays_inactive():
    router = QuantumRouter()
    router.store()
    assert router.state is RouterState.WAIT


def test_router_double_route_raises():
    router = QuantumRouter(state=RouterState.ZERO)
    router.input_value = 1
    router.route()
    router.input_value = 0
    with pytest.raises(RuntimeError):
        router.route()
