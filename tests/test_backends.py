"""Backend protocol conformance and multi-backend serving integration."""

import pytest

from repro import QRAMService, QueryRequest, build_backend
from repro.backends import QRAMBackend, WindowResult
from repro.baselines.registry import (
    architecture_names,
    backend_names,
    build_architecture,
    resolve_architecture,
)
from repro.scheduling.policy import (
    FIFOPolicy,
    PriorityPolicy,
    as_policy,
)
from repro.scheduling.fifo import SchedulingPolicy
from repro.workloads import poisson_trace, random_data

CAPACITY = 8
ALL_BACKENDS = backend_names()


# ----------------------------------------------------------------- protocol
@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_backend_protocol_surface(name):
    backend = build_backend(name, CAPACITY, random_data(CAPACITY, seed=1))
    assert isinstance(backend, QRAMBackend)
    assert backend.name == name
    assert backend.capacity == CAPACITY
    assert backend.address_width == 3
    assert backend.query_parallelism >= 1
    assert backend.qubit_count > 0
    assert backend.minimum_feasible_interval() >= 0
    assert backend.single_query_latency() > 0
    assert backend.amortized_query_latency() > 0


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_backend_matches_architecture_model(name):
    """The backend serves the same architecture the registry tabulates."""
    data = random_data(CAPACITY, seed=2)
    backend = build_backend(name, CAPACITY, data)
    model = build_architecture(name, CAPACITY, data)
    assert backend.qubit_count == model.qubit_count
    assert backend.query_parallelism == model.query_parallelism
    assert backend.single_query_latency() == model.single_query_latency()


def test_registry_backend_views_stay_coherent():
    """backend_names() and build_backend derive from the same spec field."""
    from repro.baselines.registry import ARCHITECTURES, ArchitectureSpec

    ARCHITECTURES["No-Backend"] = ArchitectureSpec(
        "No-Backend", lambda capacity, data=None: None, "O(N)"
    )
    try:
        assert "No-Backend" in architecture_names()
        assert "No-Backend" not in backend_names()
        with pytest.raises(KeyError, match="no execution backend"):
            build_backend("No-Backend", CAPACITY)
    finally:
        del ARCHITECTURES["No-Backend"]
    # Every advertised backend name actually builds.
    for name in backend_names():
        assert build_backend(name, CAPACITY).name == name


def test_registry_resolves_any_capitalization():
    assert resolve_architecture("fat-tree").name == "Fat-Tree"
    assert resolve_architecture("VIRTUAL").name == "Virtual"
    with pytest.raises(KeyError):
        resolve_architecture("Hyper-Tree")
    with pytest.raises(KeyError):
        build_backend("Hyper-Tree", CAPACITY)


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_backend_window_functional_outputs(name):
    data = random_data(CAPACITY, seed=3)
    backend = build_backend(name, CAPACITY, data)
    requests = [
        QueryRequest(0, {1: 0.6, 5: 0.8}),
        QueryRequest(1, {2: 1.0}, initial_bus=1),
    ]
    result = backend.run_window(requests, functional=True)
    assert isinstance(result, WindowResult)
    assert result.batch_size == 2
    assert result.total_layers >= max(result.finish_offsets)
    for slot, request in enumerate(requests):
        assert result.fidelities[slot] == pytest.approx(1.0)
        for (address, bus), _amp in result.outputs[slot].items():
            assert bus == data[address] ^ request.initial_bus
        assert result.finish_offsets[slot] > result.start_offsets[slot] > 0


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_backend_window_timing_only(name):
    backend = build_backend(name, CAPACITY)
    requests = [QueryRequest(i, {0: 1.0}) for i in range(2)]
    functional = backend.run_window(requests, functional=True)
    timing = backend.run_window(requests, functional=False)
    assert timing.outputs == (None, None)
    assert timing.fidelities == (None, None)
    assert timing.start_offsets == functional.start_offsets
    assert timing.finish_offsets == functional.finish_offsets
    with pytest.raises(ValueError):
        backend.run_window([])


def test_bb_backend_is_sequential():
    backend = build_backend("BB", CAPACITY)
    assert backend.query_parallelism == 1
    lifetime = backend.qram.raw_query_layers
    result = backend.run_window(
        [QueryRequest(i, {0: 1.0}) for i in range(3)], functional=False
    )
    assert result.interval == lifetime
    assert result.total_layers == 3 * lifetime
    assert result.start_offsets == (1.0, lifetime + 1.0, 2 * lifetime + 1.0)


def test_backend_write_invalidates_caches():
    """Writes must reach the cached executors of every backend."""
    for name in ALL_BACKENDS:
        backend = build_backend(name, CAPACITY, [0] * CAPACITY)
        before = backend.run_window([QueryRequest(0, {3: 1.0})]).outputs[0]
        assert before == {(3, 0): pytest.approx(1.0)}
        backend.write_memory(3, 1)
        after = backend.run_window([QueryRequest(0, {3: 1.0})]).outputs[0]
        assert after == {(3, 1): pytest.approx(1.0)}, name


def test_bb_cached_executor_reused_until_write():
    backend = build_backend("BB", CAPACITY)
    first = backend.cached_executor()
    assert backend.cached_executor() is first
    backend.write_memory(0, 1)
    assert backend.cached_executor() is not first


# ---------------------------------------------------------------- integration
@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_service_serves_trace_on_every_architecture(name):
    """Acceptance: QRAMService drains a functional trace on all five."""
    capacity = 16
    data = random_data(capacity, seed=4)
    service = QRAMService(capacity, num_shards=2, data=data, architecture=name)
    trace = poisson_trace(
        capacity, 10, mean_interarrival=12.0, num_tenants=2, num_shards=2, seed=6
    )
    report = service.serve(trace)
    assert report.stats.total_queries == 10
    assert list(report.stats.per_backend) == [name]
    backend_stats = report.stats.per_backend[name]
    assert backend_stats.queries == 10
    assert backend_stats.shards == 2
    assert backend_stats.busy_layers > 0
    for record in report.served:
        assert record.architecture == name
        assert record.fidelity == pytest.approx(1.0)
    for request in trace:
        for (address, bus), _amp in report.outputs[request.query_id].items():
            assert bus == data[address]


def test_service_mixed_fleet_reports_per_backend_stats():
    """Acceptance: one heterogeneous fleet, per-backend stats split."""
    capacity = 16
    data = random_data(capacity, seed=5)
    service = QRAMService(
        capacity, num_shards=2, data=data, architectures=["Fat-Tree", "BB"]
    )
    assert service.architectures == ["Fat-Tree", "BB"]
    assert service.window_sizes == [3, 1]    # log2(8) vs sequential
    trace = poisson_trace(
        capacity, 16, mean_interarrival=8.0, num_tenants=2, num_shards=2, seed=7
    )
    report = service.serve(trace)
    stats = report.stats
    assert sorted(stats.per_backend) == ["BB", "Fat-Tree"]
    assert sum(b.queries for b in stats.per_backend.values()) == 16
    assert stats.per_shard[0].architecture == "Fat-Tree"
    assert stats.per_shard[1].architecture == "BB"
    for record in report.served:
        assert record.fidelity == pytest.approx(1.0)
        assert record.architecture == service.architectures[record.shard]
    # BB windows are single-query; Fat-Tree windows may batch.
    assert all(
        w.batch_size == 1 for w in report.windows if w.architecture == "BB"
    )


def test_service_rejects_mismatched_fleet_configuration():
    with pytest.raises(ValueError, match="one backend per shard"):
        QRAMService(16, num_shards=2, architectures=["Fat-Tree"])
    with pytest.raises(ValueError, match="placement"):
        QRAMService(16, num_shards=2, placement="round-robin")
    with pytest.raises(KeyError):
        QRAMService(16, num_shards=2, architecture="Hyper-Tree")


def test_service_shortest_queue_replication():
    """Replicated fleets spread full-range superpositions over shards."""
    capacity = 16
    data = random_data(capacity, seed=8)
    service = QRAMService(
        capacity,
        num_shards=3,
        data=data,
        architecture="Fat-Tree",
        placement="shortest-queue",
    )
    # Superpositions are NOT shard-aligned: replication allows any shard.
    trace = poisson_trace(capacity, 12, mean_interarrival=4.0, num_shards=1, seed=9)
    report = service.serve(trace)
    assert report.stats.total_queries == 12
    assert len({r.shard for r in report.served}) > 1
    for record in report.served:
        assert record.fidelity == pytest.approx(1.0)
    for request in trace:
        for (address, bus), _amp in report.outputs[request.query_id].items():
            assert bus == data[address]
    # Writes are mirrored into every replica.
    service.write_memory(3, 1 - data[3])
    for shard in service.shards:
        assert shard.data[3] == 1 - data[3]


def test_service_priority_policy_admits_high_priority_first():
    requests = [
        QueryRequest(i, {0: 1.0}, request_time=0.0, priority=(1 if i >= 3 else 0))
        for i in range(6)
    ]
    service = QRAMService(
        8, num_shards=1, policy=PriorityPolicy(), functional=False, window_size=1
    )
    report = service.serve(requests)
    order = [r.query_id for r in sorted(report.served, key=lambda s: s.start_layer)]
    assert order == [3, 4, 5, 0, 1, 2]


def test_policy_coercion_accepts_legacy_enum_and_names():
    assert isinstance(as_policy(SchedulingPolicy.FIFO), FIFOPolicy)
    assert isinstance(as_policy("fifo"), FIFOPolicy)
    assert as_policy(SchedulingPolicy.LIFO).name == "lifo"
    assert SchedulingPolicy.RANDOM.to_policy(seed=3).name == "random"
    existing = PriorityPolicy()
    assert as_policy(existing) is existing
    with pytest.raises(KeyError):
        as_policy("deadline")
    with pytest.raises(TypeError):
        as_policy(42)
