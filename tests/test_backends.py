"""Backend protocol conformance and multi-backend serving integration."""

import pytest

from repro import QRAMService, QueryRequest, build_backend
from repro.backends import QRAMBackend, WindowResult
from repro.baselines.registry import (
    architecture_names,
    backend_names,
    build_architecture,
    resolve_architecture,
)
from repro.scheduling.policy import (
    FIFOPolicy,
    PriorityPolicy,
    as_policy,
)
from repro.scheduling.fifo import SchedulingPolicy
from repro.workloads import poisson_trace, random_data

CAPACITY = 8
ALL_BACKENDS = backend_names()


# ----------------------------------------------------------------- protocol
@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_backend_protocol_surface(name):
    backend = build_backend(name, CAPACITY, random_data(CAPACITY, seed=1))
    assert isinstance(backend, QRAMBackend)
    assert backend.name == name
    assert backend.capacity == CAPACITY
    assert backend.address_width == 3
    assert backend.query_parallelism >= 1
    assert backend.qubit_count > 0
    assert backend.minimum_feasible_interval() >= 0
    assert backend.single_query_latency() > 0
    assert backend.amortized_query_latency() > 0


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_backend_matches_architecture_model(name):
    """The backend serves the same architecture the registry tabulates."""
    data = random_data(CAPACITY, seed=2)
    backend = build_backend(name, CAPACITY, data)
    model = build_architecture(name, CAPACITY, data)
    assert backend.qubit_count == model.qubit_count
    assert backend.query_parallelism == model.query_parallelism
    assert backend.single_query_latency() == model.single_query_latency()


def test_registry_backend_views_stay_coherent():
    """backend_names() and build_backend derive from the same spec field."""
    from repro.baselines.registry import ARCHITECTURES, ArchitectureSpec

    ARCHITECTURES["No-Backend"] = ArchitectureSpec(
        "No-Backend", lambda capacity, data=None: None, "O(N)"
    )
    try:
        assert "No-Backend" in architecture_names()
        assert "No-Backend" not in backend_names()
        with pytest.raises(KeyError, match="no execution backend"):
            build_backend("No-Backend", CAPACITY)
    finally:
        del ARCHITECTURES["No-Backend"]
    # Every advertised backend name actually builds.
    for name in backend_names():
        assert build_backend(name, CAPACITY).name == name


def test_registry_resolves_any_capitalization():
    assert resolve_architecture("fat-tree").name == "Fat-Tree"
    assert resolve_architecture("VIRTUAL").name == "Virtual"
    with pytest.raises(KeyError):
        resolve_architecture("Hyper-Tree")
    with pytest.raises(KeyError):
        build_backend("Hyper-Tree", CAPACITY)


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_backend_window_functional_outputs(name):
    data = random_data(CAPACITY, seed=3)
    backend = build_backend(name, CAPACITY, data)
    requests = [
        QueryRequest(0, {1: 0.6, 5: 0.8}),
        QueryRequest(1, {2: 1.0}, initial_bus=1),
    ]
    result = backend.run_window(requests, functional=True)
    assert isinstance(result, WindowResult)
    assert result.batch_size == 2
    assert result.total_layers >= max(result.finish_offsets)
    for slot, request in enumerate(requests):
        assert result.fidelities[slot] == pytest.approx(1.0)
        for (address, bus), _amp in result.outputs[slot].items():
            assert bus == data[address] ^ request.initial_bus
        assert result.finish_offsets[slot] > result.start_offsets[slot] > 0


@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_backend_window_timing_only(name):
    backend = build_backend(name, CAPACITY)
    requests = [QueryRequest(i, {0: 1.0}) for i in range(2)]
    functional = backend.run_window(requests, functional=True)
    timing = backend.run_window(requests, functional=False)
    assert timing.outputs == (None, None)
    # Timing-only windows report the analytic *predicted* fidelity in place
    # of the measured one — the serving stack is never blind to quality.
    assert timing.fidelities == timing.predicted_fidelities
    assert all(0.0 <= f < 1.0 for f in timing.fidelities)
    assert timing.predicted_fidelities == functional.predicted_fidelities
    assert timing.start_offsets == functional.start_offsets
    assert timing.finish_offsets == functional.finish_offsets
    with pytest.raises(ValueError):
        backend.run_window([])


def test_bb_backend_is_sequential():
    backend = build_backend("BB", CAPACITY)
    assert backend.query_parallelism == 1
    lifetime = backend.qram.raw_query_layers
    result = backend.run_window(
        [QueryRequest(i, {0: 1.0}) for i in range(3)], functional=False
    )
    assert result.interval == lifetime
    assert result.total_layers == 3 * lifetime
    assert result.start_offsets == (1.0, lifetime + 1.0, 2 * lifetime + 1.0)


def test_backend_write_invalidates_caches():
    """Writes must reach the cached executors of every backend."""
    for name in ALL_BACKENDS:
        backend = build_backend(name, CAPACITY, [0] * CAPACITY)
        before = backend.run_window([QueryRequest(0, {3: 1.0})]).outputs[0]
        assert before == {(3, 0): pytest.approx(1.0)}
        backend.write_memory(3, 1)
        after = backend.run_window([QueryRequest(0, {3: 1.0})]).outputs[0]
        assert after == {(3, 1): pytest.approx(1.0)}, name


def test_bb_cached_executor_reused_until_write():
    backend = build_backend("BB", CAPACITY)
    first = backend.cached_executor()
    assert backend.cached_executor() is first
    backend.write_memory(0, 1)
    assert backend.cached_executor() is not first


# ---------------------------------------------------------------- integration
@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_service_serves_trace_on_every_architecture(name):
    """Acceptance: QRAMService drains a functional trace on all five."""
    capacity = 16
    data = random_data(capacity, seed=4)
    service = QRAMService(capacity, num_shards=2, data=data, architecture=name)
    trace = poisson_trace(
        capacity, 10, mean_interarrival=12.0, num_tenants=2, num_shards=2, seed=6
    )
    report = service.serve(trace)
    assert report.stats.total_queries == 10
    assert list(report.stats.per_backend) == [name]
    backend_stats = report.stats.per_backend[name]
    assert backend_stats.queries == 10
    assert backend_stats.shards == 2
    assert backend_stats.busy_layers > 0
    for record in report.served:
        assert record.architecture == name
        assert record.fidelity == pytest.approx(1.0)
    for request in trace:
        for (address, bus), _amp in report.outputs[request.query_id].items():
            assert bus == data[address]


def test_service_mixed_fleet_reports_per_backend_stats():
    """Acceptance: one heterogeneous fleet, per-backend stats split."""
    capacity = 16
    data = random_data(capacity, seed=5)
    service = QRAMService(
        capacity, num_shards=2, data=data, architectures=["Fat-Tree", "BB"]
    )
    assert service.architectures == ["Fat-Tree", "BB"]
    assert service.window_sizes == [3, 1]    # log2(8) vs sequential
    trace = poisson_trace(
        capacity, 16, mean_interarrival=8.0, num_tenants=2, num_shards=2, seed=7
    )
    report = service.serve(trace)
    stats = report.stats
    assert sorted(stats.per_backend) == ["BB", "Fat-Tree"]
    assert sum(b.queries for b in stats.per_backend.values()) == 16
    assert stats.per_shard[0].architecture == "Fat-Tree"
    assert stats.per_shard[1].architecture == "BB"
    for record in report.served:
        assert record.fidelity == pytest.approx(1.0)
        assert record.architecture == service.architectures[record.shard]
    # BB windows are single-query; Fat-Tree windows may batch.
    assert all(
        w.batch_size == 1 for w in report.windows if w.architecture == "BB"
    )


def test_service_rejects_mismatched_fleet_configuration():
    with pytest.raises(ValueError, match="one backend per shard"):
        QRAMService(16, num_shards=2, architectures=["Fat-Tree"])
    with pytest.raises(ValueError, match="placement"):
        QRAMService(16, num_shards=2, placement="round-robin")
    with pytest.raises(KeyError):
        QRAMService(16, num_shards=2, architecture="Hyper-Tree")


def test_service_shortest_queue_replication():
    """Replicated fleets spread full-range superpositions over shards."""
    capacity = 16
    data = random_data(capacity, seed=8)
    service = QRAMService(
        capacity,
        num_shards=3,
        data=data,
        architecture="Fat-Tree",
        placement="shortest-queue",
    )
    # Superpositions are NOT shard-aligned: replication allows any shard.
    trace = poisson_trace(capacity, 12, mean_interarrival=4.0, num_shards=1, seed=9)
    report = service.serve(trace)
    assert report.stats.total_queries == 12
    assert len({r.shard for r in report.served}) > 1
    for record in report.served:
        assert record.fidelity == pytest.approx(1.0)
    for request in trace:
        for (address, bus), _amp in report.outputs[request.query_id].items():
            assert bus == data[address]
    # Writes are mirrored into every replica.
    service.write_memory(3, 1 - data[3])
    for shard in service.shards:
        assert shard.data[3] == 1 - data[3]


def test_service_priority_policy_admits_high_priority_first():
    requests = [
        QueryRequest(i, {0: 1.0}, request_time=0.0, priority=(1 if i >= 3 else 0))
        for i in range(6)
    ]
    service = QRAMService(
        8, num_shards=1, policy=PriorityPolicy(), functional=False, window_size=1
    )
    report = service.serve(requests)
    order = [r.query_id for r in sorted(report.served, key=lambda s: s.start_layer)]
    assert order == [3, 4, 5, 0, 1, 2]


def test_policy_coercion_accepts_legacy_enum_and_names():
    with pytest.warns(DeprecationWarning, match="SchedulingPolicy is deprecated"):
        assert isinstance(as_policy(SchedulingPolicy.FIFO), FIFOPolicy)
    assert isinstance(as_policy("fifo"), FIFOPolicy)
    with pytest.warns(DeprecationWarning):
        assert as_policy(SchedulingPolicy.LIFO).name == "lifo"
    with pytest.warns(DeprecationWarning):
        assert SchedulingPolicy.RANDOM.to_policy(seed=3).name == "random"
    existing = PriorityPolicy()
    assert as_policy(existing) is existing
    with pytest.raises(KeyError):
        as_policy("deadline")
    with pytest.raises(TypeError):
        as_policy(42)


def test_policy_names_vocabulary():
    from repro.scheduling.policy import policy_names

    assert policy_names() == ("edf", "fifo", "lifo", "priority", "random")


# -------------------------------------------------------- predicted fidelity
@pytest.mark.parametrize("name", ALL_BACKENDS)
def test_predicted_fidelity_surface(name):
    """Every backend predicts a per-slot fidelity for any window shape."""
    backend = build_backend(name, CAPACITY)
    solo = backend.predicted_query_fidelity()
    assert 0.0 < solo < 1.0
    assert backend.predicted_window_fidelities(1) == (solo,)
    window = backend.predicted_window_fidelities(3)
    assert len(window) == 3
    # Pipelining-depth degradation never *improves* a slot over a lone query.
    assert all(0.0 <= f <= solo for f in window)
    with pytest.raises(ValueError):
        backend.predicted_window_fidelities(0)


def test_fat_tree_prediction_matches_table3_bound():
    """A lone query predicts exactly the Sec. 8.1 / Table 3 bound."""
    from repro.fidelity.noise_resilience import fat_tree_query_infidelity
    from repro.hardware.parameters import TABLE3_PARAMETERS

    params = TABLE3_PARAMETERS[1e-3]
    backend = build_backend("Fat-Tree", 16, parameters=params)
    assert backend.predicted_query_fidelity() == pytest.approx(
        1.0 - fat_tree_query_infidelity(16, params)
    )
    assert backend.predicted_query_fidelity() == pytest.approx(1.0 - 0.08)


def test_fat_tree_pipelining_degrades_interior_slots():
    backend = build_backend("Fat-Tree", 16)
    solo = backend.predicted_query_fidelity()
    window = backend.predicted_window_fidelities(4)
    # Interior slots overlap more in-flight neighbours than the edges.
    assert window[1] < window[0] < solo
    assert window[1] == pytest.approx(window[2])    # symmetric overlap


def test_bb_sequential_windows_never_degrade():
    """BB admits queries one full lifetime apart: zero overlap, zero
    pipelining degradation at any batch size."""
    backend = build_backend("BB", CAPACITY)
    solo = backend.predicted_query_fidelity()
    assert backend.predicted_window_fidelities(5) == (solo,) * 5


def test_distributed_crosstalk_is_per_copy():
    """Slots on different hardware copies never degrade each other: a batch
    no larger than the copy count predicts the lone-query bound."""
    backend = build_backend("D-Fat-Tree", 16)
    copies = backend.model.num_copies
    solo = backend.predicted_query_fidelity()
    assert backend.predicted_window_fidelities(copies) == (solo,) * copies
    # One more query makes exactly one copy pipeline two queries.
    overloaded = backend.predicted_window_fidelities(copies + 1)
    assert overloaded[0] < solo and overloaded[copies] < solo
    assert all(f == solo for f in overloaded[1:copies])


def test_served_requests_always_carry_predicted_fidelity():
    """Timing-only serving populates ServedQuery.fidelity with the
    prediction instead of None."""
    capacity = 16
    trace = poisson_trace(capacity, 12, mean_interarrival=5.0, num_shards=2, seed=4)
    service = QRAMService(capacity, num_shards=2, functional=False)
    report = service.serve(trace)
    for record in report.served:
        assert record.fidelity is not None
        assert record.predicted_fidelity is not None
        assert 0.0 < record.predicted_fidelity < 1.0
    stats = report.stats
    assert stats.mean_fidelity is not None
    assert stats.min_fidelity is not None
    assert 0.0 < stats.min_fidelity <= stats.mean_fidelity < 1.0
    for backend_stats in stats.per_backend.values():
        assert backend_stats.mean_fidelity is not None
    for shard_stats in stats.per_shard.values():
        assert shard_stats.min_fidelity is not None


# ------------------------------------------------------------- QEC encoding
def test_encoded_backend_registry_names():
    from repro.backends import encoded_backend_name, parse_encoded_name

    assert encoded_backend_name("Fat-Tree", 3) == "Fat-Tree@d3"
    assert parse_encoded_name("Fat-Tree@d3") == ("Fat-Tree", 3)
    assert parse_encoded_name("BB") == ("BB", 1)
    with pytest.raises(ValueError):
        parse_encoded_name("Fat-Tree@dx")
    with pytest.raises(ValueError):
        parse_encoded_name("Fat-Tree@d0")
    with pytest.raises(KeyError):
        build_backend("Hyper-Tree@d3", CAPACITY)


def test_build_backend_distance_knob():
    """The @d suffix and the explicit distance kwarg build the same thing;
    distance 1 is the bare adapter."""
    from repro.backends import EncodedBackend

    bare = build_backend("Fat-Tree", CAPACITY)
    via_suffix = build_backend("Fat-Tree@d3", CAPACITY)
    via_kwarg = build_backend("Fat-Tree", CAPACITY, distance=3)
    assert isinstance(via_suffix, EncodedBackend)
    assert via_suffix.name == via_kwarg.name == "Fat-Tree@d3"
    assert not isinstance(build_backend("Fat-Tree", CAPACITY, distance=1),
                          EncodedBackend)
    # The kwarg wins over the suffix (explicit beats embedded).
    assert build_backend("Fat-Tree@d3", CAPACITY, distance=5).name == "Fat-Tree@d5"
    assert isinstance(via_suffix, type(via_kwarg))
    assert bare.capacity == via_suffix.capacity


def test_encoded_backend_table5_resources_and_timing():
    """Distance d costs m = d^2 qubits per logical qubit, divides the
    logical parallelism and stretches layers by the syndrome depth D,
    trailing m pipelined physical queries (Table 5)."""
    capacity = 16
    bare = build_backend("Fat-Tree", capacity)
    encoded = build_backend("Fat-Tree@d3", capacity)
    m = encoded.code.physical_qubits
    depth = encoded.code.syndrome_depth
    assert m == 9 and encoded.code.distance == 3
    assert encoded.qubit_count == m * bare.qubit_count
    assert encoded.query_parallelism == max(1, bare.query_parallelism // m)
    assert encoded.minimum_feasible_interval() == depth * bare.minimum_feasible_interval()
    request = [QueryRequest(0, {1: 1.0})]
    bare_window = bare.run_window(request, functional=False)
    encoded_window = encoded.run_window(request, functional=False)
    assert encoded_window.total_layers == depth * bare_window.total_layers + m
    assert encoded_window.finish_offsets[0] == depth * bare_window.finish_offsets[0] + m


def test_encoded_backend_improves_fidelity_below_threshold():
    """Below the code threshold, an encoded replica predicts (much) higher
    fidelity than its bare twin — the Fig. 11 separation, servable."""
    from repro.hardware.parameters import TABLE3_PARAMETERS

    params = TABLE3_PARAMETERS[1e-4]
    bare = build_backend("Fat-Tree", 16, parameters=params)
    encoded = build_backend("Fat-Tree@d3", 16, parameters=params)
    assert encoded.predicted_query_fidelity() > bare.predicted_query_fidelity()
    assert encoded.predicted_query_fidelity() > 0.999
    # Functional windows pass outputs through but report the prediction:
    # the gate-level simulation is of the bare circuit.
    result = encoded.run_window([QueryRequest(0, {1: 1.0})], functional=True)
    assert result.outputs[0] is not None
    assert result.fidelities == result.predicted_fidelities
    assert result.fidelities[0] == pytest.approx(encoded.predicted_query_fidelity())


def test_encoded_backend_rejects_distance_one():
    from repro.backends import EncodedBackend

    with pytest.raises(ValueError):
        EncodedBackend(build_backend("BB", CAPACITY), distance=1)


# ------------------------------------------- prediction caches (simlint SIM003)
@pytest.mark.parametrize("name", ALL_BACKENDS + ["Fat-Tree@d3"])
def test_write_memory_invalidates_prediction_cache(name):
    """Every backend pairs memory writes with prediction-cache invalidation.

    Whitebox on purpose: today's predictions don't read the memory
    *contents*, so only the cache attribute itself can witness that the
    mutation/invalidation pairing (simlint SIM003) holds — it must keep
    holding when a data-dependent noise term makes staleness observable.
    """
    backend = build_backend(name, 16, random_data(16, seed=2))
    before = backend.predicted_window_fidelities(2)
    assert "_predicted_fidelity_cache" in backend.__dict__
    backend.write_memory(3, 1)
    assert "_predicted_fidelity_cache" not in backend.__dict__
    # Predictions rebuild cleanly after the drop.
    assert backend.predicted_window_fidelities(2) == before


def test_distributed_subbatch_sizes_iterate_deterministically():
    """Regression: per-copy sub-batch sizes are visited via sorted(set(...)),
    never raw set order, so the prediction is a pure function of batch size."""
    copies = build_backend("D-Fat-Tree", 16).model.num_copies
    assert copies >= 2
    batch = copies + 1  # copy 0 gets two local slots, every other copy one
    runs = [
        build_backend("D-Fat-Tree", 16).predicted_window_fidelities(batch)
        for _ in range(3)
    ]
    assert runs[0] == runs[1] == runs[2]
    fids = runs[0]
    # Slots 1..copies-1 are singleton sub-batches: identical fidelity.
    assert len(set(fids[1:copies])) == 1
    # Copy 0's two slots (0 and `copies`) share a sub-batch; pipelining
    # crosstalk degrades both below the singleton prediction.
    assert fids[0] == fids[copies] < fids[1]
