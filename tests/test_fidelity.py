"""Noise resilience, virtual distillation and QEC (Sec. 8, Tables 3-5, Fig. 11)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fidelity import (
    QECCode,
    bb_query_infidelity,
    distilled_infidelity,
    encoded_infidelity,
    fat_tree_query_infidelity,
    fig11_series,
    generic_circuit_infidelity,
    logical_error_rate,
    table3_rows,
    table4_comparison,
    table5_rows,
)
from repro.fidelity.distillation import (
    density_matrix_distillation,
    parallelism_fidelity_tradeoff,
)
from repro.fidelity.qec import max_depth_below_infidelity
from repro.hardware.parameters import HardwareParameters


def test_table3_values():
    rows = {r["capacity"]: r for r in table3_rows()}
    assert rows[8]["infidelity_eps0_0.001"] == pytest.approx(0.045)
    assert rows[16]["infidelity_eps0_0.001"] == pytest.approx(0.08)
    assert rows[32]["infidelity_eps0_0.001"] == pytest.approx(0.125)
    assert rows[64]["infidelity_eps0_0.001"] == pytest.approx(0.18)
    assert rows[8]["infidelity_eps0_0.0001"] == pytest.approx(0.0045)
    assert rows[64]["infidelity_eps0_1e-05"] == pytest.approx(0.0018)


def test_fat_tree_vs_bb_infidelity_constant_factor():
    params = HardwareParameters(
        cswap_error=0.002, inter_node_swap_error=0.002, intra_node_swap_error=0.001
    )
    for capacity in (8, 64, 1024):
        ft = fat_tree_query_infidelity(capacity, params)
        bb = bb_query_infidelity(capacity, params)
        assert ft == pytest.approx(1.25 * bb)     # the 0.25x overhead of Sec. 8.1


def test_generic_circuit_degrades_exponentially():
    params = HardwareParameters(
        cswap_error=1e-5, inter_node_swap_error=1e-5, intra_node_swap_error=5e-6
    )
    gc = [generic_circuit_infidelity(2**n, params) for n in (4, 8, 12)]
    qram = [fat_tree_query_infidelity(2**n, params) for n in (4, 8, 12)]
    assert gc[2] / gc[1] == pytest.approx(2**4, rel=1e-6)
    assert qram[2] / qram[1] < 3                 # polynomial vs exponential


def test_table4_virtual_distillation():
    params = HardwareParameters(
        cswap_error=0.002, inter_node_swap_error=0.002, intra_node_swap_error=0.001
    )
    table = table4_comparison(16, params)
    ft = table["Fat-Tree"]
    bb = table["2 BB"]
    assert ft["qubits"] == bb["qubits"] == 256
    assert ft["copies"] == 4 and bb["copies"] == 2
    assert ft["fidelity_before"] == pytest.approx(0.84)
    assert bb["fidelity_before"] == pytest.approx(0.872)
    assert ft["fidelity_after"] == pytest.approx(0.9993, abs=5e-4)
    assert bb["fidelity_after"] == pytest.approx(0.984, abs=1e-3)
    assert ft["fidelity_after"] > bb["fidelity_after"]


def test_distillation_against_exact_density_matrix():
    ideal = np.zeros(8)
    ideal[3] = 1.0
    for eps in (0.05, 0.16):
        for copies in (2, 3, 4):
            # Rank-1 error: the exact density-matrix computation reproduces
            # the closed-form expression.
            exact = 1.0 - density_matrix_distillation(ideal, eps, copies, error_rank=1)
            closed = distilled_infidelity(eps, copies, exact=True)
            assert exact == pytest.approx(closed, rel=1e-9, abs=1e-12)
            # Spreading the error over more orthogonal states only helps, so
            # the paper's eps^k figure is an upper bound on the infidelity.
            spread = 1.0 - density_matrix_distillation(ideal, eps, copies, error_rank=5)
            assert spread <= closed + 1e-12
            assert distilled_infidelity(eps, copies) <= eps


def test_distillation_input_validation():
    with pytest.raises(ValueError):
        distilled_infidelity(1.5, 2)
    with pytest.raises(ValueError):
        distilled_infidelity(0.1, 0)
    assert distilled_infidelity(0.1, 1) == pytest.approx(0.1)


def test_parallelism_fidelity_tradeoff():
    rows = parallelism_fidelity_tradeoff(16)
    assert [r["copies_per_query"] for r in rows] == [1, 2, 4]
    fidelities = [r["fidelity_after"] for r in rows]
    assert fidelities == sorted(fidelities)
    assert rows[-1]["remaining_parallelism"] == 1


def test_logical_error_rate_scaling():
    assert logical_error_rate(1e-3, 1) == pytest.approx(1e-3)
    d3 = logical_error_rate(1e-3, 3)
    d5 = logical_error_rate(1e-3, 5)
    assert d5 < d3 < 1e-2
    assert d5 / d3 == pytest.approx(0.1, rel=1e-6)


def test_fig11_series_shapes():
    series = fig11_series(tree_depths=(2, 6, 10, 14))
    assert set(series) >= {
        "Fat-Tree d=1", "Fat-Tree d=3", "Fat-Tree d=5",
        "BB d=1", "GC d=1", "GC d=5", "tree_depth",
    }
    # QEC reduces infidelity at every depth.
    for architecture in ("Fat-Tree", "BB", "GC"):
        no_qec = series[f"{architecture} d=1"]
        d5 = series[f"{architecture} d=5"]
        assert all(b <= a for a, b in zip(no_qec, d5))
    # The generic circuit is the worst at large depth.
    assert series["GC d=3"][-1] >= series["Fat-Tree d=3"][-1]
    assert series["GC d=3"][-1] >= series["BB d=3"][-1]


def test_qec_lets_qram_run_deeper_than_generic_circuits():
    qram_depth = max_depth_below_infidelity("Fat-Tree", 3, 5e-3)
    gc_depth = max_depth_below_infidelity("GC", 3, 5e-3)
    assert qram_depth > gc_depth


def test_qec_code_and_table5():
    code = QECCode(physical_qubits=5, distance=3, syndrome_depth=4)
    assert code.correctable_errors == 1
    with pytest.raises(ValueError):
        QECCode(physical_qubits=3, distance=5)
    rows = table5_rows(1024, code)
    noisy, encoded = rows
    assert noisy["physical_qubits"] == 1024
    assert encoded["physical_qubits"] == 5 * 1024
    assert noisy["logical_query_parallelism"] == 2     # floor(10 / 5)
    assert encoded["logical_query_parallelism"] == 1
    assert noisy["logical_query_latency"] == 4 * 10 + 5
    assert encoded["logical_query_latency"] == 4 * 10


def test_encoded_infidelity_unknown_architecture():
    with pytest.raises(KeyError):
        encoded_infidelity("Foo", 16, 3)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=12), eps_exp=st.integers(min_value=3, max_value=6))
def test_infidelity_bounds_are_monotone_and_clipped(n, eps_exp):
    eps = 10.0 ** (-eps_exp)
    params = HardwareParameters(
        cswap_error=eps, inter_node_swap_error=eps, intra_node_swap_error=eps / 2
    )
    value = fat_tree_query_infidelity(2**n, params)
    assert 0.0 <= value <= 1.0
    if n >= 2:
        smaller = fat_tree_query_infidelity(2 ** (n - 1), params)
        assert value >= smaller


def test_encoded_infidelity_distance_one_is_unencoded_bound():
    """Regression: d=1 must be an exact passthrough to the bare Sec. 8.1
    bounds (a dead `scale` computation used to shadow this intent)."""
    params = HardwareParameters(
        cswap_error=2e-3, inter_node_swap_error=2e-3, intra_node_swap_error=1e-3
    )
    for capacity in (8, 64, 1024):
        assert encoded_infidelity("Fat-Tree", capacity, 1, params) == (
            fat_tree_query_infidelity(capacity, params)
        )
        assert encoded_infidelity("BB", capacity, 1, params) == (
            bb_query_infidelity(capacity, params)
        )
        assert encoded_infidelity("GC", capacity, 1, params) == (
            generic_circuit_infidelity(capacity, params)
        )


def test_encoded_parameters_passthrough_and_scaling():
    from repro.fidelity import encoded_parameters

    params = HardwareParameters(
        cswap_error=1e-4, inter_node_swap_error=1e-4, intra_node_swap_error=5e-5
    )
    assert encoded_parameters(params, 1) is params
    logical = encoded_parameters(params, 3)
    # Below threshold (1e-4 << 1e-2) the logical rates improve on the
    # physical ones; gate times are untouched.
    assert logical.cswap_error == pytest.approx(1e-5)
    assert logical.cswap_error < params.cswap_error
    assert logical.intra_node_swap_error < params.intra_node_swap_error
    assert logical.cswap_time_us == params.cswap_time_us
