"""Runtime sanitizer: every invariant trips on a violation and never on a
healthy run.

Healthy-path tests prove sanitizing changes nothing (identical reports);
violation tests corrupt one invariant at a time — NaN timestamps, a
non-heap-ordered event list, a clock that runs backwards, dropped served
records, a window admitted on a busy shard — and pin the diagnostic.
"""

import math

import pytest

from repro import QRAMService, QueryRequest, ServiceEngine, TraceSource
from repro.engine import SANITIZE_ENV, SanitizerViolation
from repro.engine.events import EventHeap, ScaleCheck
from repro.workloads import closed_loop_source, poisson_trace

CAPACITY = 16


def _service(**kwargs):
    return QRAMService(CAPACITY, num_shards=2, functional=False, **kwargs)


def _trace(seed=5, queries=20):
    return poisson_trace(
        CAPACITY, queries, mean_interarrival=6.0, num_shards=2, seed=seed
    )


def _timing_signature(report):
    return [
        (s.query_id, s.tenant, s.shard, s.request_time, s.admit_layer,
         s.start_layer, s.finish_layer)
        for s in report.served
    ]


# --------------------------------------------------------------- healthy path
def test_sanitized_run_is_bit_identical_to_unsanitized():
    trace = _trace()
    plain = ServiceEngine(_service(), sanitize=False).run(TraceSource(trace))
    checked = ServiceEngine(_service(), sanitize=True).run(TraceSource(trace))
    assert _timing_signature(plain) == _timing_signature(checked)
    assert plain.stats == checked.stats


def test_sanitized_closed_loop_run_passes():
    source = closed_loop_source(
        CAPACITY, num_clients=4, queries_per_client=5, think_layers=30.0,
        num_shards=2, seed=11,
    )
    report = ServiceEngine(_service(), sanitize=True).run(source)
    assert report.stats.total_queries == 20


def test_sanitizer_defaults_off_and_reads_environment(monkeypatch):
    monkeypatch.delenv(SANITIZE_ENV, raising=False)
    assert ServiceEngine(_service()).sanitize is False
    monkeypatch.setenv(SANITIZE_ENV, "1")
    assert ServiceEngine(_service()).sanitize is True
    monkeypatch.setenv(SANITIZE_ENV, "off")
    assert ServiceEngine(_service()).sanitize is False
    # An explicit argument always beats the environment.
    monkeypatch.setenv(SANITIZE_ENV, "1")
    assert ServiceEngine(_service(), sanitize=False).sanitize is False


# ----------------------------------------------------------------- event heap
def test_nan_timestamp_rejected_only_under_sanitizer():
    heap = EventHeap(sanitize=True)
    with pytest.raises(SanitizerViolation, match="NaN"):
        heap.push(math.nan, ScaleCheck())
    # The unsanitized heap stays permissive (zero-overhead default path).
    EventHeap().push(math.nan, ScaleCheck())


def test_corrupted_heap_ordering_detected():
    heap = EventHeap(sanitize=True)
    heap.push(5.0, ScaleCheck())
    heap.push(1.0, ScaleCheck())
    heap._heap.reverse()  # break the heap invariant behind the API's back
    heap.pop()
    with pytest.raises(SanitizerViolation, match="nondecreasing"):
        heap.pop()


# ------------------------------------------------------------ engine tripwires
class _LIFOStubHeap:
    """Drop-in EventHeap that pops newest-first: time runs backwards."""

    def __init__(self, sanitize=False):
        self._items = []

    def push(self, time, event):
        self._items.append((time, event))

    def pop(self):
        return self._items.pop()

    def __len__(self):
        return len(self._items)

    def __bool__(self):
        return bool(self._items)


def test_backwards_clock_detected(monkeypatch):
    monkeypatch.setattr("repro.engine.core.EventHeap", _LIFOStubHeap)
    engine = ServiceEngine(_service(), sanitize=True)
    with pytest.raises(SanitizerViolation, match="backwards"):
        engine.run(TraceSource(_trace()))


def test_lost_served_records_break_conservation():
    # workers=0 pins the oracle path: the instance-level patch below can
    # only break *this* engine, never the fresh per-shard child engines
    # REPRO_WORKERS-driven partitioned runs would serve with.
    engine = ServiceEngine(_service(), sanitize=True, workers=0)
    engine._record_served = lambda record: None  # silently drop every result
    with pytest.raises(SanitizerViolation, match="conservation"):
        engine.run(TraceSource(_trace()))


def test_window_admission_on_busy_shard_detected():
    # workers=0 here and below: these tests reach into the oracle engine's
    # internals, which a REPRO_WORKERS-partitioned run never populates.
    engine = ServiceEngine(_service(), sanitize=True, workers=0)
    engine.run(TraceSource(_trace()))
    engine._busy_until[0] = 100.0
    with pytest.raises(SanitizerViolation, match="busy"):
        engine._execute_window(0, [], admit=5.0)


def test_unsanitized_engine_tolerates_the_same_fault():
    # The conservation fault from above passes silently without the
    # sanitizer: dropped records *reduce* served counts but nothing checks.
    engine = ServiceEngine(_service(), sanitize=False, workers=0)
    engine._record_served = lambda record: None
    # With zero served and zero rejected records the plain engine can only
    # misdiagnose the fault as an empty workload.
    with pytest.raises(ValueError, match="produced no requests"):
        engine.run(TraceSource(_trace()))


def test_queries_left_queued_detected():
    engine = ServiceEngine(_service(), sanitize=True, workers=0)

    def leak(shard, now):  # never start windows: arrivals stay queued forever
        return None

    engine._maybe_start = leak
    with pytest.raises(SanitizerViolation, match="queued"):
        engine.run(TraceSource(_trace()))


# ----------------------------------------------------------- request counting
def test_offered_counts_validated_arrivals():
    engine = ServiceEngine(_service(), sanitize=True, workers=0)
    report = engine.run(TraceSource(_trace(queries=15)))
    assert engine._offered == 15
    assert report.stats.offered_queries == 15
    total_rejected = report.stats.rejected_queries + report.stats.shed_queries
    assert report.stats.total_queries + total_rejected == 15
