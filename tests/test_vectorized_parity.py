"""Bit-identity pins for the vectorized window hot path.

The serving hot path evaluates all of a window's slots in single array
expressions (:func:`repro.backends.noise.pipelined_fidelities`, the
adapters' ``_window_offsets``) and generates traces through scalar/block
RNG fast paths.  Every one of those rewrites carries an evaluation-order
contract: the vectorized result must equal the original scalar loop **bit
for bit**, so recorded trajectories (makespans, fidelities, percentiles)
stay byte-identical across the optimization.  This module pins that
contract:

* vectorized vs scalar ``pipelined_fidelities`` across every registered
  architecture, encoded variants included, at every window occupancy;
* a property-style sweep over randomized window shapes;
* an end-to-end serve with the scalar oracle substituted for the
  vectorized kernel — full retention, every record compared;
* the trace generators' scalar fast path (single-address draws) and
  block shard draws against the historical per-request draws.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.backends.noise import (
    pipelined_fidelities,
    pipelined_fidelities_scalar,
)
from repro.baselines.registry import build_backend
from repro.engine.workload import StreamingTraceSource
from repro.schedule_cache import default_registry
from repro.service.service import QRAMService
from repro.workloads.generators import (
    iter_poisson_trace,
    random_address_superposition,
    shard_aligned_superposition,
)
from repro.workloads.arrivals import iter_exponential_times
from repro.core.query import QueryRequest

#: Every registered architecture plus encoded variants at two distances —
#: the full set of `_window_offsets` / `_infidelity_bounds` combinations
#: the serving layer can produce.
ALL_ARCHITECTURES = [
    "Fat-Tree",
    "BB",
    "Virtual",
    "D-Fat-Tree",
    "D-BB",
    "Fat-Tree@d3",
    "BB@d3",
    "Virtual@d5",
    "D-Fat-Tree@d5",
    "D-BB@d3",
]


def _bits(values):
    """Floats as IEEE-754 hex strings: equality means bitwise identity."""
    return [float(v).hex() for v in values]


# --------------------------------------------------------------------------
# pipelined_fidelities: vectorized == scalar oracle
# --------------------------------------------------------------------------
@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
@pytest.mark.parametrize("capacity", [8, 32])
def test_pipelined_fidelities_bitwise_parity(architecture, capacity):
    """Vectorized kernel == scalar loop on every backend's real offsets."""
    backend = build_backend(architecture, capacity, [0] * capacity)
    base, crosstalk = backend._infidelity_bounds(backend.parameters)
    occupancies = range(1, min(backend.query_parallelism, 16) + 1)
    for occupancy in occupancies:
        _, _, starts, finishes = backend._window_offsets(occupancy)
        vectorized = pipelined_fidelities(base, crosstalk, starts, finishes)
        scalar = pipelined_fidelities_scalar(base, crosstalk, starts, finishes)
        assert _bits(vectorized) == _bits(scalar), (
            f"{architecture} capacity={capacity} occupancy={occupancy}"
        )


@pytest.mark.parametrize("architecture", ALL_ARCHITECTURES)
def test_predicted_fidelities_identical_across_replicas(architecture):
    """Two replicas of one configuration predict identical vectors.

    The registry shares one derived per-occupancy vector across replicas;
    a replica that bypassed the registry must still compute the same
    values (the factory is deterministic), so the tuples agree exactly.
    """
    capacity = 8
    first = build_backend(architecture, capacity, [0] * capacity)
    second = build_backend(architecture, capacity, [0] * capacity)
    for occupancy in range(1, min(first.query_parallelism, 8) + 1):
        assert first.predicted_window_fidelities(occupancy) == (
            second._compute_window_fidelities(occupancy)
        )


def test_pipelined_fidelities_random_window_sweep():
    """Property-style sweep: random window shapes, bitwise parity."""
    rng = np.random.default_rng(1234)
    for _ in range(300):
        count = int(rng.integers(1, 40))
        starts = np.round(rng.uniform(0.0, 50.0, size=count), 3)
        lifetimes = np.round(rng.uniform(1.0, 30.0, size=count), 3)
        finishes = starts + lifetimes
        base = float(rng.uniform(0.0, 0.02))
        crosstalk = float(rng.uniform(0.0, 1e-4))
        vectorized = pipelined_fidelities(
            base, crosstalk, tuple(starts), tuple(finishes)
        )
        scalar = pipelined_fidelities_scalar(
            base, crosstalk, tuple(starts), tuple(finishes)
        )
        assert _bits(vectorized) == _bits(scalar)


def test_end_to_end_serve_matches_scalar_oracle(monkeypatch):
    """A full-retention serve is record-identical under the scalar kernel.

    The scalar oracle is substituted for the vectorized kernel everywhere
    it is referenced, all shared caches are dropped, and the same trace is
    served again: every served record, window record and summary statistic
    must match the vectorized run exactly.
    """
    import repro.backends.analytic as analytic
    import repro.backends.noise as noise

    def serve():
        trace = iter_poisson_trace(
            8, 400, mean_interarrival=14.0, addresses_per_query=1,
            num_tenants=4, num_shards=2, seed=5,
        )
        service = QRAMService(8, num_shards=2, functional=False)
        return service.serve_workload(
            StreamingTraceSource(trace), retention="full"
        )

    default_registry().clear()
    vectorized = serve()
    monkeypatch.setattr(noise, "pipelined_fidelities", pipelined_fidelities_scalar)
    monkeypatch.setattr(
        analytic, "pipelined_fidelities", pipelined_fidelities_scalar
    )
    default_registry().clear()
    scalar = serve()
    default_registry().clear()

    assert scalar.served == vectorized.served
    assert scalar.windows == vectorized.windows
    assert scalar.stats == vectorized.stats


# --------------------------------------------------------------------------
# Trace generators: scalar fast paths == historical array draws
# --------------------------------------------------------------------------
def _superposition_reference(capacity, num_addresses, seed):
    """The historical array-path draw, verbatim (the pinned oracle)."""
    rng = np.random.default_rng(seed)
    addresses = rng.choice(capacity, size=num_addresses, replace=False)
    raw = rng.normal(size=num_addresses) + 1j * rng.normal(size=num_addresses)
    norm = np.linalg.norm(raw)
    return {int(a): complex(x / norm) for a, x in zip(addresses, raw)}


def _amplitude_bits(amplitudes):
    return {
        address: (value.real.hex(), value.imag.hex())
        for address, value in amplitudes.items()
    }


@pytest.mark.parametrize("capacity", [2, 4, 8, 64, 256])
def test_single_address_draw_bitwise_parity(capacity):
    """The ``num_addresses == 1`` scalar fast path matches the array path."""
    for seed in range(500):
        fast = random_address_superposition(capacity, 1, seed=seed)
        reference = _superposition_reference(capacity, 1, seed)
        assert _amplitude_bits(fast) == _amplitude_bits(reference)


def test_multi_address_draw_unchanged():
    """Draws of more than one address still use the array path verbatim."""
    for num_addresses in (2, 3, 5):
        for seed in range(50):
            drawn = random_address_superposition(8, num_addresses, seed=seed)
            reference = _superposition_reference(8, num_addresses, seed)
            assert _amplitude_bits(drawn) == _amplitude_bits(reference)


def test_block_shard_draws_match_scalar_draws():
    """``integers(n, size=B)`` consumes the stream like B scalar draws."""
    for num_shards in (1, 2, 4, 8):
        for seed in (0, 1, 5, 123):
            block_rng = np.random.default_rng(seed)
            scalar_rng = np.random.default_rng(seed)
            block = block_rng.integers(num_shards, size=512).tolist()
            scalar = [int(scalar_rng.integers(num_shards)) for _ in range(512)]
            assert block == scalar
            assert (
                block_rng.bit_generator.state == scalar_rng.bit_generator.state
            )


def _trace_reference(
    capacity, num_queries, mean_interarrival, addresses_per_query,
    num_tenants, num_shards, seed, shards=None,
):
    """The historical per-request arrival loop, verbatim (pinned oracle)."""
    owned = None if shards is None else frozenset(int(s) for s in shards)
    rng = np.random.default_rng(seed)
    times = iter_exponential_times(num_queries, mean_interarrival, seed)
    for i, t in enumerate(times):
        shard = int(rng.integers(num_shards))
        if owned is not None and shard not in owned:
            continue
        yield QueryRequest(
            query_id=i,
            address_amplitudes=shard_aligned_superposition(
                capacity, num_shards, shard, addresses_per_query, seed=seed + i
            ),
            request_time=float(t),
            qpu=i % num_tenants,
            deadline=None,
            min_fidelity=None,
        )


@pytest.mark.parametrize("shards", [None, (0,), (1, 3)])
def test_poisson_trace_bitwise_parity_with_reference(shards):
    """Block shard draws leave every request byte-identical, restricted
    streams included (a parallel worker regenerates the same partition)."""
    kwargs = dict(
        capacity=16, num_queries=600, mean_interarrival=9.0,
        addresses_per_query=1, num_tenants=3, num_shards=4, seed=7,
    )
    generated = list(iter_poisson_trace(**kwargs, shards=shards))
    reference = list(_trace_reference(**kwargs, shards=shards))
    assert len(generated) == len(reference)
    for produced, expected in zip(generated, reference):
        assert produced.query_id == expected.query_id
        assert produced.request_time.hex() == expected.request_time.hex()
        assert produced.qpu == expected.qpu
        assert _amplitude_bits(produced.address_amplitudes) == (
            _amplitude_bits(expected.address_amplitudes)
        )


def test_timing_window_is_memoized_and_consistent():
    """`run_window(functional=False)` serves one shared WindowResult per
    occupancy whose fidelities are exactly the predicted vector."""
    for architecture in ALL_ARCHITECTURES:
        backend = build_backend(architecture, 8, [0] * 8)
        occupancy = min(backend.query_parallelism, 4)
        requests = [
            QueryRequest(i, {i % 8: 1.0}, request_time=0.0)
            for i in range(occupancy)
        ]
        first = backend.run_window(requests, functional=False)
        second = backend.run_window(requests, functional=False)
        assert first is second, architecture
        assert first.fidelities == backend.predicted_window_fidelities(occupancy)
        assert first.outputs == (None,) * occupancy


def test_write_memory_invalidates_instance_memos():
    """The SIM003 pairing: mutating memory drops the per-instance memos
    (registry vectors are memory-independent and stay shared)."""
    backend = build_backend("Fat-Tree", 8, [0] * 8)
    requests = [QueryRequest(0, {0: 1.0}, request_time=0.0)]
    before = backend.run_window(requests, functional=False)
    backend.predicted_window_fidelities(1)
    backend.write_memory(0, 1)
    assert "_timing_window_cache" not in backend.__dict__
    after = backend.run_window(requests, functional=False)
    assert after is not before
    assert after.fidelities == before.fidelities
