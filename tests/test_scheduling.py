"""FIFO scheduling, contention simulation and utilization (Sec. 5, Fig. 7)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import build_architecture
from repro.scheduling import (
    AlgorithmWorkload,
    QRAMServiceModel,
    SharedQRAMSimulation,
    burst_arrivals,
    periodic_algorithm_arrivals,
    random_arrivals,
    schedule_queries,
    total_latency,
    verify_fifo_optimality,
)
from repro.scheduling.utilization import (
    fig7_total_time,
    steady_state_utilization,
    utilization_from_busy_intervals,
)


def test_periodic_arrivals_structure():
    arrivals = periodic_algorithm_arrivals(3, 4, processing_layers=10, weighted_query_latency=20)
    assert len(arrivals) == 12
    assert arrivals[0].request_time == 0.0
    per_qpu = [a for a in arrivals if a.qpu == 1]
    gaps = [b.request_time - a.request_time for a, b in zip(per_qpu, per_qpu[1:])]
    assert all(g == pytest.approx(30.0) for g in gaps)


def test_random_and_burst_arrivals():
    arrivals = random_arrivals(20, 5.0, seed=3, num_qpus=4)
    assert len(arrivals) == 20
    assert all(a.request_time <= b.request_time for a, b in zip(arrivals, arrivals[1:]))
    bursts = burst_arrivals(3, 5, 100.0)
    assert len(bursts) == 15
    assert bursts[5].request_time == pytest.approx(100.0)


def test_fifo_schedule_respects_interval_and_parallelism():
    arrivals = burst_arrivals(1, 6, 100.0)
    scheduled = schedule_queries(
        arrivals, service_time=24.625, admission_interval=8.25, parallelism=3
    )
    starts = sorted(s.start_time for s in scheduled)
    # Admissions at least one interval apart.
    assert all(b - a >= 8.25 - 1e-9 for a, b in zip(starts, starts[1:]))
    # Never more than 3 in flight.
    for s in scheduled:
        concurrent = sum(
            1 for t in scheduled if t.start_time <= s.start_time < t.finish_time
        )
        assert concurrent <= 3


def test_fifo_is_optimal_for_random_workloads():
    for seed in range(3):
        arrivals = random_arrivals(5, 15.0, seed=seed)
        assert verify_fifo_optimality(
            arrivals, service_time=24.625, admission_interval=8.25, parallelism=3
        )


def test_fifo_not_worse_than_other_policies():
    arrivals = random_arrivals(8, 10.0, seed=7)
    fifo = total_latency(schedule_queries(arrivals, 24.625, 8.25, 3))
    lifo = total_latency(schedule_queries(arrivals, 24.625, 8.25, 3, "lifo"))
    rnd = total_latency(
        schedule_queries(arrivals, 24.625, 8.25, 3, "random", seed=5)
    )
    assert fifo <= lifo + 1e-9
    assert fifo <= rnd + 1e-9


def test_service_model_from_architectures():
    ft = QRAMServiceModel.from_architecture(build_architecture("Fat-Tree", 1024))
    bb = QRAMServiceModel.from_architecture(build_architecture("BB", 1024))
    assert ft.parallelism == 10 and bb.parallelism == 1
    assert ft.admission_interval == pytest.approx(8.25)
    assert bb.admission_interval == pytest.approx(bb.weighted_query_latency)
    with pytest.raises(ValueError):
        QRAMServiceModel("bad", -1, 1, 1)


def test_contention_simulation_single_algorithm():
    model = QRAMServiceModel("Fat-Tree", weighted_query_latency=24.625, admission_interval=8.25, parallelism=3)
    report = SharedQRAMSimulation(model).run(
        [AlgorithmWorkload(0, rounds=3, processing_layers=10.0)]
    )
    # 3 rounds of (query + processing) executed strictly sequentially.
    assert report.overall_depth == pytest.approx(3 * (24.625 + 10.0))
    assert report.total_queries == 3
    assert report.total_queue_delay_layers == pytest.approx(0.0)


def test_fat_tree_scales_better_than_bb_under_contention():
    ft = build_architecture("Fat-Tree", 1024)
    bb = build_architecture("BB", 1024)
    workloads = [AlgorithmWorkload(i, rounds=5, processing_layers=40.0) for i in range(10)]
    ft_report = SharedQRAMSimulation(QRAMServiceModel.from_architecture(ft)).run(workloads)
    bb_report = SharedQRAMSimulation(QRAMServiceModel.from_architecture(bb)).run(workloads)
    assert ft_report.overall_depth < bb_report.overall_depth / 3
    assert ft_report.total_queue_delay_layers < bb_report.total_queue_delay_layers


def test_utilization_helpers():
    util = utilization_from_busy_intervals([(0, 10), (5, 15)], horizon=20, parallelism=1)
    assert util == pytest.approx(1.0)
    util = utilization_from_busy_intervals([(0, 10)], horizon=20, parallelism=2)
    assert util == pytest.approx(0.25)
    with pytest.raises(ValueError):
        utilization_from_busy_intervals([], horizon=0)
    assert steady_state_utilization(0.0, 24.625, 8.25, 10, 10) <= 1.0
    assert steady_state_utilization(10.0, 24.625, 8.25, 10, 0) == 0.0
    assert fig7_total_time(3, 20) == pytest.approx(30 * 3 + 2 * 20 + 17)


@settings(max_examples=15, deadline=None)
@given(
    num_algorithms=st.integers(min_value=1, max_value=12),
    ratio=st.floats(min_value=0.0, max_value=2.0),
)
def test_simulation_invariants(num_algorithms, ratio):
    """Utilization is in [0, 1]; depth is at least one algorithm's serial time."""
    model = QRAMServiceModel("Fat-Tree", 24.625, 8.25, 3)
    workloads = [
        AlgorithmWorkload(i, rounds=4, processing_layers=ratio * 24.625)
        for i in range(num_algorithms)
    ]
    report = SharedQRAMSimulation(model).run(workloads)
    serial = 4 * (24.625 + ratio * 24.625)
    assert report.overall_depth >= serial - 1e-6
    assert 0.0 <= report.average_utilization <= 1.0
    assert report.total_queries == 4 * num_algorithms
