"""2D H-tree placement of QRAM nodes (Fig. 2(c) and Fig. 3).

Both BB and Fat-Tree QRAM are laid out as an H-tree: the root sits at the
centre of the chip and each level alternates between horizontal and vertical
splits, which keeps every parent-child wire short (length halves every two
levels) and the classical memory cells on a regular grid at the perimeter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bucket_brigade.tree import RouterId, validate_capacity


@dataclass(frozen=True)
class Placement:
    """Physical placement of one node.

    Attributes:
        router: which node (level, index).
        x, y: coordinates in abstract grid units.
    """

    router: RouterId
    x: float
    y: float


class HTreeLayout:
    """H-tree coordinates for every node of a capacity-``N`` QRAM tree."""

    def __init__(self, capacity: int, size: float = 1.0) -> None:
        self._n = validate_capacity(capacity)
        self._capacity = capacity
        self.size = size
        self._positions: dict[RouterId, tuple[float, float]] = {}
        self._place(RouterId(0, 0), 0.0, 0.0, size / 2.0, size / 2.0, horizontal=True)

    def _place(
        self,
        router: RouterId,
        x: float,
        y: float,
        dx: float,
        dy: float,
        horizontal: bool,
    ) -> None:
        self._positions[router] = (x, y)
        if router.level == self._n - 1:
            return
        if horizontal:
            offsets = ((-dx, 0.0), (dx, 0.0))
            child_d = (dx / 2.0, dy)
        else:
            offsets = ((0.0, -dy), (0.0, dy))
            child_d = (dx, dy / 2.0)
        for direction, (ox, oy) in enumerate(offsets):
            self._place(
                router.child(direction),
                x + ox,
                y + oy,
                child_d[0],
                child_d[1],
                horizontal=not horizontal,
            )

    @property
    def capacity(self) -> int:
        return self._capacity

    def position(self, router: RouterId) -> tuple[float, float]:
        """Coordinates of a node."""
        return self._positions[router]

    def placements(self) -> list[Placement]:
        """All node placements."""
        return [Placement(r, x, y) for r, (x, y) in sorted(self._positions.items())]

    def wire_length(self, parent: RouterId, direction: int) -> float:
        """Manhattan length of the wire from a parent to one of its children."""
        child = parent.child(direction)
        px, py = self._positions[parent]
        cx, cy = self._positions[child]
        return abs(px - cx) + abs(py - cy)

    def total_wire_length(self) -> float:
        """Total Manhattan wiring length of the tree."""
        total = 0.0
        for router in self._positions:
            if router.level == self._n - 1:
                continue
            total += self.wire_length(router, 0) + self.wire_length(router, 1)
        return total

    def max_wire_length(self) -> float:
        """Longest single parent-child wire (the root's, by construction)."""
        lengths = [
            self.wire_length(router, d)
            for router in self._positions
            if router.level < self._n - 1
            for d in (0, 1)
        ]
        return max(lengths) if lengths else 0.0

    def leaf_positions(self) -> list[tuple[int, float, float]]:
        """Positions of the last-level nodes, one per pair of memory cells."""
        out = []
        for router, (x, y) in sorted(self._positions.items()):
            if router.level == self._n - 1:
                out.append((router.index, x, y))
        return out

    def bounding_box(self) -> tuple[float, float, float, float]:
        """(min_x, min_y, max_x, max_y) of all placements."""
        xs = [p[0] for p in self._positions.values()]
        ys = [p[1] for p in self._positions.values()]
        return min(xs), min(ys), max(xs), max(ys)
