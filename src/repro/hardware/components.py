"""Superconducting component inventory of Fat-Tree nodes (Fig. 4).

A quantum router is built from cavities (input, router, two outputs), a
transmon coupled to the input cavity for the native CSWAP, beam-splitters for
intra-node nearest-neighbour SWAPs, and tunable couplers that terminate the
inter-node coaxial wires.  ``node_bill_of_materials`` reproduces the per-node
component counts implied by Fig. 4 and scales them across the tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bucket_brigade.tree import validate_capacity


@dataclass(frozen=True)
class ComponentCount:
    """Component counts of a hardware unit.

    Attributes:
        cavities: bosonic cavity modes (qubit storage).
        transmons: transmon ancillas enabling cavity-controlled CSWAPs.
        beam_splitters: tunable beam-splitters for intra-node SWAPs.
        couplers: tunable couplers terminating inter-node wires.
        coax_wires: bendable coaxial wires leaving the unit (modular design).
    """

    cavities: int
    transmons: int
    beam_splitters: int
    couplers: int
    coax_wires: int

    def __add__(self, other: "ComponentCount") -> "ComponentCount":
        return ComponentCount(
            self.cavities + other.cavities,
            self.transmons + other.transmons,
            self.beam_splitters + other.beam_splitters,
            self.couplers + other.couplers,
            self.coax_wires + other.coax_wires,
        )

    def scale(self, factor: int) -> "ComponentCount":
        return ComponentCount(
            self.cavities * factor,
            self.transmons * factor,
            self.beam_splitters * factor,
            self.couplers * factor,
            self.coax_wires * factor,
        )


def router_components(has_outputs: bool, reduced_connectivity: bool = False) -> ComponentCount:
    """Components of a single quantum router (Fig. 4(c) / (c1)).

    Args:
        has_outputs: transient-storage routers have no output cavities.
        reduced_connectivity: use the alternative implementation of Fig. 4(c1)
            that adds one ancillary cavity to avoid attaching four beam
            splitters to the router cavity.
    """
    cavities = 4 if has_outputs else 2
    if reduced_connectivity:
        cavities += 1
    return ComponentCount(
        cavities=cavities,
        transmons=1,
        beam_splitters=2 if has_outputs else 1,
        couplers=0,
        coax_wires=0,
    )


@dataclass(frozen=True)
class FatTreeNodeHardware:
    """Hardware description of one Fat-Tree node at a given level.

    Attributes:
        level: tree level of the node.
        address_width: ``n`` of the surrounding Fat-Tree.
        num_routers: routers inside the node (``n - level``).
        components: total component counts of the node.
    """

    level: int
    address_width: int
    num_routers: int
    components: ComponentCount


def node_bill_of_materials(
    capacity: int, level: int, reduced_connectivity: bool = False
) -> FatTreeNodeHardware:
    """Bill of materials for one node of a capacity-``N`` Fat-Tree (Fig. 4(a)).

    The node hosts ``n - level`` routers; exactly one of them (the transient
    router) lacks output cavities except at the last level where the outputs
    are the leaf cells.  Tunable couplers terminate the incoming wires (one
    per router) and the outgoing wires (two sets of ``n - level - 1``).
    """
    n = validate_capacity(capacity)
    if not 0 <= level < n:
        raise ValueError(f"level {level} out of range")
    num_routers = n - level
    last_level = level == n - 1
    total = ComponentCount(0, 0, 0, 0, 0)
    for slot in range(num_routers):
        has_outputs = slot > 0 or last_level
        total = total + router_components(has_outputs, reduced_connectivity)
    incoming = num_routers
    outgoing = 0 if last_level else 2 * (num_routers - 1)
    couplers = incoming + outgoing
    total = total + ComponentCount(0, 0, 0, couplers, incoming + outgoing)
    return FatTreeNodeHardware(level, n, num_routers, total)


def tree_bill_of_materials(
    capacity: int, reduced_connectivity: bool = False
) -> ComponentCount:
    """Total component counts of the whole Fat-Tree QRAM."""
    n = validate_capacity(capacity)
    total = ComponentCount(0, 0, 0, 0, 0)
    for level in range(n):
        node = node_bill_of_materials(capacity, level, reduced_connectivity)
        total = total + node.components.scale(2**level)
    return total
