"""Hardware implementation models for Fat-Tree QRAM nodes (Sec. 4.2).

The paper proposes two superconducting-cavity realisations of a Fat-Tree
node — a *modular* implementation (independently manufactured modules linked
with coaxial cables) and an *on-chip* implementation (a two-plane chip with
through-silicon vias).  The evaluation only needs the timing and error
parameters of those realisations plus their connectivity feasibility, which
is what these models capture:

* :mod:`repro.hardware.parameters` — gate times, CLOPS, error rates.
* :mod:`repro.hardware.components` — cavities, transmons, beam-splitters,
  couplers, and the per-node bill of materials.
* :mod:`repro.hardware.htree` — the 2D H-tree placement (Figs. 2(c), 3).
* :mod:`repro.hardware.modular` — intra-module wiring with no crossings and
  inter-module coax links (Fig. 4(a-c)).
* :mod:`repro.hardware.onchip` — the bi-planar decomposition with TSVs
  (Fig. 4(d-e)), checked with networkx planarity tests.
* :mod:`repro.hardware.planarity` — connectivity-graph construction and
  planarity / thickness-2 checks.
"""

from repro.hardware.parameters import DEFAULT_PARAMETERS, HardwareParameters
from repro.hardware.components import (
    ComponentCount,
    FatTreeNodeHardware,
    node_bill_of_materials,
)
from repro.hardware.htree import HTreeLayout
from repro.hardware.modular import ModularNodeLayout
from repro.hardware.onchip import OnChipLayout
from repro.hardware.planarity import (
    fat_tree_connectivity_graph,
    is_planar,
    two_plane_decomposition,
)

__all__ = [
    "HardwareParameters",
    "DEFAULT_PARAMETERS",
    "ComponentCount",
    "FatTreeNodeHardware",
    "node_bill_of_materials",
    "HTreeLayout",
    "ModularNodeLayout",
    "OnChipLayout",
    "fat_tree_connectivity_graph",
    "is_planar",
    "two_plane_decomposition",
]
