"""On-chip implementation of Fat-Tree QRAM (Sec. 4.2.2, Fig. 4(d-e)).

The on-chip design integrates every node onto a single two-layer chip:
qubits and wires must be planar within each layer, inter-layer connections
use through-silicon vias (TSVs).  The node-to-plane assignment alternates so
that each node shares a plane with exactly one of its children, which makes
both layers planar (checked via :mod:`repro.hardware.planarity`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bucket_brigade.tree import validate_capacity
from repro.hardware.planarity import two_plane_decomposition, is_planar


@dataclass(frozen=True)
class PlaneAssignment:
    """Plane of one Fat-Tree node in the two-layer chip."""

    level: int
    index: int
    plane: int


class OnChipLayout:
    """Two-plane on-chip layout of a capacity-``N`` Fat-Tree QRAM."""

    def __init__(self, capacity: int) -> None:
        self._n = validate_capacity(capacity)
        self.capacity = capacity
        self._planes: dict[tuple[int, int], int] = {(0, 0): 0}
        for level in range(self._n - 1):
            for index in range(2**level):
                parent = self._planes[(level, index)]
                self._planes[(level + 1, 2 * index)] = 1 - parent
                self._planes[(level + 1, 2 * index + 1)] = parent

    def plane_of(self, level: int, index: int) -> int:
        """Plane (0 or 1) hosting node ``(level, index)``."""
        return self._planes[(level, index)]

    def assignments(self) -> list[PlaneAssignment]:
        return [
            PlaneAssignment(level, index, plane)
            for (level, index), plane in sorted(self._planes.items())
        ]

    def tsv_count(self) -> int:
        """Number of through-silicon-via wire groups (parent-child links that
        cross planes): exactly one child per internal node."""
        count = 0
        for (level, index), plane in self._planes.items():
            if level == self._n - 1:
                continue
            for direction in (0, 1):
                child_plane = self._planes[(level + 1, 2 * index + direction)]
                if child_plane != plane:
                    count += 1
        return count

    def planes_balanced(self) -> tuple[int, int]:
        """Number of nodes on each plane."""
        plane0 = sum(1 for p in self._planes.values() if p == 0)
        return plane0, len(self._planes) - plane0

    def both_planes_planar(self) -> bool:
        """The headline feasibility claim: each layer's wiring is planar."""
        plane0, plane1 = two_plane_decomposition(self.capacity)
        return is_planar(plane0) and is_planar(plane1)
