"""Modular implementation of a Fat-Tree node (Sec. 4.2.1, Fig. 4(a-c)).

Each node is an independently manufactured module: routers sit side by side,
beam-splitters couple horizontally adjacent routers, tunable couplers line
the top and bottom edges as ports for the bendable coaxial wires that provide
inter-node connectivity.  Wire crossings are allowed *between* modules (the
coax can be bent arbitrarily) but not *inside* a module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bucket_brigade.tree import validate_capacity
from repro.hardware.components import FatTreeNodeHardware, node_bill_of_materials
from repro.hardware.planarity import crossing_free_modular_wiring


@dataclass(frozen=True)
class PortAssignment:
    """Port of a module edge assigned to one inter-node wire.

    Attributes:
        edge: "top" (towards the parent) or "bottom" (towards the children).
        position: index along the edge, left to right.
        label: sub-QRAM label carried by the wire.
        child_direction: 0 / 1 for bottom ports, None for top ports.
    """

    edge: str
    position: int
    label: int
    child_direction: int | None = None


class ModularNodeLayout:
    """Physical layout summary of one modular Fat-Tree node.

    Args:
        capacity: capacity of the surrounding Fat-Tree.
        level: tree level of the node.
    """

    def __init__(self, capacity: int, level: int) -> None:
        self._n = validate_capacity(capacity)
        if not 0 <= level < self._n:
            raise ValueError("level out of range")
        self.capacity = capacity
        self.level = level

    @property
    def num_routers(self) -> int:
        return self._n - self.level

    @property
    def hardware(self) -> FatTreeNodeHardware:
        """Bill of materials of this module."""
        return node_bill_of_materials(self.capacity, self.level)

    def top_ports(self) -> list[PortAssignment]:
        """Coupler ports on the top edge (towards the parent or the QPUs).

        The root exposes ``n`` external query ports; internal nodes expose one
        incoming port per router.
        """
        labels = range(self.level, self._n)
        return [
            PortAssignment("top", i, label) for i, label in enumerate(labels)
        ]

    def bottom_ports(self) -> list[PortAssignment]:
        """Coupler ports on the bottom edge (towards the two children).

        Only routers with outputs get ports; the ports of the left child are
        interleaved with those of the right child so the in-module wiring
        from each router's two output cavities never crosses.
        """
        if self.level == self._n - 1:
            return []
        ports = []
        position = 0
        for label in range(self.level + 1, self._n):
            for direction in (0, 1):
                ports.append(PortAssignment("bottom", position, label, direction))
                position += 1
        return ports

    def wire_count(self) -> dict[str, int]:
        """Incoming / outgoing coax wires of this module (Fig. 4(a))."""
        incoming = self.num_routers
        outgoing = 0 if self.level == self._n - 1 else 2 * (self.num_routers - 1)
        return {"incoming": incoming, "outgoing": outgoing}

    def has_internal_crossings(self) -> bool:
        """Whether the in-module wiring needs any crossing (it never does)."""
        return not crossing_free_modular_wiring(self.capacity)
