"""Hardware timing and error parameters (Sec. 7.1, Sec. 8.1).

The paper's resource estimates use superconducting-cavity parameters from
Weiss, Puri & Girvin (PRX Quantum 2024) and related experiments:

* native (cavity-controlled) CSWAP gate time 1 us  ->  CLOPS = 1e6,
* intra-node beam-splitter SWAP time 125 ns (1/8 of a CSWAP layer),
* gate error rates eps0 = 0.002 (CSWAP), eps1 = 0.002 (inter-node SWAP),
  eps2 = 0.001 (intra-node SWAP) for Fig. 11 and the Sec. 8 analysis.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HardwareParameters:
    """Physical parameters of a QRAM hardware platform.

    Attributes:
        cswap_time_us: duration of the native CSWAP gate in microseconds.
        intra_node_swap_time_us: duration of the beam-splitter mediated
            intra-node SWAP in microseconds.
        cswap_error: error probability per CSWAP gate (eps0).
        inter_node_swap_error: error probability per inter-node SWAP (eps1).
        intra_node_swap_error: error probability per intra-node SWAP (eps2).
    """

    cswap_time_us: float = 1.0
    intra_node_swap_time_us: float = 0.125
    cswap_error: float = 0.002
    inter_node_swap_error: float = 0.002
    intra_node_swap_error: float = 0.001

    def __post_init__(self) -> None:
        if self.cswap_time_us <= 0 or self.intra_node_swap_time_us <= 0:
            raise ValueError("gate times must be positive")
        for rate in (
            self.cswap_error,
            self.inter_node_swap_error,
            self.intra_node_swap_error,
        ):
            if not 0.0 <= rate < 1.0:
                raise ValueError("error rates must be in [0, 1)")

    @property
    def clops(self) -> float:
        """Circuit layer operations per second: ``1 / cswap_time``."""
        return 1.0e6 / self.cswap_time_us

    @property
    def fast_layer_ratio(self) -> float:
        """Ratio of intra-node SWAP time to CSWAP time (1/8 by default)."""
        return self.intra_node_swap_time_us / self.cswap_time_us

    @property
    def total_gate_error(self) -> float:
        """eps0 + eps1 + eps2, the combined per-level error of Sec. 8.1."""
        return (
            self.cswap_error
            + self.inter_node_swap_error
            + self.intra_node_swap_error
        )

    def scaled(self, error_scale: float) -> "HardwareParameters":
        """A copy with all error rates multiplied by ``error_scale``."""
        return HardwareParameters(
            cswap_time_us=self.cswap_time_us,
            intra_node_swap_time_us=self.intra_node_swap_time_us,
            cswap_error=self.cswap_error * error_scale,
            inter_node_swap_error=self.inter_node_swap_error * error_scale,
            intra_node_swap_error=self.intra_node_swap_error * error_scale,
        )


#: The parameter set used throughout the paper's evaluation.
DEFAULT_PARAMETERS = HardwareParameters()

#: Table 3's parameter sets: eps1 = eps0, eps2 = eps0 / 2 at three baselines.
TABLE3_PARAMETERS = {
    1e-3: HardwareParameters(
        cswap_error=1e-3, inter_node_swap_error=1e-3, intra_node_swap_error=5e-4
    ),
    1e-4: HardwareParameters(
        cswap_error=1e-4, inter_node_swap_error=1e-4, intra_node_swap_error=5e-5
    ),
    1e-5: HardwareParameters(
        cswap_error=1e-5, inter_node_swap_error=1e-5, intra_node_swap_error=5e-6
    ),
}
