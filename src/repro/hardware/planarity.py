"""Connectivity graphs and planarity analysis for Fat-Tree QRAM (Sec. 4.2).

The paper's key hardware observation is that Fat-Tree QRAM does not need
all-to-all connectivity: a *bi-planar nearest-neighbour* connectivity
suffices.  This module builds the qubit-level connectivity graph (intra-node
beam-splitter chains plus inter-node wires), checks planarity with networkx,
and constructs the two-plane (thickness-2) decomposition of Fig. 4(d-e) in
which a node and one of its children share a plane while the other child is
on the opposite plane, so no wires cross within either plane.
"""

from __future__ import annotations

import networkx as nx

from repro.core.fat_tree import FatTreeRouterId, FatTreeStructure


def fat_tree_connectivity_graph(capacity: int) -> nx.Graph:
    """Qubit-coupling graph of a capacity-``N`` Fat-Tree QRAM.

    Nodes are simulator qubit labels; edges are physical couplings:

    * within a router: input-router, router-left output, router-right output,
    * within a node: nearest-neighbour beam-splitter links between the input
      (and router) qubits of routers with adjacent labels (for SWAP-I/II),
    * between nodes: output of router ``(i, j, k)`` to input of router
      ``(i+1, 2j+d, k)``.
    """
    structure = FatTreeStructure(capacity)
    n = structure.address_width
    graph = nx.Graph()

    for router in structure.routers():
        inp = structure.input_qubit(router)
        r = structure.router_qubit(router)
        graph.add_edge(inp, r, kind="intra_router")
        if structure.has_outputs(router):
            for direction in (0, 1):
                out = structure.output_qubit(router, direction)
                graph.add_edge(r, out, kind="intra_router")

    # Intra-node beam-splitter chains between adjacent labels.
    for level in range(n):
        for index in range(2**level):
            labels = list(structure.labels_in_node(level))
            for low, high in zip(labels, labels[1:]):
                a = FatTreeRouterId(level, index, low)
                b = FatTreeRouterId(level, index, high)
                graph.add_edge(
                    structure.input_qubit(a), structure.input_qubit(b),
                    kind="intra_node",
                )
                graph.add_edge(
                    structure.router_qubit(a), structure.router_qubit(b),
                    kind="intra_node",
                )

    # Inter-node wires (label preserving).
    for level in range(n - 1):
        for index in range(2**level):
            for label in range(level + 1, n):
                parent = FatTreeRouterId(level, index, label)
                for direction in (0, 1):
                    child = FatTreeRouterId(level + 1, 2 * index + direction, label)
                    graph.add_edge(
                        structure.output_qubit(parent, direction),
                        structure.input_qubit(child),
                        kind="inter_node",
                    )
    return graph


def is_planar(graph: nx.Graph) -> bool:
    """Planarity of a connectivity graph."""
    planar, _ = nx.check_planarity(graph)
    return planar


def two_plane_decomposition(capacity: int) -> tuple[nx.Graph, nx.Graph]:
    """Split the Fat-Tree connectivity graph into two planar subgraphs.

    Following Fig. 4(d-e), whole nodes are assigned to planes: the root is on
    plane 0 and each node's left child goes to the opposite plane while its
    right child stays on the same plane.  Edges internal to a node stay on
    the node's plane; inter-node edges are assigned to the child's plane
    (physically, the through-silicon via sits at the parent boundary).  Both
    resulting subgraphs are planar — asserted in the test-suite for several
    capacities — which establishes the thickness-2 implementability claim.

    Returns:
        The two edge-disjoint subgraphs (their union is the full graph).
    """
    structure = FatTreeStructure(capacity)
    graph = fat_tree_connectivity_graph(capacity)
    plane_of_node: dict[tuple[int, int], int] = {(0, 0): 0}
    for level in range(structure.address_width - 1):
        for index in range(2**level):
            parent_plane = plane_of_node[(level, index)]
            plane_of_node[(level + 1, 2 * index)] = 1 - parent_plane
            plane_of_node[(level + 1, 2 * index + 1)] = parent_plane

    def node_of_qubit(qubit: tuple) -> tuple[int, int]:
        # Qubit labels: ("ft", role, level, index, label[, direction]).
        return qubit[2], qubit[3]

    planes = (nx.Graph(), nx.Graph())
    for a, b, attrs in graph.edges(data=True):
        node_a = node_of_qubit(a)
        node_b = node_of_qubit(b)
        if node_a == node_b:
            plane = plane_of_node[node_a]
        else:
            child = node_a if node_a[0] > node_b[0] else node_b
            plane = plane_of_node[child]
        planes[plane].add_edge(a, b, **attrs)
    return planes


def thickness_is_at_most_two(capacity: int) -> bool:
    """True when the two-plane decomposition yields two planar subgraphs."""
    plane0, plane1 = two_plane_decomposition(capacity)
    return is_planar(plane0) and is_planar(plane1)


def crossing_free_modular_wiring(capacity: int) -> bool:
    """Within a module, the wiring of Fig. 4(c) has no crossings.

    The intra-node graph of a single node is a ladder (two nearest-neighbour
    chains plus the per-router rungs and output stubs), which is planar; this
    helper checks that property for the largest (root) node.
    """
    structure = FatTreeStructure(capacity)
    graph = nx.Graph()
    labels = list(structure.labels_in_node(0))
    for label in labels:
        router = FatTreeRouterId(0, 0, label)
        inp = structure.input_qubit(router)
        r = structure.router_qubit(router)
        graph.add_edge(inp, r)
        if structure.has_outputs(router):
            graph.add_edge(r, structure.output_qubit(router, 0))
            graph.add_edge(r, structure.output_qubit(router, 1))
    for low, high in zip(labels, labels[1:]):
        a = FatTreeRouterId(0, 0, low)
        b = FatTreeRouterId(0, 0, high)
        graph.add_edge(structure.input_qubit(a), structure.input_qubit(b))
        graph.add_edge(structure.router_qubit(a), structure.router_qubit(b))
    return is_planar(graph)
