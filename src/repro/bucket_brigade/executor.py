"""Gate-level execution of BB QRAM queries on the sparse simulator.

The executor lowers a :class:`~repro.bucket_brigade.schedule.BBQuerySchedule`
to gates and runs them on :class:`~repro.sim.sparse.SparseState`, realising
the query unitary of Eq. (1):

    sum_i alpha_i |i>_A |b>_B  ->  sum_i alpha_i |i>_A |b XOR x_i>_B

The bus is queried through phase kickback: it is placed in the X basis
(|+> / |->) before entering the tree, the CLASSICAL-GATES step applies Z on
every leaf cell whose classical bit is 1, and a final Hadamard converts the
acquired phase back into a bit flip.  This is the standard circuit-level
realisation of the classically controlled leaf writes and leaves every router
and leaf qubit clean (disentangled) after unloading — a property the
integration tests assert explicitly.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.bucket_brigade.instructions import QubitNamer, lower_instruction
from repro.bucket_brigade.schedule import BBQuerySchedule
from repro.bucket_brigade.tree import BBTree
from repro.sim.sparse import SparseState


class BBExecutor:
    """Executes BB QRAM queries gate by gate on a sparse state.

    Args:
        capacity: memory size ``N`` (power of two).
        data: classical memory contents, one bit per address (values are
            reduced mod 2).
    """

    def __init__(self, capacity: int, data: Sequence[int]) -> None:
        self.tree = BBTree(capacity)
        if len(data) != capacity:
            raise ValueError(
                f"data must have {capacity} entries, got {len(data)}"
            )
        self.data = [int(x) & 1 for x in data]
        self.namer = QubitNamer(prefix="bb", multiplexed=False)

    @property
    def capacity(self) -> int:
        return self.tree.capacity

    @property
    def address_width(self) -> int:
        return self.tree.address_width

    # ------------------------------------------------------------------ query
    def run_query(
        self,
        address_amplitudes: Mapping[int, complex],
        query: int = 0,
        state: SparseState | None = None,
        initial_bus: int = 0,
    ) -> SparseState:
        """Run one full query and return the final state.

        Args:
            address_amplitudes: amplitudes of the address superposition
                (normalised automatically).
            query: query id used for naming the external qubits.
            state: optionally continue on an existing state (for sequential
                queries); a fresh state is created otherwise.
            initial_bus: initial bus value ``b`` (the query XORs data into it).

        Returns:
            The sparse state after the query; address qubits are
            ``("addr", query, bit)`` and the bus is ``("bus", query)``.
        """
        n = self.address_width
        if state is None:
            state = SparseState()
        address_qubits = [self.namer.address_qubit(query, bit) for bit in range(n)]
        bus_qubit = self.namer.bus_qubit(query)
        state.ensure_qubits(self.tree.all_qubits())
        state.prepare_superposition(address_qubits, dict(address_amplitudes))
        state.add_qubit(bus_qubit, initial_bus)

        # Phase-kickback basis change on the bus.
        state.apply_gate("H", (bus_qubit,))

        schedule = BBQuerySchedule(self.capacity, query=query)
        self.run_schedule(schedule, state)

        state.apply_gate("H", (bus_qubit,))
        return state

    def run_schedule(self, schedule: BBQuerySchedule, state: SparseState) -> None:
        """Execute a prepared schedule on an existing state."""
        for instruction in schedule.instructions:
            operations = lower_instruction(
                instruction,
                self.namer,
                self.address_width,
                data=self.data,
            )
            for op in operations:
                state.apply_operation(op)

    # ------------------------------------------------------------ inspection
    def expected_output(
        self,
        address_amplitudes: Mapping[int, complex],
        initial_bus: int = 0,
    ) -> dict[tuple[int, int], complex]:
        """Ideal output amplitudes over (address, bus) pairs, from Eq. (1)."""
        norm = sum(abs(a) ** 2 for a in address_amplitudes.values()) ** 0.5
        out: dict[tuple[int, int], complex] = {}
        for address, amp in address_amplitudes.items():
            bus = initial_bus ^ self.data[address]
            out[(address, bus)] = amp / norm
        return out

    def measured_output(
        self, state: SparseState, query: int = 0
    ) -> dict[tuple[int, int], complex]:
        """Amplitudes of the (address, bus) registers after a query."""
        n = self.address_width
        qubits = [self.namer.address_qubit(query, bit) for bit in range(n)]
        qubits.append(self.namer.bus_qubit(query))
        joint = state.register_amplitudes(qubits)
        return {divmod(value, 2): amp for value, amp in joint.items()}

    def query_fidelity(
        self,
        address_amplitudes: Mapping[int, complex],
        query: int = 0,
        initial_bus: int = 0,
    ) -> float:
        """|<ideal|actual>|^2 of one noiseless query (should be 1.0)."""
        state = self.run_query(address_amplitudes, query=query, initial_bus=initial_bus)
        actual = self.measured_output(state, query=query)
        ideal = self.expected_output(address_amplitudes, initial_bus=initial_bus)
        overlap = sum(
            ideal[key].conjugate() * actual.get(key, 0.0) for key in ideal
        )
        return abs(overlap) ** 2

    def tree_is_clean(self, state: SparseState) -> bool:
        """True when every router-tree qubit is back in |0> in every branch."""
        values = state.qubit_values()
        if values is None:
            tree_qubits = set(self.tree.all_qubits())
            for basis, _ in state.items():
                for qubit, value in zip(state.qubits, basis):
                    if qubit in tree_qubits and value != 0:
                        return False
            return True
        return all(
            values.get(q, 0) == 0 for q in self.tree.all_qubits()
        )
