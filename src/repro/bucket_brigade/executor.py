"""Gate-level execution of BB QRAM queries on the sparse simulator.

The executor lowers a :class:`~repro.bucket_brigade.schedule.BBQuerySchedule`
to gates and runs them on :class:`~repro.sim.sparse.SparseState`, realising
the query unitary of Eq. (1):

    sum_i alpha_i |i>_A |b>_B  ->  sum_i alpha_i |i>_A |b XOR x_i>_B

The bus is queried through phase kickback: it is placed in the X basis
(|+> / |->) before entering the tree, the CLASSICAL-GATES step applies Z on
every leaf cell whose classical bit is 1, and a final Hadamard converts the
acquired phase back into a bit flip.  This is the standard circuit-level
realisation of the classically controlled leaf writes and leaves every router
and leaf qubit clean (disentangled) after unloading — a property the
integration tests assert explicitly.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.bucket_brigade.instructions import (
    InstructionKind,
    QubitNamer,
    lower_instruction,
)
from repro.bucket_brigade.schedule import BBQuerySchedule, bb_raw_query_layers
from repro.bucket_brigade.tree import BBTree
from repro.sim.sparse import SparseState


class BBExecutor:
    """Executes BB QRAM queries gate by gate on a sparse state.

    Schedule artefacts are memoized the same way as in the Fat-Tree
    executor: the instruction schedule of a query id and the lowered gate
    sequence of every instruction are derived once per memory image and hit
    their cached values on every subsequent query — the fast path
    ``BucketBrigadeQRAM.cached_executor()`` exposes to the serving layer
    (and that classical memory writes invalidate wholesale).

    Args:
        capacity: memory size ``N`` (power of two).
        data: classical memory contents, one bit per address (values are
            reduced mod 2).
    """

    #: Distinct query ids whose schedules are kept memoized at once.
    _CACHE_LIMIT = 128

    #: Instruction kinds whose lowering names per-query external qubits
    #: (address / bus registers); everything else acts on tree qubits only
    #: and lowers identically for every query.
    _QUERY_SENSITIVE_KINDS = frozenset(
        {InstructionKind.LOAD, InstructionKind.UNLOAD}
    )

    def __init__(self, capacity: int, data: Sequence[int]) -> None:
        self.tree = BBTree(capacity)
        if len(data) != capacity:
            raise ValueError(
                f"data must have {capacity} entries, got {len(data)}"
            )
        self.data = [int(x) & 1 for x in data]
        self.namer = QubitNamer(prefix="bb", multiplexed=False)
        self._schedule_cache: dict[int, BBQuerySchedule] = {}
        self._lowered_cache: dict[
            tuple[InstructionKind, int, int, int, int], list
        ] = {}

    @property
    def capacity(self) -> int:
        return self.tree.capacity

    @property
    def address_width(self) -> int:
        return self.tree.address_width

    # -------------------------------------------------------------- scheduling
    def schedule(self, query: int = 0) -> BBQuerySchedule:
        """The memoized instruction schedule of one query id."""
        cached = self._schedule_cache.get(query)
        if cached is not None:
            return cached
        if len(self._schedule_cache) >= self._CACHE_LIMIT:
            # Callers that keep minting fresh query ids must not grow the
            # per-id caches without bound; keep the query-0 entry and the
            # query-insensitive lowered sequences, evict the rest.
            base = self._schedule_cache.get(0)
            self._schedule_cache = {} if base is None else {0: base}
            self._lowered_cache = {
                key: ops for key, ops in self._lowered_cache.items() if key[1] == -1
            }
        schedule = BBQuerySchedule(self.capacity, query=query)
        self._schedule_cache[query] = schedule
        return schedule

    def minimum_feasible_interval(self, num_queries: int = 2) -> int:
        """BB QRAM admits strictly sequentially: one query per lifetime."""
        return bb_raw_query_layers(self.capacity)

    def relative_raw_latency(self) -> int:
        """Raw layers of one query: ``8 n + 1``."""
        return bb_raw_query_layers(self.capacity)

    # ------------------------------------------------------------------ query
    def run_query(
        self,
        address_amplitudes: Mapping[int, complex],
        query: int = 0,
        state: SparseState | None = None,
        initial_bus: int = 0,
    ) -> SparseState:
        """Run one full query and return the final state.

        Args:
            address_amplitudes: amplitudes of the address superposition
                (normalised automatically).
            query: query id used for naming the external qubits.
            state: optionally continue on an existing state (for sequential
                queries); a fresh state is created otherwise.
            initial_bus: initial bus value ``b`` (the query XORs data into it).

        Returns:
            The sparse state after the query; address qubits are
            ``("addr", query, bit)`` and the bus is ``("bus", query)``.
        """
        n = self.address_width
        if state is None:
            state = SparseState()
        address_qubits = [self.namer.address_qubit(query, bit) for bit in range(n)]
        bus_qubit = self.namer.bus_qubit(query)
        state.ensure_qubits(self.tree.all_qubits())
        state.prepare_superposition(address_qubits, dict(address_amplitudes))
        state.add_qubit(bus_qubit, initial_bus)

        # Phase-kickback basis change on the bus.
        state.apply_gate("H", (bus_qubit,))

        self.run_schedule(self.schedule(query), state)

        state.apply_gate("H", (bus_qubit,))
        return state

    def run_schedule(self, schedule: BBQuerySchedule, state: SparseState) -> None:
        """Execute a prepared schedule on an existing state."""
        for instruction in schedule.instructions:
            for op in self._lowered_operations(instruction):
                state.apply_operation(op)

    def _lowered_operations(self, instr) -> list:
        """Lowered gate sequence of an instruction, cached by identity.

        Lowering depends on (kind, item, level, label) and on the classical
        data — fixed for the executor's lifetime — never on the raw layer.
        The query id only matters for LOAD/UNLOAD (which touch the query's
        external address / bus qubits), so all other kinds share one cache
        entry across queries.
        """
        query_key = instr.query if instr.kind in self._QUERY_SENSITIVE_KINDS else -1
        key = (instr.kind, query_key, instr.item, instr.level, instr.label)
        operations = self._lowered_cache.get(key)
        if operations is None:
            operations = lower_instruction(
                instr,
                self.namer,
                self.address_width,
                data=self.data,
            )
            self._lowered_cache[key] = operations
        return operations

    # ------------------------------------------------------------ inspection
    def expected_output(
        self,
        address_amplitudes: Mapping[int, complex],
        initial_bus: int = 0,
    ) -> dict[tuple[int, int], complex]:
        """Ideal output amplitudes over (address, bus) pairs, from Eq. (1)."""
        # Imported here, not at module level: repro.core's package init pulls
        # in core.qram, which imports this module back (QUBITS_PER_ROUTER /
        # BBExecutor) — a top-level import would be circular.
        from repro.core.query import ideal_query_output

        return ideal_query_output(self.data, address_amplitudes, initial_bus)

    def measured_output(
        self, state: SparseState, query: int = 0
    ) -> dict[tuple[int, int], complex]:
        """Amplitudes of the (address, bus) registers after a query."""
        n = self.address_width
        qubits = [self.namer.address_qubit(query, bit) for bit in range(n)]
        qubits.append(self.namer.bus_qubit(query))
        joint = state.register_amplitudes(qubits)
        return {divmod(value, 2): amp for value, amp in joint.items()}

    def query_fidelity(
        self,
        address_amplitudes: Mapping[int, complex],
        query: int = 0,
        initial_bus: int = 0,
    ) -> float:
        """|<ideal|actual>|^2 of one noiseless query (should be 1.0)."""
        from repro.core.query import output_fidelity

        state = self.run_query(address_amplitudes, query=query, initial_bus=initial_bus)
        actual = self.measured_output(state, query=query)
        ideal = self.expected_output(address_amplitudes, initial_bus=initial_bus)
        return output_fidelity(ideal, actual)

    def tree_is_clean(self, state: SparseState) -> bool:
        """True when every router-tree qubit is back in |0> in every branch."""
        values = state.qubit_values()
        if values is None:
            tree_qubits = set(self.tree.all_qubits())
            for basis, _ in state.items():
                for qubit, value in zip(state.qubits, basis):
                    if qubit in tree_qubits and value != 0:
                        return False
            return True
        return all(
            values.get(q, 0) == 0 for q in self.tree.all_qubits()
        )
