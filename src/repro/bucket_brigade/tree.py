"""Binary router tree structure shared by BB QRAM and (as a base) Fat-Tree QRAM.

A capacity-``N`` QRAM has ``n = log2(N)`` levels of quantum routers; level
``i`` contains ``2**i`` routers.  Router ``(i, j)`` routes between its parent
(or the external escape for the root) and its two children ``(i+1, 2j)`` and
``(i+1, 2j+1)``; the outputs of level ``n-1`` routers are the *leaf cells*
coupled to the classical memory.

Qubit naming convention (used by the executors):

* ``("bb", "in", i, j)`` — input qubit of router ``(i, j)``
* ``("bb", "r", i, j)`` — router (control) qubit
* ``("bb", "out", i, j, d)`` — output qubit, ``d = 0`` left / ``d = 1`` right

Fat-Tree reuses the same convention with an extra sub-QRAM label ``k``
(see :mod:`repro.core.fat_tree`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, order=True)
class RouterId:
    """Identifier of a router in the binary tree.

    Attributes:
        level: tree level ``i`` (0 = root, ``n-1`` = last level of routers).
        index: position ``j`` within the level, ``0 <= j < 2**i``.
    """

    level: int
    index: int

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ValueError("level must be non-negative")
        if not 0 <= self.index < 2**self.level:
            raise ValueError(
                f"router index {self.index} out of range for level {self.level}"
            )

    @property
    def parent(self) -> "RouterId | None":
        """Parent router, or None for the root."""
        if self.level == 0:
            return None
        return RouterId(self.level - 1, self.index // 2)

    def child(self, direction: int) -> "RouterId":
        """Child router in ``direction`` (0 = left, 1 = right)."""
        if direction not in (0, 1):
            raise ValueError("direction must be 0 or 1")
        return RouterId(self.level + 1, 2 * self.index + direction)

    @property
    def direction_from_parent(self) -> int:
        """Which output of the parent leads here (0 = left, 1 = right)."""
        return self.index % 2


def validate_capacity(capacity: int) -> int:
    """Validate a QRAM capacity and return ``n = log2(capacity)``.

    Raises:
        ValueError: if capacity is not a power of two that is >= 2.
    """
    if capacity < 2 or capacity & (capacity - 1) != 0:
        raise ValueError(f"capacity must be a power of two >= 2, got {capacity}")
    return capacity.bit_length() - 1


class BBTree:
    """The binary tree of quantum routers of a capacity-``N`` BB QRAM.

    Args:
        capacity: number of classical memory cells ``N`` (power of two >= 2).
    """

    def __init__(self, capacity: int) -> None:
        self._n = validate_capacity(capacity)
        self._capacity = capacity

    @property
    def capacity(self) -> int:
        """Memory size ``N``."""
        return self._capacity

    @property
    def address_width(self) -> int:
        """Number of address bits ``n = log2(N)`` (= number of router levels)."""
        return self._n

    @property
    def num_routers(self) -> int:
        """Total number of routers, ``N - 1``."""
        return self._capacity - 1

    @property
    def num_leaf_cells(self) -> int:
        """Number of leaf cells (= capacity)."""
        return self._capacity

    def routers(self) -> Iterator[RouterId]:
        """All routers in breadth-first (level, index) order."""
        for level in range(self._n):
            for index in range(2**level):
                yield RouterId(level, index)

    def routers_at_level(self, level: int) -> Iterator[RouterId]:
        """Routers at the given level."""
        self._check_level(level)
        for index in range(2**level):
            yield RouterId(level, index)

    def path_to_leaf(self, address: int) -> list[RouterId]:
        """Root-to-leaf router path activated by ``address``."""
        if not 0 <= address < self._capacity:
            raise ValueError(f"address {address} out of range")
        path = []
        index = 0
        for level in range(self._n):
            path.append(RouterId(level, index))
            bit = (address >> (self._n - 1 - level)) & 1
            index = 2 * index + bit
        return path

    def leaf_position(self, address: int) -> tuple[RouterId, int]:
        """The last-level router and output direction holding leaf ``address``."""
        if not 0 <= address < self._capacity:
            raise ValueError(f"address {address} out of range")
        return RouterId(self._n - 1, address // 2), address % 2

    def address_bit(self, address: int, level: int) -> int:
        """Bit of ``address`` consumed by routers at ``level`` (MSB = level 0)."""
        self._check_level(level)
        return (address >> (self._n - 1 - level)) & 1

    # ----------------------------------------------------------- qubit naming
    def input_qubit(self, router: RouterId) -> tuple:
        """Label of the input qubit of ``router``."""
        return ("bb", "in", router.level, router.index)

    def router_qubit(self, router: RouterId) -> tuple:
        """Label of the router (control) qubit of ``router``."""
        return ("bb", "r", router.level, router.index)

    def output_qubit(self, router: RouterId, direction: int) -> tuple:
        """Label of an output qubit of ``router`` (0 = left, 1 = right)."""
        if direction not in (0, 1):
            raise ValueError("direction must be 0 or 1")
        return ("bb", "out", router.level, router.index, direction)

    def leaf_qubit(self, address: int) -> tuple:
        """Label of the leaf cell qubit for classical address ``address``."""
        router, direction = self.leaf_position(address)
        return self.output_qubit(router, direction)

    def all_qubits(self) -> list[tuple]:
        """All router-tree qubits (inputs, router qubits, outputs)."""
        qubits: list[tuple] = []
        for router in self.routers():
            qubits.append(self.input_qubit(router))
            qubits.append(self.router_qubit(router))
            qubits.append(self.output_qubit(router, 0))
            qubits.append(self.output_qubit(router, 1))
        return qubits

    @property
    def num_tree_qubits(self) -> int:
        """Number of qubits in the router tree (4 per router)."""
        return 4 * self.num_routers

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self._n:
            raise ValueError(f"level {level} out of range [0, {self._n})")
