"""Bucket-Brigade QRAM (Giovannetti-Lloyd-Maccone) substrate.

This package implements the baseline architecture the paper builds on:

* :mod:`repro.bucket_brigade.tree` — the binary router tree, router/qubit
  naming, and leaf addressing.
* :mod:`repro.bucket_brigade.router` — the three-state quantum router model.
* :mod:`repro.bucket_brigade.instructions` — the elementary QRAM instruction
  set (LOAD / TRANSPORT / ROUTE / STORE / CLASSICAL-GATES and inverses) and
  its lowering to gates.
* :mod:`repro.bucket_brigade.schedule` — the bit-level pipelined query
  schedule (``8 log N + 1`` circuit layers, 25 for N = 8).
* :mod:`repro.bucket_brigade.executor` — gate-level execution of a query on
  the sparse simulator, verifying the query unitary of Eq. (1).
* :mod:`repro.bucket_brigade.qram` — the user-facing ``BucketBrigadeQRAM``.
"""

from repro.bucket_brigade.tree import BBTree, RouterId
from repro.bucket_brigade.router import QuantumRouter, RouterState
from repro.bucket_brigade.instructions import Instruction, InstructionKind
from repro.bucket_brigade.schedule import BBQuerySchedule
from repro.bucket_brigade.executor import BBExecutor
from repro.bucket_brigade.qram import BucketBrigadeQRAM

__all__ = [
    "BBTree",
    "RouterId",
    "QuantumRouter",
    "RouterState",
    "Instruction",
    "InstructionKind",
    "BBQuerySchedule",
    "BBExecutor",
    "BucketBrigadeQRAM",
]
