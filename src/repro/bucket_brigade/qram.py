"""User-facing Bucket-Brigade QRAM.

``BucketBrigadeQRAM`` bundles the tree structure, the schedule and the
gate-level executor behind the architecture-level interface shared by all
QRAM models in this repository (see :mod:`repro.baselines.registry`):
capacity, qubit count, query parallelism, latency, and a functional
``query`` method.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.bucket_brigade.executor import BBExecutor
from repro.bucket_brigade.schedule import (
    BBQuerySchedule,
    bb_raw_query_layers,
    bb_weighted_query_latency,
)
from repro.bucket_brigade.tree import BBTree, validate_capacity
from repro.schedule_cache import default_registry, shared_executor

# Physical qubits per quantum router in the superconducting implementation
# (input + router + two output cavities, transmon ancilla and coupler
# overhead): the constant that reproduces Table 1's "8 N" for BB QRAM.
QUBITS_PER_ROUTER = 8


class BucketBrigadeQRAM:
    """A capacity-``N`` Bucket-Brigade QRAM used as a (sequential) shared memory.

    Args:
        capacity: memory size ``N`` (power of two >= 2).
        data: optional initial classical memory contents (defaults to zeros).
    """

    name = "BB"

    def __init__(self, capacity: int, data: Sequence[int] | None = None) -> None:
        self._n = validate_capacity(capacity)
        self._capacity = capacity
        self.tree = BBTree(capacity)
        self._data = [0] * capacity if data is None else [int(x) & 1 for x in data]
        if len(self._data) != capacity:
            raise ValueError("data length must equal capacity")
        self._executor: BBExecutor | None = None

    # -------------------------------------------------------------- structure
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def address_width(self) -> int:
        return self._n

    @property
    def data(self) -> list[int]:
        """Current classical memory contents."""
        return list(self._data)

    def write_memory(self, address: int, value: int) -> None:
        """Update one classical memory cell (invalidates the cached executor)."""
        self._data[address] = int(value) & 1
        if self._executor is not None:
            self._executor = None
            default_registry().note_invalidation()

    def load_memory(self, data: Sequence[int]) -> None:
        """Replace the whole classical memory."""
        if len(data) != self._capacity:
            raise ValueError("data length must equal capacity")
        self._data = [int(x) & 1 for x in data]
        if self._executor is not None:
            self._executor = None
            default_registry().note_invalidation()

    # --------------------------------------------------------------- resources
    @property
    def num_routers(self) -> int:
        """Quantum routers in the tree: ``N - 1``."""
        return self._capacity - 1

    @property
    def qubit_count(self) -> int:
        """Physical qubit count, ``8 N`` (Table 1)."""
        return QUBITS_PER_ROUTER * self._capacity

    @property
    def query_parallelism(self) -> int:
        """BB QRAM serves queries strictly sequentially."""
        return 1

    # ----------------------------------------------------------------- timing
    @property
    def raw_query_layers(self) -> int:
        """Raw circuit layers of a single query, ``8n + 1``."""
        return bb_raw_query_layers(self._capacity)

    def single_query_latency(self) -> float:
        """Weighted single-query latency ``8n + 0.125`` (Table 1)."""
        return bb_weighted_query_latency(self._capacity)

    def parallel_query_latency(self, num_queries: int) -> float:
        """Weighted latency of ``num_queries`` back-to-back queries.

        BB QRAM cannot overlap queries, so this is simply
        ``num_queries * (8n + 0.125)``.
        """
        if num_queries < 1:
            raise ValueError("num_queries must be >= 1")
        return num_queries * self.single_query_latency()

    def amortized_query_latency(self, num_queries: int | None = None) -> float:
        """Weighted amortized latency per query (equal to the single-query
        latency for a sequential architecture)."""
        return self.single_query_latency()

    def schedule(self, query: int = 0) -> BBQuerySchedule:
        """The instruction schedule of a single query."""
        return BBQuerySchedule(self._capacity, query=query)

    def bandwidth(self, clops: float = 1.0e6) -> float:
        """Bus qubits delivered per second (Table 2): ``clops / (8n + 0.125)``."""
        return clops / self.single_query_latency()

    # -------------------------------------------------------------- functional
    def query(
        self,
        address_amplitudes: Mapping[int, complex],
        initial_bus: int = 0,
    ) -> dict[tuple[int, int], complex]:
        """Run one query on the gate-level executor.

        Args:
            address_amplitudes: address superposition (normalised
                automatically).
            initial_bus: initial bus bit.

        Returns:
            Amplitudes over ``(address, bus)`` after the query.
        """
        executor = self.cached_executor()
        state = executor.run_query(address_amplitudes, initial_bus=initial_bus)
        return executor.measured_output(state)

    def cached_executor(self) -> BBExecutor:
        """The memoized gate-level executor for the current memory contents.

        The executor (and with it every schedule and lowered gate sequence
        it has memoized) is reused across queries and invalidated by
        classical memory writes — the same contract as
        :meth:`repro.core.qram.FatTreeQRAM.cached_executor`.
        """
        if self._executor is None:
            self._executor = shared_executor(
                "BB",
                self._capacity,
                self._data,
                lambda: BBExecutor(self._capacity, self._data),
            )
        return self._executor

    def executor(self) -> BBExecutor:
        """A fresh gate-level executor bound to the current memory contents."""
        return BBExecutor(self._capacity, self._data)

    def query_results(self, addresses: Sequence[int]) -> list[int]:
        """Classical convenience read of several addresses (basis queries)."""
        return [self._data[a] for a in addresses]
