"""Elementary QRAM instruction set and lowering to gates.

The paper (Appendix A.1) defines five elementary operations — LOAD,
TRANSPORT, ROUTE, STORE, CLASSICAL-GATES — plus their inverses.  This module
represents scheduled instances of those operations as :class:`Instruction`
records (who, where, when) and lowers them to gate sequences on named qubits
for the sparse simulator.

The same instruction set is reused by the Fat-Tree executor, which adds the
``SWAP_MIGRATE`` instruction for the local swap steps (SWAP-I / SWAP-II).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence

from repro.sim.circuit import Operation

# Layer-cost weights from Table 1: intra-node SWAPs and the classically
# controlled data-retrieval gates take 1/8 of a standard CSWAP circuit layer.
FULL_LAYER_COST = 1.0
FAST_LAYER_COST = 0.125


class InstructionKind(enum.Enum):
    """The elementary QRAM operations (and their inverses)."""

    LOAD = "L"
    TRANSPORT = "T"
    ROUTE = "R"
    STORE = "S"
    CLASSICAL_GATES = "CG"
    UNLOAD = "L'"
    UNTRANSPORT = "T'"
    UNROUTE = "R'"
    UNSTORE = "S'"
    SWAP_MIGRATE = "SW"

    @property
    def is_inverse(self) -> bool:
        return self in (
            InstructionKind.UNLOAD,
            InstructionKind.UNTRANSPORT,
            InstructionKind.UNROUTE,
            InstructionKind.UNSTORE,
        )

    @property
    def is_fast(self) -> bool:
        """True for operations that cost 1/8 of a circuit layer."""
        return self in (InstructionKind.CLASSICAL_GATES, InstructionKind.SWAP_MIGRATE)

    @property
    def layer_cost(self) -> float:
        return FAST_LAYER_COST if self.is_fast else FULL_LAYER_COST


@dataclass(frozen=True)
class Instruction:
    """A scheduled elementary QRAM operation.

    Attributes:
        kind: which elementary operation.
        query: query identifier (0 for single-query BB executions).
        item: which payload the op moves: 1..n for address bits, ``n+1`` for
            the bus, 0 when not applicable (CG, SWAP_MIGRATE).
        level: tree level the op acts on (-1 for LOAD/UNLOAD at the escape,
            and for whole-tree swap steps).
        label: sub-QRAM label ``k`` (always 0 for plain BB QRAM).
        raw_layer: 1-indexed raw circuit layer of the op within its schedule.
        gate_layer: 1-indexed gate-step layer (excludes swap/CG layers); 0 for
            fast-layer ops.
        payload: extra data (e.g. the adjacent label for SWAP_MIGRATE).
    """

    kind: InstructionKind
    query: int
    item: int
    level: int
    label: int
    raw_layer: int
    gate_layer: int = 0
    payload: tuple = field(default=())

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"[layer {self.raw_layer:>3}] q{self.query} {self.kind.value:>3} "
            f"item={self.item} level={self.level} k={self.label}"
        )


class QubitNamer:
    """Maps (level, index, label) router coordinates to qubit labels.

    BB QRAM uses label 0 everywhere; Fat-Tree passes the sub-QRAM label.
    External (per-query) qubits are named ``("addr", query, bit)`` and
    ``("bus", query)``.
    """

    def __init__(self, prefix: str = "bb", multiplexed: bool = False) -> None:
        self.prefix = prefix
        self.multiplexed = multiplexed

    def input_qubit(self, level: int, index: int, label: int = 0) -> tuple:
        return self._name("in", level, index, label)

    def router_qubit(self, level: int, index: int, label: int = 0) -> tuple:
        return self._name("r", level, index, label)

    def output_qubit(self, level: int, index: int, direction: int, label: int = 0) -> tuple:
        if self.multiplexed:
            return (self.prefix, "out", level, index, label, direction)
        return (self.prefix, "out", level, index, direction)

    def _name(self, role: str, level: int, index: int, label: int) -> tuple:
        if self.multiplexed:
            return (self.prefix, role, level, index, label)
        return (self.prefix, role, level, index)

    @staticmethod
    def address_qubit(query: int, bit: int) -> tuple:
        return ("addr", query, bit)

    @staticmethod
    def bus_qubit(query: int) -> tuple:
        return ("bus", query)


def lower_instruction(
    instruction: Instruction,
    namer: QubitNamer,
    address_width: int,
    data: Sequence[int] | None = None,
    leaf_label: int | None = None,
) -> list[Operation]:
    """Lower a scheduled instruction to a list of gate operations.

    Args:
        instruction: the scheduled elementary operation.
        namer: qubit naming scheme (plain or multiplexed).
        address_width: ``n`` of the QRAM the instruction belongs to.
        data: the classical memory contents (required for CLASSICAL_GATES).
        leaf_label: sub-QRAM label whose bottom-level outputs are the data
            leaves (``n - 1`` for Fat-Tree, 0/None for BB).

    Returns:
        Gate operations implementing the instruction.  Operations emitted for
        one instruction conceptually execute within one circuit layer (the
        pair of CSWAPs of a ROUTE counts as a single layer, following Sec.
        A.1 of the paper).
    """
    n = address_width
    kind = instruction.kind
    query = instruction.query
    item = instruction.item
    level = instruction.level
    label = instruction.label
    ops: list[Operation] = []
    tag = f"q{query}:{kind.value}"

    if kind in (InstructionKind.LOAD, InstructionKind.UNLOAD):
        external = (
            namer.bus_qubit(query)
            if item == n + 1
            else namer.address_qubit(query, item - 1)
        )
        root_in = namer.input_qubit(0, 0, label)
        ops.append(Operation("SWAP", (external, root_in), tag=tag))

    elif kind in (InstructionKind.ROUTE, InstructionKind.UNROUTE):
        for index in range(2**level):
            r = namer.router_qubit(level, index, label)
            inp = namer.input_qubit(level, index, label)
            left = namer.output_qubit(level, index, 0, label)
            right = namer.output_qubit(level, index, 1, label)
            ops.append(Operation("ANTI_CSWAP", (r, inp, left), tag=tag))
            ops.append(Operation("CSWAP", (r, inp, right), tag=tag))

    elif kind in (InstructionKind.TRANSPORT, InstructionKind.UNTRANSPORT):
        # Moves between level ``level`` outputs and level ``level + 1`` inputs.
        for index in range(2**level):
            for direction in (0, 1):
                out = namer.output_qubit(level, index, direction, label)
                child_in = namer.input_qubit(level + 1, 2 * index + direction, label)
                ops.append(Operation("SWAP", (out, child_in), tag=tag))

    elif kind in (InstructionKind.STORE, InstructionKind.UNSTORE):
        for index in range(2**level):
            inp = namer.input_qubit(level, index, label)
            r = namer.router_qubit(level, index, label)
            ops.append(Operation("SWAP", (inp, r), tag=tag))

    elif kind is InstructionKind.CLASSICAL_GATES:
        if data is None:
            raise ValueError("CLASSICAL_GATES requires the classical data")
        if len(data) != 2**n:
            raise ValueError("data length must equal the QRAM capacity")
        out_label = label if leaf_label is None else leaf_label
        for address, value in enumerate(data):
            if value & 1:
                index, direction = address // 2, address % 2
                leaf = namer.output_qubit(n - 1, index, direction, out_label)
                ops.append(Operation("Z", (leaf,), tag=tag))

    elif kind is InstructionKind.SWAP_MIGRATE:
        low = label
        high = low + 1
        for lvl in range(min(low, n - 1) + 1):
            for index in range(2**lvl):
                ops.append(
                    Operation(
                        "SWAP",
                        (
                            namer.input_qubit(lvl, index, low),
                            namer.input_qubit(lvl, index, high),
                        ),
                        tag=tag,
                    )
                )
                ops.append(
                    Operation(
                        "SWAP",
                        (
                            namer.router_qubit(lvl, index, low),
                            namer.router_qubit(lvl, index, high),
                        ),
                        tag=tag,
                    )
                )
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unsupported instruction kind {kind}")

    return ops


def weighted_latency(instructions: Sequence[Instruction]) -> float:
    """Weighted latency of a schedule (full layers + 1/8-cost fast layers).

    Layers are counted once even if several instructions share them.
    """
    layer_costs: dict[int, float] = {}
    for instr in instructions:
        cost = instr.kind.layer_cost
        previous = layer_costs.get(instr.raw_layer)
        layer_costs[instr.raw_layer] = max(previous, cost) if previous else cost
    return sum(layer_costs.values())
