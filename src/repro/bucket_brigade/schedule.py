"""Bit-level pipelined query schedule for BB QRAM.

A capacity-``N`` (``n = log2 N``) BB QRAM query consists of three stages
(Sec. 2.2.2):

1. *address loading* — the ``n`` address qubits enter through the root escape
   one after another (bit-level pipelining) and are stored into successive
   router levels; the bus follows immediately behind them,
2. *data retrieval* — one layer of classically controlled gates on the leaf
   cells (CLASSICAL-GATES),
3. *address unloading* — the exact mirror of loading.

The schedule produced here takes ``8n + 1`` raw circuit layers (25 for
N = 8, matching Fig. 2(a)) and ``8n + 0.125`` weighted layers (Table 1),
where the data-retrieval layer costs 1/8 of a CSWAP layer.

The per-address-bit completion milestones of this schedule are at layers
``4m - 2`` rather than the ``4m`` annotated in Fig. 2(a); the constant offset
comes from a slightly tighter bit-level pipeline (items enter every two
layers from the start) and does not change any total: loading ends at layer
``4n``, data retrieval is at ``4n + 1`` and the query completes at ``8n + 1``
exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bucket_brigade.instructions import (
    FAST_LAYER_COST,
    FULL_LAYER_COST,
    Instruction,
    InstructionKind,
)
from repro.bucket_brigade.tree import validate_capacity


def bb_raw_query_layers(capacity: int) -> int:
    """Raw circuit layers of one BB query: ``8 log2(N) + 1``."""
    n = validate_capacity(capacity)
    return 8 * n + 1


def bb_weighted_query_latency(capacity: int) -> float:
    """Weighted single-query latency of BB QRAM: ``8 log2(N) + 0.125``."""
    n = validate_capacity(capacity)
    return 8 * n * FULL_LAYER_COST + FAST_LAYER_COST


@dataclass
class BBQuerySchedule:
    """The full instruction schedule of a single BB QRAM query.

    Args:
        capacity: memory size ``N``.
        query: query identifier used to name the external address/bus qubits.

    Attributes:
        instructions: all scheduled instructions, sorted by raw layer.
    """

    capacity: int
    query: int = 0
    instructions: list[Instruction] = field(init=False)

    def __post_init__(self) -> None:
        self.address_width = validate_capacity(self.capacity)
        self.instructions = self._build()

    # ------------------------------------------------------------ properties
    @property
    def raw_layers(self) -> int:
        """Total raw circuit layers (``8n + 1``)."""
        return 8 * self.address_width + 1

    @property
    def weighted_latency(self) -> float:
        """Weighted latency with fast data retrieval (``8n + 0.125``)."""
        return bb_weighted_query_latency(self.capacity)

    @property
    def loading_layers(self) -> int:
        """Layers used by address loading (bus reaches the leaves): ``4n``."""
        return 4 * self.address_width

    @property
    def data_retrieval_layer(self) -> int:
        """Raw layer of the CLASSICAL-GATES step: ``4n + 1``."""
        return 4 * self.address_width + 1

    def milestone_layers(self) -> dict[str, int]:
        """Stage-completion layers analogous to the annotations of Fig. 2(a)."""
        n = self.address_width
        milestones = {
            f"store_address_{m}": 4 * m - 2 for m in range(1, n + 1)
        }
        milestones["bus_at_leaves"] = 4 * n
        milestones["data_retrieval"] = 4 * n + 1
        milestones["query_complete"] = 8 * n + 1
        return milestones

    # ------------------------------------------------------------ construction
    def _build(self) -> list[Instruction]:
        n = self.address_width
        loading = self._loading_instructions()
        retrieval = [
            Instruction(
                InstructionKind.CLASSICAL_GATES,
                query=self.query,
                item=0,
                level=n - 1,
                label=0,
                raw_layer=4 * n + 1,
            )
        ]
        unloading = self._mirror(loading)
        schedule = loading + retrieval + unloading
        schedule.sort(key=lambda instr: (instr.raw_layer, instr.level, instr.item))
        return schedule

    def _loading_instructions(self) -> list[Instruction]:
        n = self.address_width
        out: list[Instruction] = []

        def add(kind: InstructionKind, item: int, level: int, layer: int) -> None:
            out.append(
                Instruction(
                    kind,
                    query=self.query,
                    item=item,
                    level=level,
                    label=0,
                    raw_layer=layer,
                    gate_layer=layer,
                )
            )

        # Address items m = 1..n: enter at layer 2m-1, run back to back, and
        # are stored into level m-1 at layer 4m-2.
        for m in range(1, n + 1):
            start = 2 * m - 1
            add(InstructionKind.LOAD, m, -1, start)
            for i in range(m - 1):
                add(InstructionKind.ROUTE, m, i, 2 * m + 2 * i)
                add(InstructionKind.TRANSPORT, m, i, 2 * m + 2 * i + 1)
            add(InstructionKind.STORE, m, m - 1, 4 * m - 2)

        # Bus (item n+1): enters at layer 2n+1 and reaches the leaves at 4n.
        bus = n + 1
        add(InstructionKind.LOAD, bus, -1, 2 * n + 1)
        for i in range(n - 1):
            add(InstructionKind.ROUTE, bus, i, 2 * n + 2 * i + 2)
            add(InstructionKind.TRANSPORT, bus, i, 2 * n + 2 * i + 3)
        add(InstructionKind.ROUTE, bus, n - 1, 4 * n)
        return out

    def _mirror(self, loading: list[Instruction]) -> list[Instruction]:
        """Unloading = time-reversed loading with inverse instruction kinds."""
        n = self.address_width
        total = 8 * n + 2
        inverse_kind = {
            InstructionKind.LOAD: InstructionKind.UNLOAD,
            InstructionKind.ROUTE: InstructionKind.UNROUTE,
            InstructionKind.TRANSPORT: InstructionKind.UNTRANSPORT,
            InstructionKind.STORE: InstructionKind.UNSTORE,
        }
        out = []
        for instr in loading:
            out.append(
                Instruction(
                    inverse_kind[instr.kind],
                    query=instr.query,
                    item=instr.item,
                    level=instr.level,
                    label=instr.label,
                    raw_layer=total - instr.raw_layer,
                    gate_layer=total - instr.raw_layer,
                )
            )
        return out

    # ----------------------------------------------------------- validation
    def verify_no_conflicts(self) -> None:
        """Check that no two instructions touch the same location in a layer.

        Locations are (level, role) pairs at the granularity the instructions
        act on; LOAD/UNLOAD use the escape.  Raises ``AssertionError`` on a
        conflict — used by the test-suite and by the Fat-Tree pipeline checks.
        """
        by_layer: dict[int, list[Instruction]] = {}
        for instr in self.instructions:
            by_layer.setdefault(instr.raw_layer, []).append(instr)
        for layer, instrs in by_layer.items():
            touched: set[tuple] = set()
            for instr in instrs:
                for location in _touched_locations(instr):
                    if location in touched:
                        raise AssertionError(
                            f"layer {layer}: location {location} touched twice"
                        )
                    touched.add(location)

    def layer_costs(self) -> dict[int, float]:
        """Cost (1 or 0.125) of every occupied raw layer."""
        costs: dict[int, float] = {}
        for instr in self.instructions:
            cost = instr.kind.layer_cost
            costs[instr.raw_layer] = max(costs.get(instr.raw_layer, 0.0), cost)
        return costs


def _touched_locations(instr: Instruction) -> list[tuple]:
    """Abstract qubit-group locations an instruction touches."""
    kind = instr.kind
    if kind in (InstructionKind.LOAD, InstructionKind.UNLOAD):
        return [("escape", instr.label), ("in", 0, instr.label)]
    if kind in (InstructionKind.ROUTE, InstructionKind.UNROUTE):
        return [
            ("in", instr.level, instr.label),
            ("out", instr.level, instr.label),
            ("router", instr.level, instr.label),
        ]
    if kind in (InstructionKind.TRANSPORT, InstructionKind.UNTRANSPORT):
        return [
            ("out", instr.level, instr.label),
            ("in", instr.level + 1, instr.label),
        ]
    if kind in (InstructionKind.STORE, InstructionKind.UNSTORE):
        return [("in", instr.level, instr.label), ("router", instr.level, instr.label)]
    if kind is InstructionKind.CLASSICAL_GATES:
        return [("out", instr.level, instr.label)]
    if kind is InstructionKind.SWAP_MIGRATE:
        return [
            ("in", lvl, lab)
            for lvl in range(instr.level + 1)
            for lab in (instr.label, instr.label + 1)
        ] + [
            ("router", lvl, lab)
            for lvl in range(instr.level + 1)
            for lab in (instr.label, instr.label + 1)
        ]
    raise ValueError(f"unknown instruction kind {kind}")
