"""The three-state quantum router model.

A quantum router (Fig. 2(b) of the paper) holds a *router qubit* that takes
one of three states:

* ``WAIT`` — inactive; the router routes trivially (nothing passes),
* ``ZERO`` — routes the input to the left output,
* ``ONE`` — routes the input to the right output.

In the gate-level executors the ``WAIT`` state is represented by ``|0>`` of a
router qubit that has never been written: an inactive router then "routes
left" an input that is itself ``|0>``, which is indistinguishable from not
routing at all.  This is the standard circuit-model simplification; it
preserves the query unitary exactly and only differs in how errors would
propagate, which the fidelity analysis of :mod:`repro.fidelity` treats
analytically.

This module also provides a small classical state machine for a single
router, used by unit tests and by the hardware component models.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RouterState(enum.Enum):
    """The three conceptual states of a quantum router."""

    WAIT = "W"
    ZERO = "0"
    ONE = "1"


@dataclass
class QuantumRouter:
    """Classical state machine mirroring a single quantum router.

    The gate-level simulators never use this class directly (they operate on
    qubits); it exists as an executable specification of router behaviour for
    unit tests and the hardware models.

    Attributes:
        state: current router state.
        input_value: occupancy of the input port (None = empty).
        output_values: occupancy of the left/right output ports.
    """

    state: RouterState = RouterState.WAIT
    input_value: int | None = None
    output_values: list[int | None] = field(default_factory=lambda: [None, None])

    def store(self) -> None:
        """STORE: absorb the input qubit into the router qubit."""
        if self.input_value is None:
            # Storing an empty input leaves the router inactive — this is what
            # happens on all off-path routers of a superposed query.
            self.state = RouterState.WAIT
            return
        self.state = RouterState.ONE if self.input_value else RouterState.ZERO
        self.input_value = None

    def unstore(self) -> None:
        """UNSTORE: emit the stored bit back into the input port."""
        if self.state is RouterState.WAIT:
            return
        self.input_value = 1 if self.state is RouterState.ONE else 0
        self.state = RouterState.WAIT

    def route(self) -> None:
        """ROUTE: move the input to the output selected by the router state."""
        if self.input_value is None:
            return
        if self.state is RouterState.WAIT:
            # An inactive router does not move information.
            return
        direction = 1 if self.state is RouterState.ONE else 0
        if self.output_values[direction] is not None:
            raise RuntimeError("output port already occupied")
        self.output_values[direction] = self.input_value
        self.input_value = None

    def unroute(self) -> None:
        """UNROUTE: move the selected output back to the input."""
        if self.state is RouterState.WAIT:
            return
        direction = 1 if self.state is RouterState.ONE else 0
        value = self.output_values[direction]
        if value is None:
            return
        if self.input_value is not None:
            raise RuntimeError("input port already occupied")
        self.input_value = value
        self.output_values[direction] = None

    @property
    def is_active(self) -> bool:
        """True when the router holds an address bit."""
        return self.state is not RouterState.WAIT
