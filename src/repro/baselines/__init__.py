"""Baseline shared-QRAM architectures the paper compares against (Sec. 6.1).

* :mod:`repro.baselines.virtual_qram` — Virtual QRAM [Xu et al., MICRO 2023]:
  ``K`` pages of size ``M = N / K`` behind a multi-control page select.
* :mod:`repro.baselines.distributed` — D-BB and D-Fat-Tree: ``log N``
  independent hardware copies of the respective architecture.
* :mod:`repro.baselines.registry` — a uniform architecture interface and the
  registry used by the benchmark harness.
"""

from repro.baselines.virtual_qram import VirtualQRAM
from repro.baselines.distributed import DistributedBBQRAM, DistributedFatTreeQRAM
from repro.baselines.registry import (
    ARCHITECTURES,
    ArchitectureSpec,
    build_architecture,
    architecture_names,
)

__all__ = [
    "VirtualQRAM",
    "DistributedBBQRAM",
    "DistributedFatTreeQRAM",
    "ARCHITECTURES",
    "ArchitectureSpec",
    "build_architecture",
    "architecture_names",
]
