"""Virtual QRAM baseline (Sec. 6.1, after Xu et al. MICRO 2023).

Virtual QRAM trades latency for qubits: the address space of size ``N`` is
split into ``K`` pages of size ``M = N / K`` and a single page-sized BB QRAM
is reused for every page, with a multi-control-X (MCX) page select in front
of every page access.  Following the paper's configuration, ``K = log2(N)/2``
pages are used so that the total qubit count matches Fat-Tree QRAM (16 N),
and the resulting weighted query latency is

    t1 = 4 log^2(N) + 4.0625 log(N) - 4 log(N) log2(log2(N))        (Table 1)

which we model as ``K`` sequential page accesses, each consisting of a
page-sized BB query (``8 log2(M) + 0.125``) plus an 8-layer MCX page select.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

from repro.bucket_brigade.qram import QUBITS_PER_ROUTER, BucketBrigadeQRAM
from repro.bucket_brigade.tree import validate_capacity

#: Weighted circuit layers charged for the multi-control page-select gate.
MCX_LAYER_COST = 8.0


class VirtualQRAM:
    """Virtual QRAM with ``K = log2(N)/2`` pages (the paper's configuration).

    Args:
        capacity: total address space ``N``.
        data: optional classical memory contents.
        num_pages: override the page count (defaults to ``max(1, log2(N)/2)``).
    """

    name = "Virtual"

    def __init__(
        self,
        capacity: int,
        data: Sequence[int] | None = None,
        num_pages: int | None = None,
    ) -> None:
        self._n = validate_capacity(capacity)
        self._capacity = capacity
        self._data = [0] * capacity if data is None else [int(x) & 1 for x in data]
        if len(self._data) != capacity:
            raise ValueError("data length must equal capacity")
        if num_pages is None:
            # The paper uses K = log2(N)/2 pages; page-sized BB QRAMs need a
            # power-of-two page size, so round K down to a power of two.
            target = max(1, self._n // 2)
            num_pages = 2 ** (target.bit_length() - 1)
        if num_pages < 1 or capacity % num_pages != 0:
            raise ValueError("num_pages must divide the capacity")
        self.num_pages = num_pages
        self.page_size = capacity // num_pages
        if self.page_size < 2:
            raise ValueError("page size must be at least 2")
        self._page_qrams: list[BucketBrigadeQRAM] | None = None

    # -------------------------------------------------------------- structure
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def address_width(self) -> int:
        return self._n

    @property
    def data(self) -> list[int]:
        return list(self._data)

    def write_memory(self, address: int, value: int) -> None:
        """Update one memory cell (write-through to the cached page QRAM)."""
        self._data[address] = int(value) & 1
        if self._page_qrams is not None:
            page, local = divmod(address, self.page_size)
            self._page_qrams[page].write_memory(local, value)

    @property
    def page_address_width(self) -> int:
        """Address width of the per-page QRAM: ``log2(M)``."""
        return int(math.log2(self.page_size))

    # --------------------------------------------------------------- resources
    @property
    def qubit_count(self) -> int:
        """Matched to Fat-Tree QRAM by construction (Table 1: ``16 N``)."""
        return 2 * QUBITS_PER_ROUTER * self._capacity

    @property
    def query_parallelism(self) -> int:
        """The ``log N`` virtual QRAM instances can hold ``log N`` outstanding
        queries, but they share the physical pages (Table 1)."""
        return self._n

    # ----------------------------------------------------------------- timing
    def single_query_latency(self) -> float:
        """Weighted single-query latency (Table 1).

        ``K`` sequential page accesses, each a BB query over ``log2 M``
        address bits plus one MCX page select:

            K * (8 log2(M) + 0.125 + 8)
            = 4 log^2(N) + 4.0625 log(N) - 4 log(N) log2(log2(N))

        for ``K = log2(N)/2`` and ``M = N / K`` (up to the integer rounding of
        ``K``, which the paper also performs implicitly).
        """
        page_width = math.log2(self.page_size)
        per_page = 8.0 * page_width + 0.125 + MCX_LAYER_COST
        return self.num_pages * per_page

    @staticmethod
    def paper_closed_form_latency(capacity: int) -> float:
        """Table 1's closed-form expression for the Virtual QRAM latency.

        ``4 log^2(N) + 4.0625 log(N) - 4 log(N) log2(log2(N))`` — obtained
        from :meth:`single_query_latency` with ``K = log2(N)/2`` left as a
        real number instead of being rounded to a power of two.
        """
        n = validate_capacity(capacity)
        return 4.0 * n * n + 4.0625 * n - 4.0 * n * math.log2(n)

    def parallel_query_latency(self, num_queries: int | None = None) -> float:
        """Latency of ``num_queries`` outstanding queries.

        The Virtual architecture time-multiplexes the same physical pages, so
        parallel queries do not reduce the critical path: the total weighted
        latency equals the single query latency for up to ``log N`` queries
        (Table 1 lists the same expression for ``t_1`` and ``t_log(N)``) and
        grows proportionally beyond that.
        """
        count = self._n if num_queries is None else num_queries
        rounds = max(1, math.ceil(count / self.query_parallelism))
        return rounds * self.single_query_latency()

    def amortized_query_latency(self, num_queries: int | None = None) -> float:
        """Amortized weighted latency per query (Table 1 bottom row)."""
        count = self._n if num_queries is None else num_queries
        return self.parallel_query_latency(count) / count

    @property
    def raw_query_layers(self) -> int:
        """Raw circuit layers of one query (full layers + fast MCX/CG)."""
        per_page = 8 * self.page_address_width + 1 + 1
        return self.num_pages * per_page

    def bandwidth(self, clops: float = 1.0e6) -> float:
        """Bus qubits per second (Table 2)."""
        return clops / self.amortized_query_latency()

    # -------------------------------------------------------------- functional
    def query(
        self,
        address_amplitudes: Mapping[int, complex],
        initial_bus: int = 0,
    ) -> dict[tuple[int, int], complex]:
        """Functional query: page-by-page access of a page-sized BB QRAM.

        The result realises the same query unitary as a monolithic QRAM; the
        page loop is the latency model, while functionally each page access
        only touches the addresses that fall inside the page.
        """
        norm = math.sqrt(sum(abs(a) ** 2 for a in address_amplitudes.values()))
        output: dict[tuple[int, int], complex] = {}
        pages = self.page_qrams()
        for page in range(self.num_pages):
            base = page * self.page_size
            page_amps = {
                addr - base: amp
                for addr, amp in address_amplitudes.items()
                if base <= addr < base + self.page_size
            }
            if not page_amps:
                continue
            page_weight = math.sqrt(sum(abs(a) ** 2 for a in page_amps.values()))
            partial = pages[page].query(page_amps, initial_bus=initial_bus)
            for (local_addr, bus), amp in partial.items():
                output[(base + local_addr, bus)] = amp * page_weight / norm
        return output

    def page_qrams(self) -> list[BucketBrigadeQRAM]:
        """Memoized page-sized BB QRAMs backing the functional query path.

        Each page QRAM keeps its own cached executor, so repeated queries
        (the serving-layer pattern) reuse the page schedules and lowered
        gate sequences instead of rebuilding them per call; classical
        writes are written through by :meth:`write_memory`.
        """
        if self._page_qrams is None:
            self._page_qrams = [
                BucketBrigadeQRAM(
                    self.page_size,
                    self._data[page * self.page_size:(page + 1) * self.page_size],
                )
                for page in range(self.num_pages)
            ]
        return self._page_qrams
