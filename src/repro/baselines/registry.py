"""Uniform architecture interface and registry — the single factory.

Every shared-QRAM model in this repository exposes the same architecture-
level surface (the attributes used by Tables 1-2 and the benchmark harness):

* ``capacity``, ``address_width``
* ``qubit_count``
* ``query_parallelism``
* ``single_query_latency()``, ``parallel_query_latency(k)``,
  ``amortized_query_latency(k)`` — all in weighted circuit layers
* ``query(address_amplitudes)`` — a functional query

This registry is the one place architectures are instantiated from, for
both uses of the repository:

* ``build_architecture(name, capacity)`` — the raw model, for table
  reproduction and closed-form comparisons;
* ``build_backend(name, capacity)`` — the same architecture wrapped in a
  :class:`repro.backends.protocol.QRAMBackend` execution adapter, for the
  traffic-facing serving layer (:mod:`repro.service`).

All five models of the evaluation are registered: Fat-Tree, D-Fat-Tree,
BB, D-BB and Virtual.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.baselines.distributed import DistributedBBQRAM, DistributedFatTreeQRAM
from repro.baselines.virtual_qram import VirtualQRAM
from repro.bucket_brigade.qram import BucketBrigadeQRAM
from repro.core.qram import FatTreeQRAM


@dataclass(frozen=True)
class ArchitectureSpec:
    """Registry entry for one shared-QRAM architecture.

    Attributes:
        name: canonical name used in tables and figures.
        factory: callable building a model instance from (capacity, data).
        qubit_group: "O(N)" for the same-qubit-count group (Fat-Tree, BB,
            Virtual) or "O(N log N)" for the distributed group.
        backend: execution adapter for the serving layer — a callable
            building a :class:`repro.backends.protocol.QRAMBackend` from
            (capacity, data), or a ``"module:attribute"`` path resolved
            lazily (the built-in adapters import the model classes above,
            so eager references here would be circular).  ``None`` marks an
            architecture that cannot serve traffic.
    """

    name: str
    factory: Callable[..., object]
    qubit_group: str
    backend: Callable[..., object] | str | None = None

    def backend_factory(self) -> Callable[..., object]:
        """Resolve the execution-adapter callable for this architecture.

        Raises:
            KeyError: when the architecture declares no backend.
        """
        if self.backend is None:
            raise KeyError(
                f"architecture {self.name!r} has no execution backend; "
                f"serving-capable architectures: {backend_names()}"
            )
        if callable(self.backend):
            return self.backend
        module_name, _, attribute = self.backend.partition(":")
        return getattr(importlib.import_module(module_name), attribute)


ARCHITECTURES: dict[str, ArchitectureSpec] = {
    "Fat-Tree": ArchitectureSpec(
        "Fat-Tree", FatTreeQRAM, "O(N)",
        backend="repro.backends.fat_tree:FatTreeBackend",
    ),
    "BB": ArchitectureSpec(
        "BB", BucketBrigadeQRAM, "O(N)",
        backend="repro.backends.bucket_brigade:BBBackend",
    ),
    "Virtual": ArchitectureSpec(
        "Virtual", VirtualQRAM, "O(N)",
        backend="repro.backends.analytic:VirtualBackend",
    ),
    "D-Fat-Tree": ArchitectureSpec(
        "D-Fat-Tree", DistributedFatTreeQRAM, "O(N log N)",
        backend="repro.backends.analytic:DistributedFatTreeBackend",
    ),
    "D-BB": ArchitectureSpec(
        "D-BB", DistributedBBQRAM, "O(N log N)",
        backend="repro.backends.analytic:DistributedBBBackend",
    ),
}


def architecture_names() -> list[str]:
    """Names of all registered architectures, in the paper's order."""
    return list(ARCHITECTURES)


def backend_names() -> list[str]:
    """Names of the architectures that can serve traffic.

    Derived from the specs' ``backend`` entries, so registering a new
    architecture keeps this list and :func:`build_backend` consistent.
    """
    return [name for name, spec in ARCHITECTURES.items() if spec.backend is not None]


def resolve_architecture(name: str) -> ArchitectureSpec:
    """Look up a registry entry, accepting any capitalization.

    Raises:
        KeyError: for unknown architecture names.
    """
    spec = ARCHITECTURES.get(name)
    if spec is not None:
        return spec
    folded = name.casefold()
    for canonical, candidate in ARCHITECTURES.items():
        if canonical.casefold() == folded:
            return candidate
    raise KeyError(
        f"unknown architecture {name!r}; expected one of {architecture_names()}"
    )


def build_architecture(
    name: str, capacity: int, data: Sequence[int] | None = None
):
    """Instantiate an architecture model by name.

    Args:
        name: one of :func:`architecture_names` (case-insensitive).
        capacity: QRAM capacity ``N``.
        data: optional classical memory contents.

    Raises:
        KeyError: for unknown architecture names.
    """
    return resolve_architecture(name).factory(capacity, data)


def build_backend(
    name: str,
    capacity: int,
    data: Sequence[int] | None = None,
    parameters=None,
    distance: int | None = None,
):
    """Instantiate an execution backend by architecture name.

    The returned object implements
    :class:`repro.backends.protocol.QRAMBackend` and is what
    :class:`repro.service.QRAMService` shards are made of.

    QEC-encoded variants are built from the same factory: either suffix
    the architecture name with ``@d<k>`` (``"Fat-Tree@d3"``, any registered
    backend works) or pass ``distance`` explicitly — both wrap the bare
    adapter in :class:`repro.backends.encoded.EncodedBackend`, which maps
    the fidelity through the logical error rates of
    :func:`repro.fidelity.qec.encoded_parameters` and the resources/timing
    through the Table-5 pipelined-logical-query model.  An elastic fleet
    can therefore mix bare and encoded replicas by name alone.

    Args:
        name: one of :func:`backend_names` (case-insensitive), optionally
            with an ``@d<k>`` distance suffix.
        capacity: QRAM capacity ``N`` of this backend.
        data: optional classical memory contents.
        parameters: optional
            :class:`~repro.hardware.parameters.HardwareParameters` noise
            model for the adapter's predicted fidelities (defaults to the
            paper's parameter set).
        distance: optional code distance; overrides any ``@d<k>`` suffix.
            ``1`` (or a bare name) builds the unencoded backend.

    Raises:
        KeyError: for unknown architecture names, or for a registered
            architecture without an execution backend.
        ValueError: for a malformed ``@d<k>`` suffix.
    """
    from repro.backends.encoded import EncodedBackend, parse_encoded_name

    base_name, suffix_distance = parse_encoded_name(name)
    effective_distance = suffix_distance if distance is None else distance
    if effective_distance < 1:
        raise ValueError(f"code distance must be >= 1, got {effective_distance}")
    factory = resolve_architecture(base_name).backend_factory()
    backend = (
        factory(capacity, data)
        if parameters is None
        else factory(capacity, data, parameters=parameters)
    )
    if effective_distance == 1:
        return backend
    return EncodedBackend(backend, effective_distance)
