"""Uniform architecture interface and registry.

Every shared-QRAM model in this repository exposes the same architecture-
level surface (the attributes used by Tables 1-2 and the benchmark harness):

* ``capacity``, ``address_width``
* ``qubit_count``
* ``query_parallelism``
* ``single_query_latency()``, ``parallel_query_latency(k)``,
  ``amortized_query_latency(k)`` — all in weighted circuit layers
* ``query(address_amplitudes)`` — a functional query

``build_architecture(name, capacity)`` instantiates any of the five models of
the evaluation: Fat-Tree, D-Fat-Tree, BB, D-BB and Virtual.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.baselines.distributed import DistributedBBQRAM, DistributedFatTreeQRAM
from repro.baselines.virtual_qram import VirtualQRAM
from repro.bucket_brigade.qram import BucketBrigadeQRAM
from repro.core.qram import FatTreeQRAM


@dataclass(frozen=True)
class ArchitectureSpec:
    """Registry entry for one shared-QRAM architecture.

    Attributes:
        name: canonical name used in tables and figures.
        factory: callable building an instance from (capacity, data).
        qubit_group: "O(N)" for the same-qubit-count group (Fat-Tree, BB,
            Virtual) or "O(N log N)" for the distributed group.
    """

    name: str
    factory: Callable[..., object]
    qubit_group: str


ARCHITECTURES: dict[str, ArchitectureSpec] = {
    "Fat-Tree": ArchitectureSpec("Fat-Tree", FatTreeQRAM, "O(N)"),
    "BB": ArchitectureSpec("BB", BucketBrigadeQRAM, "O(N)"),
    "Virtual": ArchitectureSpec("Virtual", VirtualQRAM, "O(N)"),
    "D-Fat-Tree": ArchitectureSpec("D-Fat-Tree", DistributedFatTreeQRAM, "O(N log N)"),
    "D-BB": ArchitectureSpec("D-BB", DistributedBBQRAM, "O(N log N)"),
}


def architecture_names() -> list[str]:
    """Names of all registered architectures, in the paper's order."""
    return list(ARCHITECTURES)


def build_architecture(
    name: str, capacity: int, data: Sequence[int] | None = None
):
    """Instantiate an architecture by name.

    Args:
        name: one of :func:`architecture_names`.
        capacity: QRAM capacity ``N``.
        data: optional classical memory contents.

    Raises:
        KeyError: for unknown architecture names.
    """
    if name not in ARCHITECTURES:
        raise KeyError(
            f"unknown architecture {name!r}; expected one of {architecture_names()}"
        )
    return ARCHITECTURES[name].factory(capacity, data)
