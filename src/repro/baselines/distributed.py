"""Distributed baselines: ``log N`` independent hardware copies.

D-BB and D-Fat-Tree (Sec. 6.1) replicate a full capacity-``N`` QRAM ``log N``
times, which multiplies the qubit cost by ``log N`` but lets ``log N`` queries
run on separate hardware.  They bound what is achievable with brute-force
replication and are the "asymptotically more expensive" comparison group of
Tables 1-2.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.bucket_brigade.qram import BucketBrigadeQRAM
from repro.bucket_brigade.tree import validate_capacity
from repro.core.qram import FatTreeQRAM


class _DistributedQRAM:
    """Shared behaviour of the distributed baselines."""

    def __init__(
        self,
        capacity: int,
        data: Sequence[int] | None = None,
        num_copies: int | None = None,
    ) -> None:
        self._n = validate_capacity(capacity)
        self._capacity = capacity
        self.num_copies = self._n if num_copies is None else num_copies
        if self.num_copies < 1:
            raise ValueError("num_copies must be >= 1")
        self._data = [0] * capacity if data is None else [int(x) & 1 for x in data]
        if len(self._data) != capacity:
            raise ValueError("data length must equal capacity")
        self.copies = [self._make_copy() for _ in range(self.num_copies)]

    def _make_copy(self):  # pragma: no cover - overridden
        raise NotImplementedError

    # -------------------------------------------------------------- structure
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def address_width(self) -> int:
        return self._n

    @property
    def data(self) -> list[int]:
        return list(self._data)

    def write_memory(self, address: int, value: int) -> None:
        """Classical writes must be mirrored into every hardware copy."""
        self._data[address] = int(value) & 1
        for copy in self.copies:
            copy.write_memory(address, value)

    # --------------------------------------------------------------- resources
    @property
    def qubit_count(self) -> int:
        return self.num_copies * self.copies[0].qubit_count

    @property
    def query_parallelism(self) -> int:
        return self.num_copies * self.copies[0].query_parallelism

    # ----------------------------------------------------------------- timing
    def single_query_latency(self) -> float:
        return self.copies[0].single_query_latency()

    def parallel_query_latency(self, num_queries: int | None = None) -> float:
        """Weighted latency of ``num_queries`` queries spread over the copies."""
        count = self._n if num_queries is None else num_queries
        per_copy = -(-count // self.num_copies)  # ceil division
        return self.copies[0].parallel_query_latency(per_copy)

    def amortized_query_latency(self, num_queries: int | None = None) -> float:
        count = self._n if num_queries is None else num_queries
        return self.parallel_query_latency(count) / count

    @property
    def raw_query_layers(self) -> int:
        return self.copies[0].raw_query_layers

    def bandwidth(self, clops: float = 1.0e6) -> float:
        """All copies deliver bus qubits concurrently."""
        return self.num_copies * self.copies[0].bandwidth(clops) if hasattr(
            self.copies[0], "bandwidth"
        ) else self.num_copies * clops / self.copies[0].amortized_query_latency()

    # -------------------------------------------------------------- functional
    def query(
        self,
        address_amplitudes: Mapping[int, complex],
        initial_bus: int = 0,
        copy_index: int = 0,
    ) -> dict[tuple[int, int], complex]:
        """Run one query on a chosen hardware copy."""
        return self.copies[copy_index % self.num_copies].query(
            address_amplitudes, initial_bus=initial_bus
        )


class DistributedBBQRAM(_DistributedQRAM):
    """``log N`` independent BB QRAMs (baseline D-BB)."""

    name = "D-BB"

    def _make_copy(self) -> BucketBrigadeQRAM:
        return BucketBrigadeQRAM(self._capacity, self._data)

    def bandwidth(self, clops: float = 1.0e6) -> float:
        """Table 2: ``10^6 log(N) / (8 log(N) + 0.125)`` for 1 MHz CLOPS."""
        return self.num_copies * clops / self.copies[0].single_query_latency()


class DistributedFatTreeQRAM(_DistributedQRAM):
    """``log N`` independent Fat-Tree QRAMs (baseline D-Fat-Tree)."""

    name = "D-Fat-Tree"

    def _make_copy(self) -> FatTreeQRAM:
        return FatTreeQRAM(self._capacity, self._data)

    def bandwidth(self, clops: float = 1.0e6) -> float:
        """Table 2: ``1.21 log(N) x 10^5`` for 1 MHz CLOPS."""
        return self.num_copies * self.copies[0].bandwidth(clops)

    def parallel_query_latency(self, num_queries: int | None = None) -> float:
        """D-Fat-Tree pipelines within each copy as well; for ``log N``
        queries the amortized expression of Table 1 applies."""
        count = self._n if num_queries is None else num_queries
        per_copy = -(-count // self.num_copies)
        return self.copies[0].parallel_query_latency(per_copy)