"""Generators for classical memory contents, address superpositions and
query traces."""

from __future__ import annotations

import math

import numpy as np

from repro.bucket_brigade.tree import validate_capacity
from repro.core.query import QueryRequest


def random_data(capacity: int, seed: int = 0, density: float = 0.5) -> list[int]:
    """Random classical memory with a given density of 1-bits."""
    validate_capacity(capacity)
    rng = np.random.default_rng(seed)
    return [int(x) for x in (rng.random(capacity) < density)]


def structured_data(capacity: int, pattern: str = "parity") -> list[int]:
    """Deterministic memory patterns used by tests and examples.

    Patterns: ``parity`` (popcount mod 2), ``alternating``, ``threshold``
    (upper half set), ``single`` (only address 0 set).
    """
    validate_capacity(capacity)
    if pattern == "parity":
        return [bin(i).count("1") % 2 for i in range(capacity)]
    if pattern == "alternating":
        return [i % 2 for i in range(capacity)]
    if pattern == "threshold":
        return [1 if i >= capacity // 2 else 0 for i in range(capacity)]
    if pattern == "single":
        return [1 if i == 0 else 0 for i in range(capacity)]
    raise ValueError(f"unknown pattern {pattern!r}")


def uniform_superposition(capacity: int) -> dict[int, complex]:
    """Equal-amplitude superposition over every address."""
    validate_capacity(capacity)
    amp = 1.0 / math.sqrt(capacity)
    return {address: amp for address in range(capacity)}


def random_address_superposition(
    capacity: int, num_addresses: int, seed: int = 0
) -> dict[int, complex]:
    """Random superposition over a random subset of addresses.

    Amplitudes are complex Gaussian and normalised.
    """
    validate_capacity(capacity)
    if not 1 <= num_addresses <= capacity:
        raise ValueError("num_addresses out of range")
    rng = np.random.default_rng(seed)
    addresses = rng.choice(capacity, size=num_addresses, replace=False)
    raw = rng.normal(size=num_addresses) + 1j * rng.normal(size=num_addresses)
    norm = np.linalg.norm(raw)
    return {int(a): complex(x / norm) for a, x in zip(addresses, raw)}


def query_trace(
    capacity: int,
    num_queries: int,
    addresses_per_query: int = 2,
    seed: int = 0,
) -> list[QueryRequest]:
    """A trace of query requests with random address superpositions."""
    return [
        QueryRequest(
            query_id=i,
            address_amplitudes=random_address_superposition(
                capacity, addresses_per_query, seed=seed + i
            ),
        )
        for i in range(num_queries)
    ]
