"""Generators for classical memory contents, address superpositions and
query traces."""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.bucket_brigade.tree import validate_capacity
from repro.core.query import QueryRequest
from repro.engine.workload import ClosedLoopClient, ClosedLoopSource
from repro.workloads.arrivals import (
    iter_burst_times,
    iter_diurnal_times,
    iter_exponential_times,
    iter_flash_crowd_times,
    periodic_times,
)

#: Shard draws per RNG call in :func:`_iter_arrival_trace` — block draws
#: consume the Generator's stream exactly like scalar draws, so the block
#: size is a pure speed knob (mirrors ``arrivals._DRAW_BLOCK``).
_SHARD_DRAW_BLOCK = 4096


def random_data(capacity: int, seed: int = 0, density: float = 0.5) -> list[int]:
    """Random classical memory with a given density of 1-bits."""
    validate_capacity(capacity)
    rng = np.random.default_rng(seed)
    return [int(x) for x in (rng.random(capacity) < density)]


def structured_data(capacity: int, pattern: str = "parity") -> list[int]:
    """Deterministic memory patterns used by tests and examples.

    Patterns: ``parity`` (popcount mod 2), ``alternating``, ``threshold``
    (upper half set), ``single`` (only address 0 set).
    """
    validate_capacity(capacity)
    if pattern == "parity":
        return [bin(i).count("1") % 2 for i in range(capacity)]
    if pattern == "alternating":
        return [i % 2 for i in range(capacity)]
    if pattern == "threshold":
        return [1 if i >= capacity // 2 else 0 for i in range(capacity)]
    if pattern == "single":
        return [1 if i == 0 else 0 for i in range(capacity)]
    raise ValueError(f"unknown pattern {pattern!r}")


def uniform_superposition(capacity: int) -> dict[int, complex]:
    """Equal-amplitude superposition over every address."""
    validate_capacity(capacity)
    amp = 1.0 / math.sqrt(capacity)
    return {address: amp for address in range(capacity)}


def random_address_superposition(
    capacity: int, num_addresses: int, seed: int = 0
) -> dict[int, complex]:
    """Random superposition over a random subset of addresses.

    Amplitudes are complex Gaussian and normalised.
    """
    validate_capacity(capacity)
    if not 1 <= num_addresses <= capacity:
        raise ValueError("num_addresses out of range")
    rng = np.random.default_rng(seed)
    if num_addresses == 1:
        # Scalar fast path for the single-address draw that dominates
        # trace generation.  Bit-identical to the array path below —
        # ``choice(n, size=1, replace=False)`` consumes the stream exactly
        # like one bounded ``integers`` draw, ``normal()`` like
        # ``normal(size=1)``, and the norm/division are evaluated with the
        # same operand types — pinned in tests/test_vectorized_parity.py.
        address = int(rng.integers(capacity))
        re = rng.normal()
        im = rng.normal()
        norm = math.sqrt(re * re + im * im)
        return {address: complex(np.complex128(complex(re, im)) / np.float64(norm))}
    addresses = rng.choice(capacity, size=num_addresses, replace=False)
    raw = rng.normal(size=num_addresses) + 1j * rng.normal(size=num_addresses)
    norm = np.linalg.norm(raw)
    return {int(a): complex(x / norm) for a, x in zip(addresses, raw)}


def query_trace(
    capacity: int,
    num_queries: int,
    addresses_per_query: int = 2,
    seed: int = 0,
) -> list[QueryRequest]:
    """A trace of query requests with random address superpositions."""
    return [
        QueryRequest(
            query_id=i,
            address_amplitudes=random_address_superposition(
                capacity, addresses_per_query, seed=seed + i
            ),
        )
        for i in range(num_queries)
    ]


def shard_aligned_superposition(
    capacity: int,
    num_shards: int,
    shard: int,
    num_addresses: int,
    seed: int = 0,
) -> dict[int, complex]:
    """Random superposition confined to one interleaved shard's addresses.

    With low-order interleaving, shard ``s`` of ``K`` owns the global
    addresses ``{s, s + K, s + 2K, ...}``; a query served by a sharded QRAM
    service must keep its superposition inside one such set.
    """
    if not 0 <= shard < num_shards:
        raise ValueError("shard out of range")
    if capacity % num_shards != 0:
        raise ValueError("num_shards must divide the capacity")
    shard_capacity = capacity // num_shards
    local = random_address_superposition(shard_capacity, num_addresses, seed=seed)
    return {a * num_shards + shard: amp for a, amp in local.items()}


def _cumulative_weights(
    weights: Sequence[float], size: int, name: str
) -> np.ndarray:
    """Validate a weight vector and return its normalized cumulative sums
    (the inverse-CDF lookup table for one uniform draw)."""
    if len(weights) != size:
        raise ValueError(f"{name} must have length {size}, got {len(weights)}")
    values = np.asarray([float(w) for w in weights], dtype=np.float64)
    if np.any(values < 0) or not np.all(np.isfinite(values)):
        raise ValueError(f"{name} entries must be finite and >= 0")
    total = float(values.sum())
    if total <= 0:
        raise ValueError(f"{name} must have a positive sum")
    cdf = np.cumsum(values / total)
    # Pin the final bucket edge to exactly 1.0 so a uniform draw just shy
    # of 1.0 can never index past the last entry under rounding error.
    cdf[-1] = 1.0
    return cdf


def _iter_arrival_trace(
    capacity: int,
    times: Iterable[float],
    addresses_per_query: int,
    num_tenants: int,
    num_shards: int,
    seed: int,
    deadline_layers: float | None = None,
    min_fidelity: float | None = None,
    shards: Iterable[int] | None = None,
    tenant_weights: Sequence[float] | None = None,
    shard_weights: Sequence[float] | None = None,
    tenants: Iterable[int] | None = None,
) -> Iterator[QueryRequest]:
    """Lazily yield requests at the given arrival times, round-robin over
    tenants and random (shard-aligned) address superpositions.

    One request is materialized at a time: driven by a lazy ``times``
    stream and a :class:`~repro.engine.workload.StreamingTraceSource`,
    a trace of any length occupies O(1) memory.

    With ``shards`` the stream is restricted to the requests owned by
    those shards — the same requests, byte for byte, that the unrestricted
    stream yields for them (every query's ids, times, tenants and draws
    are keyed by its global position ``i``, and the cheap sequential
    shard draw advances for skipped queries too), but the expensive
    superposition draw is skipped for everything else.  This is what lets
    a parallel serving worker regenerate only its partition of a trace.

    ``shard_weights`` / ``tenant_weights`` skew the shard draw and the
    tenant assignment (hot-key and misbehaving-tenant workloads).  Both
    default to ``None``, which preserves the historical uniform /
    round-robin streams byte for byte; when set, draws still advance one
    slot per global position, so the ``shards`` partition filter stays
    exact.  ``tenants`` (an explicit per-position tenant stream, e.g. the
    sources of a periodic workload) overrides both.
    """
    owned = None if shards is None else frozenset(int(s) for s in shards)
    rng = np.random.default_rng(seed)
    shard_cdf = (
        None
        if shard_weights is None
        else _cumulative_weights(shard_weights, num_shards, "shard_weights")
    )
    tenant_cdf = (
        None
        if tenant_weights is None
        else _cumulative_weights(tenant_weights, num_tenants, "tenant_weights")
    )
    # Weighted tenant draws come from their own derived stream so enabling
    # them cannot perturb the shard draws (and vice versa).
    tenant_rng = (
        None if tenant_cdf is None else np.random.default_rng([seed, 7919])
    )
    tenant_stream = None if tenants is None else iter(tenants)
    # Shard draws come in vectorized blocks: a block of n bounded draws
    # consumes the Generator's stream exactly like n scalar draws (pinned
    # in tests/test_vectorized_parity.py), so the trace is byte-identical
    # to the historical per-request draw at a fraction of the RNG cost.
    shard_draws: list[int] = []
    tenant_draws: list[int] = []
    draw_index = 0
    tenant_index = 0
    for i, t in enumerate(times):
        if draw_index == len(shard_draws):
            if shard_cdf is None:
                shard_draws = rng.integers(
                    num_shards, size=_SHARD_DRAW_BLOCK
                ).tolist()
            else:
                shard_draws = np.searchsorted(
                    shard_cdf, rng.random(_SHARD_DRAW_BLOCK), side="right"
                ).tolist()
            draw_index = 0
        shard = shard_draws[draw_index]
        draw_index += 1
        if tenant_stream is not None:
            tenant = int(next(tenant_stream))
        elif tenant_cdf is not None and tenant_rng is not None:
            if tenant_index == len(tenant_draws):
                tenant_draws = np.searchsorted(
                    tenant_cdf,
                    tenant_rng.random(_SHARD_DRAW_BLOCK),
                    side="right",
                ).tolist()
                tenant_index = 0
            tenant = tenant_draws[tenant_index]
            tenant_index += 1
        else:
            tenant = i % num_tenants
        if owned is not None and shard not in owned:
            continue
        yield QueryRequest(
            query_id=i,
            address_amplitudes=shard_aligned_superposition(
                capacity, num_shards, shard, addresses_per_query, seed=seed + i
            ),
            request_time=float(t),
            qpu=tenant,
            deadline=None if deadline_layers is None else float(t) + deadline_layers,
            min_fidelity=min_fidelity,
        )


def iter_poisson_trace(
    capacity: int,
    num_queries: int,
    mean_interarrival: float,
    addresses_per_query: int = 2,
    num_tenants: int = 1,
    num_shards: int = 1,
    seed: int = 0,
    deadline_layers: float | None = None,
    min_fidelity: float | None = None,
    shards: Iterable[int] | None = None,
    tenant_weights: Sequence[float] | None = None,
    shard_weights: Sequence[float] | None = None,
) -> Iterator[QueryRequest]:
    """Lazily yield the open-loop Poisson trace of :func:`poisson_trace`.

    The same RNG streams request for request
    (``list(iter_poisson_trace(...)) == poisson_trace(...)``, pinned by
    test), but nothing is materialized: feed it to a
    :class:`~repro.engine.workload.StreamingTraceSource` and a
    million-query trace is generated, served and discarded one request at
    a time.  ``shards`` restricts the stream to those shards' requests
    without perturbing them, and ``tenant_weights`` / ``shard_weights``
    skew the tenant/shard draws (see :func:`_iter_arrival_trace`).
    """
    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    times = iter_exponential_times(num_queries, mean_interarrival, seed)
    return _iter_arrival_trace(
        capacity, times, addresses_per_query, num_tenants, num_shards, seed,
        deadline_layers, min_fidelity, shards, tenant_weights, shard_weights,
    )


def poisson_trace(
    capacity: int,
    num_queries: int,
    mean_interarrival: float,
    addresses_per_query: int = 2,
    num_tenants: int = 1,
    num_shards: int = 1,
    seed: int = 0,
    deadline_layers: float | None = None,
    min_fidelity: float | None = None,
    tenant_weights: Sequence[float] | None = None,
    shard_weights: Sequence[float] | None = None,
) -> list[QueryRequest]:
    """Open-loop Poisson traffic: exponential interarrival times (raw layers).

    Tenants are assigned round-robin and each query targets a uniformly
    random shard with a shard-aligned address superposition, so the trace
    can be served directly by a ``num_shards``-shard :class:`QRAMService`.
    Arrival times come from the shared core in
    :mod:`repro.workloads.arrivals`.  With ``deadline_layers`` every query
    carries the deadline ``arrival + deadline_layers`` for SLO-aware
    serving (EDF admission, shed accounting); with ``min_fidelity`` every
    query carries that fidelity SLO for fidelity-aware serving.
    ``tenant_weights`` / ``shard_weights`` skew the tenant/shard draws
    (hot-key and misbehaving-tenant workloads; ``None`` keeps the
    historical uniform / round-robin streams byte for byte).
    Materializes :func:`iter_poisson_trace`.
    """
    return list(iter_poisson_trace(
        capacity, num_queries, mean_interarrival, addresses_per_query,
        num_tenants, num_shards, seed, deadline_layers, min_fidelity,
        tenant_weights=tenant_weights, shard_weights=shard_weights,
    ))


def iter_bursty_trace(
    capacity: int,
    num_bursts: int,
    burst_size: int,
    burst_spacing: float,
    addresses_per_query: int = 2,
    num_tenants: int = 1,
    num_shards: int = 1,
    seed: int = 0,
    deadline_layers: float | None = None,
    min_fidelity: float | None = None,
    shards: Iterable[int] | None = None,
    tenant_weights: Sequence[float] | None = None,
    shard_weights: Sequence[float] | None = None,
) -> Iterator[QueryRequest]:
    """Lazily yield the bursty trace of :func:`bursty_trace` (same RNG
    streams, O(1) memory; ``shards`` restricts to those shards' requests,
    ``tenant_weights`` / ``shard_weights`` skew the draws, see
    :func:`_iter_arrival_trace`)."""
    if num_bursts < 1 or burst_size < 1:
        raise ValueError("num_bursts and burst_size must be >= 1")
    times = iter_burst_times(num_bursts, burst_size, burst_spacing)
    return _iter_arrival_trace(
        capacity, times, addresses_per_query, num_tenants, num_shards, seed,
        deadline_layers, min_fidelity, shards, tenant_weights, shard_weights,
    )


def bursty_trace(
    capacity: int,
    num_bursts: int,
    burst_size: int,
    burst_spacing: float,
    addresses_per_query: int = 2,
    num_tenants: int = 1,
    num_shards: int = 1,
    seed: int = 0,
    deadline_layers: float | None = None,
    min_fidelity: float | None = None,
    tenant_weights: Sequence[float] | None = None,
    shard_weights: Sequence[float] | None = None,
) -> list[QueryRequest]:
    """Bursty traffic: ``burst_size`` simultaneous requests every
    ``burst_spacing`` raw layers (the stress pattern for window batching).
    Materializes :func:`iter_bursty_trace`."""
    return list(iter_bursty_trace(
        capacity, num_bursts, burst_size, burst_spacing, addresses_per_query,
        num_tenants, num_shards, seed, deadline_layers, min_fidelity,
        tenant_weights=tenant_weights, shard_weights=shard_weights,
    ))


def iter_diurnal_trace(
    capacity: int,
    num_queries: int,
    mean_interarrival: float,
    period: float,
    amplitude: float = 0.5,
    addresses_per_query: int = 2,
    num_tenants: int = 1,
    num_shards: int = 1,
    seed: int = 0,
    deadline_layers: float | None = None,
    min_fidelity: float | None = None,
    shards: Iterable[int] | None = None,
    tenant_weights: Sequence[float] | None = None,
    shard_weights: Sequence[float] | None = None,
) -> Iterator[QueryRequest]:
    """Lazily yield a trace whose arrival rate follows a sinusoidal
    day/night cycle (:func:`~repro.workloads.arrivals.iter_diurnal_times`);
    everything else — ids, tenants, shard-aligned superpositions, the
    ``shards`` partition filter — matches :func:`iter_poisson_trace`."""
    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    times = iter_diurnal_times(
        num_queries, mean_interarrival, period, amplitude, seed
    )
    return _iter_arrival_trace(
        capacity, times, addresses_per_query, num_tenants, num_shards, seed,
        deadline_layers, min_fidelity, shards, tenant_weights, shard_weights,
    )


def diurnal_trace(
    capacity: int,
    num_queries: int,
    mean_interarrival: float,
    period: float,
    amplitude: float = 0.5,
    addresses_per_query: int = 2,
    num_tenants: int = 1,
    num_shards: int = 1,
    seed: int = 0,
    deadline_layers: float | None = None,
    min_fidelity: float | None = None,
    tenant_weights: Sequence[float] | None = None,
    shard_weights: Sequence[float] | None = None,
) -> list[QueryRequest]:
    """Materialized :func:`iter_diurnal_trace` (same streams)."""
    return list(iter_diurnal_trace(
        capacity, num_queries, mean_interarrival, period, amplitude,
        addresses_per_query, num_tenants, num_shards, seed, deadline_layers,
        min_fidelity, tenant_weights=tenant_weights,
        shard_weights=shard_weights,
    ))


def iter_flash_crowd_trace(
    capacity: int,
    num_queries: int,
    mean_interarrival: float,
    crowd_time: float,
    crowd_size: int,
    crowd_spacing: float = 0.0,
    addresses_per_query: int = 2,
    num_tenants: int = 1,
    num_shards: int = 1,
    seed: int = 0,
    deadline_layers: float | None = None,
    min_fidelity: float | None = None,
    shards: Iterable[int] | None = None,
    tenant_weights: Sequence[float] | None = None,
    shard_weights: Sequence[float] | None = None,
) -> Iterator[QueryRequest]:
    """Lazily yield a Poisson-baseline trace with a flash crowd of
    ``crowd_size`` extra requests landing at ``crowd_time``
    (:func:`~repro.workloads.arrivals.iter_flash_crowd_times`); the total
    trace carries ``num_queries + crowd_size`` requests and everything
    else matches :func:`iter_poisson_trace`."""
    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    times = iter_flash_crowd_times(
        num_queries, mean_interarrival, crowd_time, crowd_size,
        crowd_spacing, seed,
    )
    return _iter_arrival_trace(
        capacity, times, addresses_per_query, num_tenants, num_shards, seed,
        deadline_layers, min_fidelity, shards, tenant_weights, shard_weights,
    )


def flash_crowd_trace(
    capacity: int,
    num_queries: int,
    mean_interarrival: float,
    crowd_time: float,
    crowd_size: int,
    crowd_spacing: float = 0.0,
    addresses_per_query: int = 2,
    num_tenants: int = 1,
    num_shards: int = 1,
    seed: int = 0,
    deadline_layers: float | None = None,
    min_fidelity: float | None = None,
    tenant_weights: Sequence[float] | None = None,
    shard_weights: Sequence[float] | None = None,
) -> list[QueryRequest]:
    """Materialized :func:`iter_flash_crowd_trace` (same streams)."""
    return list(iter_flash_crowd_trace(
        capacity, num_queries, mean_interarrival, crowd_time, crowd_size,
        crowd_spacing, addresses_per_query, num_tenants, num_shards, seed,
        deadline_layers, min_fidelity, tenant_weights=tenant_weights,
        shard_weights=shard_weights,
    ))


def iter_periodic_trace(
    capacity: int,
    num_sources: int,
    rounds: int,
    period: float,
    stagger: float = 0.0,
    addresses_per_query: int = 2,
    num_shards: int = 1,
    seed: int = 0,
    deadline_layers: float | None = None,
    min_fidelity: float | None = None,
    shards: Iterable[int] | None = None,
) -> Iterator[QueryRequest]:
    """Lazily yield the periodic open-loop trace of :func:`periodic_trace`.

    ``num_sources`` staggered sources each issue every ``period`` layers
    (:func:`~repro.workloads.arrivals.periodic_times`); each source is its
    own tenant, arrivals are sorted by ``(time, source)`` and ids assigned
    in that order, and addresses/shard draws follow the shared trace core
    (so the ``shards`` partition filter stays exact).
    """
    if num_sources < 1 or rounds < 1:
        raise ValueError("num_sources and rounds must be >= 1")
    pairs = sorted(
        periodic_times(num_sources, rounds, period, stagger),
        key=lambda pair: (pair[0], pair[1]),
    )
    times = [t for t, _ in pairs]
    sources = [source for _, source in pairs]
    return _iter_arrival_trace(
        capacity, times, addresses_per_query, num_sources, num_shards, seed,
        deadline_layers, min_fidelity, shards, tenants=sources,
    )


def periodic_trace(
    capacity: int,
    num_sources: int,
    rounds: int,
    period: float,
    stagger: float = 0.0,
    addresses_per_query: int = 2,
    num_shards: int = 1,
    seed: int = 0,
    deadline_layers: float | None = None,
    min_fidelity: float | None = None,
) -> list[QueryRequest]:
    """Materialized :func:`iter_periodic_trace` (same streams)."""
    return list(iter_periodic_trace(
        capacity, num_sources, rounds, period, stagger, addresses_per_query,
        num_shards, seed, deadline_layers, min_fidelity,
    ))


def closed_loop_source(
    capacity: int,
    num_clients: int,
    queries_per_client: int,
    think_layers: float,
    addresses_per_query: int = 2,
    num_shards: int = 1,
    seed: int = 0,
    deadline_layers: float | None = None,
    stagger: float = 0.0,
    min_fidelity: float | None = None,
) -> ClosedLoopSource:
    """A seeded fleet of closed-loop clients for the discrete-event engine.

    Each client alternates one outstanding query with ``think_layers`` of
    local processing (the QPU query/process loop of Fig. 7); its requests
    carry shard-aligned address superpositions, so the source can drive a
    ``num_shards``-shard interleaved :class:`~repro.service.QRAMService`
    directly (use ``num_shards=1`` for replicated / shortest-queue fleets,
    whose shards all serve the global address space).

    Args:
        capacity: global address-space size.
        num_clients: closed-loop clients (tenant ids ``0..num_clients-1``).
        queries_per_client: queries each client issues before retiring.
        think_layers: processing time between completion and next request.
        addresses_per_query: superposition size per query.
        num_shards: interleaved shard count the superpositions align to.
        seed: base RNG seed; every (client, round) pair derives its own.
        deadline_layers: per-request relative deadline (``None`` = best
            effort).
        stagger: offset between successive clients' start times.
        min_fidelity: per-request fidelity SLO (``None`` = best effort).
    """
    if num_clients < 1:
        raise ValueError("num_clients must be >= 1")
    clients = [
        ClosedLoopClient(
            client_id=client_id,
            queries=queries_per_client,
            think_layers=think_layers,
            start_time=client_id * stagger,
            deadline_layers=deadline_layers,
            min_fidelity=min_fidelity,
        )
        for client_id in range(num_clients)
    ]

    def address_factory(client: ClosedLoopClient, index: int) -> dict[int, complex]:
        draw_seed = seed + client.client_id * 100003 + index
        shard = int(np.random.default_rng(draw_seed).integers(num_shards))
        return shard_aligned_superposition(
            capacity, num_shards, shard, addresses_per_query, seed=draw_seed
        )

    return ClosedLoopSource(clients, address_factory)
