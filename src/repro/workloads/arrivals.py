"""Shared arrival-time cores for every trace and arrival-stream generator.

Historically :mod:`repro.scheduling.events` (``QueryArrival`` streams for
the scheduling experiments) and :mod:`repro.workloads.generators`
(``QueryRequest`` traces for the serving layer) each drew their own
arrival times — two RNG code paths that could silently diverge.  Both now
call the three cores here, so a Poisson trace and a random arrival stream
built from the same ``(num, mean, seed)`` land on *identical* times.

All times are in layers on the caller's clock (weighted layers for the
scheduling streams, raw layers for the serving traces).
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterator

import numpy as np


#: Gaps drawn per RNG call by :func:`iter_exponential_times` — large enough
#: to amortize the call overhead (near-vectorized batch speed), small
#: enough that laziness still means O(1) memory.
_DRAW_BLOCK = 4096


def iter_exponential_times(
    num: int, mean_interarrival: float, seed: int = 0
) -> Iterator[float]:
    """Lazily yield cumulative arrival times with exponential gaps.

    The streaming core behind :func:`exponential_times`.  Gaps are drawn
    in fixed-size vectorized blocks (a block of ``n`` draws consumes the
    Generator's stream exactly like ``n`` scalar draws) and accumulated
    left to right (the order ``np.cumsum`` sums), so
    ``list(iter_exponential_times(...)) == exponential_times(...)`` bit
    for bit (pinned by test) while a million-arrival stream occupies O(1)
    memory at near-vectorized speed.
    """
    if num < 0:
        raise ValueError("num must be >= 0")
    if mean_interarrival <= 0:
        raise ValueError("mean_interarrival must be positive")

    def generate() -> Iterator[float]:
        rng = np.random.default_rng(seed)
        total = 0.0
        remaining = num
        while remaining > 0:
            block = rng.exponential(
                mean_interarrival, size=min(remaining, _DRAW_BLOCK)
            )
            remaining -= len(block)
            for gap in block:
                total += float(gap)
                yield total

    # Validate eagerly (above) but stream lazily: a bad argument raises at
    # the call site, not deep inside the engine when the trace is first
    # consumed.
    return generate()


def exponential_times(
    num: int, mean_interarrival: float, seed: int = 0
) -> list[float]:
    """Cumulative arrival times with exponential interarrival gaps.

    The memoryless online workload of Sec. 5.2: ``num`` draws from
    ``Exp(mean_interarrival)`` accumulated into absolute times.
    Materializes :func:`iter_exponential_times` — one RNG stream,
    whichever surface a caller uses.

    Args:
        num: number of arrivals (>= 0).
        mean_interarrival: mean gap between arrivals (> 0).
        seed: RNG seed.
    """
    return list(iter_exponential_times(num, mean_interarrival, seed))


def iter_burst_times(
    num_bursts: int, burst_size: int, burst_spacing: float
) -> Iterator[float]:
    """Lazily yield the arrival times of :func:`burst_times` (arguments
    validated eagerly, at the call site)."""
    if num_bursts < 0 or burst_size < 1:
        raise ValueError("num_bursts must be >= 0 and burst_size >= 1")
    if burst_spacing <= 0:
        raise ValueError("burst_spacing must be positive")

    def generate() -> Iterator[float]:
        for burst in range(num_bursts):
            time = float(burst * burst_spacing)
            for _ in range(burst_size):
                yield time

    return generate()


def burst_times(
    num_bursts: int, burst_size: int, burst_spacing: float
) -> list[float]:
    """Arrival times of ``burst_size`` simultaneous requests every
    ``burst_spacing`` layers (the stress pattern for window batching).

    Args:
        num_bursts: number of bursts (>= 0).
        burst_size: simultaneous requests per burst (>= 1).
        burst_spacing: layers between bursts (> 0).
    """
    return list(iter_burst_times(num_bursts, burst_size, burst_spacing))


def iter_diurnal_times(
    num: int,
    mean_interarrival: float,
    period: float,
    amplitude: float = 0.5,
    seed: int = 0,
) -> Iterator[float]:
    """Lazily yield arrival times whose rate follows a sinusoidal cycle.

    A non-homogeneous Poisson stream: each exponential gap (drawn exactly
    like :func:`iter_exponential_times`, same block size, same stream) is
    stretched by ``1 - amplitude * sin(2*pi*t / period)`` at the current
    time ``t``, so the instantaneous rate peaks mid-cycle and bottoms out
    half a period later — the day/night load swing of a diurnal workload.
    ``amplitude`` must stay in ``[0, 1)`` so the gap factor stays positive
    and times remain strictly increasing; ``amplitude=0`` degenerates to a
    plain Poisson stream over the same RNG draws.
    """
    if num < 0:
        raise ValueError("num must be >= 0")
    if mean_interarrival <= 0:
        raise ValueError("mean_interarrival must be positive")
    if period <= 0:
        raise ValueError("period must be positive")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("amplitude must be in [0, 1)")

    def generate() -> Iterator[float]:
        rng = np.random.default_rng(seed)
        total = 0.0
        remaining = num
        while remaining > 0:
            block = rng.exponential(
                mean_interarrival, size=min(remaining, _DRAW_BLOCK)
            )
            remaining -= len(block)
            for gap in block:
                factor = 1.0 - amplitude * math.sin(
                    2.0 * math.pi * total / period
                )
                total += float(gap) * factor
                yield total

    return generate()


def diurnal_times(
    num: int,
    mean_interarrival: float,
    period: float,
    amplitude: float = 0.5,
    seed: int = 0,
) -> list[float]:
    """Materialized :func:`iter_diurnal_times` (same stream, same times)."""
    return list(iter_diurnal_times(num, mean_interarrival, period, amplitude, seed))


def iter_flash_crowd_times(
    num: int,
    mean_interarrival: float,
    crowd_time: float,
    crowd_size: int,
    crowd_spacing: float = 0.0,
    seed: int = 0,
) -> Iterator[float]:
    """Lazily yield a Poisson baseline with a flash crowd spliced in.

    The baseline is exactly :func:`iter_exponential_times`'s stream of
    ``num`` arrivals; at ``crowd_time`` a crowd of ``crowd_size`` extra
    arrivals lands, spaced ``crowd_spacing`` layers apart (``0.0`` = all
    simultaneous).  The two sorted streams are lazily merged in time
    order (ties resolved baseline-first), so the total yield is
    ``num + crowd_size`` arrivals in O(1) memory.
    """
    if num < 0 or crowd_size < 0:
        raise ValueError("num and crowd_size must be >= 0")
    if mean_interarrival <= 0:
        raise ValueError("mean_interarrival must be positive")
    if crowd_time < 0 or crowd_spacing < 0:
        raise ValueError("crowd_time and crowd_spacing must be >= 0")

    def generate() -> Iterator[float]:
        baseline = iter_exponential_times(num, mean_interarrival, seed)
        crowd = (
            float(crowd_time + k * crowd_spacing) for k in range(crowd_size)
        )
        yield from heapq.merge(baseline, crowd)

    return generate()


def flash_crowd_times(
    num: int,
    mean_interarrival: float,
    crowd_time: float,
    crowd_size: int,
    crowd_spacing: float = 0.0,
    seed: int = 0,
) -> list[float]:
    """Materialized :func:`iter_flash_crowd_times` (same merged stream)."""
    return list(iter_flash_crowd_times(
        num, mean_interarrival, crowd_time, crowd_size, crowd_spacing, seed
    ))


def periodic_times(
    num_sources: int, rounds: int, period: float, stagger: float = 0.0
) -> list[tuple[float, int]]:
    """Arrival ``(time, source)`` pairs of periodically issuing sources.

    Source ``s`` starts at ``s * stagger`` and issues every ``period``
    layers for ``rounds`` rounds — the open-loop approximation of a QPU
    that alternates querying and processing (Fig. 7).  Pairs are returned
    in source-major generation order so callers can assign stable ids
    before sorting by time.

    Args:
        num_sources: number of issuing sources (>= 0).
        rounds: arrivals per source (>= 0).
        period: layers between one source's consecutive arrivals (> 0).
        stagger: offset between the start times of successive sources
            (>= 0).
    """
    if num_sources < 0 or rounds < 0:
        raise ValueError("num_sources and rounds must be >= 0")
    if period <= 0:
        raise ValueError("period must be positive")
    if stagger < 0:
        raise ValueError("stagger must be >= 0")
    return [
        (source * stagger + round_index * period, source)
        for source in range(num_sources)
        for round_index in range(rounds)
    ]
