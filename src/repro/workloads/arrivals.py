"""Shared arrival-time cores for every trace and arrival-stream generator.

Historically :mod:`repro.scheduling.events` (``QueryArrival`` streams for
the scheduling experiments) and :mod:`repro.workloads.generators`
(``QueryRequest`` traces for the serving layer) each drew their own
arrival times — two RNG code paths that could silently diverge.  Both now
call the three cores here, so a Poisson trace and a random arrival stream
built from the same ``(num, mean, seed)`` land on *identical* times.

All times are in layers on the caller's clock (weighted layers for the
scheduling streams, raw layers for the serving traces).
"""

from __future__ import annotations

import numpy as np


def exponential_times(
    num: int, mean_interarrival: float, seed: int = 0
) -> list[float]:
    """Cumulative arrival times with exponential interarrival gaps.

    The memoryless online workload of Sec. 5.2: ``num`` draws from
    ``Exp(mean_interarrival)`` accumulated into absolute times.

    Args:
        num: number of arrivals (>= 0).
        mean_interarrival: mean gap between arrivals (> 0).
        seed: RNG seed.
    """
    if num < 0:
        raise ValueError("num must be >= 0")
    if mean_interarrival <= 0:
        raise ValueError("mean_interarrival must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_interarrival, size=num)
    return [float(t) for t in np.cumsum(gaps)]


def burst_times(
    num_bursts: int, burst_size: int, burst_spacing: float
) -> list[float]:
    """Arrival times of ``burst_size`` simultaneous requests every
    ``burst_spacing`` layers (the stress pattern for window batching).

    Args:
        num_bursts: number of bursts (>= 0).
        burst_size: simultaneous requests per burst (>= 1).
        burst_spacing: layers between bursts (> 0).
    """
    if num_bursts < 0 or burst_size < 1:
        raise ValueError("num_bursts must be >= 0 and burst_size >= 1")
    if burst_spacing <= 0:
        raise ValueError("burst_spacing must be positive")
    return [
        float(burst * burst_spacing)
        for burst in range(num_bursts)
        for _ in range(burst_size)
    ]


def periodic_times(
    num_sources: int, rounds: int, period: float, stagger: float = 0.0
) -> list[tuple[float, int]]:
    """Arrival ``(time, source)`` pairs of periodically issuing sources.

    Source ``s`` starts at ``s * stagger`` and issues every ``period``
    layers for ``rounds`` rounds — the open-loop approximation of a QPU
    that alternates querying and processing (Fig. 7).  Pairs are returned
    in source-major generation order so callers can assign stable ids
    before sorting by time.

    Args:
        num_sources: number of issuing sources (>= 0).
        rounds: arrivals per source (>= 0).
        period: layers between one source's consecutive arrivals (> 0).
        stagger: offset between the start times of successive sources
            (>= 0).
    """
    if num_sources < 0 or rounds < 0:
        raise ValueError("num_sources and rounds must be >= 0")
    if period <= 0:
        raise ValueError("period must be positive")
    if stagger < 0:
        raise ValueError("stagger must be >= 0")
    return [
        (source * stagger + round_index * period, source)
        for source in range(num_sources)
        for round_index in range(rounds)
    ]
