"""Workload and trace generators used by examples, tests and benchmarks.

* :mod:`repro.workloads.arrivals` — the shared arrival-time cores
  (exponential, bursty, periodic) behind both the scheduling streams in
  :mod:`repro.scheduling.events` and the serving traces here.
* :mod:`repro.workloads.generators` — memory contents, address
  superpositions, open-loop query traces and the closed-loop client fleet
  builder for the discrete-event engine.
"""

from repro.workloads.arrivals import (
    burst_times,
    diurnal_times,
    exponential_times,
    flash_crowd_times,
    iter_burst_times,
    iter_diurnal_times,
    iter_exponential_times,
    iter_flash_crowd_times,
    periodic_times,
)
from repro.workloads.generators import (
    bursty_trace,
    closed_loop_source,
    diurnal_trace,
    flash_crowd_trace,
    iter_bursty_trace,
    iter_diurnal_trace,
    iter_flash_crowd_trace,
    iter_periodic_trace,
    iter_poisson_trace,
    periodic_trace,
    poisson_trace,
    query_trace,
    random_address_superposition,
    random_data,
    shard_aligned_superposition,
    structured_data,
    uniform_superposition,
)

__all__ = [
    "random_data",
    "structured_data",
    "uniform_superposition",
    "random_address_superposition",
    "shard_aligned_superposition",
    "query_trace",
    "poisson_trace",
    "iter_poisson_trace",
    "bursty_trace",
    "iter_bursty_trace",
    "diurnal_trace",
    "iter_diurnal_trace",
    "flash_crowd_trace",
    "iter_flash_crowd_trace",
    "periodic_trace",
    "iter_periodic_trace",
    "closed_loop_source",
    "exponential_times",
    "iter_exponential_times",
    "burst_times",
    "iter_burst_times",
    "diurnal_times",
    "iter_diurnal_times",
    "flash_crowd_times",
    "iter_flash_crowd_times",
    "periodic_times",
]
