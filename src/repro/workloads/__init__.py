"""Workload and trace generators used by examples, tests and benchmarks."""

from repro.workloads.generators import (
    random_address_superposition,
    random_data,
    structured_data,
    uniform_superposition,
    query_trace,
)

__all__ = [
    "random_data",
    "structured_data",
    "uniform_superposition",
    "random_address_superposition",
    "query_trace",
]
