"""Workload and trace generators used by examples, tests and benchmarks."""

from repro.workloads.generators import (
    bursty_trace,
    poisson_trace,
    query_trace,
    random_address_superposition,
    random_data,
    shard_aligned_superposition,
    structured_data,
    uniform_superposition,
)

__all__ = [
    "random_data",
    "structured_data",
    "uniform_superposition",
    "random_address_superposition",
    "shard_aligned_superposition",
    "query_trace",
    "poisson_trace",
    "bursty_trace",
]
