"""Command-line sweep runner: ``python -m repro.sweep <sweep.json>``.

Reads a :class:`~repro.sweep.spec.SweepSpec` JSON document, executes
every point (optionally on a persistent worker pool), streams one JSONL
row per point, and writes the Pareto frontier report.  Exit status is
non-zero when any point errored (the rows still record all of them).

Example::

    python -m repro.sweep campaign.json --pool 4 \\
        --out rows.jsonl --frontier frontier.json \\
        --objectives cost_qubits,p99_latency_layers,mean_fidelity:max
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence

from repro.sweep.engine import run_sweep
from repro.sweep.pareto import DEFAULT_OBJECTIVES, Objective, frontier_report
from repro.sweep.spec import SweepSpec


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweep",
        description=(
            "Run a design-space sweep: every point of a SweepSpec JSON "
            "document, deduplicated and cache-affine on a persistent "
            "worker pool, with a Pareto frontier report."
        ),
    )
    parser.add_argument("sweep", help="path to a SweepSpec JSON document")
    parser.add_argument(
        "--pool",
        type=int,
        default=0,
        help=(
            "persistent fork workers (0 = inline serial execution, the "
            "default and the fallback where fork is unavailable)"
        ),
    )
    parser.add_argument(
        "--recycle-after",
        type=int,
        default=None,
        help=(
            "retire each worker after this many runs (1 reproduces the "
            "cold fork-per-run model; default: workers persist)"
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write one canonical JSON row per point to this JSONL file",
    )
    parser.add_argument(
        "--frontier",
        default=None,
        help="write the Pareto frontier report (JSON) to this file",
    )
    parser.add_argument(
        "--objectives",
        default=None,
        help=(
            "comma-separated frontier objectives as key[:min|:max] "
            "(default: cost_qubits,p99_latency_layers,mean_fidelity:max)"
        ),
    )
    args = parser.parse_args(argv)

    with open(args.sweep, encoding="utf-8") as handle:
        sweep = SweepSpec.from_json(handle.read())
    objectives = (
        DEFAULT_OBJECTIVES
        if args.objectives is None
        else tuple(
            Objective.parse(text) for text in args.objectives.split(",")
        )
    )

    result = run_sweep(
        sweep,
        pool_size=args.pool,
        recycle_after=args.recycle_after,
        jsonl_path=args.out,
    )
    errors = [row for row in result.rows if row["status"] == "error"]
    print(
        f"sweep '{sweep.name or args.sweep}': {len(result.rows)} points, "
        f"{result.executions} unique executions, pool={result.pool_size}, "
        f"{len(errors)} errored"
    )
    print(result.cache_stats.summary())
    for row in errors:
        print(f"  point {row['point']} ({row['name']}): {row['error']}")

    report = frontier_report(result.rows, objectives)
    print(
        f"frontier: {len(report['frontier'])} of {report['candidates']} "
        f"ranked points on "
        + ", ".join(
            f"{o['key']}:{o['goal']}" for o in report["objectives"]
        )
    )
    for entry in report["frontier"]:
        values = ", ".join(
            f"{key}={value}" for key, value in entry["objectives"].items()
        )
        print(f"  point {entry['point']}: {values}")
    if args.frontier is not None:
        with open(args.frontier, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
