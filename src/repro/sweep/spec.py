"""Sweep declarations: a base scenario crossed with named axes.

A :class:`SweepSpec` is the declarative form of a design-space campaign:
one base :class:`~repro.scenarios.spec.ScenarioSpec` plus an ordered list
of **axes**, each a dotted ``"section.field"`` path (anything
:meth:`ScenarioSpec.with_value` accepts, including the virtual fleet axes
``fleet.qec_distance`` and ``fleet.shard_count``) with the values to try.
:meth:`SweepSpec.expand` takes the Cartesian product in axis order and
yields one :class:`SweepPoint` per combination — index, coordinates, and
the fully-validated concrete spec — which the batch engine
(:mod:`repro.sweep.engine`) executes.

Like every spec in this repository the sweep is frozen, eagerly
validated (axis paths are checked against
:func:`repro.scenarios.spec.axis_paths` at construction) and JSON
round-trippable, so a whole campaign is one replayable document.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass
from typing import Any

from repro.scenarios.spec import ScenarioSpec, SpecError, axis_paths

__all__ = ["SweepPoint", "SweepSpec"]


@dataclass(frozen=True)
class SweepPoint:
    """One expanded design point of a sweep.

    Attributes:
        index: position in expansion order (the stable identity every
            result row and frontier entry carries).
        name: human-readable label (``"<sweep>#<index> path=value ..."``).
        coords: the axis assignments of this point, in axis order.
        spec: the concrete, validated scenario (its ``name`` is the point
            name; the name never reaches the engine).
    """

    index: int
    name: str
    coords: tuple[tuple[str, Any], ...]
    spec: ScenarioSpec


@dataclass(frozen=True)
class SweepSpec:
    """A base scenario crossed with axes of alternative values.

    Attributes:
        base: the scenario every point derives from.
        axes: ordered ``(path, values)`` pairs; ``path`` is any dotted
            field :meth:`ScenarioSpec.with_value` accepts and ``values``
            is the non-empty tuple of alternatives.  Expansion order is
            the Cartesian product with the *last* axis varying fastest.
        name: campaign label (used in point names; free-form).
    """

    base: ScenarioSpec
    axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        normalized: list[tuple[str, tuple[Any, ...]]] = []
        seen: set[str] = set()
        valid = axis_paths()
        for axis in self.axes:
            try:
                path, values = axis
            except (TypeError, ValueError):
                raise SpecError(
                    f"SweepSpec.axes entries must be (path, values) pairs "
                    f"(got {axis!r})"
                ) from None
            if path not in valid:
                raise SpecError(
                    f"SweepSpec.axes path {path!r} is not a sweepable "
                    f"field; expected one of {sorted(valid)}"
                )
            if path in seen:
                raise SpecError(f"SweepSpec.axes path {path!r} repeats")
            seen.add(path)
            values = tuple(values)
            if not values:
                raise SpecError(
                    f"SweepSpec.axes path {path!r} has no values"
                )
            normalized.append((path, values))
        object.__setattr__(self, "axes", tuple(normalized))

    @property
    def num_points(self) -> int:
        """Points :meth:`expand` yields (product of axis lengths)."""
        count = 1
        for _, values in self.axes:
            count *= len(values)
        return count

    def expand(self) -> tuple[SweepPoint, ...]:
        """Every design point, in deterministic expansion order.

        Each point applies its axis values to ``base`` through
        :meth:`ScenarioSpec.with_value`, so per-section validation and
        the cross-section checks run on every combination; an invalid
        combination raises :class:`SpecError` naming the point.
        """
        paths = [path for path, _ in self.axes]
        points: list[SweepPoint] = []
        label = self.name or self.base.name or "sweep"
        for index, combo in enumerate(
            itertools.product(*(values for _, values in self.axes))
        ):
            coords = tuple(zip(paths, combo))
            spec = self.base
            try:
                for path, value in coords:
                    spec = spec.with_value(path, value)
            except SpecError as exc:
                raise SpecError(
                    f"sweep point {index} "
                    f"({', '.join(f'{p}={v!r}' for p, v in coords)}): {exc}"
                ) from None
            name = f"{label}#{index:03d}"
            if coords:
                name += " " + " ".join(f"{p}={v}" for p, v in coords)
            spec = dataclasses.replace(spec, name=name)
            points.append(
                SweepPoint(index=index, name=name, coords=coords, spec=spec)
            )
        return tuple(points)

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "base": self.base.to_dict(),
            "axes": [
                {"path": path, "values": list(values)}
                for path, values in self.axes
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SweepSpec":
        unknown = sorted(set(payload) - {"name", "base", "axes"})
        if unknown:
            raise SpecError(
                f"unknown SweepSpec key(s) {unknown}; expected a subset of "
                f"['axes', 'base', 'name']"
            )
        if "base" not in payload:
            raise SpecError("SweepSpec requires a 'base' scenario section")
        axes: list[tuple[str, tuple[Any, ...]]] = []
        for entry in payload.get("axes", ()):
            if not isinstance(entry, dict) or set(entry) != {
                "path",
                "values",
            }:
                raise SpecError(
                    f"SweepSpec.axes entries must be "
                    f"{{'path': ..., 'values': [...]}} objects "
                    f"(got {entry!r})"
                )
            axes.append((entry["path"], tuple(entry["values"])))
        return cls(
            base=ScenarioSpec.from_dict(payload["base"]),
            axes=tuple(axes),
            name=str(payload.get("name", "")),
        )

    def to_json(self, indent: int | None = 2) -> str:
        """The sweep as a JSON document (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))
