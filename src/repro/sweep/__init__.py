"""Design-space sweeps: batch scenario execution and Pareto frontiers.

The campaign layer over :mod:`repro.scenarios`: declare a base
:class:`~repro.scenarios.spec.ScenarioSpec` crossed with axes
(:class:`SweepSpec`), execute every point on a persistent fork-start
worker pool with cross-run schedule-cache reuse (:func:`run_sweep`), and
extract the cost/latency/fidelity Pareto frontier from the result rows
(:func:`pareto_frontier` / :func:`frontier_report`).  Rows and frontiers
are bit-identical for every pool size and submission order.

Command line: ``python -m repro.sweep <sweep.json> --pool 4
--out rows.jsonl --frontier frontier.json``.
"""

from repro.sweep.engine import (
    METRIC_FIELDS,
    SweepResult,
    fleet_cost_qubits,
    report_digest,
    run_sweep,
    write_rows_jsonl,
)
from repro.sweep.pareto import (
    DEFAULT_OBJECTIVES,
    Objective,
    dominates,
    frontier_report,
    objective_vector,
    pareto_frontier,
)
from repro.sweep.spec import SweepPoint, SweepSpec

__all__ = [
    "DEFAULT_OBJECTIVES",
    "METRIC_FIELDS",
    "Objective",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "dominates",
    "fleet_cost_qubits",
    "frontier_report",
    "objective_vector",
    "pareto_frontier",
    "report_digest",
    "run_sweep",
    "write_rows_jsonl",
]
