"""Pareto frontier extraction over sweep result rows.

A design-space campaign's deliverable is rarely "the best point" — cost,
latency and fidelity trade off, so the answer is the set of
*non-dominated* points: those no other point beats on every objective at
once.  This module extracts that set from the JSONL rows the batch
engine (:mod:`repro.sweep.engine`) produces.

Dominance is **weak**: ``a`` dominates ``b`` when ``a`` is at least as
good on every objective and strictly better on one.  Points with *equal*
objective vectors therefore never dominate each other and all stay on
the frontier — which is what makes frontier extraction order-independent
and mergeable: ``frontier(A ∪ B) == frontier(frontier(A) ∪ frontier(B))``
for any split, so partial campaign results merge without bias and the
result never depends on row order (the frontier is sorted by objective
vector, then point index).

Rows that cannot be ranked — ``status="error"``, or a ``None`` metric
(e.g. ``mean_fidelity`` without a noise model) — are excluded rather
than defaulted: a point must prove its objectives to stand on the
frontier.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any

__all__ = [
    "DEFAULT_OBJECTIVES",
    "Objective",
    "dominates",
    "frontier_report",
    "objective_vector",
    "pareto_frontier",
]


@dataclass(frozen=True)
class Objective:
    """One frontier dimension: a metrics key and its direction.

    Attributes:
        key: key into a row's ``metrics`` object (any
            :data:`~repro.sweep.engine.METRIC_FIELDS` entry or
            ``cost_qubits``).
        goal: ``"min"`` or ``"max"``.
    """

    key: str
    goal: str = "min"

    def __post_init__(self) -> None:
        if self.goal not in ("min", "max"):
            raise ValueError(
                f"Objective.goal must be 'min' or 'max' (got {self.goal!r})"
            )

    @classmethod
    def parse(cls, text: str) -> "Objective":
        """Parse ``"key"`` or ``"key:max"`` (CLI form; default min)."""
        key, _, goal = text.partition(":")
        return cls(key=key, goal=goal or "min")


#: The campaign headline: cheapest fleet, lowest tail latency, highest
#: fidelity.
DEFAULT_OBJECTIVES = (
    Objective("cost_qubits", "min"),
    Objective("p99_latency_layers", "min"),
    Objective("mean_fidelity", "max"),
)


def objective_vector(
    row: dict[str, Any], objectives: Sequence[Objective]
) -> tuple[float, ...] | None:
    """The row's minimize-normalized objective vector (``None`` = unranked).

    ``max`` objectives negate, so *smaller is better* on every component
    and dominance is a plain component-wise comparison.
    """
    if row.get("status") != "ok":
        return None
    metrics = row.get("metrics") or {}
    vector: list[float] = []
    for objective in objectives:
        value = metrics.get(objective.key)
        if value is None:
            return None
        vector.append(
            -float(value) if objective.goal == "max" else float(value)
        )
    return tuple(vector)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Weak dominance of minimize-normalized vectors.

    True when ``a`` is no worse than ``b`` everywhere and strictly
    better somewhere; equal vectors dominate in neither direction.
    """
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def pareto_frontier(
    rows: Iterable[dict[str, Any]],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> list[dict[str, Any]]:
    """The non-dominated rows, sorted by objective vector then point.

    The sort (not input order) fixes the output, and weak dominance
    keeps every member of a tie — together making the extraction
    order-independent and merge-stable.
    """
    ranked = [
        (vector, row)
        for row in rows
        if (vector := objective_vector(row, objectives)) is not None
    ]
    frontier = [
        (vector, row)
        for vector, row in ranked
        if not any(
            dominates(other, vector) for other, _ in ranked
        )
    ]
    frontier.sort(key=lambda item: (item[0], item[1]["point"]))
    return [row for _, row in frontier]


def frontier_report(
    rows: Iterable[dict[str, Any]],
    objectives: Sequence[Objective] = DEFAULT_OBJECTIVES,
) -> dict[str, Any]:
    """The frontier as one replayable JSON document.

    Each frontier entry carries its objective values and the winning
    point's full serialized :class:`~repro.scenarios.spec.ScenarioSpec`,
    so any winner re-runs with
    ``ScenarioSpec.from_dict(entry["spec"]).execute()``.
    """
    rows = list(rows)
    frontier = pareto_frontier(rows, objectives)
    return {
        "objectives": [
            {"key": o.key, "goal": o.goal} for o in objectives
        ],
        "candidates": sum(
            1 for row in rows
            if objective_vector(row, objectives) is not None
        ),
        "frontier": [
            {
                "point": row["point"],
                "name": row["name"],
                "coords": row["coords"],
                "objectives": {
                    o.key: row["metrics"][o.key] for o in objectives
                },
                "metrics": row["metrics"],
                "spec": row["spec"],
            }
            for row in frontier
        ],
    }
