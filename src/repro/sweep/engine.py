"""Batch scenario execution on a persistent fork-start worker pool.

Running a design-space campaign point by point pays the whole cold path
per point: fleet build, schedule compilation, fidelity-vector derivation
— and under fork-per-run parallelism each run's workers start from a
cold copy of everything.  This engine amortizes all of it:

* **Persistent workers.**  Points execute on a long-lived
  :class:`~repro.engine.pool.ForkWorkerPool`; each worker's process-wide
  :class:`~repro.schedule_cache.ScheduleCacheRegistry` accumulates warm
  compiled schedules, interval tables and fidelity vectors *across runs*
  instead of being rebuilt by a fresh fork every time.
* **Dedup + cache affinity.**  Points are grouped by full-spec
  fingerprint (equal specs execute once; every point still gets its own
  result row), and each unique spec routes to the worker picked by its
  *fleet* fingerprint — scenarios sharing a fleet land on the worker
  that already holds their compiled schedules.
* **Reuse is proven, not assumed.**  Each execution carries the
  worker's :class:`~repro.schedule_cache.CacheStats` snapshot; the sweep
  aggregates the final snapshot per worker, so ``hits`` climbing while
  ``prewarms`` stays flat at (unique fleet configurations) is an
  assertable property (CI's sweep-smoke job does).

Determinism is the same discipline the serving engine pins run-level,
lifted to campaign level: a point's row is a pure function of its spec
(virtual-clock execution, canonical-JSON report digests), rows are
ordered by point index, and the cache side-channel never enters a row —
so the JSONL produced at pool size 8 is byte-identical to pool size 1,
to inline execution (``pool_size=0``), and to any submission order.

Worker failures are data, not aborts: a point whose execution raises
produces a ``status="error"`` row carrying ``ExcType: message`` — itself
deterministic — so one infeasible corner of a 1000-point campaign cannot
destroy the rest.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
import os
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.engine.core import ServiceReport
from repro.engine.pool import ForkWorkerPool, fork_available
from repro.scenarios.spec import ScenarioSpec
from repro.schedule_cache import CacheStats, default_registry
from repro.sweep.spec import SweepPoint, SweepSpec

__all__ = [
    "SweepResult",
    "fleet_cost_qubits",
    "report_digest",
    "run_sweep",
    "write_rows_jsonl",
]

#: :class:`~repro.metrics.service_stats.ServiceStats` scalars copied into
#: each row's ``metrics`` object (plus the engine-computed
#: ``cost_qubits``).
METRIC_FIELDS = (
    "total_queries",
    "makespan_layers",
    "mean_latency_layers",
    "p50_latency_layers",
    "p95_latency_layers",
    "p99_latency_layers",
    "mean_queue_delay_layers",
    "bandwidth_queries_per_sec",
    "offered_queries",
    "rejected_queries",
    "shed_queries",
    "fidelity_rejected_queries",
    "deadline_misses",
    "deadline_miss_rate",
    "mean_fidelity",
    "min_fidelity",
    "fidelity_slo_misses",
    "fidelity_slo_miss_rate",
)


def _canonical(value: Any) -> Any:
    """JSON-serializable canonical form of report content.

    Dataclasses flatten via ``asdict`` upstream; here tuples become
    lists, complex amplitudes become ``[real, imag]`` pairs, and dicts
    with non-string keys (per-tenant/per-shard tables, output
    amplitudes) become key-sorted pair lists so the canonical JSON is
    unique.  Floats rely on JSON's exact ``repr`` round-trip: equal
    reports canonicalize to equal bytes.
    """
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value):
            return {key: _canonical(item) for key, item in value.items()}
        return [
            [_canonical(key), _canonical(item)]
            for key, item in sorted(value.items(), key=lambda kv: repr(kv[0]))
        ]
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, complex):
        return [value.real, value.imag]
    return value


def report_digest(report: ServiceReport) -> str:
    """SHA-256 over the canonical JSON of a report's *result* content.

    Covers everything two equal runs must agree on — stats, retained
    records, outputs, telemetry — and excludes the observational fields
    (``parallel``, ``profile``, ``cache_stats``) exactly as report
    equality does.  Two reports share a digest iff they compare equal,
    which is how sweep rows pin per-point bit-identity across pool sizes
    without shipping whole reports around.
    """
    payload = {
        "served": [dataclasses.asdict(r) for r in report.served],
        "windows": [dataclasses.asdict(r) for r in report.windows],
        "stats": dataclasses.asdict(report.stats),
        "outputs": report.outputs,
        "rejected": [dataclasses.asdict(r) for r in report.rejected],
        "scale_events": [dataclasses.asdict(r) for r in report.scale_events],
        "telemetry": [dataclasses.asdict(r) for r in report.telemetry],
        "retention": report.retention,
    }
    text = json.dumps(
        _canonical(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fleet_cost_qubits(service: Any) -> int:
    """Hardware cost of a built fleet: total physical qubits across shards.

    Encoded shards count their full physical footprint (distance² per
    logical qubit), so the cost axis prices QEC distance honestly.
    """
    return sum(int(backend.qubit_count) for backend in service.shards)


def _execute(spec: ScenarioSpec, keep_report: bool) -> dict[str, Any]:
    """Worker-side body: run one spec, return its execution fragment.

    The fragment splits into row content (``status`` / ``error`` /
    ``metrics`` / ``report_digest`` — pure functions of the spec) and
    side-channel observability (``pid``, ``cache_stats`` — worker-local,
    stripped before rows are built so rows stay pool-size-independent).
    """
    fragment: dict[str, Any]
    try:
        built = spec.build()
        cost = fleet_cost_qubits(built.service)
        report = built.run()
    except Exception as exc:  # noqa: BLE001 - failures become rows
        fragment = {
            "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
            "metrics": None,
            "report_digest": None,
            "report": None,
        }
    else:
        metrics: dict[str, Any] = {
            name: getattr(report.stats, name) for name in METRIC_FIELDS
        }
        metrics["cost_qubits"] = cost
        fragment = {
            "status": "ok",
            "error": None,
            "metrics": metrics,
            "report_digest": report_digest(report),
            "report": report if keep_report else None,
        }
    fragment["pid"] = os.getpid()
    fragment["cache_stats"] = default_registry().stats()
    return fragment


def _sum_stats(snapshots: Iterable[CacheStats]) -> CacheStats:
    """Aggregate per-worker registry snapshots by summing every counter."""
    totals = {f.name: 0 for f in dataclasses.fields(CacheStats)}
    for snapshot in snapshots:
        for name in totals:
            totals[name] += getattr(snapshot, name)
    return CacheStats(**totals)


@dataclass(frozen=True)
class SweepResult:
    """Everything one sweep execution produced.

    Attributes:
        rows: one result row per point, ordered by point index.  A row
            is a plain JSON-ready dict (``point``, ``name``, ``coords``,
            ``spec``, ``fingerprint``, ``fleet_fingerprint``,
            ``status``, ``error``, ``metrics``, ``report_digest``) and
            is bit-identical across pool sizes and submission orders.
        reports: per-point :class:`ServiceReport` objects when the sweep
            ran with ``keep_reports=True`` (``None`` otherwise; campaign
            -scale sweeps should not hold every report in memory).
        cache_stats: final registry snapshots of every worker that
            executed points, summed — the cross-run reuse evidence.
        pool_size: worker processes actually used (0 = inline in this
            process, also the fork-unavailable fallback).
        executions: unique specs executed after dedup (<= len(rows)).
    """

    rows: tuple[dict[str, Any], ...]
    reports: dict[int, ServiceReport] | None
    cache_stats: CacheStats
    pool_size: int
    executions: int


def run_sweep(
    sweep: SweepSpec | Sequence[SweepPoint],
    *,
    pool_size: int = 0,
    recycle_after: int | None = None,
    max_inflight: int = 4,
    keep_reports: bool = False,
    jsonl_path: str | None = None,
) -> SweepResult:
    """Execute every point of a sweep; return rows (and prove cache reuse).

    Args:
        sweep: a :class:`SweepSpec` (expanded here) or pre-expanded
            points (any order; rows always come back in point order).
        pool_size: persistent fork workers to execute on.  ``0`` runs
            inline in this process — the serial baseline, and the
            automatic fallback on platforms without ``fork``.
        recycle_after: retire each worker after this many executions
            (``1`` reproduces fork-per-run execution, the cold model the
            persistent pool replaces — kept for honest benchmarking).
        max_inflight: per-worker outstanding-task bound (pipe backpressure).
        keep_reports: ship every unique execution's full
            :class:`ServiceReport` back and attach one per point
            (memory-heavy; meant for tests and small sweeps).
        jsonl_path: when given, stream the rows to this file, one
            canonical-JSON row per line in point order.

    Returns:
        A :class:`SweepResult`; ``rows`` (and the JSONL file) are
        byte-identical for every ``pool_size`` and submission order.
    """
    if pool_size < 0:
        raise ValueError("pool_size must be >= 0")
    points = sweep.expand() if isinstance(sweep, SweepSpec) else tuple(sweep)

    # Deduplicate: equal specs (fingerprints ignore the name) execute
    # once; every point still yields its own row below.
    order: list[str] = []
    groups: dict[str, list[SweepPoint]] = {}
    for point in points:
        fingerprint = point.spec.fingerprint()
        if fingerprint not in groups:
            groups[fingerprint] = []
            order.append(fingerprint)
        groups[fingerprint].append(point)

    handler = functools.partial(_execute, keep_report=keep_reports)
    effective_pool = pool_size if fork_available() else 0
    fragments: dict[str, dict[str, Any]] = {}
    if effective_pool == 0:
        for fingerprint in order:
            fragments[fingerprint] = handler(groups[fingerprint][0].spec)
    else:
        # Cache affinity: a spec's worker is a pure function of its
        # fleet fingerprint, so every spec sharing a fleet lands on the
        # worker already holding that fleet's compiled schedules.
        tasks = [
            (
                task_id,
                groups[fingerprint][0].spec,
                int(groups[fingerprint][0].spec.fleet.fingerprint()[:16], 16),
            )
            for task_id, fingerprint in enumerate(order)
        ]
        with ForkWorkerPool(
            handler,
            workers=effective_pool,
            recycle_after=recycle_after,
            max_inflight=max_inflight,
        ) as pool:
            outcomes = pool.run(tasks)
        for outcome in outcomes:
            if outcome.error is not None:
                # Only infrastructure failures surface here (a worker
                # death); scenario failures are rows.  Raise the lowest
                # task's error — deterministic under any completion order.
                raise outcome.error
            fragments[order[outcome.task_id]] = outcome.result

    # Workers run their tasks serially, so the fragment of a worker's
    # highest task id carries that worker's final registry snapshot;
    # summing the latest snapshot per pid aggregates the whole pool
    # (inline execution contributes this process's snapshot).
    latest_by_pid: dict[int, CacheStats] = {}
    for fingerprint in order:
        fragment = fragments[fingerprint]
        latest_by_pid[fragment["pid"]] = fragment["cache_stats"]
    cache_stats = _sum_stats(latest_by_pid.values())

    rows: list[dict[str, Any]] = []
    reports: dict[int, ServiceReport] | None = {} if keep_reports else None
    for point in sorted(points, key=lambda p: p.index):
        fingerprint = point.spec.fingerprint()
        fragment = fragments[fingerprint]
        rows.append(
            {
                "point": point.index,
                "name": point.name,
                "coords": {path: value for path, value in point.coords},
                "spec": point.spec.to_dict(),
                "fingerprint": fingerprint,
                "fleet_fingerprint": point.spec.fleet.fingerprint(),
                "status": fragment["status"],
                "error": fragment["error"],
                "metrics": fragment["metrics"],
                "report_digest": fragment["report_digest"],
            }
        )
        if reports is not None and fragment["report"] is not None:
            reports[point.index] = fragment["report"]

    if jsonl_path is not None:
        write_rows_jsonl(rows, jsonl_path)
    return SweepResult(
        rows=tuple(rows),
        reports=reports,
        cache_stats=cache_stats,
        pool_size=effective_pool,
        executions=len(order),
    )


def write_rows_jsonl(
    rows: Iterable[dict[str, Any]], path: str
) -> None:
    """Write rows as canonical JSONL (one sorted-key object per line).

    Canonical serialization makes the determinism contract checkable
    with ``cmp``: two sweeps of the same spec produce byte-identical
    files whatever their pool sizes.
    """
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(
                json.dumps(_canonical(row), sort_keys=True,
                           separators=(",", ":"))
                + "\n"
            )
