"""Execution backends for the analytic baselines: Virtual, D-Fat-Tree, D-BB.

These adapters make the paper's comparison architectures *servable*: their
timing comes from the Sec. 6.1 latency models (in raw layers), while their
functional path reuses the models' exact query unitaries — page-by-page BB
accesses for Virtual QRAM, per-copy gate-level queries for the distributed
replicas.  Every slot additionally carries a predicted fidelity from the
Sec. 8.1 bounds (:mod:`repro.backends.noise`): the per-page BB bound
accumulated over the page loop for Virtual, the per-copy Fat-Tree / BB
bound (degraded by within-copy pipelining overlap) for the distributed
baselines.

Timing models (per window of ``k`` queries, all in raw layers):

* **Virtual** — ``log N`` outstanding queries time-multiplex the same
  physical pages (Table 1 lists the same latency for 1 and ``log N``
  queries), so a window of up to ``log N`` queries is admitted concurrently
  and drains in one query lifetime.
* **D-Fat-Tree** — queries round-robin over ``log N`` independent Fat-Tree
  copies; each copy pipelines its sub-batch at the gate-level feasible
  interval.
* **D-BB** — queries round-robin over ``log N`` independent BB QRAMs; each
  copy serves its sub-batch sequentially.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Sequence
from typing import Any

import numpy as np

from repro.backends.noise import (
    PredictedFidelityMixin,
    bb_bounds,
    fat_tree_bounds,
    pipelined_fidelities,
    virtual_bounds,
)
from repro.backends.protocol import WindowResult, ideal_output, output_fidelity
from repro.baselines.distributed import DistributedBBQRAM, DistributedFatTreeQRAM
from repro.baselines.virtual_qram import VirtualQRAM
from repro.core.query import QueryRequest
from repro.hardware.parameters import DEFAULT_PARAMETERS, HardwareParameters


class _ModelBackend(PredictedFidelityMixin):
    """Shared delegation for backends that wrap one architecture model."""

    def __init__(
        self, model: Any, parameters: HardwareParameters = DEFAULT_PARAMETERS
    ) -> None:
        # The model is duck-typed: Virtual and distributed QRAMs share the
        # capacity/address_width/latency surface but no common base class.
        self.model = model
        self.parameters = parameters

    @property
    def capacity(self) -> int:
        return self.model.capacity

    @property
    def address_width(self) -> int:
        return self.model.address_width

    @property
    def query_parallelism(self) -> int:
        return self.model.query_parallelism

    @property
    def qubit_count(self) -> int:
        return self.model.qubit_count

    @property
    def data(self) -> list[int]:
        return self.model.data

    def write_memory(self, address: int, value: int) -> None:
        self.model.write_memory(address, value)
        self.invalidate_predictions()

    def single_query_latency(self) -> float:
        return self.model.single_query_latency()

    def amortized_query_latency(self, num_queries: int | None = None) -> float:
        return self.model.amortized_query_latency(num_queries)

    @staticmethod
    def _functional_slot(
        model_query: Callable[..., Any],
        request: QueryRequest,
        data: Sequence[int],
    ) -> tuple[Any, float]:
        """Run one request through a model's ``query`` and score its fidelity."""
        if request.address_amplitudes is None:
            raise ValueError("functional execution requires address amplitudes")
        actual = model_query(
            request.address_amplitudes, initial_bus=request.initial_bus
        )
        return actual, output_fidelity(ideal_output(data, request), actual)


class VirtualBackend(_ModelBackend):
    """Serves traffic through one Virtual QRAM (Sec. 6.1).

    Args:
        capacity: memory size ``N``.
        data: optional classical memory contents.
        qram: adopt an existing :class:`VirtualQRAM`.
        parameters: noise model used for the predicted slot fidelities.
    """

    name = "Virtual"

    def __init__(
        self,
        capacity: int,
        data: Sequence[int] | None = None,
        qram: VirtualQRAM | None = None,
        parameters: HardwareParameters = DEFAULT_PARAMETERS,
    ) -> None:
        super().__init__(
            qram if qram is not None else VirtualQRAM(capacity, data),
            parameters=parameters,
        )

    def minimum_feasible_interval(self, num_queries: int = 2) -> int:
        """Outstanding queries are admitted concurrently (page-multiplexed)."""
        return 0

    def warm_schedule_caches(self) -> None:
        """Warm every page QRAM's shared executor and the window memos.

        Pages are BB QRAMs over page-local memory slices; each resolves its
        executor through the process-wide registry, so replicas of the same
        Virtual configuration share all page executors.  The shared
        fidelity vectors and timing windows of every admissible occupancy
        are pre-derived alongside.
        """
        for page in self.model.page_qrams():
            page.cached_executor()
        for occupancy in range(1, max(2, self.query_parallelism) + 1):
            self.timing_window(occupancy)

    def _window_offsets(
        self, batch_size: int
    ) -> tuple[int, float, tuple[float, ...], tuple[float, ...]]:
        lifetime = self.model.raw_query_layers
        parallelism = max(1, self.query_parallelism)
        # Queries beyond the parallelism run in later full rounds.  One
        # array expression per window: round * lifetime + 1 is exact
        # integer arithmetic in float64, and the finish expression keeps
        # the scalar's association `(start + lifetime) - 1`.
        rounds = np.arange(batch_size, dtype=np.int64) // parallelism
        starts_arr = rounds.astype(np.float64) * lifetime + 1.0
        finishes_arr = starts_arr + float(lifetime) - 1.0
        starts = tuple(starts_arr.tolist())
        finishes = tuple(finishes_arr.tolist())
        total = float(((batch_size - 1) // parallelism + 1) * lifetime)
        return 0, total, starts, finishes

    def _infidelity_bounds(
        self, parameters: HardwareParameters
    ) -> tuple[float, float]:
        return virtual_bounds(
            self.capacity, self.model.num_pages, self.model.page_size, parameters
        )

    def _prediction_profile(self) -> tuple[str, int, int, Hashable]:
        return (
            self.name,
            self.capacity,
            0,
            (self.model.num_pages, self.model.page_size, self.parameters),
        )

    def run_window(
        self, requests: Sequence[QueryRequest], functional: bool = True
    ) -> WindowResult:
        if not requests:
            raise ValueError("a window requires at least one request")
        if not functional:
            # Timing-only windows are pure schedule evaluations: one
            # memoized WindowResult per occupancy (the serving hot path).
            return self.timing_window(len(requests))
        interval, total, starts, finishes = self._window_offsets(len(requests))
        predicted = self.predicted_window_fidelities(len(requests))

        data = self.model.data
        outputs = []
        fidelities = []
        for request in requests:
            actual, fidelity = self._functional_slot(self.model.query, request, data)
            outputs.append(actual)
            fidelities.append(fidelity)
        return WindowResult(
            interval=interval,
            total_layers=total,
            start_offsets=starts,
            finish_offsets=finishes,
            outputs=tuple(outputs),
            fidelities=tuple(fidelities),
            predicted_fidelities=predicted,
        )


class _DistributedBackend(_ModelBackend):
    """Shared window logic for the replicated baselines.

    Slot ``s`` of a window runs on copy ``s mod C`` as that copy's
    ``s div C``-th local query; concrete subclasses define the per-copy
    admission interval and lifetime.  Only same-copy queries share
    hardware, so the crosstalk degradation applies within a copy's
    sub-batch and the offsets below (per-copy local slots) encode exactly
    that overlap structure.
    """

    def _copy_timing(self) -> tuple[int, int]:  # pragma: no cover - abstract
        """(per-copy admission interval, per-query lifetime) in raw layers."""
        raise NotImplementedError

    def minimum_feasible_interval(self, num_queries: int = 2) -> int:
        return self._copy_timing()[0]

    def warm_schedule_caches(self) -> None:
        """Warm the copies' shared executor and the window memos.

        All copies hold the same memory image, so the registry resolves
        every ``cached_executor`` call to one shared entry — warming is a
        single derivation no matter how many copies the model replicates.
        The shared fidelity vectors and timing windows of every admissible
        occupancy are pre-derived alongside.
        """
        for copy in self.model.copies:
            copy.cached_executor()
        self._copy_timing()
        for occupancy in range(1, max(2, self.query_parallelism) + 1):
            self.timing_window(occupancy)

    def _window_offsets(
        self, batch_size: int
    ) -> tuple[int, float, tuple[float, ...], tuple[float, ...]]:
        interval, lifetime = self._copy_timing()
        copies = self.model.num_copies
        # One array expression per window: local * interval + 1 is exact
        # integer arithmetic in float64, and the finish expression keeps
        # the scalar's association `(start + lifetime) - 1`.
        local_slots = np.arange(batch_size, dtype=np.int64) // copies
        starts_arr = local_slots.astype(np.float64) * interval + 1.0
        finishes_arr = starts_arr + float(lifetime) - 1.0
        starts = tuple(starts_arr.tolist())
        finishes = tuple(finishes_arr.tolist())
        total = float(((batch_size - 1) // copies) * interval + lifetime)
        return interval, total, starts, finishes

    def _prediction_profile(self) -> tuple[str, int, int, Hashable]:
        return (
            self.name,
            self.capacity,
            0,
            (self.model.num_copies, self.parameters),
        )

    def _compute_window_fidelities(self, batch_size: int) -> tuple[float, ...]:
        """Per-slot prediction with crosstalk restricted to same-copy slots.

        The generic offset-overlap model would couple slots on *different*
        copies (their residencies coincide in time but run on independent
        hardware); predicting each copy's sub-batch separately and
        interleaving the results keeps the degradation physical.
        """
        interval, lifetime = self._copy_timing()
        base, crosstalk = self._infidelity_bounds(self.parameters)
        copies = self.model.num_copies
        per_copy = [
            len(range(copy, batch_size, copies)) for copy in range(copies)
        ]
        sub_batches: dict[int, tuple[float, ...]] = {}
        for size in sorted(set(per_copy)):
            if size == 0:
                continue
            starts_arr = np.arange(size, dtype=np.float64) * interval + 1.0
            finishes_arr = starts_arr + float(lifetime) - 1.0
            sub_batches[size] = pipelined_fidelities(
                base,
                crosstalk,
                tuple(starts_arr.tolist()),
                tuple(finishes_arr.tolist()),
            )
        # Interleave the per-copy vectors back to window slot order with
        # strided slice assignment (slot s lives on copy s mod C).
        fidelities = [0.0] * batch_size
        for copy in range(copies):
            if per_copy[copy]:
                fidelities[copy::copies] = sub_batches[per_copy[copy]]
        return tuple(fidelities)

    def run_window(
        self, requests: Sequence[QueryRequest], functional: bool = True
    ) -> WindowResult:
        if not requests:
            raise ValueError("a window requires at least one request")
        if not functional:
            # Timing-only windows are pure schedule evaluations: one
            # memoized WindowResult per occupancy (the serving hot path).
            return self.timing_window(len(requests))
        interval, total, starts, finishes = self._window_offsets(len(requests))
        predicted = self.predicted_window_fidelities(len(requests))

        data = self.model.data
        copies = self.model.num_copies
        outputs = []
        fidelities = []
        for slot, request in enumerate(requests):
            copy = self.model.copies[slot % copies]
            actual, fidelity = self._functional_slot(copy.query, request, data)
            outputs.append(actual)
            fidelities.append(fidelity)
        return WindowResult(
            interval=interval,
            total_layers=total,
            start_offsets=starts,
            finish_offsets=finishes,
            outputs=tuple(outputs),
            fidelities=tuple(fidelities),
            predicted_fidelities=predicted,
        )


class DistributedFatTreeBackend(_DistributedBackend):
    """Serves traffic through ``log N`` independent Fat-Tree QRAMs."""

    name = "D-Fat-Tree"

    def __init__(
        self,
        capacity: int,
        data: Sequence[int] | None = None,
        qram: DistributedFatTreeQRAM | None = None,
        parameters: HardwareParameters = DEFAULT_PARAMETERS,
    ) -> None:
        super().__init__(
            qram if qram is not None else DistributedFatTreeQRAM(capacity, data),
            parameters=parameters,
        )

    def _copy_timing(self) -> tuple[int, int]:
        executor = self.model.copies[0].cached_executor()
        return executor.minimum_feasible_interval(), executor.relative_raw_latency()

    def _infidelity_bounds(
        self, parameters: HardwareParameters
    ) -> tuple[float, float]:
        return fat_tree_bounds(self.capacity, parameters)


class DistributedBBBackend(_DistributedBackend):
    """Serves traffic through ``log N`` independent BB QRAMs."""

    name = "D-BB"

    def __init__(
        self,
        capacity: int,
        data: Sequence[int] | None = None,
        qram: DistributedBBQRAM | None = None,
        parameters: HardwareParameters = DEFAULT_PARAMETERS,
    ) -> None:
        super().__init__(
            qram if qram is not None else DistributedBBQRAM(capacity, data),
            parameters=parameters,
        )

    def _copy_timing(self) -> tuple[int, int]:
        lifetime = self.model.copies[0].raw_query_layers
        return lifetime, lifetime

    def _infidelity_bounds(
        self, parameters: HardwareParameters
    ) -> tuple[float, float]:
        return bb_bounds(self.capacity, parameters)
