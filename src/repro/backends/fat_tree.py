"""Fat-Tree execution backend: query-level pipelined windows.

Wraps :class:`repro.core.qram.FatTreeQRAM` (and its memoized gate-level
executor) behind the :class:`repro.backends.protocol.QRAMBackend` surface.
A window of ``k <= log2(N)`` queries is admitted at the executor's minimum
feasible interval and drains in ``(k - 1) * interval + lifetime`` raw
layers — the paper's query-level pipelining.  Every slot carries a
predicted fidelity from the Sec. 8.1 bound evaluated at the backend's
:class:`~repro.hardware.parameters.HardwareParameters`, degraded by the
slot's pipelining overlap (:mod:`repro.backends.noise`).
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.backends.noise import PredictedFidelityMixin, fat_tree_bounds
from repro.backends.protocol import WindowResult
from repro.core.executor import FatTreeExecutor
from repro.core.qram import FatTreeQRAM
from repro.core.query import QueryRequest
from repro.hardware.parameters import DEFAULT_PARAMETERS, HardwareParameters


class FatTreeBackend(PredictedFidelityMixin):
    """Serves traffic through one Fat-Tree QRAM.

    Args:
        capacity: memory size ``N`` (power of two >= 2).
        data: optional classical memory contents.
        qram: adopt an existing :class:`FatTreeQRAM` instead of building one.
        parameters: noise model used for the predicted slot fidelities.
    """

    name = "Fat-Tree"

    def __init__(
        self,
        capacity: int,
        data: Sequence[int] | None = None,
        qram: FatTreeQRAM | None = None,
        parameters: HardwareParameters = DEFAULT_PARAMETERS,
    ) -> None:
        self.qram = qram if qram is not None else FatTreeQRAM(capacity, data)
        self.parameters = parameters

    # -------------------------------------------------------------- structure
    @property
    def capacity(self) -> int:
        return self.qram.capacity

    @property
    def address_width(self) -> int:
        return self.qram.address_width

    @property
    def query_parallelism(self) -> int:
        return self.qram.query_parallelism

    @property
    def qubit_count(self) -> int:
        return self.qram.qubit_count

    @property
    def data(self) -> list[int]:
        return self.qram.data

    def write_memory(self, address: int, value: int) -> None:
        self.qram.write_memory(address, value)
        self.invalidate_predictions()

    def cached_executor(self) -> FatTreeExecutor:
        """The underlying memoized gate-level executor."""
        return self.qram.cached_executor()

    def warm_schedule_caches(self) -> None:
        """Eagerly derive the shared schedule artefacts of this configuration.

        Resolves the executor through the process-wide
        :class:`~repro.schedule_cache.ScheduleCacheRegistry` and pre-derives
        the minimum feasible interval, the shared fidelity vector and the
        memoized timing window for every occupancy this backend can admit,
        so later replicas (autoscaled or forked) start from a warm cache.
        """
        executor = self.qram.cached_executor()
        for occupancy in range(1, max(2, self.query_parallelism) + 1):
            executor.minimum_feasible_interval(occupancy)
            self.timing_window(occupancy)

    # ----------------------------------------------------------------- timing
    def minimum_feasible_interval(self, num_queries: int = 2) -> int:
        return self.qram.cached_executor().minimum_feasible_interval(num_queries)

    def single_query_latency(self) -> float:
        return self.qram.single_query_latency()

    def amortized_query_latency(self, num_queries: int | None = None) -> float:
        return self.qram.amortized_query_latency(num_queries)

    def _window_offsets(
        self, batch_size: int
    ) -> tuple[int, float, tuple[float, ...], tuple[float, ...]]:
        executor = self.qram.cached_executor()
        interval = executor.minimum_feasible_interval(batch_size)
        lifetime = executor.relative_raw_latency()
        # All slots in one array expression (slot * interval + 1 is exact
        # integer arithmetic in float64, so this matches the scalar form
        # bitwise; the finish expression keeps the scalar's left-to-right
        # association `(start + lifetime) - 1`).
        starts_arr = np.arange(batch_size, dtype=np.float64) * interval + 1.0
        finishes_arr = starts_arr + float(lifetime) - 1.0
        starts = tuple(starts_arr.tolist())
        finishes = tuple(finishes_arr.tolist())
        total = float((batch_size - 1) * interval + lifetime)
        return interval, total, starts, finishes

    # --------------------------------------------------------------- fidelity
    def _infidelity_bounds(
        self, parameters: HardwareParameters
    ) -> tuple[float, float]:
        return fat_tree_bounds(self.capacity, parameters)

    def _prediction_profile(self) -> tuple[str, int, int, Hashable]:
        return self.name, self.capacity, 0, self.parameters

    # -------------------------------------------------------------- execution
    def run_window(
        self, requests: Sequence[QueryRequest], functional: bool = True
    ) -> WindowResult:
        """Pipeline one batch of queries through the cached executor.

        Requests are renumbered to window slots ``0..k-1`` before execution
        so the executor's schedule and lowering caches are shared across
        every window of a trace.
        """
        if not requests:
            raise ValueError("a window requires at least one request")
        if not functional:
            # Timing-only windows are pure schedule evaluations: one
            # memoized WindowResult per occupancy (the serving hot path).
            return self.timing_window(len(requests))
        interval, total, starts, finishes = self._window_offsets(len(requests))
        predicted = self.predicted_window_fidelities(len(requests))

        executor = self.qram.cached_executor()
        local = [
            QueryRequest(
                query_id=slot,
                address_amplitudes=request.address_amplitudes,
                request_time=request.request_time,
                qpu=request.qpu,
                initial_bus=request.initial_bus,
            )
            for slot, request in enumerate(requests)
        ]
        summary, outputs = executor.run_pipelined_queries(local, interval=interval)
        return WindowResult(
            interval=interval,
            total_layers=float(summary.total_layers),
            start_offsets=starts,
            finish_offsets=finishes,
            outputs=tuple(outputs[slot] for slot in range(len(requests))),
            fidelities=tuple(
                executor.query_fidelity(local[slot], outputs[slot])
                for slot in range(len(requests))
            ),
            predicted_fidelities=predicted,
        )
