"""The execution-backend protocol shared by every served QRAM architecture.

The serving layer (:mod:`repro.service`) drives traffic through *backends*:
objects that expose one architecture's capacity, query parallelism, admission
interval and a ``run_window`` primitive that executes one batch of queries
and reports per-slot timing, outputs and fidelities.  All five architectures
of the paper's evaluation (Fat-Tree, BB, Virtual, D-Fat-Tree, D-BB) provide
an adapter implementing this protocol, built through the single factory
:func:`repro.baselines.registry.build_backend` — the same registry that
drives the Tables 1-2 reproduction.

Timing convention: all window times are raw circuit layers relative to the
window's admission layer; slot ``s`` of a window starts at
``start_offsets[s]`` and finishes at ``finish_offsets[s]`` layers after
admission, and the backend is busy for ``total_layers`` layers.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.core.query import QueryRequest, ideal_query_output, output_fidelity

__all__ = [
    "QRAMBackend",
    "WindowResult",
    "ideal_output",
    "output_fidelity",
]


@dataclass(frozen=True)
class WindowResult:
    """Outcome of running one batch of queries on one backend.

    Attributes:
        interval: admission spacing between slots in raw layers (0 when the
            architecture admits the whole window concurrently).
        total_layers: raw layers until the window fully drains (the backend
            is busy for this long).
        start_offsets: per-slot start layer, relative to window admission.
        finish_offsets: per-slot finish layer, relative to window admission.
        outputs: per-slot output amplitudes over ``(address, bus)`` pairs,
            or ``None`` per slot for timing-only execution.
        fidelities: per-slot ``|<ideal|actual>|^2`` measured on a functional
            run; on timing-only runs backends report the analytic
            *predicted* fidelity here instead of ``None``.
        predicted_fidelities: per-slot analytic fidelity prediction from the
            backend's noise model (:mod:`repro.backends.noise`) — populated
            on functional and timing-only runs alike; defaults to mirroring
            ``fidelities`` for hand-built results.
    """

    interval: int
    total_layers: float
    start_offsets: tuple[float, ...]
    finish_offsets: tuple[float, ...]
    outputs: tuple[dict[tuple[int, int], complex] | None, ...]
    fidelities: tuple[float | None, ...]
    predicted_fidelities: tuple[float | None, ...] = ()

    def __post_init__(self) -> None:
        if not self.predicted_fidelities:
            object.__setattr__(self, "predicted_fidelities", self.fidelities)
        sizes = {
            len(self.start_offsets),
            len(self.finish_offsets),
            len(self.outputs),
            len(self.fidelities),
            len(self.predicted_fidelities),
        }
        if len(sizes) != 1:
            raise ValueError("per-slot fields must have equal lengths")
        if not self.start_offsets:
            raise ValueError("a window must contain at least one query")

    @property
    def batch_size(self) -> int:
        """Number of queries executed in the window."""
        return len(self.start_offsets)


@runtime_checkable
class QRAMBackend(Protocol):
    """What the serving layer requires of an executable QRAM architecture.

    Implementations wrap one architecture model (and, for the gate-level
    architectures, its cached executor) behind a uniform surface; see
    :mod:`repro.backends.fat_tree`, :mod:`repro.backends.bucket_brigade`
    and :mod:`repro.backends.analytic`.
    """

    @property
    def name(self) -> str:
        """Canonical architecture name (matches the registry key)."""
        ...

    @property
    def capacity(self) -> int:
        """Address-space size ``N`` served by this backend."""
        ...

    @property
    def address_width(self) -> int:
        """``log2(N)``."""
        ...

    @property
    def query_parallelism(self) -> int:
        """Concurrent queries one window may batch."""
        ...

    @property
    def qubit_count(self) -> int:
        """Physical qubits of the underlying hardware model."""
        ...

    def minimum_feasible_interval(self, num_queries: int = 2) -> int:
        """Smallest conflict-free admission spacing, in raw layers."""
        ...

    def predicted_query_fidelity(self) -> float:
        """Analytic fidelity of a lone query under the backend's noise model."""
        ...

    def predicted_window_fidelities(self, batch_size: int = 1) -> tuple[float, ...]:
        """Analytic per-slot fidelity of a window of ``batch_size`` queries,
        including pipelining-depth degradation."""
        ...

    def run_window(
        self, requests: Sequence[QueryRequest], functional: bool = True
    ) -> WindowResult:
        """Execute one batch of (backend-local) queries."""
        ...

    def write_memory(self, address: int, value: int) -> None:
        """Update one classical memory cell (invalidates cached schedules)."""
        ...

    def single_query_latency(self) -> float:
        """Weighted single-query latency (Table 1)."""
        ...

    def amortized_query_latency(self, num_queries: int | None = None) -> float:
        """Weighted amortized per-query latency (Table 1)."""
        ...


def ideal_output(
    data: Sequence[int], request: QueryRequest
) -> dict[tuple[int, int], complex]:
    """Ideal normalised output of a request per the query unitary of Eq. (1).

    Thin request-level wrapper over
    :func:`repro.core.query.ideal_query_output` — the one implementation
    the executors score against as well.
    """
    return ideal_query_output(
        data, dict(request.address_amplitudes or {}), request.initial_bus
    )
