"""Backend-agnostic execution engine for the QRAM serving layer.

Every architecture of the paper's evaluation is served through the same
:class:`~repro.backends.protocol.QRAMBackend` protocol:

* :mod:`repro.backends.protocol` — the protocol, the per-window result
  record and the ideal-output / fidelity helpers.
* :mod:`repro.backends.fat_tree` — Fat-Tree: pipelined windows on the
  memoized gate-level executor.
* :mod:`repro.backends.bucket_brigade` — BB: sequential windows on the
  (newly memoized) BB executor.
* :mod:`repro.backends.analytic` — Virtual / D-Fat-Tree / D-BB: model-based
  timing with exact functional queries.
* :mod:`repro.backends.noise` — predicted per-slot fidelity from the
  Sec. 8.1 bounds, including pipelining-depth degradation.
* :mod:`repro.backends.encoded` — QEC-encoded replica wrapper
  (``"<architecture>@d<k>"`` names, Table-5 resource model, logical
  error rates).

Backends are built by name through the single architecture factory,
:func:`repro.baselines.registry.build_backend`.
"""

from repro.backends.protocol import (
    QRAMBackend,
    WindowResult,
    ideal_output,
    output_fidelity,
)
from repro.backends.encoded import (
    EncodedBackend,
    encoded_backend_name,
    parse_encoded_name,
)
from repro.backends.noise import PredictedFidelityMixin, pipelined_fidelities
from repro.backends.fat_tree import FatTreeBackend
from repro.backends.bucket_brigade import BBBackend
from repro.backends.analytic import (
    DistributedBBBackend,
    DistributedFatTreeBackend,
    VirtualBackend,
)

__all__ = [
    "QRAMBackend",
    "WindowResult",
    "ideal_output",
    "output_fidelity",
    "FatTreeBackend",
    "BBBackend",
    "VirtualBackend",
    "DistributedFatTreeBackend",
    "DistributedBBBackend",
    "EncodedBackend",
    "PredictedFidelityMixin",
    "encoded_backend_name",
    "parse_encoded_name",
    "pipelined_fidelities",
]
