"""Backend-agnostic execution engine for the QRAM serving layer.

Every architecture of the paper's evaluation is served through the same
:class:`~repro.backends.protocol.QRAMBackend` protocol:

* :mod:`repro.backends.protocol` — the protocol, the per-window result
  record and the ideal-output / fidelity helpers.
* :mod:`repro.backends.fat_tree` — Fat-Tree: pipelined windows on the
  memoized gate-level executor.
* :mod:`repro.backends.bucket_brigade` — BB: sequential windows on the
  (newly memoized) BB executor.
* :mod:`repro.backends.analytic` — Virtual / D-Fat-Tree / D-BB: model-based
  timing with exact functional queries.

Backends are built by name through the single architecture factory,
:func:`repro.baselines.registry.build_backend`.
"""

from repro.backends.protocol import (
    QRAMBackend,
    WindowResult,
    ideal_output,
    output_fidelity,
)
from repro.backends.fat_tree import FatTreeBackend
from repro.backends.bucket_brigade import BBBackend
from repro.backends.analytic import (
    DistributedBBBackend,
    DistributedFatTreeBackend,
    VirtualBackend,
)

__all__ = [
    "QRAMBackend",
    "WindowResult",
    "ideal_output",
    "output_fidelity",
    "FatTreeBackend",
    "BBBackend",
    "VirtualBackend",
    "DistributedFatTreeBackend",
    "DistributedBBBackend",
]
