"""QEC-encoded backend variants: serve logical queries at a code distance.

Wraps any :class:`repro.backends.protocol.QRAMBackend` in the spec-level
resource and fidelity model of Sec. 8.3 so an elastic fleet can mix bare
and encoded replicas:

* **fidelity** — the wrapped architecture's Sec. 8.1 bound evaluated at
  the *logical* error rates of
  :func:`repro.fidelity.qec.encoded_parameters` (the threshold scaling
  ``p_L = A (p / p_th)^((d+1)/2)``), so an encoded replica predicts far
  higher slot fidelities than its bare twin;
* **resources** — every physical qubit becomes an ``[[m, 1, d]]`` logical
  qubit (``m = d^2`` for the assumed surface-code-like family), so the
  qubit count scales by ``m``;
* **timing** — the Table-5 pipelined-logical-query model: each raw layer
  stretches by the syndrome-extraction depth ``D`` and a logical query
  trails its ``m`` pipelined physical address qubits, giving per-slot
  latency ``D * t + m`` and logical parallelism ``max(1, parallelism / m)``
  (``D log2(N) + m`` and ``floor(log2(N) / m)`` for Fat-Tree, Table 5).

Encoded replicas report their *predicted* fidelity on functional windows
too: the gate-level executors simulate the bare circuit, whose measured
fidelity says nothing about the logical encoding; outputs still pass
through so functional serving keeps returning amplitudes.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from typing import Any

import numpy as np

from repro.backends.noise import PredictedFidelityMixin
from repro.backends.protocol import WindowResult
from repro.core.query import QueryRequest
from repro.fidelity.qec import DEFAULT_THRESHOLD, QECCode, encoded_parameters
from repro.hardware.parameters import HardwareParameters

__all__ = ["EncodedBackend", "encoded_backend_name", "parse_encoded_name"]

#: Suffix separator of encoded architecture names: ``"Fat-Tree@d3"``.
_DISTANCE_SEPARATOR = "@d"


def encoded_backend_name(architecture: str, distance: int) -> str:
    """The registry name of an encoded variant: ``"<architecture>@d<k>"``."""
    return f"{architecture}{_DISTANCE_SEPARATOR}{distance}"


def parse_encoded_name(name: str) -> tuple[str, int]:
    """Split ``"<architecture>@d<k>"`` into ``(architecture, distance)``.

    A bare architecture name parses as distance 1 (no encoding).

    Raises:
        ValueError: for a malformed distance suffix (``"@d"`` present but
            not followed by a positive integer).
    """
    base, separator, suffix = name.rpartition(_DISTANCE_SEPARATOR)
    if not separator:
        return name, 1
    try:
        distance = int(suffix)
    except ValueError:
        raise ValueError(
            f"malformed encoded architecture name {name!r}; expected "
            f"'<architecture>{_DISTANCE_SEPARATOR}<distance>'"
        ) from None
    if distance < 1:
        raise ValueError(f"code distance must be >= 1, got {distance}")
    return base, distance


class EncodedBackend(PredictedFidelityMixin):
    """A QEC-encoded replica of any serving backend.

    Args:
        backend: the bare backend to encode (any
            :class:`~repro.backends.protocol.QRAMBackend`).
        distance: code distance ``d`` (>= 2; use the bare backend for
            ``d = 1``).
        code: override the assumed ``[[d^2, 1, d]]`` surface-code-like
            code (controls ``m`` and the syndrome depth ``D``).
        threshold: threshold error rate of the code family.
    """

    def __init__(
        self,
        backend: Any,
        distance: int,
        code: QECCode | None = None,
        threshold: float = DEFAULT_THRESHOLD,
    ) -> None:
        if distance < 2:
            raise ValueError(
                "EncodedBackend needs distance >= 2; distance 1 is the bare backend"
            )
        self.backend = backend
        self.distance = distance
        self.code = (
            code
            if code is not None
            else QECCode(physical_qubits=distance * distance, distance=distance)
        )
        if self.code.distance != distance:
            raise ValueError("code distance must match the requested distance")
        self.threshold = threshold
        self.name = encoded_backend_name(backend.name, distance)
        self.parameters = encoded_parameters(
            backend.parameters, distance, threshold
        )

    # -------------------------------------------------------------- structure
    @property
    def capacity(self) -> int:
        return self.backend.capacity

    @property
    def address_width(self) -> int:
        return self.backend.address_width

    @property
    def query_parallelism(self) -> int:
        """Logical parallelism: ``m`` pipelined physical queries make one
        logical query (Table 5), never below 1."""
        return max(1, self.backend.query_parallelism // self.code.physical_qubits)

    @property
    def qubit_count(self) -> int:
        return self.code.physical_qubits * self.backend.qubit_count

    @property
    def data(self) -> list[int]:
        return self.backend.data

    def write_memory(self, address: int, value: int) -> None:
        self.backend.write_memory(address, value)
        self.invalidate_predictions()

    def warm_schedule_caches(self) -> None:
        """Warm the bare inner backend's shared schedule caches.

        Encoding rescales timing and fidelity analytically on top of the
        bare schedule, so the inner backend's registry entry dominates the
        cache footprint of an encoded replica; the wrapper's own shared
        fidelity vectors and timing windows are pre-derived alongside.
        """
        hook = getattr(self.backend, "warm_schedule_caches", None)
        if hook is not None:
            hook()
        for occupancy in range(1, max(2, self.query_parallelism) + 1):
            self.timing_window(occupancy)

    # ----------------------------------------------------------------- timing
    def minimum_feasible_interval(self, num_queries: int = 2) -> int:
        return self.code.syndrome_depth * self.backend.minimum_feasible_interval(
            num_queries
        )

    def single_query_latency(self) -> float:
        return (
            self.code.syndrome_depth * self.backend.single_query_latency()
            + self.code.physical_qubits
        )

    def amortized_query_latency(self, num_queries: int | None = None) -> float:
        return (
            self.code.syndrome_depth * self.backend.amortized_query_latency(num_queries)
            + self.code.physical_qubits
        )

    def _window_offsets(
        self, batch_size: int
    ) -> tuple[int, float, tuple[float, ...], tuple[float, ...]]:
        depth = self.code.syndrome_depth
        trailer = self.code.physical_qubits
        interval, total, starts, finishes = self.backend._window_offsets(batch_size)
        # One array expression per window: `depth * x` is a single IEEE
        # multiply either way, and the finish expression keeps the
        # scalar's association `(depth * finish) + trailer`.
        starts_arr = np.asarray(starts, dtype=np.float64) * depth
        finishes_arr = (
            np.asarray(finishes, dtype=np.float64) * depth + float(trailer)
        )
        return (
            depth * interval,
            depth * total + trailer,
            tuple(starts_arr.tolist()),
            tuple(finishes_arr.tolist()),
        )

    # --------------------------------------------------------------- fidelity
    def _infidelity_bounds(
        self, parameters: HardwareParameters
    ) -> tuple[float, float]:
        """The bare architecture's bounds, evaluated at the logical error
        rates this wrapper derived at construction."""
        return self.backend._infidelity_bounds(parameters)

    def _prediction_profile(self) -> tuple[str, int, int, Hashable] | None:
        """Compose the inner backend's registry identity with the code.

        The inner profile's ``extra`` rides along so everything the bare
        offsets depend on stays in the key; an inner backend without a
        registry identity keeps the encoded wrapper instance-local too.
        """
        inner = getattr(self.backend, "_prediction_profile", None)
        profile = inner() if inner is not None else None
        if profile is None:
            return None
        arch, capacity, _, extra = profile
        return (
            arch,
            capacity,
            self.distance,
            (
                extra,
                self.code.physical_qubits,
                self.code.syndrome_depth,
                self.parameters,
            ),
        )

    # -------------------------------------------------------------- execution
    def run_window(
        self, requests: Sequence[QueryRequest], functional: bool = True
    ) -> WindowResult:
        if not requests:
            raise ValueError("a window requires at least one request")
        if not functional:
            # Timing-only windows are pure schedule evaluations: one
            # memoized WindowResult per occupancy (the serving hot path).
            return self.timing_window(len(requests))
        interval, total, starts, finishes = self._window_offsets(len(requests))
        predicted = self.predicted_window_fidelities(len(requests))
        outputs = self.backend.run_window(requests, functional=True).outputs
        return WindowResult(
            interval=interval,
            total_layers=total,
            start_offsets=starts,
            finish_offsets=finishes,
            outputs=outputs,
            fidelities=predicted,
            predicted_fidelities=predicted,
        )
