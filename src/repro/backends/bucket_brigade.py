"""Bucket-Brigade execution backend: strictly sequential windows.

Wraps :class:`repro.bucket_brigade.qram.BucketBrigadeQRAM` behind the
:class:`repro.backends.protocol.QRAMBackend` surface.  BB QRAM cannot
overlap queries, so its query parallelism is 1 and a window of ``k``
queries drains in ``k * (8n + 1)`` raw layers; the functional path runs on
the QRAM's cached executor, whose memoized schedule and lowered gate
sequences make repeated windows cheap (the BB analogue of the Fat-Tree
schedule-cache fast path).  Predicted slot fidelities come from the BB
bound of Sec. 8.1; with sequential admission the slots never overlap, so
no pipelining degradation applies.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.backends.noise import PredictedFidelityMixin, bb_bounds
from repro.backends.protocol import WindowResult, ideal_output, output_fidelity
from repro.bucket_brigade.executor import BBExecutor
from repro.bucket_brigade.qram import BucketBrigadeQRAM
from repro.core.query import QueryRequest
from repro.hardware.parameters import DEFAULT_PARAMETERS, HardwareParameters


class BBBackend(PredictedFidelityMixin):
    """Serves traffic through one Bucket-Brigade QRAM.

    Args:
        capacity: memory size ``N`` (power of two >= 2).
        data: optional classical memory contents.
        qram: adopt an existing :class:`BucketBrigadeQRAM`.
        parameters: noise model used for the predicted slot fidelities.
    """

    name = "BB"

    def __init__(
        self,
        capacity: int,
        data: Sequence[int] | None = None,
        qram: BucketBrigadeQRAM | None = None,
        parameters: HardwareParameters = DEFAULT_PARAMETERS,
    ) -> None:
        self.qram = qram if qram is not None else BucketBrigadeQRAM(capacity, data)
        self.parameters = parameters

    # -------------------------------------------------------------- structure
    @property
    def capacity(self) -> int:
        return self.qram.capacity

    @property
    def address_width(self) -> int:
        return self.qram.address_width

    @property
    def query_parallelism(self) -> int:
        return self.qram.query_parallelism

    @property
    def qubit_count(self) -> int:
        return self.qram.qubit_count

    @property
    def data(self) -> list[int]:
        return self.qram.data

    def write_memory(self, address: int, value: int) -> None:
        self.qram.write_memory(address, value)
        self.invalidate_predictions()

    def cached_executor(self) -> BBExecutor:
        """The underlying memoized gate-level executor."""
        return self.qram.cached_executor()

    def warm_schedule_caches(self) -> None:
        """Resolve the shared executor through the process-wide registry.

        BB schedules are memoized per query slot inside the executor;
        warming the executor itself is what lets every replica of this
        memory image share those memos.  The shared fidelity vector and
        timing window of the one-query window (all BB admits) are
        pre-derived alongside.
        """
        self.qram.cached_executor()
        self.timing_window(1)

    # ----------------------------------------------------------------- timing
    def minimum_feasible_interval(self, num_queries: int = 2) -> int:
        """Sequential service: admissions are one full query apart."""
        return self.qram.raw_query_layers

    def single_query_latency(self) -> float:
        return self.qram.single_query_latency()

    def amortized_query_latency(self, num_queries: int | None = None) -> float:
        return self.qram.amortized_query_latency(num_queries)

    def _window_offsets(
        self, batch_size: int
    ) -> tuple[int, float, tuple[float, ...], tuple[float, ...]]:
        lifetime = self.qram.raw_query_layers
        # One array expression per window; exact integer arithmetic in
        # float64, association matching the scalar `(start + lifetime) - 1`.
        starts_arr = np.arange(batch_size, dtype=np.float64) * lifetime + 1.0
        finishes_arr = starts_arr + float(lifetime) - 1.0
        starts = tuple(starts_arr.tolist())
        finishes = tuple(finishes_arr.tolist())
        return lifetime, float(batch_size * lifetime), starts, finishes

    # --------------------------------------------------------------- fidelity
    def _infidelity_bounds(
        self, parameters: HardwareParameters
    ) -> tuple[float, float]:
        return bb_bounds(self.capacity, parameters)

    def _prediction_profile(self) -> tuple[str, int, int, Hashable]:
        return self.name, self.capacity, 0, self.parameters

    # -------------------------------------------------------------- execution
    def run_window(
        self, requests: Sequence[QueryRequest], functional: bool = True
    ) -> WindowResult:
        """Run one batch of queries back to back on the cached executor."""
        if not requests:
            raise ValueError("a window requires at least one request")
        if not functional:
            # Timing-only windows are pure schedule evaluations: one
            # memoized WindowResult per occupancy.
            return self.timing_window(len(requests))
        interval, total, starts, finishes = self._window_offsets(len(requests))
        predicted = self.predicted_window_fidelities(len(requests))

        executor = self.qram.cached_executor()
        outputs = []
        fidelities = []
        for slot, request in enumerate(requests):
            if request.address_amplitudes is None:
                raise ValueError("functional execution requires address amplitudes")
            state = executor.run_query(
                request.address_amplitudes,
                query=slot,
                initial_bus=request.initial_bus,
            )
            actual = executor.measured_output(state, query=slot)
            outputs.append(actual)
            fidelities.append(
                output_fidelity(ideal_output(executor.data, request), actual)
            )
        return WindowResult(
            interval=interval,
            total_layers=total,
            start_offsets=starts,
            finish_offsets=finishes,
            outputs=tuple(outputs),
            fidelities=tuple(fidelities),
            predicted_fidelities=predicted,
        )
