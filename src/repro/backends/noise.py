"""Predicted query fidelity for serving backends (Sec. 8.1 bounds, pipelined).

Gate-level execution only reports a *measured* fidelity when a window runs
functionally; timing-only serving used to report ``None`` and the serving
stack was blind to quality-of-result.  This module turns the paper's
analytic noise-resilience bounds into a *prediction* every backend can
attach to every slot of every window:

* the per-architecture base infidelity is the Sec. 8.1 bound evaluated at
  the backend's :class:`~repro.hardware.parameters.HardwareParameters`
  (``2 log2(N)^2 (eps0 + eps1 + eps2)`` for Fat-Tree, without ``eps2`` for
  BB; Virtual accumulates the per-page BB bound plus one MCX select error
  per page access);
* pipelining-depth degradation: a slot that shares the tree with other
  in-flight queries accrues crosstalk through the shared routers.  Each
  neighbour contributes its residency overlap fraction times a crosstalk
  bound of the same ``2 n^2`` form as the base, charged to the channel the
  concurrent streams actually share — the intra-node SWAP channel
  (``eps2``) for Fat-Tree's pipelined levels, the inter-node SWAP channel
  (``eps1``) for the BB-based architectures.  A lone query (batch size 1)
  reproduces the Table 3 bound exactly, and a sequential backend (BB)
  never overlaps, so its slots never degrade.

QEC-encoded variants (:mod:`repro.backends.encoded`) evaluate the same
expressions at the logical error rates of
:func:`repro.fidelity.qec.encoded_parameters`.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.bucket_brigade.tree import validate_capacity
from repro.fidelity.noise_resilience import (
    bb_query_infidelity,
    fat_tree_query_infidelity,
)
from repro.hardware.parameters import DEFAULT_PARAMETERS, HardwareParameters

__all__ = [
    "PredictedFidelityMixin",
    "bb_bounds",
    "fat_tree_bounds",
    "pipelined_fidelities",
    "virtual_bounds",
]


def fat_tree_bounds(
    capacity: int, parameters: HardwareParameters
) -> tuple[float, float]:
    """(base, per-neighbour crosstalk) infidelity bounds for Fat-Tree.

    The crosstalk bound charges one fully-overlapping in-flight neighbour
    the intra-node SWAP channel at the bound's ``2 n^2`` prefactor: the
    pipelined levels are exactly where concurrent queries share routers.
    """
    n = validate_capacity(capacity)
    base = fat_tree_query_infidelity(capacity, parameters)
    crosstalk = min(1.0, 2.0 * n * n * parameters.intra_node_swap_error)
    return base, crosstalk


def bb_bounds(capacity: int, parameters: HardwareParameters) -> tuple[float, float]:
    """(base, per-neighbour crosstalk) infidelity bounds for BB-type QRAMs."""
    n = validate_capacity(capacity)
    base = bb_query_infidelity(capacity, parameters)
    crosstalk = min(1.0, 2.0 * n * n * parameters.inter_node_swap_error)
    return base, crosstalk


def virtual_bounds(
    capacity: int,
    num_pages: int,
    page_size: int,
    parameters: HardwareParameters,
) -> tuple[float, float]:
    """(base, per-neighbour crosstalk) infidelity bounds for Virtual QRAM.

    A query is ``num_pages`` sequential page accesses, each a page-sized BB
    query plus one MCX page select (charged one CSWAP-equivalent error).
    """
    m = validate_capacity(page_size)
    per_page = bb_query_infidelity(page_size, parameters) + parameters.cswap_error
    base = min(1.0, num_pages * per_page)
    crosstalk = min(
        1.0, num_pages * 2.0 * m * m * parameters.inter_node_swap_error
    )
    return base, crosstalk


def pipelined_fidelities(
    base_infidelity: float,
    crosstalk_infidelity: float,
    start_offsets: Sequence[float],
    finish_offsets: Sequence[float],
) -> tuple[float, ...]:
    """Per-slot predicted fidelity of one window from its slot offsets.

    Slot ``s`` predicts ``1 - min(1, base + crosstalk * overlap_s)`` where
    ``overlap_s`` sums, over every other slot, the fraction of slot ``s``'s
    residency it spends coexisting with that slot in the hardware.
    """
    count = len(start_offsets)
    fidelities = []
    for s in range(count):
        duration = finish_offsets[s] - start_offsets[s] + 1
        overlap = 0.0
        for o in range(count):
            if o == s:
                continue
            shared = (
                min(finish_offsets[s], finish_offsets[o])
                - max(start_offsets[s], start_offsets[o])
                + 1
            )
            if shared > 0:
                overlap += shared / duration
        infidelity = min(1.0, base_infidelity + crosstalk_infidelity * overlap)
        fidelities.append(1.0 - infidelity)
    return tuple(fidelities)


class PredictedFidelityMixin:
    """Shared predicted-fidelity surface of every serving backend.

    Concrete backends provide ``_window_offsets(batch_size)`` — the same
    timing model ``run_window`` uses, as ``(interval, total_layers,
    start_offsets, finish_offsets)`` — and ``_infidelity_bounds(parameters)``
    returning the ``(base, crosstalk)`` pair of their architecture under a
    given noise model (encoded variants pass logical error rates through
    the same hook).
    Predictions are memoized per batch size: the noise model of a backend
    is fixed at construction, so a window shape predicts once.
    """

    #: Noise model the predictions are evaluated at (set by subclasses).
    parameters: HardwareParameters = DEFAULT_PARAMETERS

    def _window_offsets(
        self, batch_size: int
    ) -> tuple[int, float, tuple[float, ...], tuple[float, ...]]:
        raise NotImplementedError

    def _infidelity_bounds(
        self, parameters: HardwareParameters
    ) -> tuple[float, float]:
        raise NotImplementedError

    def predicted_window_fidelities(self, batch_size: int = 1) -> tuple[float, ...]:
        """Analytic per-slot fidelity of a window of ``batch_size`` queries."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        cache = self.__dict__.setdefault("_predicted_fidelity_cache", {})
        if batch_size not in cache:
            _, _, starts, finishes = self._window_offsets(batch_size)
            base, crosstalk = self._infidelity_bounds(self.parameters)
            cache[batch_size] = pipelined_fidelities(base, crosstalk, starts, finishes)
        return cache[batch_size]

    def predicted_query_fidelity(self) -> float:
        """Analytic fidelity of a lone query (the Sec. 8.1 / Table 3 bound)."""
        return self.predicted_window_fidelities(1)[0]

    def invalidate_predictions(self) -> None:
        """Drop memoized fidelity predictions.

        Must be called by any mutation of the state predictions are
        computed from (the underlying memory image / timing model), so a
        stale window shape is never served — the pairing simlint's SIM003
        enforces.
        """
        self.__dict__.pop("_predicted_fidelity_cache", None)
