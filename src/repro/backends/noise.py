"""Predicted query fidelity for serving backends (Sec. 8.1 bounds, pipelined).

Gate-level execution only reports a *measured* fidelity when a window runs
functionally; timing-only serving used to report ``None`` and the serving
stack was blind to quality-of-result.  This module turns the paper's
analytic noise-resilience bounds into a *prediction* every backend can
attach to every slot of every window:

* the per-architecture base infidelity is the Sec. 8.1 bound evaluated at
  the backend's :class:`~repro.hardware.parameters.HardwareParameters`
  (``2 log2(N)^2 (eps0 + eps1 + eps2)`` for Fat-Tree, without ``eps2`` for
  BB; Virtual accumulates the per-page BB bound plus one MCX select error
  per page access);
* pipelining-depth degradation: a slot that shares the tree with other
  in-flight queries accrues crosstalk through the shared routers.  Each
  neighbour contributes its residency overlap fraction times a crosstalk
  bound of the same ``2 n^2`` form as the base, charged to the channel the
  concurrent streams actually share — the intra-node SWAP channel
  (``eps2``) for Fat-Tree's pipelined levels, the inter-node SWAP channel
  (``eps1``) for the BB-based architectures.  A lone query (batch size 1)
  reproduces the Table 3 bound exactly, and a sequential backend (BB)
  never overlaps, so its slots never degrade.

QEC-encoded variants (:mod:`repro.backends.encoded`) evaluate the same
expressions at the logical error rates of
:func:`repro.fidelity.qec.encoded_parameters`.

Evaluation-order contract
-------------------------

:func:`pipelined_fidelities` evaluates all window slots in one array
expression; :func:`pipelined_fidelities_scalar` is the original per-slot
loop, kept verbatim as the pinned oracle.  The two are **bit-identical**
by construction, not by accident:

* every per-element operation (``min``/``max`` of offsets, the ``+ 1``,
  the division by the slot's duration, the final ``base + crosstalk *
  overlap``) is a single IEEE-754 double operation in both forms, so the
  elementwise intermediates match bitwise;
* the overlap sum accumulates **left to right** in neighbour order via a
  row-wise cumulative sum (``np.cumsum`` is sequential), exactly the
  order the scalar ``+=`` loop uses — never a pairwise/tree reduction
  (``np.sum``), which would round differently from eight terms on;
* non-overlapping neighbours (and the excluded self term on the
  diagonal) contribute ``+0.0``, which is bitwise-neutral in the
  accumulation: the running overlap is always ``+0.0`` or positive, and
  ``x + 0.0 == x`` bitwise for such ``x``.

The parity is pinned across all five architectures and their encoded
``@d<k>`` variants in ``tests/test_vectorized_parity.py``.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.backends.protocol import WindowResult
from repro.bucket_brigade.tree import validate_capacity
from repro.fidelity.noise_resilience import (
    bb_query_infidelity,
    fat_tree_query_infidelity,
)
from repro.hardware.parameters import DEFAULT_PARAMETERS, HardwareParameters
from repro.schedule_cache import default_registry

__all__ = [
    "PredictedFidelityMixin",
    "bb_bounds",
    "fat_tree_bounds",
    "pipelined_fidelities",
    "pipelined_fidelities_scalar",
    "virtual_bounds",
]


def fat_tree_bounds(
    capacity: int, parameters: HardwareParameters
) -> tuple[float, float]:
    """(base, per-neighbour crosstalk) infidelity bounds for Fat-Tree.

    The crosstalk bound charges one fully-overlapping in-flight neighbour
    the intra-node SWAP channel at the bound's ``2 n^2`` prefactor: the
    pipelined levels are exactly where concurrent queries share routers.
    """
    n = validate_capacity(capacity)
    base = fat_tree_query_infidelity(capacity, parameters)
    crosstalk = min(1.0, 2.0 * n * n * parameters.intra_node_swap_error)
    return base, crosstalk


def bb_bounds(capacity: int, parameters: HardwareParameters) -> tuple[float, float]:
    """(base, per-neighbour crosstalk) infidelity bounds for BB-type QRAMs."""
    n = validate_capacity(capacity)
    base = bb_query_infidelity(capacity, parameters)
    crosstalk = min(1.0, 2.0 * n * n * parameters.inter_node_swap_error)
    return base, crosstalk


def virtual_bounds(
    capacity: int,
    num_pages: int,
    page_size: int,
    parameters: HardwareParameters,
) -> tuple[float, float]:
    """(base, per-neighbour crosstalk) infidelity bounds for Virtual QRAM.

    A query is ``num_pages`` sequential page accesses, each a page-sized BB
    query plus one MCX page select (charged one CSWAP-equivalent error).
    """
    m = validate_capacity(page_size)
    per_page = bb_query_infidelity(page_size, parameters) + parameters.cswap_error
    base = min(1.0, num_pages * per_page)
    crosstalk = min(
        1.0, num_pages * 2.0 * m * m * parameters.inter_node_swap_error
    )
    return base, crosstalk


def pipelined_fidelities(
    base_infidelity: float,
    crosstalk_infidelity: float,
    start_offsets: Sequence[float],
    finish_offsets: Sequence[float],
) -> tuple[float, ...]:
    """Per-slot predicted fidelity of one window from its slot offsets.

    Slot ``s`` predicts ``1 - min(1, base + crosstalk * overlap_s)`` where
    ``overlap_s`` sums, over every other slot, the fraction of slot ``s``'s
    residency it spends coexisting with that slot in the hardware.

    All slots are evaluated in one array expression; see the module
    docstring's evaluation-order contract for why the result is
    bit-identical to :func:`pipelined_fidelities_scalar`.
    """
    starts = np.asarray(start_offsets, dtype=np.float64)
    finishes = np.asarray(finish_offsets, dtype=np.float64)
    durations = finishes - starts + 1.0
    # shared[s, o] = min(fin_s, fin_o) - max(start_s, start_o) + 1, the
    # same three IEEE ops the scalar loop performs per neighbour.
    shared = (
        np.minimum(finishes[:, None], finishes[None, :])
        - np.maximum(starts[:, None], starts[None, :])
        + 1.0
    )
    terms = np.where(shared > 0.0, shared / durations[:, None], 0.0)
    # The scalar loop skips o == s; a masked 0.0 in its place is
    # bitwise-neutral in the left-to-right accumulation below.
    np.fill_diagonal(terms, 0.0)
    # Row-wise cumulative sum = the scalar `overlap += ...` order exactly
    # (sequential left-to-right, never numpy's pairwise np.sum).
    overlaps = np.cumsum(terms, axis=1)[:, -1]
    infidelities = np.minimum(
        1.0, base_infidelity + crosstalk_infidelity * overlaps
    )
    return tuple((1.0 - infidelities).tolist())


def pipelined_fidelities_scalar(
    base_infidelity: float,
    crosstalk_infidelity: float,
    start_offsets: Sequence[float],
    finish_offsets: Sequence[float],
) -> tuple[float, ...]:
    """The original per-slot loop, kept verbatim as the pinned oracle.

    Serving always goes through the vectorized
    :func:`pipelined_fidelities`; this reference exists so the parity
    tests can assert bit-identity against an implementation whose
    evaluation order is self-evident.  (The ``_scalar`` suffix marks it
    exempt from simlint's SIM008 hot-loop rule.)
    """
    count = len(start_offsets)
    fidelities = []
    for s in range(count):
        duration = finish_offsets[s] - start_offsets[s] + 1
        overlap = 0.0
        for o in range(count):
            if o == s:
                continue
            shared = (
                min(finish_offsets[s], finish_offsets[o])
                - max(start_offsets[s], start_offsets[o])
                + 1
            )
            if shared > 0:
                overlap += shared / duration
        infidelity = min(1.0, base_infidelity + crosstalk_infidelity * overlap)
        fidelities.append(1.0 - infidelity)
    return tuple(fidelities)


class PredictedFidelityMixin:
    """Shared predicted-fidelity surface of every serving backend.

    Concrete backends provide ``_window_offsets(batch_size)`` — the same
    timing model ``run_window`` uses, as ``(interval, total_layers,
    start_offsets, finish_offsets)`` — and ``_infidelity_bounds(parameters)``
    returning the ``(base, crosstalk)`` pair of their architecture under a
    given noise model (encoded variants pass logical error rates through
    the same hook).

    Predictions are memoized at two levels.  The instance memo
    (``_predicted_fidelity_cache``) keeps hot-path lookups a dict hit; the
    process-wide :class:`~repro.schedule_cache.ScheduleCacheRegistry`
    shares the derived per-occupancy vectors across every replica of the
    same configuration — keyed ``(arch, capacity, occupancy, distance)``
    plus the backend's :meth:`_prediction_profile` — so autoscaled
    replicas and forked workers inherit warm predictions instead of
    re-deriving them.  Backends whose profile is ``None`` (duck-typed
    stand-ins without a registry identity) fall back to the instance memo
    alone.
    """

    #: Noise model the predictions are evaluated at (set by subclasses).
    parameters: HardwareParameters = DEFAULT_PARAMETERS

    def _window_offsets(
        self, batch_size: int
    ) -> tuple[int, float, tuple[float, ...], tuple[float, ...]]:
        raise NotImplementedError

    def _infidelity_bounds(
        self, parameters: HardwareParameters
    ) -> tuple[float, float]:
        raise NotImplementedError

    def _prediction_profile(
        self,
    ) -> tuple[str, int, int, Hashable] | None:
        """Registry identity ``(arch, capacity, distance, extra)`` of this
        backend's predictions, or ``None`` to keep them instance-local.

        Together with the window occupancy the profile must *uniquely
        determine* the prediction: ``extra`` carries everything beyond the
        named dimensions the offsets and bounds are computed from (the
        noise parameters, structural counts like pages or copies).
        Predictions never depend on the classical memory contents, so a
        ``write_memory`` cannot stale a shared vector — write-invalidation
        only needs to drop the per-instance memos
        (:meth:`invalidate_predictions`).
        """
        return None

    def _compute_window_fidelities(self, batch_size: int) -> tuple[float, ...]:
        """Derive one window's per-slot predictions (uncached)."""
        _, _, starts, finishes = self._window_offsets(batch_size)
        base, crosstalk = self._infidelity_bounds(self.parameters)
        return pipelined_fidelities(base, crosstalk, starts, finishes)

    def predicted_window_fidelities(self, batch_size: int = 1) -> tuple[float, ...]:
        """Analytic per-slot fidelity of a window of ``batch_size`` queries."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        cache = self.__dict__.setdefault("_predicted_fidelity_cache", {})
        fidelities = cache.get(batch_size)
        if fidelities is None:
            profile = self._prediction_profile()
            if profile is None:
                fidelities = self._compute_window_fidelities(batch_size)
            else:
                arch, capacity, distance, extra = profile
                fidelities = default_registry().fidelity_vector(
                    arch,
                    capacity,
                    batch_size,
                    self._make_window_fidelities,
                    distance=distance,
                    extra=extra,
                )
            cache[batch_size] = fidelities
        return fidelities

    def _make_window_fidelities(self, batch_size: int) -> tuple[float, ...]:
        """Registry factory hook (bound method, called on a cache miss)."""
        return self._compute_window_fidelities(batch_size)

    def timing_window(self, batch_size: int) -> WindowResult:
        """Memoized timing-only :class:`WindowResult` for one occupancy.

        Non-functional windows are pure schedule evaluations — offsets and
        predicted fidelities depend only on the occupancy — so the serving
        hot path's ``run_window(..., functional=False)`` collapses to one
        dict hit per window.  Invalidated together with the prediction
        memos (:meth:`invalidate_predictions`).
        """
        cache = self.__dict__.setdefault("_timing_window_cache", {})
        result = cache.get(batch_size)
        if result is None:
            predicted = self.predicted_window_fidelities(batch_size)
            interval, total, starts, finishes = self._window_offsets(batch_size)
            result = WindowResult(
                interval=interval,
                total_layers=total,
                start_offsets=starts,
                finish_offsets=finishes,
                outputs=(None,) * batch_size,
                fidelities=predicted,
                predicted_fidelities=predicted,
            )
            cache[batch_size] = result
        return result

    def predicted_query_fidelity(self) -> float:
        """Analytic fidelity of a lone query (the Sec. 8.1 / Table 3 bound)."""
        return self.predicted_window_fidelities(1)[0]

    def invalidate_predictions(self) -> None:
        """Drop memoized fidelity predictions and timing windows.

        Must be called by any mutation of the state predictions are
        computed from (the underlying memory image / timing model), so a
        stale window shape is never served — the pairing simlint's SIM003
        enforces.
        """
        self.__dict__.pop("_predicted_fidelity_cache", None)
        self.__dict__.pop("_timing_window_cache", None)
