"""Pluggable admission policies for queued QRAM requests.

This is the one coherent policy abstraction the serving layer uses.  The
historical :class:`repro.scheduling.fifo.SchedulingPolicy` enum named the
same concept but could not carry state or new orderings; it is kept as a
deprecated alias and every entry point that accepted it still does —
:func:`as_policy` maps enum members (and plain strings) onto policy objects.

Policies:

* :class:`FIFOPolicy` — arrival order; provably latency-optimal on a
  pipelined shared QRAM (Sec. A.2).
* :class:`LIFOPolicy` — newest first (the adversarial comparison).
* :class:`RandomPolicy` — uniformly random admission (seeded).
* :class:`PriorityPolicy` — highest :attr:`QueryRequest.priority` first,
  FIFO within a priority level.
* :class:`EDFPolicy` — earliest :attr:`QueryRequest.deadline` first
  (best-effort requests last), the admission order for SLO-bounded
  serving through the discrete-event engine.

Shard *placement* (which backend a request runs on) is a separate
decision: address-interleaved services derive it from the address, while
replicated fleets use shortest-queue placement — see
``QRAMService(placement="shortest-queue")``.
"""

from __future__ import annotations

import math
import random
import warnings

from repro.core.query import QueryRequest
from repro.scheduling.fifo import SchedulingPolicy


class AdmissionPolicy:
    """Selects which queued requests enter the next pipeline window.

    ``select`` removes up to ``count`` requests from ``queue`` (in place)
    and returns them in admission order.
    """

    name: str = "admission"

    def select(
        self, queue: list[QueryRequest], count: int, now: float
    ) -> list[QueryRequest]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class FIFOPolicy(AdmissionPolicy):
    """Admit in arrival order (latency-optimal, Sec. A.2)."""

    name = "fifo"

    def select(
        self, queue: list[QueryRequest], count: int, now: float
    ) -> list[QueryRequest]:
        batch = queue[:count]
        del queue[:count]
        return batch


class LIFOPolicy(AdmissionPolicy):
    """Admit newest first."""

    name = "lifo"

    def select(
        self, queue: list[QueryRequest], count: int, now: float
    ) -> list[QueryRequest]:
        return [queue.pop() for _ in range(min(count, len(queue)))]


class RandomPolicy(AdmissionPolicy):
    """Admit uniformly at random (seeded for reproducibility)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def select(
        self, queue: list[QueryRequest], count: int, now: float
    ) -> list[QueryRequest]:
        return [
            queue.pop(self._rng.randrange(len(queue)))
            for _ in range(min(count, len(queue)))
        ]


class PriorityPolicy(AdmissionPolicy):
    """Admit highest :attr:`QueryRequest.priority` first, FIFO within a level."""

    name = "priority"

    def select(
        self, queue: list[QueryRequest], count: int, now: float
    ) -> list[QueryRequest]:
        order = sorted(
            range(len(queue)),
            key=lambda i: (
                -getattr(queue[i], "priority", 0),
                queue[i].request_time,
                queue[i].query_id,
            ),
        )
        picked = order[: min(count, len(queue))]
        batch = [queue[i] for i in picked]
        for i in sorted(picked, reverse=True):
            del queue[i]
        return batch


class EDFPolicy(AdmissionPolicy):
    """Admit earliest deadline first; best-effort requests (no deadline)
    are served after every deadline-carrying one, FIFO among themselves."""

    name = "edf"

    def select(
        self, queue: list[QueryRequest], count: int, now: float
    ) -> list[QueryRequest]:
        order = sorted(
            range(len(queue)),
            key=lambda i: (
                queue[i].deadline if queue[i].deadline is not None else math.inf,
                queue[i].request_time,
                queue[i].query_id,
            ),
        )
        picked = order[: min(count, len(queue))]
        batch = [queue[i] for i in picked]
        for i in sorted(picked, reverse=True):
            del queue[i]
        return batch


_BY_NAME: dict[str, type[AdmissionPolicy]] = {
    "fifo": FIFOPolicy,
    "lifo": LIFOPolicy,
    "random": RandomPolicy,
    "priority": PriorityPolicy,
    "edf": EDFPolicy,
}


def policy_names() -> tuple[str, ...]:
    """The accepted admission-policy names, sorted (the ``WorkloadSpec`` /
    CLI vocabulary)."""
    return tuple(sorted(_BY_NAME))


def as_policy(
    policy: AdmissionPolicy | SchedulingPolicy | str, seed: int = 0
) -> AdmissionPolicy:
    """Coerce any accepted policy designation into an :class:`AdmissionPolicy`.

    Args:
        policy: a policy object (returned as-is), a deprecated
            :class:`SchedulingPolicy` enum member (emits a
            :class:`DeprecationWarning`), or a name
            ("fifo" / "lifo" / "random" / "priority" / "edf").
        seed: RNG seed used when a :class:`RandomPolicy` must be built.

    Raises:
        KeyError: for unknown policy names.
        TypeError: for unsupported designations.
    """
    if isinstance(policy, AdmissionPolicy):
        return policy
    if isinstance(policy, SchedulingPolicy):
        warnings.warn(
            "SchedulingPolicy is deprecated; pass an AdmissionPolicy object "
            f"or its name (e.g. {policy.value!r}) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        policy = policy.value
    if isinstance(policy, str):
        name = policy.casefold()
        if name not in _BY_NAME:
            raise KeyError(
                f"unknown policy {policy!r}; expected one of {sorted(_BY_NAME)}"
            )
        cls = _BY_NAME[name]
        return cls(seed) if cls is RandomPolicy else cls()
    raise TypeError(f"cannot interpret {policy!r} as an admission policy")
