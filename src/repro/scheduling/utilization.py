"""Utilization accounting helpers for shared QRAMs (Sec. 5.1, Fig. 7)."""

from __future__ import annotations


def utilization_from_busy_intervals(
    intervals: list[tuple[float, float]],
    horizon: float,
    parallelism: int = 1,
) -> float:
    """Average utilization from per-query busy intervals.

    Utilization at time ``t`` is (queries in flight) / ``parallelism``; the
    returned value is its time average over ``[0, horizon]``, clipped to 1.

    Args:
        intervals: per-query (start, finish) service intervals.
        horizon: total observation window in weighted layers.
        parallelism: the QRAM's query parallelism.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1")
    busy = sum(max(0.0, min(end, horizon) - max(start, 0.0)) for start, end in intervals)
    return min(1.0, busy / (parallelism * horizon))


def steady_state_utilization(
    processing_layers: float,
    weighted_query_latency: float,
    admission_interval: float,
    parallelism: int,
    num_algorithms: int,
) -> float:
    """Closed-form steady-state utilization of the synthetic workload.

    Each of ``num_algorithms`` algorithms issues one query every
    ``weighted_query_latency + processing_layers`` layers (query + processing).  The
    QRAM can absorb one query per ``admission_interval`` up to its
    parallelism.  Utilization is offered load / capacity, clipped to 1:

        U = min(1, num_algorithms * weighted_query_latency /
                    (parallelism * (weighted_query_latency + processing_layers)))

    when the admission rate is not the bottleneck, and is additionally capped
    by ``(weighted_query_latency / admission_interval) / parallelism`` per algorithm
    stream otherwise.
    """
    if num_algorithms < 1:
        return 0.0
    cycle = weighted_query_latency + processing_layers
    offered = num_algorithms * weighted_query_latency / cycle
    capacity = parallelism
    # The admission interval caps the sustainable completion rate as well.
    max_rate_queries_per_layer = 1.0 / admission_interval
    offered_rate = num_algorithms / cycle
    if offered_rate > max_rate_queries_per_layer:
        offered = max_rate_queries_per_layer * weighted_query_latency
    return min(1.0, offered / capacity)


def fig7_total_time(address_width: int, processing_layers: float) -> float:
    """Total time of the 3-algorithm example of Fig. 7: ``30 n + 2 d + 17``.

    Three algorithms each run (query, processing, query, processing, query):
    the paper reports a total of ``30 n + 2 d + 17`` raw layers with per-query
    latency ``10 n - 1``.
    """
    return 30 * address_width + 2 * processing_layers + 17
