"""Discrete-event simulation of algorithms sharing one QRAM.

This is the engine behind Fig. 7 (scheduling diagram / utilization) and
Fig. 10 (synthetic-algorithm heat maps).  Each *algorithm* (running on its
own QPU) alternates a QRAM query and ``d`` layers of local processing, for a
fixed number of rounds.  The shared QRAM is described by a
:class:`QRAMServiceModel` — its query latency, admission interval (pipeline
interval) and query parallelism — so the same simulator covers BB, Fat-Tree,
Virtual and the distributed baselines.

All times are in weighted circuit layers (fast layers = 1/8).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


@dataclass(frozen=True)
class QRAMServiceModel:
    """Timing description of a shared QRAM as seen by the scheduler.

    Attributes:
        name: architecture name (for reports).
        weighted_query_latency: weighted layers from admission to completion of one
            query.
        admission_interval: minimum weighted layers between admissions
            (equals ``weighted_query_latency`` for non-pipelined architectures).
        parallelism: maximum queries in flight.
    """

    name: str
    weighted_query_latency: float
    admission_interval: float
    parallelism: int

    def __post_init__(self) -> None:
        if self.weighted_query_latency <= 0 or self.admission_interval <= 0:
            raise ValueError("latencies must be positive")
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")

    @classmethod
    def from_architecture(cls, qram) -> "QRAMServiceModel":
        """Build a service model from any registered architecture object."""
        latency = qram.single_query_latency()
        parallelism = qram.query_parallelism
        if parallelism > 1:
            interval = qram.amortized_query_latency()
        else:
            interval = latency
        return cls(
            name=getattr(qram, "name", type(qram).__name__),
            weighted_query_latency=latency,
            admission_interval=interval,
            parallelism=parallelism,
        )


@dataclass
class AlgorithmWorkload:
    """One algorithm alternating queries and processing (Sec. 6.3).

    Attributes:
        algorithm_id: identifier.
        rounds: number of (query, processing) repetitions.
        processing_layers: QPU processing time ``d`` between queries.
        start_time: when the algorithm starts.
    """

    algorithm_id: int
    rounds: int
    processing_layers: float
    start_time: float = 0.0


@dataclass
class SimulationReport:
    """Results of a shared-QRAM contention simulation.

    Attributes:
        model: the QRAM service model simulated.
        overall_depth: completion time of the last algorithm (overall
            algorithm depth, the quantity plotted in Fig. 10 a1/a2).
        per_algorithm_finish: completion time of each algorithm.
        qram_busy_layers: total layers during which at least one query was in
            flight.
        qram_query_layers: sum over queries of their service time (used for
            utilization normalised by parallelism).
        average_utilization: mean in-flight queries / parallelism over the
            busy-or-waiting makespan (Fig. 10 b1/b2).
        total_queries: number of queries served.
        total_queue_delay_layers: total layers queries spent waiting for admission.
    """

    model: QRAMServiceModel
    overall_depth: float
    per_algorithm_finish: dict[int, float]
    qram_busy_layers: float
    qram_query_layers: float
    average_utilization: float
    total_queries: int
    total_queue_delay_layers: float


class SharedQRAMSimulation:
    """Simulates algorithms contending for a shared QRAM."""

    def __init__(self, model: QRAMServiceModel) -> None:
        self.model = model

    def run(self, workloads: list[AlgorithmWorkload]) -> SimulationReport:
        """Run all workloads to completion and report depth / utilization."""
        if not workloads:
            raise ValueError("at least one workload is required")
        model = self.model

        # Event queue of (time, sequence, kind, algorithm_id).
        events: list[tuple[float, int, str, int]] = []
        sequence = 0
        remaining = {w.algorithm_id: w.rounds for w in workloads}
        processing = {w.algorithm_id: w.processing_layers for w in workloads}
        finish_times: dict[int, float] = {}
        for w in workloads:
            if w.rounds < 1:
                finish_times[w.algorithm_id] = w.start_time
                continue
            heapq.heappush(events, (w.start_time, sequence, "request", w.algorithm_id))
            sequence += 1

        waiting: list[tuple[float, int, int]] = []  # (request_time, seq, algorithm)
        in_flight: list[float] = []
        next_admission = 0.0
        busy_intervals: list[tuple[float, float]] = []
        query_intervals: list[tuple[float, float]] = []
        total_queue_delay_layers = 0.0
        total_queries = 0

        def try_admit(now: float) -> None:
            nonlocal next_admission, sequence, total_queue_delay_layers, total_queries
            while waiting:
                in_flight[:] = [f for f in in_flight if f > now]
                if len(in_flight) >= model.parallelism or now < next_admission:
                    break
                request_time, _, algorithm = heapq.heappop(waiting)
                start = now
                finish = start + model.weighted_query_latency
                in_flight.append(finish)
                next_admission = start + model.admission_interval
                busy_intervals.append((start, finish))
                query_intervals.append((start, finish))
                total_queue_delay_layers += start - request_time
                total_queries += 1
                heapq.heappush(events, (finish, sequence, "complete", algorithm))
                sequence += 1

        def schedule_retry(now: float) -> None:
            nonlocal sequence
            if not waiting:
                return
            in_flight_active = [f for f in in_flight if f > now]
            candidates = [next_admission]
            if len(in_flight_active) >= model.parallelism and in_flight_active:
                candidates.append(min(in_flight_active))
            retry = max(now, min(candidates)) if candidates else now
            if retry > now:
                heapq.heappush(events, (retry, sequence, "retry", -1))
                sequence += 1

        while events:
            now, _, kind, algorithm = heapq.heappop(events)
            if kind == "request":
                heapq.heappush(waiting, (now, sequence, algorithm))
                sequence += 1
            elif kind == "complete":
                remaining[algorithm] -= 1
                if remaining[algorithm] > 0:
                    next_request = now + processing[algorithm]
                    heapq.heappush(events, (next_request, sequence, "request", algorithm))
                    sequence += 1
                else:
                    finish_times[algorithm] = now + processing[algorithm]
            # retry events only trigger admission below
            try_admit(now)
            schedule_retry(now)

        overall_depth = max(finish_times.values()) if finish_times else 0.0
        busy = _merge_intervals(busy_intervals)
        busy_layers = sum(end - start for start, end in busy)
        query_layers = sum(end - start for start, end in query_intervals)
        makespan = overall_depth if overall_depth > 0 else 1.0
        average_utilization = min(
            1.0, query_layers / (model.parallelism * makespan)
        )
        return SimulationReport(
            model=model,
            overall_depth=overall_depth,
            per_algorithm_finish=finish_times,
            qram_busy_layers=busy_layers,
            qram_query_layers=query_layers,
            average_utilization=average_utilization,
            total_queries=total_queries,
            total_queue_delay_layers=total_queue_delay_layers,
        )


def _merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge overlapping (start, end) intervals."""
    if not intervals:
        return []
    ordered = sorted(intervals)
    merged = [ordered[0]]
    for start, end in ordered[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged
