"""Query arrival streams for shared-QRAM scheduling experiments.

Arrival *times* are drawn by the shared cores in
:mod:`repro.workloads.arrivals` — the same RNG code path that produces the
serving layer's traces — so scheduling streams and serving traces built
from the same parameters and seed agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.arrivals import burst_times, exponential_times, periodic_times


@dataclass(frozen=True, order=True)
class QueryArrival:
    """A query request arriving at the shared QRAM.

    Attributes:
        request_time: arrival time in weighted circuit layers.
        qpu: identifier of the requesting QPU / algorithm.
        query_id: unique identifier (assigned by the generator).
    """

    request_time: float
    qpu: int
    query_id: int


def periodic_algorithm_arrivals(
    num_algorithms: int,
    queries_per_algorithm: int,
    processing_layers: float,
    weighted_query_latency: float,
    stagger: float = 0.0,
) -> list[QueryArrival]:
    """Arrivals of algorithms that alternate querying and processing (Fig. 7).

    Each algorithm issues a query, waits for it to complete (``weighted_query_latency``
    layers), processes for ``processing_layers`` layers, and repeats.  The
    *requests* generated here assume no queueing (they are the earliest times
    each query could be issued); the contention simulator recomputes actual
    issue times when the QRAM is busy — and the discrete-event engine's
    :class:`repro.engine.ClosedLoopSource` models the same loop with real
    completion feedback instead of a nominal latency.

    Args:
        num_algorithms: number of concurrent algorithms (QPUs).
        queries_per_algorithm: queries each algorithm issues.
        processing_layers: QPU processing time between queries.
        weighted_query_latency: nominal query service time used for spacing requests.
        stagger: offset between the start times of successive algorithms.
    """
    pairs = periodic_times(
        num_algorithms,
        queries_per_algorithm,
        weighted_query_latency + processing_layers,
        stagger,
    )
    arrivals = [
        QueryArrival(request_time, qpu, query_id)
        for query_id, (request_time, qpu) in enumerate(pairs)
    ]
    arrivals.sort()
    return arrivals


def random_arrivals(
    num_queries: int,
    mean_interarrival: float,
    seed: int = 0,
    num_qpus: int = 1,
) -> list[QueryArrival]:
    """Online workload: exponential interarrival times (Sec. 5.2)."""
    times = exponential_times(num_queries, mean_interarrival, seed)
    return [
        QueryArrival(t, int(i % num_qpus), int(i)) for i, t in enumerate(times)
    ]


def burst_arrivals(
    num_bursts: int,
    burst_size: int,
    burst_spacing: float,
    num_qpus: int = 1,
) -> list[QueryArrival]:
    """Bursty workload: ``burst_size`` simultaneous requests every
    ``burst_spacing`` layers."""
    times = burst_times(num_bursts, burst_size, burst_spacing)
    return [
        QueryArrival(t, (i % burst_size) % num_qpus, i)
        for i, t in enumerate(times)
    ]
