"""Query arrival streams for shared-QRAM scheduling experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, order=True)
class QueryArrival:
    """A query request arriving at the shared QRAM.

    Attributes:
        request_time: arrival time in weighted circuit layers.
        qpu: identifier of the requesting QPU / algorithm.
        query_id: unique identifier (assigned by the generator).
    """

    request_time: float
    qpu: int
    query_id: int


def periodic_algorithm_arrivals(
    num_algorithms: int,
    queries_per_algorithm: int,
    processing_layers: float,
    query_latency: float,
    stagger: float = 0.0,
) -> list[QueryArrival]:
    """Arrivals of algorithms that alternate querying and processing (Fig. 7).

    Each algorithm issues a query, waits for it to complete (``query_latency``
    layers), processes for ``processing_layers`` layers, and repeats.  The
    *requests* generated here assume no queueing (they are the earliest times
    each query could be issued); the contention simulator recomputes actual
    issue times when the QRAM is busy.

    Args:
        num_algorithms: number of concurrent algorithms (QPUs).
        queries_per_algorithm: queries each algorithm issues.
        processing_layers: QPU processing time between queries.
        query_latency: nominal query service time used for spacing requests.
        stagger: offset between the start times of successive algorithms.
    """
    arrivals: list[QueryArrival] = []
    query_id = 0
    for qpu in range(num_algorithms):
        start = qpu * stagger
        for round_index in range(queries_per_algorithm):
            request_time = start + round_index * (query_latency + processing_layers)
            arrivals.append(QueryArrival(request_time, qpu, query_id))
            query_id += 1
    arrivals.sort()
    return arrivals


def random_arrivals(
    num_queries: int,
    mean_interarrival: float,
    seed: int = 0,
    num_qpus: int = 1,
) -> list[QueryArrival]:
    """Online workload: exponential interarrival times (Sec. 5.2)."""
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(mean_interarrival, size=num_queries)
    times = np.cumsum(gaps)
    return [
        QueryArrival(float(t), int(i % num_qpus), int(i)) for i, t in enumerate(times)
    ]


def burst_arrivals(
    num_bursts: int,
    burst_size: int,
    burst_spacing: float,
    num_qpus: int = 1,
) -> list[QueryArrival]:
    """Bursty workload: ``burst_size`` simultaneous requests every
    ``burst_spacing`` layers."""
    arrivals = []
    query_id = 0
    for burst in range(num_bursts):
        t = burst * burst_spacing
        for i in range(burst_size):
            arrivals.append(QueryArrival(t, i % num_qpus, query_id))
            query_id += 1
    return arrivals
