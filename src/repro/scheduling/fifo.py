"""FIFO query scheduling and its optimality (Sec. 5.2, App. A.2).

The paper proves with a greedy exchange argument that FIFO scheduling
minimises total query latency for both offline and online workloads on a
Fat-Tree QRAM (admissions are separated by a fixed pipeline interval and
every query has the same service time).  This module implements FIFO and a
few alternative policies and provides an empirical verification of the
exchange argument used by the test-suite.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.scheduling.events import QueryArrival


class SchedulingPolicy(enum.Enum):
    """Order in which queued requests are admitted.

    .. deprecated::
        This enum is a legacy alias for the pluggable policy objects in
        :mod:`repro.scheduling.policy` (:class:`AdmissionPolicy` and its
        subclasses), which the serving layer uses directly.  Enum members
        remain accepted everywhere a policy is expected —
        :func:`repro.scheduling.policy.as_policy` maps them onto policy
        objects, emitting a :class:`DeprecationWarning` — but new code
        should pass policy objects (or their string names, e.g.
        ``"priority"``).
    """

    FIFO = "fifo"
    LIFO = "lifo"
    RANDOM = "random"

    def to_policy(self, seed: int = 0):
        """The equivalent :class:`repro.scheduling.policy.AdmissionPolicy`."""
        from repro.scheduling.policy import as_policy

        return as_policy(self, seed=seed)


@dataclass(frozen=True)
class ScheduledQuery:
    """Admission decision for one query.

    Attributes:
        query_id: the request's identifier.
        request_time: when the request arrived.
        start_time: when the QRAM admitted it.
        finish_time: when its result was delivered.
    """

    query_id: int
    request_time: float
    start_time: float
    finish_time: float

    @property
    def latency(self) -> float:
        """Request-to-completion latency."""
        return self.finish_time - self.request_time


def schedule_queries(
    arrivals: list[QueryArrival],
    service_time: float,
    admission_interval: float,
    parallelism: int,
    policy="fifo",
    seed: int = 0,
) -> list[ScheduledQuery]:
    """Admit queries into a pipelined shared QRAM.

    The QRAM admits at most one query per ``admission_interval`` and holds at
    most ``parallelism`` queries in flight; every query occupies the pipeline
    for ``service_time`` layers.  (For BB QRAM set ``parallelism = 1`` and
    ``admission_interval = service_time``.)

    Args:
        arrivals: query requests.
        service_time: per-query service latency in weighted layers.
        admission_interval: minimum spacing between admissions.
        parallelism: maximum queries in flight.
        policy: admission order among queued requests — an
            :class:`repro.scheduling.policy.AdmissionPolicy`, a policy name,
            or a deprecated :class:`SchedulingPolicy` member.
        seed: RNG seed for the RANDOM policy.

    Returns:
        One :class:`ScheduledQuery` per request, in admission order.
    """
    from repro.scheduling.policy import as_policy

    if service_time <= 0 or admission_interval <= 0:
        raise ValueError("service_time and admission_interval must be positive")
    if parallelism < 1:
        raise ValueError("parallelism must be >= 1")
    admission = as_policy(policy, seed=seed)
    pending = sorted(arrivals, key=lambda a: (a.request_time, a.query_id))
    scheduled: list[ScheduledQuery] = []
    in_flight: list[float] = []  # finish times
    next_admission_slot = 0.0
    queue: list[QueryArrival] = []
    index = 0
    current_time = 0.0

    while index < len(pending) or queue:
        # Move newly arrived requests into the queue.
        while index < len(pending) and pending[index].request_time <= current_time:
            queue.append(pending[index])
            index += 1
        in_flight = [f for f in in_flight if f > current_time]

        can_admit = (
            queue
            and len(in_flight) < parallelism
            and current_time >= next_admission_slot
        )
        if can_admit:
            chosen = admission.select(queue, 1, current_time)[0]
            finish = current_time + service_time
            scheduled.append(
                ScheduledQuery(
                    chosen.query_id, chosen.request_time, current_time, finish
                )
            )
            in_flight.append(finish)
            next_admission_slot = current_time + admission_interval
            continue

        # Advance time to the next event.
        candidates = []
        if index < len(pending):
            candidates.append(pending[index].request_time)
        if queue:
            candidates.append(next_admission_slot)
            if len(in_flight) >= parallelism:
                candidates.append(min(in_flight))
        if not candidates:
            break
        next_time = min(t for t in candidates if t > current_time) if any(
            t > current_time for t in candidates
        ) else current_time
        if next_time <= current_time:
            # All remaining events are at the current time; avoid stalling.
            current_time += min(admission_interval, service_time)
        else:
            current_time = next_time

    return scheduled


def total_latency(schedule: list[ScheduledQuery]) -> float:
    """Sum of request-to-completion latencies (the objective of Sec. A.2)."""
    return sum(s.latency for s in schedule)


def verify_fifo_optimality(
    arrivals: list[QueryArrival],
    service_time: float,
    admission_interval: float,
    parallelism: int,
    max_permutations: int = 120,
) -> bool:
    """Empirically check that FIFO minimises total latency.

    Enumerates admission orders (up to ``max_permutations`` permutations for
    small workloads) and verifies no order beats FIFO, mirroring the greedy
    exchange proof of Sec. A.2.
    """
    fifo = total_latency(
        schedule_queries(
            arrivals, service_time, admission_interval, parallelism, "fifo",
        )
    )
    ids = [a.query_id for a in sorted(arrivals, key=lambda a: a.request_time)]
    if len(ids) > 6:
        raise ValueError("exhaustive verification is limited to 6 queries")
    by_id = {a.query_id: a for a in arrivals}
    count = 0
    for permutation in itertools.permutations(ids):
        count += 1
        if count > max_permutations:
            break
        latency = _latency_of_fixed_order(
            [by_id[q] for q in permutation],
            service_time,
            admission_interval,
            parallelism,
        )
        if latency < fifo - 1e-9:
            return False
    return True


def _latency_of_fixed_order(
    order: list[QueryArrival],
    service_time: float,
    admission_interval: float,
    parallelism: int,
) -> float:
    """Total latency when queries are admitted in exactly the given order."""
    in_flight: list[float] = []
    next_slot = 0.0
    total = 0.0
    for arrival in order:
        start = max(arrival.request_time, next_slot)
        in_flight = [f for f in in_flight if f > start]
        while len(in_flight) >= parallelism:
            earliest = min(in_flight)
            start = max(start, earliest)
            in_flight = [f for f in in_flight if f > start]
        finish = start + service_time
        in_flight.append(finish)
        next_slot = start + admission_interval
        total += finish - arrival.request_time
    return total
