"""Query scheduling for a shared QRAM (Sec. 5).

* :mod:`repro.scheduling.events` — query arrival streams (periodic workloads
  with processing gaps, online/random arrivals, bursts).
* :mod:`repro.scheduling.policy` — the pluggable admission-policy objects
  (FIFO / LIFO / random / priority) used by the scheduler and the serving
  layer.
* :mod:`repro.scheduling.fifo` — FIFO scheduling (with the deprecated
  ``SchedulingPolicy`` enum alias), plus the empirical check of the
  greedy-exchange optimality proof (Sec. A.2).
* :mod:`repro.scheduling.contention` — discrete-event simulation of multiple
  QPUs/algorithms sharing one QRAM (the engine behind Fig. 7 and Fig. 10).
* :mod:`repro.scheduling.utilization` — utilization accounting.
"""

from repro.scheduling.events import (
    QueryArrival,
    burst_arrivals,
    periodic_algorithm_arrivals,
    random_arrivals,
)
from repro.scheduling.fifo import (
    SchedulingPolicy,
    schedule_queries,
    total_latency,
    verify_fifo_optimality,
)
from repro.scheduling.policy import (
    AdmissionPolicy,
    EDFPolicy,
    FIFOPolicy,
    LIFOPolicy,
    PriorityPolicy,
    RandomPolicy,
    as_policy,
    policy_names,
)
from repro.scheduling.contention import (
    AlgorithmWorkload,
    QRAMServiceModel,
    SharedQRAMSimulation,
    SimulationReport,
)
from repro.scheduling.utilization import utilization_from_busy_intervals

__all__ = [
    "QueryArrival",
    "periodic_algorithm_arrivals",
    "random_arrivals",
    "burst_arrivals",
    "SchedulingPolicy",
    "AdmissionPolicy",
    "FIFOPolicy",
    "LIFOPolicy",
    "RandomPolicy",
    "PriorityPolicy",
    "EDFPolicy",
    "as_policy",
    "policy_names",
    "schedule_queries",
    "total_latency",
    "verify_fifo_optimality",
    "AlgorithmWorkload",
    "QRAMServiceModel",
    "SharedQRAMSimulation",
    "SimulationReport",
    "utilization_from_busy_intervals",
]
