"""Fat-Tree QRAM: a high-bandwidth shared quantum random access memory.

Reproduction of Xu, Lu & Ding, ASPLOS 2025.  The package provides:

* :class:`repro.FatTreeQRAM` — the paper's architecture (query-level
  pipelining of ``log N`` queries on ``O(N)`` qubits),
* :class:`repro.BucketBrigadeQRAM`, :class:`repro.VirtualQRAM` and the
  distributed baselines, behind one architecture interface,
* quantum simulation substrates (:mod:`repro.sim`), the instruction-level
  schedules and gate-level executors, hardware layout models
  (:mod:`repro.hardware`), performance metrics (:mod:`repro.metrics`),
  fidelity / QEC analysis (:mod:`repro.fidelity`), parallel-algorithm and
  synthetic workloads (:mod:`repro.algorithms`) and the table/figure
  regeneration code (:mod:`repro.analysis`).

Quick start::

    from repro import FatTreeQRAM

    qram = FatTreeQRAM(8, data=[1, 0, 1, 1, 0, 0, 1, 0])
    result = qram.query({0: 1, 5: 1})       # superposition of addresses 0, 5
    print(result)                            # {(0, 1): ..., (5, 0): ...}
"""

from repro.bucket_brigade.qram import BucketBrigadeQRAM
from repro.backends import QRAMBackend, WindowResult
from repro.baselines.distributed import DistributedBBQRAM, DistributedFatTreeQRAM
from repro.baselines.registry import (
    ARCHITECTURES,
    architecture_names,
    backend_names,
    build_architecture,
    build_backend,
)
from repro.baselines.virtual_qram import VirtualQRAM
from repro.core.pipeline import FatTreePipeline
from repro.core.qram import FatTreeQRAM
from repro.core.query import QueryRequest, QueryResult
from repro.service import (
    InterleavedShardMap,
    QRAMService,
    ReplicatedShardMap,
    ServiceReport,
)
from repro.engine import (
    SANITIZE_ENV,
    AutoscalerConfig,
    ClosedLoopClient,
    ClosedLoopSource,
    SanitizerViolation,
    ServiceEngine,
    StreamingTraceSource,
    TraceSource,
)

__version__ = "1.2.0"

__all__ = [
    "FatTreeQRAM",
    "BucketBrigadeQRAM",
    "VirtualQRAM",
    "DistributedBBQRAM",
    "DistributedFatTreeQRAM",
    "FatTreePipeline",
    "QueryRequest",
    "QueryResult",
    "QRAMService",
    "ServiceReport",
    "ServiceEngine",
    "SanitizerViolation",
    "SANITIZE_ENV",
    "AutoscalerConfig",
    "TraceSource",
    "StreamingTraceSource",
    "ClosedLoopClient",
    "ClosedLoopSource",
    "InterleavedShardMap",
    "ReplicatedShardMap",
    "QRAMBackend",
    "WindowResult",
    "ARCHITECTURES",
    "architecture_names",
    "backend_names",
    "build_architecture",
    "build_backend",
    "__version__",
]
