"""Named adversarial serving scenarios, as :class:`ScenarioSpec` factories.

Each entry stresses one failure mode a production QRAM service must
survive, as a small deterministic spec usable from tests (characterization
pins in ``tests/test_scenarios.py``), benchmarks (the scenario axis of
``benchmarks/bench_service_throughput.py``) and examples:

* ``diurnal-cycle`` — sinusoidal day/night load swing: queue depth and
  latency breathe with the rate while conservation holds.
* ``flash-crowd`` — a simultaneous arrival spike on a bounded queue:
  backpressure rejects the overflow instead of collapsing latency.
* ``hot-key-skew`` — one interleaved shard owns most of the traffic: the
  hot shard queues while its siblings idle.
* ``misbehaving-tenant`` — one tenant floods a shared bounded queue past
  its fair share and every tenant eats the rejections.
* ``deadline-impossible`` — offered load far beyond capacity with tight
  deadlines under EDF + shedding: most of the backlog is shed at the
  admission edge, yet everything that *is* served was admitted before its
  deadline.

``library_scenario(name)`` builds one by name; :data:`LIBRARY` maps every
name to its factory.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.scenarios.spec import (
    FleetSpec,
    PolicySpec,
    ScenarioSpec,
    WorkloadSpec,
)

__all__ = ["LIBRARY", "library_names", "library_scenario"]


def diurnal_cycle() -> ScenarioSpec:
    """Sinusoidal offered load over two interleaved Fat-Tree shards."""
    return ScenarioSpec(
        name="diurnal-cycle",
        fleet=FleetSpec(
            capacity=32,
            shards=("Fat-Tree", "Fat-Tree"),
            functional=False,
        ),
        workload=WorkloadSpec(
            kind="diurnal",
            num_queries=120,
            mean_interarrival=6.0,
            period=400.0,
            amplitude=0.8,
            num_tenants=4,
            seed=11,
        ),
    )


def flash_crowd() -> ScenarioSpec:
    """A 40-request spike on a bounded queue mid-run (backpressure)."""
    return ScenarioSpec(
        name="flash-crowd",
        fleet=FleetSpec(
            capacity=32,
            shards=("Fat-Tree", "Fat-Tree"),
            functional=False,
        ),
        workload=WorkloadSpec(
            kind="flash-crowd",
            num_queries=80,
            mean_interarrival=12.0,
            crowd_time=300.0,
            crowd_size=40,
            num_tenants=3,
            seed=5,
        ),
        policy=PolicySpec(max_queue_depth=8),
    )


def hot_key_skew() -> ScenarioSpec:
    """85% of queries land on one of four interleaved shards."""
    return ScenarioSpec(
        name="hot-key-skew",
        fleet=FleetSpec(
            capacity=64,
            shards=("Fat-Tree",) * 4,
            functional=False,
        ),
        workload=WorkloadSpec(
            kind="poisson",
            num_queries=120,
            mean_interarrival=5.0,
            num_tenants=4,
            seed=7,
            shard_weights=(0.85, 0.05, 0.05, 0.05),
        ),
    )


def misbehaving_tenant() -> ScenarioSpec:
    """Tenant 0 floods a bounded queue far past its fair share."""
    return ScenarioSpec(
        name="misbehaving-tenant",
        fleet=FleetSpec(
            capacity=32,
            shards=("Fat-Tree", "Fat-Tree"),
            functional=False,
        ),
        workload=WorkloadSpec(
            kind="poisson",
            num_queries=150,
            mean_interarrival=3.0,
            num_tenants=4,
            seed=3,
            tenant_weights=(0.76, 0.08, 0.08, 0.08),
        ),
        policy=PolicySpec(max_queue_depth=6),
    )


def deadline_impossible() -> ScenarioSpec:
    """Overload with deadlines most requests cannot meet (EDF + shed)."""
    return ScenarioSpec(
        name="deadline-impossible",
        fleet=FleetSpec(
            capacity=32,
            shards=("Fat-Tree", "Fat-Tree"),
            functional=False,
        ),
        workload=WorkloadSpec(
            kind="poisson",
            num_queries=80,
            mean_interarrival=2.0,
            num_tenants=2,
            seed=9,
            deadline_layers=120.0,
        ),
        policy=PolicySpec(admission="edf", shed_expired=True),
    )


#: Every library scenario, keyed by its spec ``name``.
LIBRARY: dict[str, Callable[[], ScenarioSpec]] = {
    "diurnal-cycle": diurnal_cycle,
    "flash-crowd": flash_crowd,
    "hot-key-skew": hot_key_skew,
    "misbehaving-tenant": misbehaving_tenant,
    "deadline-impossible": deadline_impossible,
}


def library_names() -> tuple[str, ...]:
    """The adversarial scenario names, in presentation order."""
    return tuple(LIBRARY)


def library_scenario(name: str) -> ScenarioSpec:
    """Build one library scenario by name."""
    try:
        factory = LIBRARY[name]
    except KeyError:
        raise KeyError(
            f"unknown library scenario {name!r}; expected one of "
            f"{sorted(LIBRARY)}"
        ) from None
    return factory()
