"""Declarative serving scenarios, the adversarial workload library and the
property-based engine fuzzer.

* :mod:`repro.scenarios.spec` — :class:`ScenarioSpec` and its sections
  (:class:`FleetSpec`, :class:`WorkloadSpec`, :class:`PolicySpec`,
  :class:`RunSpec`): frozen, validated, JSON-round-trippable descriptions
  of complete serving runs, built into the exact
  ``QRAMService``/``ServiceEngine``/workload objects the hand-written
  paths produce.
* :mod:`repro.scenarios.library` — named adversarial scenarios (diurnal
  cycle, flash crowd, hot-key skew, misbehaving tenant,
  deadline-impossible mix) as spec factories.
* :mod:`repro.scenarios.fuzz` — seeded random spec draws checked against
  the engine's invariants, with greedy shrinking to a minimal JSON
  reproducer (``python -m repro.scenarios.fuzz`` runs the CI smoke).
"""

from repro.scenarios.fuzz import (
    FuzzReport,
    Violation,
    check_spec,
    draw_spec,
    offered_requests,
    run_fuzz,
    shrink_spec,
)
from repro.scenarios.library import LIBRARY, library_scenario, library_names
from repro.scenarios.spec import (
    DATA_PATTERNS,
    DELIVERIES,
    WORKLOAD_KINDS,
    BuiltScenario,
    FleetSpec,
    PolicySpec,
    RunSpec,
    ScenarioSpec,
    SpecError,
    WorkloadSpec,
)

__all__ = [
    "DATA_PATTERNS",
    "DELIVERIES",
    "WORKLOAD_KINDS",
    "BuiltScenario",
    "FleetSpec",
    "FuzzReport",
    "LIBRARY",
    "PolicySpec",
    "RunSpec",
    "ScenarioSpec",
    "SpecError",
    "Violation",
    "WorkloadSpec",
    "check_spec",
    "draw_spec",
    "library_names",
    "library_scenario",
    "offered_requests",
    "run_fuzz",
    "shrink_spec",
]
