"""Property-based fuzzing of the serving engine over random scenarios.

Random :class:`~repro.scenarios.spec.ScenarioSpec` draws (seeded —
``draw_spec(random.Random(seed))`` is fully reproducible) are executed and
checked against the engine's cross-cutting invariants:

* **conservation** — every offered request is accounted exactly once:
  ``offered == served + rejected + shed``, both in the streaming stats and
  (under ``retention="full"``) in the record lists.
* **slo-admission** — no served record violates its admitted SLO: its
  predicted fidelity meets ``min_fidelity``, and under deadline shedding
  its deadline lay strictly beyond its admission layer.
* **determinism** — executing the same spec twice yields equal reports
  (replay determinism: one seed, one report).
* **streaming-parity** — a materialized trace and its lazy streaming
  delivery produce equal full-retention reports.
* **parallel-identity** — ``workers=2`` equals the single-process oracle
  under full retention (exact where :mod:`repro.engine.partition` proves
  partitionability, trivially via fallback elsewhere); under sampled/none
  retention — where the parallel path's deterministic P²-sketch merge is
  worker-count invariant but not byte-equal to the oracle's
  order-sensitive sketch — it must equal ``workers=1``.

A failing draw is greedily shrunk (:func:`shrink_spec`) toward the
smallest spec that still violates the same invariant — fewer requests,
fewer shards, smaller capacity, knobs back to defaults — and dumped as a
JSON reproducer anyone can replay with
``ScenarioSpec.from_json(...).execute()`` (the checked-in corpus under
``tests/reproducers/`` is replayed by tier-1).

``python -m repro.scenarios.fuzz --draws 200 --seed 0`` is the CI smoke
entry point; ``mutate`` hooks let tests inject report corruptions and
assert the harness catches and shrinks them.
"""

from __future__ import annotations

import argparse
import json
import random
from collections.abc import Callable, Iterator
from dataclasses import dataclass, replace
from typing import Any

from repro.engine.core import AutoscalerConfig, ServiceReport
from repro.scenarios.spec import (
    FleetSpec,
    PolicySpec,
    RunSpec,
    ScenarioSpec,
    SpecError,
    WorkloadSpec,
)

__all__ = [
    "FuzzReport",
    "Violation",
    "check_spec",
    "draw_spec",
    "offered_requests",
    "run_fuzz",
    "shrink_spec",
]

#: Report transformation hook for mutation testing: receives the base run's
#: report and returns the (possibly corrupted) report to check.
Mutator = Callable[[ServiceReport], ServiceReport]

#: Tolerance for float SLO boundary comparisons.
_EPS = 1e-9

#: Open-loop generator kinds (streaming/partitioned deliveries exist).
_OPEN_LOOP_KINDS = ("poisson", "bursty", "diurnal", "flash-crowd", "periodic")


@dataclass(frozen=True)
class Violation:
    """One invariant failure on one spec."""

    invariant: str
    detail: str
    spec: ScenarioSpec
    seed: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "invariant": self.invariant,
            "detail": self.detail,
            "seed": self.seed,
            "spec": self.spec.to_dict(),
        }


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one :func:`run_fuzz` campaign."""

    draws: int
    checked: int
    vacuous: int
    violation: Violation | None = None
    shrunk: ScenarioSpec | None = None

    @property
    def ok(self) -> bool:
        return self.violation is None


def offered_requests(spec: ScenarioSpec) -> int | None:
    """How many requests the spec's workload offers (``None`` = unknown,
    e.g. a replay file not read yet)."""
    workload = spec.workload
    if workload.kind in ("poisson", "diurnal"):
        return workload.num_queries
    if workload.kind == "flash-crowd":
        return workload.num_queries + workload.crowd_size
    if workload.kind == "bursty":
        return workload.num_bursts * workload.burst_size
    if workload.kind == "periodic":
        return workload.num_sources * workload.rounds
    if workload.kind == "closed-loop":
        return workload.num_clients * workload.queries_per_client
    return None


def _execute(spec: ScenarioSpec) -> ServiceReport | None:
    """Run a spec; ``None`` for the engine's all-rejected vacuous case."""
    try:
        return spec.execute()
    except ValueError as exc:
        if "no queries were served" in str(exc):
            return None
        raise


def _check_conservation(
    spec: ScenarioSpec, report: ServiceReport
) -> str | None:
    stats = report.stats
    accounted = (
        stats.total_queries + stats.rejected_queries + stats.shed_queries
    )
    if stats.offered_queries != accounted:
        return (
            f"stats.offered_queries={stats.offered_queries} != served "
            f"{stats.total_queries} + rejected {stats.rejected_queries} "
            f"+ shed {stats.shed_queries}"
        )
    expected = offered_requests(spec)
    if expected is not None and stats.offered_queries != expected:
        return (
            f"workload offered {expected} requests but the report "
            f"accounts {stats.offered_queries}"
        )
    if spec.run.retention == "full":
        if len(report.served) != stats.total_queries:
            return (
                f"retention='full' kept {len(report.served)} served "
                f"records for {stats.total_queries} served queries"
            )
        if len(report.rejected) != stats.rejected_queries + stats.shed_queries:
            return (
                f"retention='full' kept {len(report.rejected)} rejection "
                f"records for {stats.rejected_queries + stats.shed_queries} "
                f"refused requests"
            )
    return None


def _check_slo_admission(
    spec: ScenarioSpec, report: ServiceReport
) -> str | None:
    if spec.run.retention != "full":
        return None
    for record in report.served:
        if record.min_fidelity is not None and (
            record.predicted_fidelity is not None
            and record.predicted_fidelity < record.min_fidelity - _EPS
        ):
            return (
                f"served query {record.query_id} predicts fidelity "
                f"{record.predicted_fidelity} below its SLO "
                f"{record.min_fidelity}"
            )
        if (
            spec.policy.shed_expired
            and record.deadline is not None
            and record.deadline <= record.admit_layer - _EPS
        ):
            return (
                f"served query {record.query_id} was admitted at layer "
                f"{record.admit_layer}, past its deadline {record.deadline} "
                f"(shed_expired should have dropped it)"
            )
    return None


def check_spec(
    spec: ScenarioSpec, mutate: Mutator | None = None
) -> Violation | None:
    """Execute one spec and check every applicable invariant.

    Returns the first :class:`Violation`, or ``None`` when all pass (a
    run the engine refuses because every request was rejected counts as a
    vacuous pass).  With ``mutate`` the base report is transformed before
    the report-level checks (conservation, slo-admission) and the
    multi-run invariants are skipped — the mutation-testing mode proving
    the harness catches an injected bug.
    """
    report = _execute(spec)
    if report is None:
        return None
    return _check_with_report(spec, report, mutate)


def _check_with_report(
    spec: ScenarioSpec, report: ServiceReport, mutate: Mutator | None = None
) -> Violation | None:
    """The invariant battery, given the spec's already-computed report."""
    if mutate is not None:
        report = mutate(report)

    detail = _check_conservation(spec, report)
    if detail is not None:
        return Violation("conservation", detail, spec)
    detail = _check_slo_admission(spec, report)
    if detail is not None:
        return Violation("slo-admission", detail, spec)
    if mutate is not None:
        return None

    rerun = _execute(spec)
    if rerun != report:
        return Violation(
            "determinism", "same spec, same seed, different report", spec
        )

    if (
        spec.workload.kind in _OPEN_LOOP_KINDS
        and spec.run.retention == "full"
    ):
        other = "streaming" if spec.workload.delivery == "trace" else "trace"
        variant = replace(spec, workload=replace(spec.workload, delivery=other))
        if _execute(variant) != report:
            return Violation(
                "streaming-parity",
                f"delivery {spec.workload.delivery!r} and {other!r} "
                f"disagree under retention='full'",
                spec,
            )

    # The engine's determinism contract: under full retention workers=N is
    # bit-identical to the single-process oracle (workers=0); under
    # sampled/none retention the P² latency sketches are replaced by a
    # deterministic weighted merge that is worker-count invariant but not
    # byte-equal to the oracle's order-sensitive sketch, so there the
    # invariant is workers=2 == workers=1 through the same merge path.
    parallel = replace(spec, run=replace(spec.run, workers=2))
    if spec.run.retention == "full":
        baseline, against = report, "the single-process oracle"
    else:
        baseline = _execute(replace(spec, run=replace(spec.run, workers=1)))
        against = "workers=1"
    if _execute(parallel) != baseline:
        return Violation(
            "parallel-identity",
            f"workers=2 differs from {against}",
            spec,
        )
    return None


# ------------------------------------------------------------------ drawing
def draw_spec(rng: random.Random) -> ScenarioSpec:
    """One random, always-valid scenario.

    Small on purpose (a draw serves tens of requests, not thousands) and
    biased toward the configurations where the invariants bite:
    interleaved multi-shard fleets, partitioned delivery, bounded queues,
    deadlines and fidelity SLOs.  Every choice comes from ``rng``, so a
    campaign is one seed.
    """
    placement = rng.choice(
        ["interleaved", "interleaved", "interleaved", "shortest-queue"]
    )
    num_shards = rng.choice([1, 2, 2, 2, 4])
    capacity = rng.choice([16, 32])
    pool = ["Fat-Tree", "Fat-Tree", "Fat-Tree", "BB", "Virtual", "Fat-Tree@d3"]
    shards = tuple(rng.choice(pool) for _ in range(num_shards))
    fleet = FleetSpec(
        capacity=capacity,
        shards=shards,
        placement=placement,
        window_size=rng.choice([None, None, 1, 2]),
        functional=rng.random() < 0.4,
        data=rng.choice(["zeros", "random", "parity"]),
        data_seed=rng.randrange(4),
    )

    trace_shards = num_shards if placement == "interleaved" else 1
    kind = rng.choice(list(_OPEN_LOOP_KINDS) + ["closed-loop"])
    num_tenants = rng.choice([1, 2, 3, 4])
    deadline = rng.choice([None, None, 80.0, 200.0, 1000.0])
    min_fidelity = rng.choice([None, None, None, 0.5, 0.9])
    tenant_weights = (
        tuple(1.0 + rng.randrange(8) for _ in range(num_tenants))
        if num_tenants > 1 and rng.random() < 0.3
        else None
    )
    shard_weights = (
        tuple(1.0 + rng.randrange(8) for _ in range(trace_shards))
        if trace_shards > 1 and rng.random() < 0.3
        else None
    )
    shared: dict[str, Any] = {
        "seed": rng.randrange(1000),
        "deadline_layers": deadline,
        "min_fidelity": min_fidelity,
        "addresses_per_query": rng.choice([1, 1, 2]),
    }
    if kind == "closed-loop":
        workload = WorkloadSpec(
            kind="closed-loop",
            num_clients=rng.randrange(1, 5),
            queries_per_client=rng.randrange(1, 6),
            think_layers=rng.choice([0.0, 20.0, 100.0]),
            stagger=rng.choice([0.0, 10.0]),
            **shared,
        )
    else:
        delivery = rng.choice(["trace", "streaming", "partitioned"])
        open_loop: dict[str, Any] = {
            "delivery": delivery,
            "num_tenants": num_tenants,
            "tenant_weights": tenant_weights,
            "shard_weights": shard_weights,
            **shared,
        }
        if kind == "poisson":
            workload = WorkloadSpec(
                kind="poisson",
                num_queries=rng.randrange(4, 25),
                mean_interarrival=rng.choice([2.0, 6.0, 20.0]),
                **open_loop,
            )
        elif kind == "bursty":
            workload = WorkloadSpec(
                kind="bursty",
                num_bursts=rng.randrange(1, 5),
                burst_size=rng.randrange(1, 7),
                burst_spacing=rng.choice([25.0, 100.0, 400.0]),
                **open_loop,
            )
        elif kind == "diurnal":
            workload = WorkloadSpec(
                kind="diurnal",
                num_queries=rng.randrange(4, 25),
                mean_interarrival=rng.choice([3.0, 8.0]),
                period=rng.choice([60.0, 300.0]),
                amplitude=rng.choice([0.0, 0.5, 0.9]),
                **open_loop,
            )
        elif kind == "flash-crowd":
            workload = WorkloadSpec(
                kind="flash-crowd",
                num_queries=rng.randrange(4, 17),
                mean_interarrival=rng.choice([4.0, 12.0]),
                crowd_time=rng.choice([0.0, 50.0, 200.0]),
                crowd_size=rng.randrange(2, 11),
                crowd_spacing=rng.choice([0.0, 1.0]),
                **open_loop,
            )
        else:
            open_loop.pop("num_tenants")
            open_loop.pop("tenant_weights")
            open_loop.pop("shard_weights")
            workload = WorkloadSpec(
                kind="periodic",
                num_sources=rng.randrange(1, 5),
                rounds=rng.randrange(1, 7),
                period=rng.choice([30.0, 90.0]),
                stagger=rng.choice([0.0, 15.0]),
                **open_loop,
            )

    autoscaler = None
    if placement == "shortest-queue" and rng.random() < 0.4:
        autoscaler = AutoscalerConfig(
            period=rng.choice([50.0, 200.0]),
            high_watermark=rng.randrange(2, 5),
            low_watermark=0,
            min_shards=1,
            max_shards=num_shards + rng.randrange(1, 3),
        )
    policy = PolicySpec(
        admission=rng.choice(
            ["fifo", "fifo", "lifo", "random", "priority", "edf"]
        ),
        admission_seed=rng.randrange(16),
        max_queue_depth=rng.choice([None, None, 2, 4, 8]),
        shed_expired=(deadline is not None and rng.random() < 0.6),
        autoscaler=autoscaler,
    )
    run = RunSpec(
        retention=rng.choice(["full", "full", "full", "sampled", "none"]),
        sample_size=rng.choice([4, 64]),
        sample_seed=rng.randrange(8),
        telemetry_interval=rng.choice([None, None, 250.0]),
        max_distillation_copies=rng.choice([1, 1, 1, 2]),
        workers=0,
        sanitize=True,
    )
    return ScenarioSpec(
        fleet=fleet, workload=workload, policy=policy, run=run, name="fuzz"
    )


# ---------------------------------------------------------------- shrinking
#: One shrink step: per-section field changes to try applying together.
_Edit = dict[str, dict[str, Any]]


def _shrink_edits(spec: ScenarioSpec) -> Iterator[_Edit]:
    """Strictly-simplifying edits of a spec, most aggressive first.

    Edits are *descriptions* ({section: {field: new_value}}); the caller
    applies them under validation, so combinations a kind or fleet shape
    forbids are simply skipped.
    """
    workload = spec.workload
    fleet = spec.fleet

    # Fewer requests first: halve, then floor at one.
    for name in (
        "num_queries", "num_bursts", "burst_size", "crowd_size",
        "num_sources", "rounds", "num_clients", "queries_per_client",
    ):
        value = getattr(workload, name)
        if value > 1:
            yield {"workload": {name: max(1, value // 2)}}
            yield {"workload": {name: 1}}

    # Fewer shards (shard weights no longer fit — drop them together).
    if fleet.num_shards > 1:
        for count in (1, fleet.num_shards // 2):
            if 1 <= count < fleet.num_shards:
                yield {
                    "fleet": {"shards": fleet.shards[:count]},
                    "workload": {"shard_weights": None},
                }

    # Smaller memory.
    if fleet.capacity > 4:
        yield {"fleet": {"capacity": fleet.capacity // 2}}

    # Simpler fleet knobs.
    if fleet.shards != ("Fat-Tree",) * fleet.num_shards:
        yield {"fleet": {"shards": ("Fat-Tree",) * fleet.num_shards}}
    for name, default in (
        ("functional", False), ("data", "zeros"), ("window_size", None),
        ("parameters", None), ("data_seed", 0),
    ):
        if getattr(fleet, name) != default:
            yield {"fleet": {name: default}}

    # Simpler workload knobs (defaults match the dataclass, so edits are
    # no-ops — and skipped — for kinds the field does not apply to).
    for name, default in (
        ("deadline_layers", None), ("min_fidelity", None),
        ("tenant_weights", None), ("shard_weights", None),
        ("delivery", "trace"), ("addresses_per_query", 1),
        ("think_layers", 0.0), ("stagger", 0.0),
        ("crowd_spacing", 0.0), ("crowd_time", 0.0), ("amplitude", 0.0),
        ("seed", 0),
    ):
        if getattr(workload, name) != default:
            yield {"workload": {name: default}}
    if workload.num_tenants != 1:
        yield {"workload": {"num_tenants": 1, "tenant_weights": None}}

    # Simpler policy / run knobs.
    policy = spec.policy
    for name, default in (
        ("max_queue_depth", None), ("shed_expired", False),
        ("admission", "fifo"), ("autoscaler", None), ("admission_seed", 0),
    ):
        if getattr(policy, name) != default:
            yield {"policy": {name: default}}
    run = spec.run
    for name, default in (
        ("retention", "full"), ("telemetry_interval", None),
        ("max_distillation_copies", 1), ("workers", 0),
        ("sample_size", 1024), ("sample_seed", 0),
    ):
        if getattr(run, name) != default:
            yield {"run": {name: default}}


def _apply_edit(spec: ScenarioSpec, edit: _Edit) -> ScenarioSpec | None:
    """Apply one edit; ``None`` when the result fails spec validation."""
    try:
        sections = {
            section: replace(getattr(spec, section), **changes)
            for section, changes in edit.items()
        }
        return replace(spec, **sections)
    except SpecError:
        return None


def shrink_spec(
    spec: ScenarioSpec,
    check: Callable[[ScenarioSpec], Violation | None],
    invariant: str | None = None,
    max_rounds: int = 50,
) -> ScenarioSpec:
    """Greedily minimize a failing spec.

    Repeatedly tries the candidates of :func:`_shrink_candidates`,
    accepting any that still fails ``check`` with the same invariant
    (first-improvement hill descent), until a full round accepts nothing
    or ``max_rounds`` is hit.  The result still violates; every field the
    bug does not need has been folded back to its default.
    """
    current = spec
    for _ in range(max_rounds):
        improved = False
        for edit in _shrink_edits(current):
            candidate = _apply_edit(current, edit)
            if candidate is None or candidate == current:
                continue
            violation = check(candidate)
            if violation is not None and (
                invariant is None or violation.invariant == invariant
            ):
                current = candidate
                improved = True
                break
        if not improved:
            break
    return current


# ---------------------------------------------------------------- campaigns
def run_fuzz(
    draws: int = 200,
    seed: int = 0,
    mutate: Mutator | None = None,
    reproducer_path: str | None = None,
) -> FuzzReport:
    """One seeded campaign: draw, check, and on failure shrink + dump.

    Stops at the first violation; ``reproducer_path`` (when given)
    receives the shrunk spec and violation details as JSON.  Vacuous
    draws (every request rejected, nothing served) are counted but not
    failed.
    """
    rng = random.Random(seed)
    checker: Callable[[ScenarioSpec], Violation | None] = (
        lambda s: check_spec(s, mutate=mutate)
    )
    vacuous = 0
    for index in range(draws):
        spec = draw_spec(rng)
        report = _execute(spec)
        if report is None:
            vacuous += 1
            continue
        violation = _check_with_report(spec, report, mutate)
        if violation is None:
            continue
        violation = Violation(
            violation.invariant, violation.detail, violation.spec, seed
        )
        shrunk = shrink_spec(spec, checker, invariant=violation.invariant)
        if reproducer_path is not None:
            payload = violation.to_dict()
            payload["shrunk_spec"] = shrunk.to_dict()
            with open(reproducer_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
        return FuzzReport(
            draws=draws,
            checked=index + 1,
            vacuous=vacuous,
            violation=violation,
            shrunk=shrunk,
        )
    return FuzzReport(draws=draws, checked=draws, vacuous=vacuous)


def main(argv: list[str] | None = None) -> int:
    """CLI for the CI fuzz smoke: seeded draws, fail on any violation."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios.fuzz",
        description="Property-based serving-engine fuzz smoke.",
    )
    parser.add_argument(
        "--draws", type=int, default=200, help="scenario draws per seed"
    )
    parser.add_argument(
        "--seed",
        type=int,
        action="append",
        dest="seeds",
        help="campaign seed (repeatable; default 0)",
    )
    parser.add_argument(
        "--reproducer",
        default="fuzz_reproducer.json",
        help="where to dump the shrunk reproducer on failure",
    )
    args = parser.parse_args(argv)
    seeds = args.seeds if args.seeds else [0]
    for seed in seeds:
        report = run_fuzz(
            draws=args.draws, seed=seed, reproducer_path=args.reproducer
        )
        print(
            f"seed {seed}: {report.checked}/{report.draws} draws checked, "
            f"{report.vacuous} vacuous"
        )
        if report.violation is not None:
            print(
                f"VIOLATION [{report.violation.invariant}] "
                f"{report.violation.detail}"
            )
            print(f"reproducer written to {args.reproducer}")
            return 1
    print("all invariants held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
