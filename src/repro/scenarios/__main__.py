"""``python -m repro.scenarios`` runs the seeded fuzz campaign CLI.

Kept separate from :mod:`repro.scenarios.fuzz` so running the package
does not re-execute a module the package ``__init__`` already imported
(the ``found in sys.modules`` runpy warning).
"""

from repro.scenarios.fuzz import main

if __name__ == "__main__":
    raise SystemExit(main())
