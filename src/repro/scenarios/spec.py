"""Declarative serving scenarios: one validated, serializable spec.

Every serving run in this repository is some assembly of the same four
ingredient groups — a fleet (:class:`repro.service.QRAMService`
constructor), a workload (the generators in :mod:`repro.workloads`), an
admission/backpressure policy and the engine's run knobs
(:class:`repro.engine.ServiceEngine`).  Historically each example, test
and benchmark hand-wired those kwargs; this module gives them one frozen,
validated, JSON-round-trippable object instead:

* :class:`FleetSpec` — shard architectures (``"<arch>@d<k>"`` names),
  placement, memory contents, noise parameters.
* :class:`WorkloadSpec` — poisson / bursty / diurnal / flash-crowd /
  periodic / closed-loop traffic or JSONL trace replay, with rates,
  tenants, deadlines, fidelity SLOs and tenant/shard skew.
* :class:`PolicySpec` — admission order, queue bounds, shedding,
  autoscaler watermarks.
* :class:`RunSpec` — retention, sampling, telemetry, distillation budget,
  workers, sanitizer, profiling, clock.

composing into a :class:`ScenarioSpec` whose :meth:`ScenarioSpec.build`
yields exactly the ``QRAMService`` / ``ServiceEngine`` / workload-source
objects the hand-written paths produce (pinned bit-identical per example
in ``tests/test_scenarios.py``), and whose ``to_dict``/``from_dict``
round-trip makes any scenario a line of JSON — the randomization /
shrinking / replay surface of :mod:`repro.scenarios.fuzz`.

Validation is eager and field-precise: every bad value raises
:class:`SpecError` naming ``Class.field``, and ``from_dict`` rejects
unknown keys (the forward-compatibility guard).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import Any

from repro.engine.core import (
    RETENTIONS,
    AutoscalerConfig,
    ServiceEngine,
    ServiceReport,
)
from repro.engine.partition import PartitionedTraceSource
from repro.engine.workload import (
    StreamingTraceSource,
    TraceSource,
    WorkloadSource,
)
from repro.core.query import QueryRequest
from repro.hardware.parameters import HardwareParameters
from repro.metrics.service_stats import RejectedQuery, ServedQuery
from repro.metrics.sinks import load_jsonl
from repro.scheduling.policy import policy_names
from repro.service.service import PLACEMENTS, QRAMService

__all__ = [
    "DATA_PATTERNS",
    "DELIVERIES",
    "VIRTUAL_AXES",
    "WORKLOAD_KINDS",
    "BuiltScenario",
    "FleetSpec",
    "PolicySpec",
    "RunSpec",
    "ScenarioSpec",
    "SpecError",
    "WorkloadSpec",
    "axis_paths",
]


class SpecError(ValueError):
    """A scenario spec failed validation (message names ``Class.field``)."""


#: Memory-content patterns a :class:`FleetSpec` can name.
DATA_PATTERNS = (
    "zeros", "random", "parity", "alternating", "threshold", "single",
)

#: Workload kinds a :class:`WorkloadSpec` can name.
WORKLOAD_KINDS = (
    "poisson", "bursty", "diurnal", "flash-crowd", "periodic",
    "closed-loop", "replay",
)

#: How an open-loop trace reaches the engine.
DELIVERIES = ("trace", "streaming", "partitioned")

#: Workload kinds whose generators accept a ``shards=`` partition filter
#: (the contract ``delivery="partitioned"`` requires).
_PARTITIONABLE_KINDS = frozenset(
    {"poisson", "bursty", "diurnal", "flash-crowd", "periodic"}
)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _check_keys(
    payload: dict[str, Any], allowed: frozenset[str], section: str
) -> None:
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise SpecError(
            f"unknown {section} key(s) {unknown}; expected a subset of "
            f"{sorted(allowed)}"
        )


def _field_names(cls: type) -> frozenset[str]:
    return frozenset(f.name for f in dataclasses.fields(cls))


def _canonical_fingerprint(payload: dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON form of a spec section.

    ``sort_keys`` plus JSON's exact ``repr``-based float serialization
    make the digest a pure function of the spec's values, so equal specs
    fingerprint equally across processes and sessions.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _as_optional_float_tuple(
    value: Any, name: str
) -> tuple[float, ...] | None:
    if value is None:
        return None
    try:
        return tuple(float(x) for x in value)
    except (TypeError, ValueError):
        raise SpecError(f"{name} must be a sequence of numbers") from None


# --------------------------------------------------------------------- fleet
@dataclass(frozen=True)
class FleetSpec:
    """The serving fleet: what :class:`repro.service.QRAMService` builds.

    Attributes:
        capacity: global address-space size ``N`` (power of two).
        shards: one architecture name per shard, ``@d<k>`` QEC suffixes
            accepted (``("Fat-Tree", "Fat-Tree@d3")``).
        placement: ``"interleaved"`` or ``"shortest-queue"``.
        window_size: max queries per pipeline window (``None`` = the
            backend's query parallelism).
        functional: functional (state-evolving) vs timing-only windows.
        data: memory contents — ``"zeros"``, ``"random"`` (seeded by
            ``data_seed`` at ``data_density``) or a
            :func:`repro.workloads.structured_data` pattern name.
        data_seed: RNG seed of ``data="random"``.
        data_density: 1-bit density of ``data="random"``.
        parameters: optional hardware noise model shared by every shard.
    """

    capacity: int
    shards: tuple[str, ...] = ("Fat-Tree", "Fat-Tree")
    placement: str = "interleaved"
    window_size: int | None = None
    functional: bool = True
    data: str = "zeros"
    data_seed: int = 0
    data_density: float = 0.5
    parameters: HardwareParameters | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "shards", tuple(self.shards))
        _require(
            isinstance(self.capacity, int) and self.capacity >= 2
            and (self.capacity & (self.capacity - 1)) == 0,
            f"FleetSpec.capacity must be a power of two >= 2 "
            f"(got {self.capacity!r})",
        )
        _require(
            len(self.shards) >= 1,
            "FleetSpec.shards must name at least one architecture",
        )
        from repro.backends.encoded import parse_encoded_name
        from repro.baselines.registry import backend_names, resolve_architecture

        for name in self.shards:
            _require(
                isinstance(name, str) and bool(name),
                f"FleetSpec.shards entries must be architecture names "
                f"(got {name!r})",
            )
            try:
                base, _ = parse_encoded_name(name)
                spec = resolve_architecture(base)
            except (ValueError, KeyError) as exc:
                raise SpecError(
                    f"FleetSpec.shards entry {name!r} is not a known "
                    f"backend: {exc}"
                ) from None
            _require(
                spec.backend is not None,
                f"FleetSpec.shards entry {name!r} cannot serve traffic; "
                f"expected one of {backend_names()}",
            )
        _require(
            self.placement in PLACEMENTS,
            f"FleetSpec.placement must be one of {PLACEMENTS} "
            f"(got {self.placement!r})",
        )
        _require(
            self.window_size is None
            or (isinstance(self.window_size, int) and self.window_size >= 1),
            f"FleetSpec.window_size must be None or >= 1 "
            f"(got {self.window_size!r})",
        )
        _require(
            self.data in DATA_PATTERNS,
            f"FleetSpec.data must be one of {DATA_PATTERNS} "
            f"(got {self.data!r})",
        )
        _require(
            0.0 <= self.data_density <= 1.0,
            f"FleetSpec.data_density must be in [0, 1] "
            f"(got {self.data_density!r})",
        )
        if self.placement == "interleaved":
            _require(
                self.capacity % len(self.shards) == 0,
                f"FleetSpec.shards: interleaved placement needs the shard "
                f"count ({len(self.shards)}) to divide the capacity "
                f"({self.capacity})",
            )

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def fingerprint(self) -> str:
        """Content digest of this fleet configuration.

        Equal fleets — same shards, placement, memory contents, noise
        parameters — share a fingerprint, which is exactly the condition
        under which they share warm
        :class:`~repro.schedule_cache.ScheduleCacheRegistry` entries.
        The sweep engine routes every scenario with the same fleet
        fingerprint to the same pool worker (cache affinity).
        """
        return _canonical_fingerprint(self.to_dict())

    def with_qec_distance(self, distance: int) -> "FleetSpec":
        """This fleet with every shard re-encoded at code ``distance``.

        Rewrites each shard name's ``@d<k>`` suffix (``distance=1`` means
        the bare, unencoded architecture) — the sweep axis
        ``fleet.qec_distance``.
        """
        from repro.backends.encoded import parse_encoded_name

        _require(
            isinstance(distance, int) and distance >= 1,
            f"FleetSpec.with_qec_distance needs an int distance >= 1 "
            f"(got {distance!r})",
        )
        shards = []
        for name in self.shards:
            base, _ = parse_encoded_name(name)
            shards.append(base if distance == 1 else f"{base}@d{distance}")
        return dataclasses.replace(self, shards=tuple(shards))

    def with_shard_count(self, count: int) -> "FleetSpec":
        """This fleet widened/narrowed to ``count`` shards.

        Cycles the existing shard pattern out to ``count`` entries (a
        homogeneous fleet stays homogeneous; a mixed pattern repeats) —
        the sweep axis ``fleet.shard_count``.
        """
        _require(
            isinstance(count, int) and count >= 1,
            f"FleetSpec.with_shard_count needs an int count >= 1 "
            f"(got {count!r})",
        )
        shards = tuple(self.shards[i % len(self.shards)] for i in range(count))
        return dataclasses.replace(self, shards=shards)

    def memory(self) -> list[int] | None:
        """The fleet's classical memory contents (``None`` = zeros)."""
        from repro.workloads.generators import random_data, structured_data

        if self.data == "zeros":
            return None
        if self.data == "random":
            return random_data(self.capacity, self.data_seed, self.data_density)
        return structured_data(self.capacity, self.data)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "capacity": self.capacity,
            "shards": list(self.shards),
            "placement": self.placement,
            "window_size": self.window_size,
            "functional": self.functional,
            "data": self.data,
            "data_seed": self.data_seed,
            "data_density": self.data_density,
            "parameters": (
                None
                if self.parameters is None
                else dataclasses.asdict(self.parameters)
            ),
        }
        return out

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FleetSpec":
        _check_keys(dict(payload), _field_names(cls), "FleetSpec")
        data = dict(payload)
        if "shards" in data and data["shards"] is not None:
            data["shards"] = tuple(data["shards"])
        if data.get("parameters") is not None:
            params = data["parameters"]
            if isinstance(params, dict):
                _check_keys(
                    params,
                    _field_names(HardwareParameters),
                    "FleetSpec.parameters",
                )
                try:
                    data["parameters"] = HardwareParameters(**params)
                except ValueError as exc:
                    raise SpecError(f"FleetSpec.parameters: {exc}") from None
        return cls(**data)


# ------------------------------------------------------------------ workload
#: Fields meaningful for each workload kind, beyond the shared ones.
_KIND_FIELDS: dict[str, frozenset[str]] = {
    "poisson": frozenset({
        "num_queries", "mean_interarrival", "addresses_per_query",
        "num_tenants", "tenant_weights", "shard_weights",
    }),
    "bursty": frozenset({
        "num_bursts", "burst_size", "burst_spacing", "addresses_per_query",
        "num_tenants", "tenant_weights", "shard_weights",
    }),
    "diurnal": frozenset({
        "num_queries", "mean_interarrival", "period", "amplitude",
        "addresses_per_query", "num_tenants", "tenant_weights",
        "shard_weights",
    }),
    "flash-crowd": frozenset({
        "num_queries", "mean_interarrival", "crowd_time", "crowd_size",
        "crowd_spacing", "addresses_per_query", "num_tenants",
        "tenant_weights", "shard_weights",
    }),
    "periodic": frozenset({
        "num_sources", "rounds", "period", "stagger", "addresses_per_query",
    }),
    "closed-loop": frozenset({
        "num_clients", "queries_per_client", "think_layers", "stagger",
        "addresses_per_query",
    }),
    "replay": frozenset({"path", "addresses_per_query"}),
}

#: Fields meaningful for every kind.
_SHARED_FIELDS = frozenset({
    "kind", "seed", "deadline_layers", "min_fidelity", "delivery",
})


@dataclass(frozen=True)
class WorkloadSpec:
    """The traffic: which generator, at what rate, with which SLOs.

    One flat dataclass covers every kind; fields that do not apply to the
    chosen ``kind`` must stay at their defaults (field-precise
    :class:`SpecError` otherwise), so a serialized spec cannot smuggle
    silently-ignored knobs.

    Kinds (see :mod:`repro.workloads`): ``"poisson"``, ``"bursty"``,
    ``"diurnal"`` (sinusoidal rate), ``"flash-crowd"`` (baseline + spike),
    ``"periodic"`` (staggered fixed-period sources, one tenant each),
    ``"closed-loop"`` (think-time clients) and ``"replay"`` (requests
    reconstructed from a :class:`~repro.metrics.sinks.JsonlSink` file).

    ``delivery`` picks the source type for open-loop kinds: ``"trace"``
    (materialized :class:`~repro.engine.TraceSource`), ``"streaming"``
    (O(1)-memory :class:`~repro.engine.StreamingTraceSource`) or
    ``"partitioned"`` (a restartable
    :class:`~repro.engine.partition.PartitionedTraceSource`, the form
    parallel workers can regenerate per shard).
    """

    kind: str
    # poisson / diurnal / flash-crowd
    num_queries: int = 0
    mean_interarrival: float = 0.0
    # bursty
    num_bursts: int = 0
    burst_size: int = 0
    burst_spacing: float = 0.0
    # diurnal / periodic
    period: float = 0.0
    amplitude: float = 0.5
    # flash-crowd
    crowd_time: float = 0.0
    crowd_size: int = 0
    crowd_spacing: float = 0.0
    # periodic
    num_sources: int = 0
    rounds: int = 0
    # closed-loop (stagger shared with periodic)
    num_clients: int = 0
    queries_per_client: int = 0
    think_layers: float = 0.0
    stagger: float = 0.0
    # replay
    path: str = ""
    # shared knobs
    addresses_per_query: int = 2
    num_tenants: int = 1
    seed: int = 0
    deadline_layers: float | None = None
    min_fidelity: float | None = None
    tenant_weights: tuple[float, ...] | None = None
    shard_weights: tuple[float, ...] | None = None
    delivery: str = "trace"

    def __post_init__(self) -> None:
        _require(
            self.kind in WORKLOAD_KINDS,
            f"WorkloadSpec.kind must be one of {WORKLOAD_KINDS} "
            f"(got {self.kind!r})",
        )
        object.__setattr__(
            self,
            "tenant_weights",
            _as_optional_float_tuple(
                self.tenant_weights, "WorkloadSpec.tenant_weights"
            ),
        )
        object.__setattr__(
            self,
            "shard_weights",
            _as_optional_float_tuple(
                self.shard_weights, "WorkloadSpec.shard_weights"
            ),
        )
        # Reject values smuggled into fields the kind ignores.
        applicable = _SHARED_FIELDS | _KIND_FIELDS[self.kind]
        for spec_field in dataclasses.fields(self):
            if spec_field.name in applicable:
                continue
            if getattr(self, spec_field.name) != spec_field.default:
                raise SpecError(
                    f"WorkloadSpec.{spec_field.name} does not apply to "
                    f"kind {self.kind!r}"
                )
        _require(
            self.delivery in DELIVERIES,
            f"WorkloadSpec.delivery must be one of {DELIVERIES} "
            f"(got {self.delivery!r})",
        )
        if self.kind in ("closed-loop", "replay"):
            _require(
                self.delivery == "trace",
                f"WorkloadSpec.delivery {self.delivery!r} is not available "
                f"for kind {self.kind!r}",
            )
        _require(
            self.addresses_per_query >= 1,
            f"WorkloadSpec.addresses_per_query must be >= 1 "
            f"(got {self.addresses_per_query!r})",
        )
        _require(
            self.num_tenants >= 1,
            f"WorkloadSpec.num_tenants must be >= 1 "
            f"(got {self.num_tenants!r})",
        )
        _require(
            self.deadline_layers is None or self.deadline_layers > 0,
            f"WorkloadSpec.deadline_layers must be None or > 0 "
            f"(got {self.deadline_layers!r})",
        )
        _require(
            self.min_fidelity is None or 0.0 < self.min_fidelity <= 1.0,
            f"WorkloadSpec.min_fidelity must be None or in (0, 1] "
            f"(got {self.min_fidelity!r})",
        )
        if self.tenant_weights is not None:
            _require(
                len(self.tenant_weights) == self.num_tenants,
                f"WorkloadSpec.tenant_weights must have num_tenants="
                f"{self.num_tenants} entries (got {len(self.tenant_weights)})",
            )
        positives: dict[str, bool] = {}
        if self.kind in ("poisson", "diurnal", "flash-crowd"):
            positives["num_queries"] = self.num_queries >= 1
            positives["mean_interarrival"] = self.mean_interarrival > 0
        if self.kind == "bursty":
            positives["num_bursts"] = self.num_bursts >= 1
            positives["burst_size"] = self.burst_size >= 1
            positives["burst_spacing"] = self.burst_spacing > 0
        if self.kind == "diurnal":
            positives["period"] = self.period > 0
            _require(
                0.0 <= self.amplitude < 1.0,
                f"WorkloadSpec.amplitude must be in [0, 1) "
                f"(got {self.amplitude!r})",
            )
        if self.kind == "flash-crowd":
            positives["crowd_size"] = self.crowd_size >= 1
            _require(
                self.crowd_time >= 0 and self.crowd_spacing >= 0,
                "WorkloadSpec.crowd_time and WorkloadSpec.crowd_spacing "
                "must be >= 0",
            )
        if self.kind == "periodic":
            positives["num_sources"] = self.num_sources >= 1
            positives["rounds"] = self.rounds >= 1
            positives["period"] = self.period > 0
            _require(
                self.stagger >= 0,
                f"WorkloadSpec.stagger must be >= 0 (got {self.stagger!r})",
            )
        if self.kind == "closed-loop":
            positives["num_clients"] = self.num_clients >= 1
            positives["queries_per_client"] = self.queries_per_client >= 1
            _require(
                self.think_layers >= 0 and self.stagger >= 0,
                "WorkloadSpec.think_layers and WorkloadSpec.stagger must "
                "be >= 0",
            )
        if self.kind == "replay":
            _require(
                bool(self.path),
                "WorkloadSpec.path is required for kind 'replay'",
            )
        for name, ok in positives.items():
            _require(
                ok,
                f"WorkloadSpec.{name}={getattr(self, name)!r} is not a "
                f"valid value for kind {self.kind!r}",
            )

    # ------------------------------------------------------------- building
    def _trace_num_shards(self, fleet: FleetSpec) -> int:
        """Shard count the trace generators align superpositions to.

        Interleaved fleets pin each query to the shard owning its
        addresses; replicated (shortest-queue) fleets serve the global
        address space from every shard, so traces are built single-shard —
        the rule every hand-written example follows.
        """
        return fleet.num_shards if fleet.placement == "interleaved" else 1

    def _iterator(
        self, fleet: FleetSpec, shards: tuple[int, ...] | None
    ) -> Iterator[QueryRequest]:
        """The lazy request stream of an open-loop generator kind."""
        from repro.workloads import generators as gen

        num_shards = self._trace_num_shards(fleet)
        if self.shard_weights is not None and len(
            self.shard_weights
        ) != num_shards:
            raise SpecError(
                f"WorkloadSpec.shard_weights must have {num_shards} "
                f"entries for this fleet (got {len(self.shard_weights)})"
            )
        if self.kind == "poisson":
            return gen.iter_poisson_trace(
                fleet.capacity, self.num_queries, self.mean_interarrival,
                self.addresses_per_query, self.num_tenants, num_shards,
                self.seed, self.deadline_layers, self.min_fidelity, shards,
                self.tenant_weights, self.shard_weights,
            )
        if self.kind == "bursty":
            return gen.iter_bursty_trace(
                fleet.capacity, self.num_bursts, self.burst_size,
                self.burst_spacing, self.addresses_per_query,
                self.num_tenants, num_shards, self.seed,
                self.deadline_layers, self.min_fidelity, shards,
                self.tenant_weights, self.shard_weights,
            )
        if self.kind == "diurnal":
            return gen.iter_diurnal_trace(
                fleet.capacity, self.num_queries, self.mean_interarrival,
                self.period, self.amplitude, self.addresses_per_query,
                self.num_tenants, num_shards, self.seed,
                self.deadline_layers, self.min_fidelity, shards,
                self.tenant_weights, self.shard_weights,
            )
        if self.kind == "flash-crowd":
            return gen.iter_flash_crowd_trace(
                fleet.capacity, self.num_queries, self.mean_interarrival,
                self.crowd_time, self.crowd_size, self.crowd_spacing,
                self.addresses_per_query, self.num_tenants, num_shards,
                self.seed, self.deadline_layers, self.min_fidelity, shards,
                self.tenant_weights, self.shard_weights,
            )
        if self.kind == "periodic":
            return gen.iter_periodic_trace(
                fleet.capacity, self.num_sources, self.rounds, self.period,
                self.stagger, self.addresses_per_query, num_shards,
                self.seed, self.deadline_layers, self.min_fidelity, shards,
            )
        raise SpecError(f"kind {self.kind!r} has no open-loop iterator")

    def _replay_requests(self, fleet: FleetSpec) -> list[QueryRequest]:
        """Reconstruct requests from a recorded JSONL run.

        Served and rejected records both become requests again (a
        rejection's ``time`` stands in for its arrival).  The recorded
        shard re-seeds a shard-aligned superposition (mapped modulo the
        replaying fleet's shard count, so traces recorded on one fleet
        shape replay on another), keyed by ``seed + query_id`` exactly
        like the generators.
        """
        from repro.workloads.generators import shard_aligned_superposition

        num_shards = self._trace_num_shards(fleet)
        requests: list[QueryRequest] = []
        for record in load_jsonl(self.path):
            if isinstance(record, ServedQuery):
                arrival, shard = record.request_time, record.shard
            elif isinstance(record, RejectedQuery):
                arrival, shard = record.time, record.shard
            else:
                continue
            requests.append(QueryRequest(
                query_id=record.query_id,
                address_amplitudes=shard_aligned_superposition(
                    fleet.capacity, num_shards,
                    shard % num_shards if shard >= 0 else 0,
                    self.addresses_per_query,
                    seed=self.seed + record.query_id,
                ),
                request_time=float(arrival),
                qpu=record.tenant,
                deadline=(
                    record.deadline
                    if self.deadline_layers is None
                    else float(arrival) + self.deadline_layers
                ),
                min_fidelity=(
                    record.min_fidelity
                    if self.min_fidelity is None
                    else self.min_fidelity
                ),
            ))
        if not requests:
            raise SpecError(
                f"WorkloadSpec.path {self.path!r} holds no replayable "
                f"records"
            )
        return requests

    def build(self, fleet: FleetSpec) -> WorkloadSource:
        """The engine-ready workload source for the given fleet."""
        from repro.workloads.generators import closed_loop_source

        if self.kind == "closed-loop":
            return closed_loop_source(
                fleet.capacity, self.num_clients, self.queries_per_client,
                self.think_layers, self.addresses_per_query,
                self._trace_num_shards(fleet), self.seed,
                self.deadline_layers, self.stagger, self.min_fidelity,
            )
        if self.kind == "replay":
            return TraceSource(self._replay_requests(fleet))
        if self.delivery == "trace":
            return TraceSource(list(self._iterator(fleet, None)))
        if self.delivery == "streaming":
            return StreamingTraceSource(self._iterator(fleet, None))
        return PartitionedTraceSource(
            lambda shards: self._iterator(
                fleet, None if shards is None else tuple(shards)
            )
        )

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for spec_field in dataclasses.fields(self):
            value = getattr(self, spec_field.name)
            if isinstance(value, tuple):
                value = list(value)
            out[spec_field.name] = value
        return out

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "WorkloadSpec":
        _check_keys(dict(payload), _field_names(cls), "WorkloadSpec")
        return cls(**payload)


# -------------------------------------------------------------------- policy
@dataclass(frozen=True)
class PolicySpec:
    """Admission order, backpressure and elasticity.

    Attributes:
        admission: policy name from
            :func:`repro.scheduling.policy.policy_names`.
        admission_seed: RNG seed of the ``"random"`` policy.
        max_queue_depth: bounded per-shard queues (``None`` = unbounded).
        shed_expired: shed queued requests whose deadline passed.
        autoscaler: queue-watermark elastic scaling (requires
            ``placement="shortest-queue"``).
    """

    admission: str = "fifo"
    admission_seed: int = 0
    max_queue_depth: int | None = None
    shed_expired: bool = False
    autoscaler: AutoscalerConfig | None = None

    def __post_init__(self) -> None:
        _require(
            self.admission in policy_names(),
            f"PolicySpec.admission must be one of {policy_names()} "
            f"(got {self.admission!r})",
        )
        _require(
            self.max_queue_depth is None
            or (isinstance(self.max_queue_depth, int)
                and self.max_queue_depth >= 1),
            f"PolicySpec.max_queue_depth must be None or >= 1 "
            f"(got {self.max_queue_depth!r})",
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "admission": self.admission,
            "admission_seed": self.admission_seed,
            "max_queue_depth": self.max_queue_depth,
            "shed_expired": self.shed_expired,
            "autoscaler": (
                None
                if self.autoscaler is None
                else dataclasses.asdict(self.autoscaler)
            ),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "PolicySpec":
        _check_keys(dict(payload), _field_names(cls), "PolicySpec")
        data = dict(payload)
        if data.get("autoscaler") is not None:
            config = data["autoscaler"]
            if isinstance(config, dict):
                _check_keys(
                    config,
                    _field_names(AutoscalerConfig),
                    "PolicySpec.autoscaler",
                )
                try:
                    data["autoscaler"] = AutoscalerConfig(**config)
                except ValueError as exc:
                    raise SpecError(f"PolicySpec.autoscaler: {exc}") from None
        return cls(**data)


# ----------------------------------------------------------------------- run
@dataclass(frozen=True)
class RunSpec:
    """Engine run knobs: observation, parallelism, checking, clock.

    Attributes mirror :class:`repro.engine.ServiceEngine` (and
    ``QRAMService.serve_workload``): retention mode, reservoir size/seed,
    telemetry cadence, virtual-distillation budget, worker count
    (``None`` defers to ``REPRO_WORKERS``), sanitizer (``None`` defers to
    ``REPRO_SANITIZE``), profiling (``None`` defers to ``REPRO_PROFILE``)
    and the CLOPS clock behind queries-per-second numbers.
    """

    retention: str = "full"
    sample_size: int = 1024
    sample_seed: int = 0
    telemetry_interval: float | None = None
    max_distillation_copies: int = 1
    workers: int | None = None
    sanitize: bool | None = None
    profile: bool | None = None
    clops: float = 1.0e6

    def __post_init__(self) -> None:
        _require(
            self.retention in RETENTIONS,
            f"RunSpec.retention must be one of {RETENTIONS} "
            f"(got {self.retention!r})",
        )
        _require(
            self.sample_size >= 1,
            f"RunSpec.sample_size must be >= 1 (got {self.sample_size!r})",
        )
        _require(
            self.telemetry_interval is None or self.telemetry_interval > 0,
            f"RunSpec.telemetry_interval must be None or > 0 "
            f"(got {self.telemetry_interval!r})",
        )
        _require(
            self.max_distillation_copies >= 1,
            f"RunSpec.max_distillation_copies must be >= 1 "
            f"(got {self.max_distillation_copies!r})",
        )
        _require(
            self.workers is None
            or (isinstance(self.workers, int) and self.workers >= 0),
            f"RunSpec.workers must be None or >= 0 (got {self.workers!r})",
        )
        _require(
            self.clops > 0,
            f"RunSpec.clops must be positive (got {self.clops!r})",
        )

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunSpec":
        _check_keys(dict(payload), _field_names(cls), "RunSpec")
        return cls(**payload)


# ------------------------------------------------------------------ scenario
@dataclass(frozen=True)
class BuiltScenario:
    """The concrete objects one :class:`ScenarioSpec` assembles."""

    service: QRAMService
    engine: ServiceEngine
    source: WorkloadSource
    clops: float

    def run(self) -> ServiceReport:
        """Serve the workload through the engine (one full run)."""
        return self.engine.run(self.source, clops=self.clops)


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete serving scenario: fleet x workload x policy x run.

    ``build()`` assembles exactly the objects the hand-written paths
    construct — ``QRAMService(...)``, ``ServiceEngine(...)`` and the
    workload source — so a spec-driven run is bit-identical to its
    hand-wired equivalent (pinned per example in
    ``tests/test_scenarios.py``).  ``to_dict``/``from_dict`` (and the
    ``to_json``/``from_json`` convenience pair) round-trip every field,
    rejecting unknown keys.
    """

    fleet: FleetSpec
    workload: WorkloadSpec
    policy: PolicySpec = field(default_factory=PolicySpec)
    run: RunSpec = field(default_factory=RunSpec)
    name: str = ""

    def __post_init__(self) -> None:
        if self.policy.autoscaler is not None:
            _require(
                self.fleet.placement == "shortest-queue",
                "PolicySpec.autoscaler requires "
                "FleetSpec.placement='shortest-queue'",
            )
        if self.workload.kind in _PARTITIONABLE_KINDS and (
            self.workload.shard_weights is not None
        ):
            expected = (
                self.fleet.num_shards
                if self.fleet.placement == "interleaved"
                else 1
            )
            _require(
                len(self.workload.shard_weights) == expected,
                f"WorkloadSpec.shard_weights must have {expected} entries "
                f"for this fleet (got {len(self.workload.shard_weights)})",
            )

    # ---------------------------------------------------- fingerprints/axes
    def fingerprint(self) -> str:
        """Content digest of everything that determines this spec's report.

        ``name`` is excluded — it labels the spec but never reaches the
        engine, so two points differing only by name are the *same*
        execution.  The sweep engine deduplicates on this digest: equal
        specs run once and share the resulting report.
        """
        payload = self.to_dict()
        del payload["name"]
        return _canonical_fingerprint(payload)

    def with_value(self, path: str, value: Any) -> "ScenarioSpec":
        """A copy with one dotted ``"section.field"`` replaced.

        ``path`` names a section (``fleet`` / ``workload`` / ``policy`` /
        ``run``) and a field of that section; the replacement goes through
        :func:`dataclasses.replace`, so section validation and the
        cross-section checks re-run on the copy.  Two virtual fleet axes
        map onto rewrite helpers rather than raw fields:

        * ``"fleet.qec_distance"`` → :meth:`FleetSpec.with_qec_distance`
        * ``"fleet.shard_count"`` → :meth:`FleetSpec.with_shard_count`

        Dict values for the nested dataclass fields
        (``policy.autoscaler``, ``fleet.parameters``) are converted, so
        JSON-loaded sweep axes can carry them; list values become tuples.
        """
        section_name, _, field_name = path.partition(".")
        sections = ("fleet", "workload", "policy", "run")
        _require(
            section_name in sections and bool(field_name)
            and "." not in field_name,
            f"ScenarioSpec.with_value path must be 'section.field' with "
            f"section in {sections} (got {path!r})",
        )
        if path == "fleet.qec_distance":
            return dataclasses.replace(
                self, fleet=self.fleet.with_qec_distance(value)
            )
        if path == "fleet.shard_count":
            return dataclasses.replace(
                self, fleet=self.fleet.with_shard_count(value)
            )
        section = getattr(self, section_name)
        _require(
            field_name in _field_names(type(section)),
            f"{type(section).__name__} has no field {field_name!r}",
        )
        nested: dict[tuple[str, str], type] = {
            ("fleet", "parameters"): HardwareParameters,
            ("policy", "autoscaler"): AutoscalerConfig,
        }
        nested_type = nested.get((section_name, field_name))
        if nested_type is not None and isinstance(value, dict):
            _check_keys(value, _field_names(nested_type), path)
            try:
                value = nested_type(**value)
            except ValueError as exc:
                raise SpecError(f"{path}: {exc}") from None
        if isinstance(value, list):
            value = tuple(value)
        replaced = dataclasses.replace(section, **{field_name: value})
        return dataclasses.replace(self, **{section_name: replaced})

    # ------------------------------------------------------------- building
    def build(self, sink: Any = None) -> BuiltScenario:
        """Assemble the service, engine and workload source.

        ``sink`` is a runtime-only tee (an open
        :class:`~repro.metrics.sinks.JsonlSink` has no serialized form),
        passed straight to the engine.
        """
        service = QRAMService(
            self.fleet.capacity,
            num_shards=self.fleet.num_shards,
            data=self.fleet.memory(),
            policy=self.policy.admission,
            window_size=self.fleet.window_size,
            functional=self.fleet.functional,
            seed=self.policy.admission_seed,
            architectures=self.fleet.shards,
            placement=self.fleet.placement,
            parameters=self.fleet.parameters,
        )
        engine = ServiceEngine(
            service,
            max_queue_depth=self.policy.max_queue_depth,
            shed_expired=self.policy.shed_expired,
            autoscaler=self.policy.autoscaler,
            max_distillation_copies=self.run.max_distillation_copies,
            retention=self.run.retention,
            sample_size=self.run.sample_size,
            sample_seed=self.run.sample_seed,
            telemetry_interval=self.run.telemetry_interval,
            sink=sink,
            sanitize=self.run.sanitize,
            workers=self.run.workers,
            profile=self.run.profile,
        )
        return BuiltScenario(
            service=service,
            engine=engine,
            source=self.workload.build(self.fleet),
            clops=self.run.clops,
        )

    def execute(self, sink: Any = None) -> ServiceReport:
        """Build and run in one step."""
        return self.build(sink=sink).run()

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "fleet": self.fleet.to_dict(),
            "workload": self.workload.to_dict(),
            "policy": self.policy.to_dict(),
            "run": self.run.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ScenarioSpec":
        _check_keys(
            dict(payload),
            frozenset({"name", "fleet", "workload", "policy", "run"}),
            "ScenarioSpec",
        )
        _require(
            "fleet" in payload and "workload" in payload,
            "ScenarioSpec requires 'fleet' and 'workload' sections",
        )
        return cls(
            fleet=FleetSpec.from_dict(payload["fleet"]),
            workload=WorkloadSpec.from_dict(payload["workload"]),
            policy=(
                PolicySpec.from_dict(payload["policy"])
                if "policy" in payload
                else PolicySpec()
            ),
            run=(
                RunSpec.from_dict(payload["run"])
                if "run" in payload
                else RunSpec()
            ),
            name=str(payload.get("name", "")),
        )

    def to_json(self, indent: int | None = 2) -> str:
        """The spec as a JSON document (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


#: Dotted sweep-axis paths that map onto fleet rewrite helpers instead of
#: raw :class:`FleetSpec` fields (see :meth:`ScenarioSpec.with_value`).
VIRTUAL_AXES = frozenset({"fleet.qec_distance", "fleet.shard_count"})


def axis_paths() -> frozenset[str]:
    """Every dotted ``"section.field"`` path ``with_value`` accepts.

    The sweep layer (:mod:`repro.sweep`) validates axis paths against
    this set eagerly, so a misspelled axis fails at spec construction
    rather than mid-campaign.
    """
    sections: dict[str, type] = {
        "fleet": FleetSpec,
        "workload": WorkloadSpec,
        "policy": PolicySpec,
        "run": RunSpec,
    }
    paths = set(VIRTUAL_AXES)
    for section, cls in sections.items():
        paths.update(
            f"{section}.{spec_field.name}"
            for spec_field in dataclasses.fields(cls)
        )
    return frozenset(paths)
