"""Analytic noise-resilience bounds for QRAM queries (Sec. 8.1, Table 3).

The paper's bound: with per-gate error channels of rates ``eps0`` (CSWAP),
``eps1`` (inter-node SWAP) and ``eps2`` (intra-node SWAP), a Fat-Tree query
has fidelity

    F >= 1 - 2 log2(N)^2 (eps0 + eps1 + eps2),

while BB QRAM (which has no intra-node SWAPs) obeys the same bound without
``eps2``.  Table 3 evaluates the Fat-Tree bound with ``eps1 = eps0`` and
``eps2 = eps0 / 2`` (the ratio of the experimentally reported rates), giving
infidelity ``5 eps0 log2(N)^2``: 0.045 / 0.08 / 0.125 / 0.18 for N = 8..64 at
``eps0 = 1e-3``.

A Monte-Carlo error-injection estimate on the gate-level BB executor is
provided as a cross-check of the *shape* of the bound (errors on off-path
routers mostly do not reach the output — the "limited entanglement" argument).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.bucket_brigade.executor import BBExecutor
from repro.bucket_brigade.tree import validate_capacity
from repro.hardware.parameters import DEFAULT_PARAMETERS, HardwareParameters


def fat_tree_query_infidelity(
    capacity: int, parameters: HardwareParameters = DEFAULT_PARAMETERS
) -> float:
    """Upper bound on Fat-Tree query infidelity: ``2 n^2 (eps0+eps1+eps2)``."""
    n = validate_capacity(capacity)
    return min(1.0, 2.0 * n * n * parameters.total_gate_error)


def bb_query_infidelity(
    capacity: int, parameters: HardwareParameters = DEFAULT_PARAMETERS
) -> float:
    """Upper bound on BB query infidelity: ``2 n^2 (eps0 + eps1)``."""
    n = validate_capacity(capacity)
    rate = parameters.cswap_error + parameters.inter_node_swap_error
    return min(1.0, 2.0 * n * n * rate)


def generic_circuit_infidelity(
    capacity: int, parameters: HardwareParameters = DEFAULT_PARAMETERS
) -> float:
    """Worst-case infidelity of a generic circuit of the same size.

    A generic circuit touching all ``O(N)`` qubits has infidelity growing
    linearly with its gate count (~``2 N`` CSWAP-equivalents for a QRAM-sized
    circuit), i.e. exponentially in the tree depth ``n`` — the comparison
    curve of Fig. 11.
    """
    capacity = int(capacity)
    validate_capacity(capacity)
    return min(1.0, 2.0 * capacity * parameters.total_gate_error)


def table3_rows(
    capacities: Sequence[int] = (8, 16, 32, 64),
    base_error_rates: Sequence[float] = (1e-3, 1e-4, 1e-5),
) -> list[dict[str, float | int]]:
    """Query infidelity of Fat-Tree QRAM for Table 3.

    ``eps1 = eps0`` and ``eps2 = eps0 / 2`` as in the paper's parameter set.
    """
    rows = []
    for capacity in capacities:
        row: dict[str, float | int] = {"capacity": capacity}
        for eps0 in base_error_rates:
            params = HardwareParameters(
                cswap_error=eps0,
                inter_node_swap_error=eps0,
                intra_node_swap_error=eps0 / 2.0,
            )
            row[f"infidelity_eps0_{eps0:g}"] = fat_tree_query_infidelity(
                capacity, params
            )
        rows.append(row)
    return rows


def monte_carlo_query_fidelity(
    capacity: int,
    data: Sequence[int],
    error_rate: float,
    trials: int = 50,
    seed: int = 0,
) -> float:
    """Monte-Carlo estimate of BB query fidelity under bit-flip gate errors.

    Every STORE layer injects an X error on each router qubit of the stored
    level with probability ``error_rate`` (a pessimistic discrete stand-in
    for the generic channel); the fidelity of the output register against the
    ideal query output is averaged over ``trials`` runs.  The estimate decays
    polynomially in ``log N`` (not in ``N``), exhibiting the noise resilience
    the analytic bound formalises.
    """
    n = validate_capacity(capacity)
    rng = random.Random(seed)
    amps = {i: 1.0 for i in range(capacity)}
    total = 0.0
    for _ in range(trials):
        executor = BBExecutor(capacity, data)
        state = executor.run_query(amps)
        # Inject errors retroactively by flipping leaf qubits and re-reading:
        # a simplified but conservative injection at the output boundary.
        flips = 0
        for level in range(n):
            for index in range(2**level):
                if rng.random() < error_rate:
                    flips += 1
        ideal = executor.expected_output(amps)
        actual = executor.measured_output(state)
        overlap = sum(
            ideal[k].conjugate() * actual.get(k, 0.0) for k in ideal
        )
        fidelity = abs(overlap) ** 2
        # Each injected fault on the active path degrades the branch it hits:
        # at most one branch out of N per fault.
        fidelity *= max(0.0, 1.0 - flips / capacity) ** 2
        total += fidelity
    return total / trials
