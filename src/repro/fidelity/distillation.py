"""Virtual distillation using parallel Fat-Tree queries (Sec. 8.2, Table 4).

Virtual distillation estimates observables on the "distilled" state
``rho^k / Tr(rho^k)`` from ``k`` noisy copies of ``rho``.  When the noisy
query state is ``rho = (1 - eps) rho_0 + eps rho_err`` with the error
component spread over states (nearly) orthogonal to the ideal state, the
distilled state's infidelity is suppressed from ``eps`` to approximately
``eps^k`` (exactly ``eps^k / ((1-eps)^k + eps^k)`` for a single orthogonal
error state; the paper quotes the leading-order ``eps^k``).

Fat-Tree QRAM can prepare ``log N`` copies in parallel; with the same qubit
budget (256 qubits), a capacity-16 Fat-Tree prepares 4 copies while two
capacity-16 BB QRAMs prepare only 2, which is where the exponential fidelity
separation of Table 4 comes from.
"""

from __future__ import annotations

import numpy as np

from repro.bucket_brigade.qram import QUBITS_PER_ROUTER
from repro.bucket_brigade.tree import validate_capacity
from repro.fidelity.noise_resilience import (
    bb_query_infidelity,
    fat_tree_query_infidelity,
)
from repro.hardware.parameters import DEFAULT_PARAMETERS, HardwareParameters


def distilled_infidelity(infidelity: float, copies: int, exact: bool = False) -> float:
    """Infidelity after virtual distillation with ``copies`` noisy copies.

    Args:
        infidelity: per-copy infidelity ``eps``.
        copies: number of parallel copies ``k``.
        exact: use the exact single-orthogonal-error-state expression
            ``eps^k / ((1-eps)^k + eps^k)`` instead of the leading-order
            ``eps^k`` quoted by the paper.
    """
    if not 0.0 <= infidelity <= 1.0:
        raise ValueError("infidelity must be in [0, 1]")
    if copies < 1:
        raise ValueError("copies must be >= 1")
    if copies == 1:
        return infidelity
    if exact:
        good = (1.0 - infidelity) ** copies
        bad = infidelity**copies
        return bad / (good + bad)
    return infidelity**copies


def virtual_distillation_fidelity(
    capacity: int,
    copies: int,
    architecture: str = "Fat-Tree",
    parameters: HardwareParameters = DEFAULT_PARAMETERS,
    exact: bool = False,
) -> tuple[float, float]:
    """(fidelity before, fidelity after) distillation for one architecture."""
    if architecture == "Fat-Tree":
        eps = fat_tree_query_infidelity(capacity, parameters)
    elif architecture == "BB":
        eps = bb_query_infidelity(capacity, parameters)
    else:
        raise KeyError(f"unsupported architecture {architecture!r}")
    return 1.0 - eps, 1.0 - distilled_infidelity(eps, copies, exact=exact)


def table4_comparison(
    capacity: int = 16,
    parameters: HardwareParameters = DEFAULT_PARAMETERS,
) -> dict[str, dict[str, float]]:
    """Table 4: Fat-Tree vs two BB QRAMs at equal qubit budget (256 qubits).

    A capacity-16 Fat-Tree (16 N = 256 qubits) pipelines ``log2(16) = 4``
    copies; two capacity-16 BB QRAMs (2 x 8 N = 256 qubits) produce 2 copies.
    """
    n = validate_capacity(capacity)
    fat_tree_copies = n
    bb_copies = 2
    ft_before, ft_after = virtual_distillation_fidelity(
        capacity, fat_tree_copies, "Fat-Tree", parameters
    )
    bb_before, bb_after = virtual_distillation_fidelity(
        capacity, bb_copies, "BB", parameters
    )
    qubits = 2 * QUBITS_PER_ROUTER * capacity
    return {
        "Fat-Tree": {
            "qubits": qubits,
            "copies": fat_tree_copies,
            "fidelity_before": ft_before,
            "fidelity_after": ft_after,
        },
        "2 BB": {
            "qubits": qubits,
            "copies": bb_copies,
            "fidelity_before": bb_before,
            "fidelity_after": bb_after,
        },
    }


def density_matrix_distillation(
    ideal_state: np.ndarray, infidelity: float, copies: int, error_rank: int = 1
) -> float:
    """Exact density-matrix virtual distillation of a small query state.

    Builds ``rho = (1 - eps)|psi><psi| + eps rho_err`` with the error spread
    uniformly over ``error_rank`` orthogonal states, computes
    ``<psi| rho^k |psi> / Tr(rho^k)`` exactly, and returns the distilled
    fidelity.  With ``error_rank = 1`` this reproduces
    :func:`distilled_infidelity` (exact form) identically; spreading the error
    over more orthogonal states only improves the distilled fidelity.
    """
    psi = np.asarray(ideal_state, dtype=complex).reshape(-1)
    psi = psi / np.linalg.norm(psi)
    dim = psi.shape[0]
    if dim < 2:
        raise ValueError("need at least a qubit-sized state")
    if not 1 <= error_rank < dim:
        raise ValueError("error_rank must be in [1, dim)")
    projector = np.outer(psi, psi.conj())
    # Orthonormal basis of the orthogonal complement (Gram-Schmidt via QR).
    basis = np.linalg.qr(
        np.eye(dim, dtype=complex) - projector
    )[0]
    complement = [
        v for v in basis.T if abs(np.vdot(psi, v)) < 1e-9 and np.linalg.norm(v) > 1e-9
    ][:error_rank]
    rho_err = sum(np.outer(v, v.conj()) for v in complement) / len(complement)
    rho = (1.0 - infidelity) * projector + infidelity * rho_err
    power = np.linalg.matrix_power(rho, copies)
    return float(np.real(psi.conj() @ power @ psi / np.trace(power)))


def parallelism_fidelity_tradeoff(
    capacity: int,
    parameters: HardwareParameters = DEFAULT_PARAMETERS,
) -> list[dict[str, float]]:
    """Grouping k copies per distilled query leaves ``log(N)/k`` parallel
    queries (Sec. 8.2): the full trade-off curve."""
    n = validate_capacity(capacity)
    eps = fat_tree_query_infidelity(capacity, parameters)
    rows = []
    for k in range(1, n + 1):
        if n % k:
            continue
        rows.append(
            {
                "copies_per_query": k,
                "remaining_parallelism": n // k,
                "fidelity_after": 1.0 - distilled_infidelity(eps, k),
            }
        )
    return rows
