"""Error robustness of Fat-Tree QRAM (Sec. 8).

* :mod:`repro.fidelity.noise_resilience` — analytic query-fidelity bounds
  (Sec. 8.1, Table 3) and a Monte-Carlo error-injection cross-check.
* :mod:`repro.fidelity.distillation` — virtual distillation with parallel
  queries (Sec. 8.2, Table 4).
* :mod:`repro.fidelity.qec` — QEC overhead analysis: encoded QRAM (Fig. 11)
  and error-corrected queries on a noisy QRAM (Table 5).
"""

from repro.fidelity.noise_resilience import (
    bb_query_infidelity,
    fat_tree_query_infidelity,
    generic_circuit_infidelity,
    monte_carlo_query_fidelity,
    table3_rows,
)
from repro.fidelity.distillation import (
    distilled_infidelity,
    table4_comparison,
    virtual_distillation_fidelity,
)
from repro.fidelity.qec import (
    QECCode,
    encoded_infidelity,
    encoded_parameters,
    fig11_series,
    logical_error_rate,
    table5_rows,
)

__all__ = [
    "fat_tree_query_infidelity",
    "bb_query_infidelity",
    "generic_circuit_infidelity",
    "monte_carlo_query_fidelity",
    "table3_rows",
    "virtual_distillation_fidelity",
    "distilled_infidelity",
    "table4_comparison",
    "QECCode",
    "logical_error_rate",
    "encoded_infidelity",
    "encoded_parameters",
    "fig11_series",
    "table5_rows",
]
