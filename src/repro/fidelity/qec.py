"""Quantum error correction analysis (Sec. 8.3, Fig. 11, Table 5).

Two scenarios:

1. *Encoded QRAM* — every physical qubit is replaced by an ``[[m, 1, d]]``
   logical qubit with transversal SWAP / CSWAP.  The per-gate logical error
   rate follows the standard threshold scaling
   ``p_L = A (p / p_th)^((d+1)/2)`` and the query infidelity keeps QRAM's
   ``O(log^2 N)`` scaling while a generic circuit of the same size degrades
   exponentially with tree depth (Fig. 11).

2. *Error-corrected queries on a noisy QRAM* (Sec. 8.3.2) — only the
   address/bus qubits are encoded; the ``m`` physical qubits of each logical
   address qubit are routed as ``m`` pipelined queries, giving the resource
   trade-off of Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.bucket_brigade.tree import validate_capacity
from repro.fidelity.noise_resilience import (
    bb_query_infidelity,
    fat_tree_query_infidelity,
    generic_circuit_infidelity,
)
from repro.hardware.parameters import DEFAULT_PARAMETERS, HardwareParameters

#: Threshold error rate of the assumed code family (surface-code-like).
DEFAULT_THRESHOLD = 1.0e-2
#: Prefactor of the logical error-rate scaling law.
DEFAULT_PREFACTOR = 0.1


@dataclass(frozen=True)
class QECCode:
    """An ``[[m, 1, d]]`` quantum error-correcting code.

    Attributes:
        physical_qubits: ``m``, physical qubits per logical qubit.
        distance: code distance ``d``.
        syndrome_depth: depth ``D`` of one syndrome-extraction round.
    """

    physical_qubits: int
    distance: int
    syndrome_depth: int = 4

    def __post_init__(self) -> None:
        if self.physical_qubits < 1 or self.distance < 1 or self.syndrome_depth < 1:
            raise ValueError("code parameters must be positive")
        if self.distance > self.physical_qubits:
            raise ValueError("distance cannot exceed the number of physical qubits")

    @property
    def correctable_errors(self) -> int:
        """Number of correctable errors: ``(d - 1) // 2``."""
        return (self.distance - 1) // 2


def logical_error_rate(
    physical_error: float,
    distance: int,
    threshold: float = DEFAULT_THRESHOLD,
    prefactor: float = DEFAULT_PREFACTOR,
) -> float:
    """Logical error per gate: ``A (p / p_th)^((d+1)/2)`` (d=1 -> physical)."""
    if distance <= 1:
        return physical_error
    exponent = (distance + 1) // 2
    return min(1.0, prefactor * (physical_error / threshold) ** exponent)


def encoded_parameters(
    parameters: HardwareParameters,
    distance: int,
    threshold: float = DEFAULT_THRESHOLD,
) -> HardwareParameters:
    """Hardware parameters with every error rate replaced by its logical one.

    ``distance <= 1`` is the unencoded passthrough: the physical parameters
    are returned unchanged, so encoded expressions evaluated at ``d = 1``
    reproduce the bare Sec. 8.1 bounds exactly.
    """
    if distance <= 1:
        return parameters
    return HardwareParameters(
        cswap_time_us=parameters.cswap_time_us,
        intra_node_swap_time_us=parameters.intra_node_swap_time_us,
        cswap_error=logical_error_rate(parameters.cswap_error, distance, threshold),
        inter_node_swap_error=logical_error_rate(
            parameters.inter_node_swap_error, distance, threshold
        ),
        intra_node_swap_error=logical_error_rate(
            parameters.intra_node_swap_error, distance, threshold
        ),
    )


def encoded_infidelity(
    architecture: str,
    capacity: int,
    distance: int,
    parameters: HardwareParameters = DEFAULT_PARAMETERS,
    threshold: float = DEFAULT_THRESHOLD,
) -> float:
    """Query (or circuit) infidelity when every gate is encoded at ``distance``.

    The architecture-level infidelity expressions of Sec. 8.1 are reused with
    the physical error rates replaced by logical ones; ``distance = 1`` is
    the exact unencoded bound.
    """
    effective = encoded_parameters(parameters, distance, threshold)
    if architecture == "Fat-Tree":
        return fat_tree_query_infidelity(capacity, effective)
    if architecture == "BB":
        return bb_query_infidelity(capacity, effective)
    if architecture == "GC":
        return generic_circuit_infidelity(capacity, effective)
    raise KeyError(f"unknown architecture {architecture!r}")


def fig11_series(
    tree_depths: Sequence[int] = tuple(range(2, 19, 2)),
    distances: Sequence[int] = (1, 3, 5),
    base_error: float = 1e-3,
) -> dict[str, list[float]]:
    """Infidelity vs tree depth for Fat-Tree / BB / generic circuits (Fig. 11).

    Keys are ``"{architecture} d={distance}"`` with ``d=1`` meaning no QEC.
    """
    parameters = HardwareParameters(
        cswap_error=base_error,
        inter_node_swap_error=base_error,
        intra_node_swap_error=base_error / 2.0,
    )
    series: dict[str, list[float]] = {}
    for architecture in ("Fat-Tree", "BB", "GC"):
        for distance in distances:
            label = f"{architecture} d={distance}"
            series[label] = [
                encoded_infidelity(architecture, 2**n, distance, parameters)
                for n in tree_depths
            ]
    series["tree_depth"] = [float(n) for n in tree_depths]
    return series


def max_depth_below_infidelity(
    architecture: str,
    distance: int,
    target_infidelity: float,
    max_depth: int = 24,
    parameters: HardwareParameters | None = None,
) -> int:
    """Largest tree depth whose infidelity stays below the target.

    Reproduces the Sec. 8.3 comparison: at distance 3 and the default
    parameters, a generic circuit is limited to a much smaller depth than a
    QRAM circuit for the same infidelity budget.
    """
    params = parameters or HardwareParameters(
        cswap_error=1e-3, inter_node_swap_error=1e-3, intra_node_swap_error=5e-4
    )
    best = 0
    for n in range(1, max_depth + 1):
        if encoded_infidelity(architecture, 2**n, distance, params) < target_infidelity:
            best = n
        else:
            break
    return best


def table5_rows(capacity: int, code: QECCode) -> list[dict[str, object]]:
    """Error-corrected query on a noisy QRAM vs an encoded BB QRAM (Table 5).

    Fat-Tree pipelines the ``m`` physical qubits of each encoded address
    qubit as ``m`` queries, so ``floor(log2(N) / m)`` logical queries run in
    parallel on ``N``-scale physical hardware, with logical query latency
    ``D log2(N) + m``; the encoded BB QRAM needs ``m N`` physical qubits and
    has latency ``D log2(N)`` with no parallelism.
    """
    n = validate_capacity(capacity)
    m = code.physical_qubits
    d = code.syndrome_depth
    return [
        {
            "architecture": "Fat-Tree (noisy QRAM, encoded addresses)",
            "physical_qubits": capacity,
            "logical_query_parallelism": max(0, n // m),
            "logical_query_latency": d * n + m,
        },
        {
            "architecture": "BB (fully encoded QRAM)",
            "physical_qubits": m * capacity,
            "logical_query_parallelism": 1,
            "logical_query_latency": d * n,
        },
    ]
