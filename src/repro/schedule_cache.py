"""Process-wide registry of shared gate-level schedule caches.

Every replica of the same QRAM configuration derives the *same* executor
state — relative schedules, lowered gate sequences, minimum feasible
admission intervals — yet before this registry each
:class:`~repro.core.qram.FatTreeQRAM` /
:class:`~repro.bucket_brigade.qram.BucketBrigadeQRAM` built its own
executor from a cold cache.  An autoscaled fleet paid that derivation again
for every replica it added, and the parallel serving core would have paid
it once per worker per replica.

:class:`ScheduleCacheRegistry` hoists the executor behind a process-wide
table keyed by ``(kind, capacity, memory image, distance)``:

* ``kind`` — the architecture family deriving the schedule ("Fat-Tree",
  "BB"); Virtual pages and Distributed copies reuse these two, and encoded
  backends key their inner bare architecture.
* ``capacity`` / memory image — executors embed the classical memory, so
  the cache key is the *content* of the memory, not the replica holding
  it.  That content-addressing is also the write-invalidation story: a
  ``write_memory`` changes the image, the owning QRAM drops its local
  executor pointer (see :meth:`note_invalidation`), and its next lookup
  misses into a fresh executor under the new key — while replicas still
  holding the old image keep hitting the old entry, which ages out of the
  bounded table by LRU once nobody re-keys it.
* ``distance`` — reserved dimension for QEC-encoded variants whose
  schedule differs at equal capacity (bare architectures use 0; encoded
  backends today wrap a bare inner backend, which keys itself).

Per-window occupancy does not appear in the executor key: each executor
already memoizes its schedule / lowering / interval caches per occupancy
internally, so sharing the executor shares those too.

Alongside the executors the registry holds a second, finer-grained table
of **per-occupancy fidelity vectors** — the analytic per-slot predictions
of :mod:`repro.backends.noise`, keyed ``(arch, capacity, occupancy,
distance, extra)`` where ``extra`` is the backend's hashable prediction
profile (noise parameters plus structural counts).  Predictions are
independent of the memory image, so the key carries no data: a
``write_memory`` never stales a shared vector, and write-invalidation
only drops the writing backend's instance memos.  Fleet-build prewarming
(:meth:`ScheduleCacheRegistry.prewarm`) derives both tables once per
configuration, so autoscaled replicas and forked workers inherit warm
predictions as well as warm schedules.

The registry is *per process*.  The parallel serving core pre-warms it at
fleet build, before worker processes fork, so every worker inherits the
warm table by copy-on-write and no worker re-derives a schedule another
replica already paid for.  Hit / miss / prewarm counters make the sharing
observable (asserted by ``benchmarks/bench_service_throughput.py``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable, Iterable, Sequence
from dataclasses import dataclass
from typing import Any

__all__ = [
    "CacheStats",
    "ScheduleCacheRegistry",
    "default_registry",
    "shared_executor",
]

#: One executor entry key: (kind, capacity, memory image, distance).
_Key = tuple[str, int, tuple[int, ...], int]

#: One fidelity-vector key: (arch, capacity, occupancy, distance, profile).
_FidelityKey = tuple[str, int, int, int, Hashable]


@dataclass(frozen=True)
class CacheStats:
    """Counters of one :class:`ScheduleCacheRegistry` (a snapshot).

    Attributes:
        hits: lookups served from the shared table.
        misses: lookups that built a fresh executor.
        prewarms: executors actually *built* by eager warming at fleet
            build / worker spawn.  A warm rebuild of a known
            configuration hits the shared table and does not count, so
            across a sweep of scenarios sharing fleets this counter
            stays flat at (unique configurations) while ``hits`` climbs
            — the cross-run reuse proof.
        invalidations: backend-local executor pointers dropped by writes.
        entries: executors currently in the table.
        fidelity_hits: per-occupancy fidelity vectors served shared.
        fidelity_misses: fidelity vectors derived fresh.
        fidelity_entries: fidelity vectors currently in the table.
    """

    hits: int = 0
    misses: int = 0
    prewarms: int = 0
    invalidations: int = 0
    entries: int = 0
    fidelity_hits: int = 0
    fidelity_misses: int = 0
    fidelity_entries: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over all lookups (0.0 before any lookup)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def delta(self, baseline: "CacheStats") -> "CacheStats":
        """The counter movement since ``baseline`` (an earlier snapshot).

        Monotone counters subtract; the table-size gauges (``entries``,
        ``fidelity_entries``) keep this snapshot's values — a delta still
        describes the table as it stands now.
        """
        return CacheStats(
            hits=self.hits - baseline.hits,
            misses=self.misses - baseline.misses,
            prewarms=self.prewarms - baseline.prewarms,
            invalidations=self.invalidations - baseline.invalidations,
            entries=self.entries,
            fidelity_hits=self.fidelity_hits - baseline.fidelity_hits,
            fidelity_misses=self.fidelity_misses - baseline.fidelity_misses,
            fidelity_entries=self.fidelity_entries,
        )

    def summary(self) -> str:
        """One observability line (profiled runs and the sweep CLI)."""
        return (
            f"schedule cache: hits={self.hits} misses={self.misses} "
            f"hit_rate={self.hit_rate:.3f} prewarms={self.prewarms} "
            f"entries={self.entries} invalidations={self.invalidations} | "
            f"fidelity: hits={self.fidelity_hits} "
            f"misses={self.fidelity_misses} entries={self.fidelity_entries}"
        )


class ScheduleCacheRegistry:
    """Bounded LRU table of shared, content-addressed schedule executors.

    Args:
        max_entries: most executors kept; the least recently used entry is
            evicted beyond that (stale memory images after writes age out
            here).
    """

    def __init__(
        self, max_entries: int = 64, max_fidelity_entries: int = 4096
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_fidelity_entries < 1:
            raise ValueError("max_fidelity_entries must be >= 1")
        self.max_entries = max_entries
        self.max_fidelity_entries = max_fidelity_entries
        self._entries: OrderedDict[_Key, Any] = OrderedDict()
        # Fidelity vectors are tiny tuples, so their table is bounded far
        # looser than the executor table.
        self._fidelity_vectors: OrderedDict[
            _FidelityKey, tuple[float, ...]
        ] = OrderedDict()
        # Guards the tables for same-process concurrent use; forked workers
        # each get their own (unlocked) copy of the registry.
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._prewarms = 0
        self._invalidations = 0
        self._fidelity_hits = 0
        self._fidelity_misses = 0

    @staticmethod
    def _key(
        kind: str, capacity: int, data: Sequence[int], distance: int
    ) -> _Key:
        return (kind, capacity, tuple(int(x) & 1 for x in data), distance)

    def executor(
        self,
        kind: str,
        capacity: int,
        data: Sequence[int],
        factory: Callable[[], Any],
        distance: int = 0,
    ) -> Any:
        """The shared executor of one configuration (built on first use).

        ``factory`` must build an executor that *copies* ``data`` (both
        gate-level executors do), so later in-place writes to the caller's
        memory list cannot corrupt the shared entry.
        """
        key = self._key(kind, capacity, data, distance)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry
            self._misses += 1
        built = factory()
        with self._lock:
            # A concurrent builder may have raced us; last insert wins and
            # both callers hold functionally identical executors.
            self._entries[key] = built
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return built

    def fidelity_vector(
        self,
        arch: str,
        capacity: int,
        occupancy: int,
        factory: Callable[[int], tuple[float, ...]],
        distance: int = 0,
        extra: Hashable = None,
    ) -> tuple[float, ...]:
        """The shared per-occupancy fidelity vector of one configuration.

        Keyed ``(arch, capacity, occupancy, distance, extra)``; ``extra``
        must carry everything else the prediction depends on (noise
        parameters, structural counts) so equal keys imply equal vectors.
        ``factory(occupancy)`` derives the vector on first use; replicas
        of the same configuration — autoscaled, rebuilt, or forked —
        resolve to the shared tuple afterwards.
        """
        key = (arch, capacity, occupancy, distance, extra)
        with self._lock:
            entry = self._fidelity_vectors.get(key)
            if entry is not None:
                self._fidelity_vectors.move_to_end(key)
                self._fidelity_hits += 1
                return entry
            self._fidelity_misses += 1
        built = factory(occupancy)
        with self._lock:
            # A concurrent builder may have raced us; last insert wins and
            # both callers hold equal vectors (the key determines them).
            self._fidelity_vectors[key] = built
            self._fidelity_vectors.move_to_end(key)
            while len(self._fidelity_vectors) > self.max_fidelity_entries:
                self._fidelity_vectors.popitem(last=False)
        return built

    def prewarm(self, backends: Iterable[Any]) -> int:
        """Warm every backend's schedule caches through the registry.

        Calls each backend's ``warm_schedule_caches()`` hook (all five
        adapters and the encoded wrapper provide one); backends without the
        hook are skipped.  Returns the number of backends warmed.  Run at
        fleet build and again immediately before worker processes fork, so
        children inherit a warm table copy-on-write.

        The ``prewarms`` counter moves only by the number of executors the
        warming actually *built* (the misses its lookups took): warming a
        configuration the table already holds is pure hits, so repeated
        fleet builds over the same designs — a sweep — leave the counter
        flat while ``hits`` climbs.
        """
        warmed = 0
        with self._lock:
            misses_before = self._misses
        for backend in backends:
            hook = getattr(backend, "warm_schedule_caches", None)
            if hook is None:
                continue
            hook()
            warmed += 1
        with self._lock:
            self._prewarms += self._misses - misses_before
        return warmed

    def note_invalidation(self) -> None:
        """Record one backend-local executor pointer dropped by a write.

        Content-addressed keys make dropped pointers the whole fan-out: the
        writing replica re-keys under its new memory image on the next
        lookup, while untouched replicas keep their shared entry.
        """
        with self._lock:
            self._invalidations += 1

    def clear(self) -> None:
        """Drop every entry and reset the counters (test isolation)."""
        with self._lock:
            self._entries.clear()
            self._fidelity_vectors.clear()
            self._hits = 0
            self._misses = 0
            self._prewarms = 0
            self._invalidations = 0
            self._fidelity_hits = 0
            self._fidelity_misses = 0

    def stats(self) -> CacheStats:
        """A consistent snapshot of the registry counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                prewarms=self._prewarms,
                invalidations=self._invalidations,
                entries=len(self._entries),
                fidelity_hits=self._fidelity_hits,
                fidelity_misses=self._fidelity_misses,
                fidelity_entries=len(self._fidelity_vectors),
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# The one registry of this process.  Assigned once at import; all mutation
# happens inside the instance behind its lock, and forked serving workers
# inherit the warm table copy-on-write.
_DEFAULT = ScheduleCacheRegistry()


def default_registry() -> ScheduleCacheRegistry:
    """The process-wide registry the QRAM classes share."""
    return _DEFAULT


def shared_executor(
    kind: str,
    capacity: int,
    data: Sequence[int],
    factory: Callable[[], Any],
    distance: int = 0,
) -> Any:
    """Shorthand for ``default_registry().executor(...)``."""
    return _DEFAULT.executor(kind, capacity, data, factory, distance=distance)
