"""Parallel Quantum Signal Processing (Sec. 6.3, 7.3).

QSP applies a degree-``d`` polynomial of a block-encoded operator using
``O(d)`` sequential queries.  Factoring the polynomial into ``p`` factors of
degree ``O(d / p)`` (Martyn et al.) lets the factors be applied by ``p``
parallel query streams, reducing the sequential query count from ``O(d)`` to
``O(d / p)``; the paper evaluates ``d = 30`` with ``poly(d) = d^2`` at
``N = 2^10``.
"""

from __future__ import annotations

import math

from repro.algorithms.profile import AlgorithmProfile
from repro.bucket_brigade.tree import validate_capacity


def qsp_query_count(degree: int, parallelism: int = 1, polynomial_cost=None) -> int:
    """Sequential queries per stream: ``ceil(poly(d) / p)`` (default d^2)."""
    if degree < 1 or parallelism < 1:
        raise ValueError("degree and parallelism must be >= 1")
    cost = degree**2 if polynomial_cost is None else polynomial_cost(degree)
    return max(1, math.ceil(cost / parallelism))


def parallel_qsp_profile(
    capacity: int,
    degree: int = 30,
    parallel_streams: int | None = None,
    processing_layers: float = 2.0,
) -> AlgorithmProfile:
    """Query profile of parallel QSP with polynomial degree ``degree``."""
    n = validate_capacity(capacity)
    p = n if parallel_streams is None else parallel_streams
    return AlgorithmProfile(
        name="QSP",
        capacity=capacity,
        parallel_streams=p,
        queries_per_stream=qsp_query_count(degree, p),
        processing_layers=processing_layers,
    )
