"""Common description of an algorithm's query behaviour."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AlgorithmProfile:
    """Query profile of a (parallel) quantum algorithm.

    Attributes:
        name: algorithm name (used in Fig. 9 labels).
        capacity: QRAM capacity ``N`` the algorithm queries.
        parallel_streams: number of independent query streams ``p`` (parallel
            sub-algorithms / QPUs).
        queries_per_stream: sequential queries each stream performs.
        processing_layers: QPU processing (weighted layers) between a stream's
            consecutive queries.
    """

    name: str
    capacity: int
    parallel_streams: int
    queries_per_stream: int
    processing_layers: float = 0.0

    def __post_init__(self) -> None:
        if self.parallel_streams < 1 or self.queries_per_stream < 1:
            raise ValueError("streams and queries per stream must be >= 1")
        if self.processing_layers < 0:
            raise ValueError("processing_layers must be non-negative")

    @property
    def total_queries(self) -> int:
        return self.parallel_streams * self.queries_per_stream
