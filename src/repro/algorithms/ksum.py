"""Parallel k-Sum via quantum walk (Sec. 6.3, 7.3).

The k-Sum (element distinctness style) algorithm queries the memory
``O(N^{k/(k+1)})`` times; with ``p`` parallel queries building the quantum
walk states, the query complexity improves to ``O((N/p)^{k/(k+1)})``.
"""

from __future__ import annotations

import math

from repro.algorithms.profile import AlgorithmProfile
from repro.bucket_brigade.tree import validate_capacity


def ksum_queries(database_size: int, k: int = 2, parallelism: int = 1) -> int:
    """Sequential queries per stream: ``ceil((N / p)^(k/(k+1)))``."""
    if database_size < 1 or k < 1 or parallelism < 1:
        raise ValueError("invalid k-Sum parameters")
    effective = database_size / parallelism
    return max(1, math.ceil(effective ** (k / (k + 1))))


def parallel_ksum_profile(
    capacity: int,
    k: int = 2,
    parallel_streams: int | None = None,
    processing_layers: float = 4.0,
) -> AlgorithmProfile:
    """Query profile of the parallel k-Sum algorithm."""
    n = validate_capacity(capacity)
    p = n if parallel_streams is None else parallel_streams
    return AlgorithmProfile(
        name="k-Sum",
        capacity=capacity,
        parallel_streams=p,
        queries_per_stream=ksum_queries(capacity, k, p),
        processing_layers=processing_layers,
    )
