"""Parallel quantum algorithms that consume shared-QRAM queries (Sec. 6.3, 7.3).

Each algorithm model describes how many parallel query streams it issues, how
many queries each stream makes, and how much QPU processing separates
consecutive queries.  :mod:`repro.algorithms.depth_model` maps those query
streams onto a QRAM architecture (via the contention simulator) to obtain the
overall circuit depth of Fig. 9; :mod:`repro.algorithms.synthetic` generates
the parameterised workloads of Fig. 10.
"""

from repro.algorithms.profile import AlgorithmProfile
from repro.algorithms.grover import parallel_grover_profile, grover_iterations
from repro.algorithms.ksum import parallel_ksum_profile, ksum_queries
from repro.algorithms.hamiltonian import (
    hamiltonian_simulation_profile,
    hamiltonian_query_count,
)
from repro.algorithms.qsp import parallel_qsp_profile, qsp_query_count
from repro.algorithms.synthetic import SyntheticAlgorithm, synthetic_sweep
from repro.algorithms.depth_model import (
    algorithm_depth,
    fig9_depths,
    asymptotic_depth_reduction,
)

__all__ = [
    "AlgorithmProfile",
    "parallel_grover_profile",
    "grover_iterations",
    "parallel_ksum_profile",
    "ksum_queries",
    "hamiltonian_simulation_profile",
    "hamiltonian_query_count",
    "parallel_qsp_profile",
    "qsp_query_count",
    "SyntheticAlgorithm",
    "synthetic_sweep",
    "algorithm_depth",
    "fig9_depths",
    "asymptotic_depth_reduction",
]
