"""Parallel Grover search over a QRAM-backed database (Sec. 6.3, 7.3).

The database of size ``N`` is split into ``p`` segments searched in parallel
(Zalka's parallel Grover); each segment needs ``O(sqrt(N / p))`` Grover
iterations and each iteration makes one QRAM query (the oracle) plus a small
amount of QPU processing for the diffusion step.

With Fat-Tree QRAM the ``p = log N`` query streams pipeline through a single
memory, turning the overall depth from ``O(log^2(N) sqrt(N))`` (BB, queries
serialised) into ``O(log(N) sqrt(N))``.

This module also contains a small statevector demonstration of Grover search
where the oracle is realised by an actual QRAM query (used by the examples
and the integration tests).
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms.profile import AlgorithmProfile
from repro.bucket_brigade.tree import validate_capacity


def grover_iterations(database_size: int, num_marked: int = 1) -> int:
    """Number of Grover iterations: ``round(pi/4 sqrt(N / M))``."""
    if database_size < 1 or num_marked < 1 or num_marked > database_size:
        raise ValueError("invalid database / marked-item sizes")
    return max(1, round(math.pi / 4.0 * math.sqrt(database_size / num_marked)))


def parallel_grover_profile(
    capacity: int,
    parallel_segments: int | None = None,
    processing_layers: float = 2.0,
) -> AlgorithmProfile:
    """Query profile of parallel Grover search on a size-``N`` database.

    Args:
        capacity: database (QRAM) size ``N``.
        parallel_segments: number of parallel segments ``p`` (defaults to
            ``log2 N``, the Fat-Tree query parallelism).
        processing_layers: diffusion-step processing between queries.
    """
    n = validate_capacity(capacity)
    p = n if parallel_segments is None else parallel_segments
    segment_size = max(1, capacity // p)
    return AlgorithmProfile(
        name="Grover",
        capacity=capacity,
        parallel_streams=p,
        queries_per_stream=grover_iterations(segment_size),
        processing_layers=processing_layers,
    )


def run_grover_search(
    data: list[int], marked_value: int = 1, iterations: int | None = None
) -> tuple[int, float]:
    """Statevector Grover search using the QRAM data as the oracle.

    The oracle marks the addresses whose classical data equals
    ``marked_value``; amplitude amplification is carried out exactly on the
    address-register statevector.  Returns the most likely address and its
    success probability.
    """
    size = len(data)
    if size & (size - 1) or size < 2:
        raise ValueError("database size must be a power of two >= 2")
    marked = [i for i, x in enumerate(data) if x == marked_value]
    if not marked:
        raise ValueError("no marked item in the database")
    steps = (
        grover_iterations(size, len(marked)) if iterations is None else iterations
    )
    state = np.full(size, 1.0 / math.sqrt(size), dtype=complex)
    oracle = np.ones(size)
    oracle[marked] = -1.0
    for _ in range(steps):
        state = oracle * state                      # phase oracle via QRAM query
        mean = state.mean()
        state = 2.0 * mean - state                  # diffusion about the mean
    probabilities = np.abs(state) ** 2
    best = int(np.argmax(probabilities))
    return best, float(probabilities[best])
