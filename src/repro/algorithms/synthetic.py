"""Synthetic alternating query/processing workloads (Sec. 6.3, Fig. 10).

A synthetic algorithm repeats (query for time ``t1``, process for time ``d``)
ten times; the sweep varies the processing/query ratio ``d / t1`` in [0, 2]
and the number of concurrently running algorithms ``p`` in [1, 30] at
capacity ``N = 1024``, producing the overall-depth and utilization heat maps
of Fig. 10 for BB and Fat-Tree QRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.scheduling.contention import (
    AlgorithmWorkload,
    QRAMServiceModel,
    SharedQRAMSimulation,
)


@dataclass(frozen=True)
class SyntheticAlgorithm:
    """One synthetic algorithm instance.

    Attributes:
        rounds: number of (query, processing) repetitions (10 in the paper).
        processing_ratio: ``d / t1``.
    """

    rounds: int = 10
    processing_ratio: float = 0.5

    def workloads(self, count: int, weighted_query_latency: float) -> list[AlgorithmWorkload]:
        """Materialise ``count`` concurrent copies of this algorithm."""
        d = self.processing_ratio * weighted_query_latency
        return [
            AlgorithmWorkload(i, rounds=self.rounds, processing_layers=d)
            for i in range(count)
        ]


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the Fig. 10 heat maps."""

    architecture: str
    processing_ratio: float
    parallel_algorithms: int
    overall_depth: float
    utilization: float


def synthetic_sweep(
    qram,
    processing_ratios: Sequence[float],
    parallel_counts: Sequence[int],
    rounds: int = 10,
) -> list[SweepPoint]:
    """Run the synthetic workload sweep on one QRAM architecture.

    Args:
        qram: any registered architecture instance (BB, Fat-Tree, ...).
        processing_ratios: values of ``d / t1`` to sweep.
        parallel_counts: values of the parallel algorithm count ``p``.
        rounds: query/processing repetitions per algorithm.
    """
    model = QRAMServiceModel.from_architecture(qram)
    simulator = SharedQRAMSimulation(model)
    points: list[SweepPoint] = []
    for ratio in processing_ratios:
        for count in parallel_counts:
            if count < 1:
                continue
            workloads = SyntheticAlgorithm(rounds, ratio).workloads(
                count, model.weighted_query_latency
            )
            report = simulator.run(workloads)
            points.append(
                SweepPoint(
                    architecture=model.name,
                    processing_ratio=ratio,
                    parallel_algorithms=count,
                    overall_depth=report.overall_depth,
                    utilization=report.average_utilization,
                )
            )
    return points


def sweep_to_grids(
    points: Sequence[SweepPoint],
) -> tuple[list[float], list[int], list[list[float]], list[list[float]]]:
    """Convert sweep points to (ratios, counts, depth grid, utilization grid).

    Grids are indexed ``[ratio_index][count_index]`` — the row/column layout
    used when rendering Fig. 10.
    """
    ratios = sorted({p.processing_ratio for p in points})
    counts = sorted({p.parallel_algorithms for p in points})
    index = {(p.processing_ratio, p.parallel_algorithms): p for p in points}
    depth = [
        [index[(r, c)].overall_depth for c in counts] for r in ratios
    ]
    utilization = [
        [index[(r, c)].utilization for c in counts] for r in ratios
    ]
    return ratios, counts, depth, utilization
