"""Parallel Hamiltonian simulation via parallel quantum walks (Sec. 6.3, 7.3).

Structured Hamiltonian simulation implemented by quantum walks makes
``O(log N)`` sequential oracle (QRAM) calls per walk segment; parallelising
the walk over ``p`` segments reduces the sequential query count from
``O(log(N) loglog(N) + log^2(N))`` to ``O(log(N) loglog(N) + log(N))``
(constant sparsity and precision, as in the paper's setup).
"""

from __future__ import annotations

import math

from repro.algorithms.profile import AlgorithmProfile
from repro.bucket_brigade.tree import validate_capacity


def hamiltonian_query_count(capacity: int, parallelism: int = 1) -> int:
    """Sequential QRAM queries per stream for one simulation segment."""
    n = validate_capacity(capacity)
    base = n * max(1.0, math.log2(max(2, n)))
    serial_walk = n * n if parallelism <= 1 else n * n / parallelism
    return max(1, math.ceil((base + serial_walk) / max(1, n)))


def hamiltonian_simulation_profile(
    capacity: int,
    parallel_streams: int | None = None,
    processing_layers: float = 8.0,
) -> AlgorithmProfile:
    """Query profile of parallel Hamiltonian simulation."""
    n = validate_capacity(capacity)
    p = n if parallel_streams is None else parallel_streams
    return AlgorithmProfile(
        name="Hamiltonian Sim.",
        capacity=capacity,
        parallel_streams=p,
        queries_per_stream=hamiltonian_query_count(capacity, p),
        processing_layers=processing_layers,
    )
