"""Overall circuit depth of parallel algorithms on shared QRAMs (Fig. 9).

An algorithm profile (``p`` parallel streams, ``Q`` queries per stream,
processing ``d`` between queries) is mapped onto a QRAM architecture with the
contention simulator: every stream is a QPU workload, the QRAM's service
model determines how its queries serialise or pipeline.  The reported
*overall circuit depth* is the completion time of the slowest stream in
weighted circuit layers — exactly the quantity compared in Fig. 9.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.algorithms.grover import parallel_grover_profile
from repro.algorithms.hamiltonian import hamiltonian_simulation_profile
from repro.algorithms.ksum import parallel_ksum_profile
from repro.algorithms.profile import AlgorithmProfile
from repro.algorithms.qsp import parallel_qsp_profile
from repro.baselines.registry import architecture_names, build_architecture
from repro.bucket_brigade.tree import validate_capacity
from repro.scheduling.contention import (
    AlgorithmWorkload,
    QRAMServiceModel,
    SharedQRAMSimulation,
)


def algorithm_depth(profile: AlgorithmProfile, qram) -> float:
    """Overall circuit depth of one algorithm on one QRAM architecture."""
    model = QRAMServiceModel.from_architecture(qram)
    workloads = [
        AlgorithmWorkload(
            stream,
            rounds=profile.queries_per_stream,
            processing_layers=profile.processing_layers,
        )
        for stream in range(profile.parallel_streams)
    ]
    report = SharedQRAMSimulation(model).run(workloads)
    return report.overall_depth


def default_profiles(capacity: int, qsp_degree: int = 30) -> list[AlgorithmProfile]:
    """The four Fig. 9 benchmark applications at one capacity."""
    return [
        parallel_grover_profile(capacity),
        parallel_ksum_profile(capacity),
        hamiltonian_simulation_profile(capacity),
        parallel_qsp_profile(capacity, degree=qsp_degree),
    ]


def fig9_depths(
    capacity: int = 1024,
    architectures: Sequence[str] | None = None,
    qsp_degree: int = 30,
) -> dict[str, dict[str, float]]:
    """Overall circuit depth of every benchmark on every architecture.

    Returns:
        ``{algorithm name: {architecture name: depth}}`` — the data behind
        the bar charts of Fig. 9.
    """
    validate_capacity(capacity)
    names = list(architectures) if architectures else architecture_names()
    results: dict[str, dict[str, float]] = {}
    for profile in default_profiles(capacity, qsp_degree):
        row: dict[str, float] = {}
        for name in names:
            qram = build_architecture(name, capacity)
            row[name] = algorithm_depth(profile, qram)
        results[profile.name] = row
    return results


def asymptotic_depth_reduction(capacity: int = 1024) -> dict[str, float]:
    """Depth reduction factor of Fat-Tree over BB per benchmark (<= ~10x)."""
    depths = fig9_depths(capacity, architectures=("Fat-Tree", "BB"))
    return {
        algorithm: row["BB"] / row["Fat-Tree"] for algorithm, row in depths.items()
    }
