"""Circuit intermediate representation over *named* qubits.

QRAM circuits address qubits by structured labels such as
``("router", 1, 0, 3, "in")`` rather than flat integer indices, so the IR
stores qubits as arbitrary hashable labels.  A circuit is an ordered list of
:class:`Operation` objects; :meth:`Circuit.layers` groups them into circuit
layers with an ASAP (as-soon-as-possible) schedule, which is how the paper
counts latency.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.sim.gates import GATES

Qubit = Hashable


@dataclass(frozen=True)
class Operation:
    """A single gate application.

    Attributes:
        gate: gate name, a key of :data:`repro.sim.gates.GATES`.
        qubits: target qubits in gate order (controls first).
        theta: parameter for parametric gates.
        condition: optional classical condition ``(register_name, value)``;
            the operation is applied only when the classical register equals
            ``value`` at execution time.  Used for the data-retrieval
            CLASSICAL-GATES step of QRAM.
        tag: free-form annotation (e.g. the QRAM instruction that emitted the
            gate); carried through scheduling for analysis.
    """

    gate: str
    qubits: tuple[Qubit, ...]
    theta: float | None = None
    condition: tuple[str, int] | None = None
    tag: str = ""

    def __post_init__(self) -> None:
        key = self.gate.upper()
        if key not in GATES:
            raise ValueError(f"unknown gate {self.gate!r}")
        expected = GATES[key].n_qubits
        if len(self.qubits) != expected:
            raise ValueError(
                f"gate {key} expects {expected} qubits, got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in operation: {self.qubits}")


@dataclass
class Circuit:
    """An ordered sequence of operations on named qubits."""

    operations: list[Operation] = field(default_factory=list)

    def append(
        self,
        gate: str,
        qubits: Sequence[Qubit],
        theta: float | None = None,
        condition: tuple[str, int] | None = None,
        tag: str = "",
    ) -> Operation:
        """Append a gate and return the created :class:`Operation`."""
        op = Operation(gate, tuple(qubits), theta=theta, condition=condition, tag=tag)
        self.operations.append(op)
        return op

    def extend(self, operations: Iterable[Operation]) -> None:
        """Append many operations."""
        self.operations.extend(operations)

    def __len__(self) -> int:
        return len(self.operations)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    @property
    def qubits(self) -> list[Qubit]:
        """All distinct qubits referenced, in first-use order."""
        seen: dict[Qubit, None] = {}
        for op in self.operations:
            for q in op.qubits:
                seen.setdefault(q, None)
        return list(seen)

    @property
    def num_qubits(self) -> int:
        """Number of distinct qubits referenced by the circuit."""
        return len(self.qubits)

    def gate_counts(self) -> dict[str, int]:
        """Histogram of gate names."""
        counts: dict[str, int] = {}
        for op in self.operations:
            counts[op.gate] = counts.get(op.gate, 0) + 1
        return counts

    def layers(self) -> list[list[Operation]]:
        """Group operations into ASAP circuit layers.

        Two operations can share a layer when they act on disjoint qubits and
        appear in an order consistent with the original program order (an
        operation is placed in the earliest layer after the layers of all
        earlier operations that share a qubit with it).
        """
        layer_of_qubit: dict[Qubit, int] = {}
        layers: list[list[Operation]] = []
        for op in self.operations:
            earliest = 0
            for q in op.qubits:
                earliest = max(earliest, layer_of_qubit.get(q, -1) + 1)
            while len(layers) <= earliest:
                layers.append([])
            layers[earliest].append(op)
            for q in op.qubits:
                layer_of_qubit[q] = earliest
        return layers

    def depth(self) -> int:
        """Number of ASAP circuit layers."""
        return len(self.layers())

    def inverse(self) -> "Circuit":
        """Reverse the circuit.

        Only self-inverse gates (the permutation gates plus H/Z/CZ) are
        supported, which covers every QRAM routing circuit in this repo.
        """
        self_inverse = {"I", "X", "Z", "H", "CX", "CZ", "SWAP", "CCX", "CSWAP",
                        "ANTI_CSWAP"}
        inverted = Circuit()
        for op in reversed(self.operations):
            if op.gate.upper() not in self_inverse:
                raise ValueError(
                    f"cannot invert gate {op.gate}; only self-inverse gates supported"
                )
            inverted.operations.append(op)
        return inverted

    def __add__(self, other: "Circuit") -> "Circuit":
        return Circuit(self.operations + other.operations)
