"""Quantum simulation substrate for the Fat-Tree QRAM reproduction.

This subpackage is a small, self-contained quantum circuit toolkit:

* :mod:`repro.sim.gates` — gate definitions (unitaries and classical
  permutation semantics).
* :mod:`repro.sim.circuit` — a circuit IR over *named* qubits with ASAP
  layering into circuit layers.
* :mod:`repro.sim.sparse` — a sparse basis-state simulator.  QRAM routing
  circuits are permutations of computational basis states, so a query on an
  address superposition of ``N`` branches never needs more than ``N`` terms.
* :mod:`repro.sim.statevector` — a dense statevector simulator used to
  cross-validate the sparse simulator on small systems.
* :mod:`repro.sim.density` — a density-matrix simulator with noise channels.
* :mod:`repro.sim.noise` — Kraus channels (depolarizing, bit/phase flip ...).
"""

from repro.sim.circuit import Circuit, Operation
from repro.sim.gates import Gate, GATES, controlled_swap_unitary, gate_unitary
from repro.sim.sparse import SparseState
from repro.sim.statevector import StatevectorSimulator
from repro.sim.density import DensityMatrixSimulator
from repro.sim.noise import (
    NoiseChannel,
    amplitude_damping_channel,
    bit_flip_channel,
    depolarizing_channel,
    phase_flip_channel,
)

__all__ = [
    "Circuit",
    "Operation",
    "Gate",
    "GATES",
    "gate_unitary",
    "controlled_swap_unitary",
    "SparseState",
    "StatevectorSimulator",
    "DensityMatrixSimulator",
    "NoiseChannel",
    "depolarizing_channel",
    "bit_flip_channel",
    "phase_flip_channel",
    "amplitude_damping_channel",
]
