"""Gate library shared by all simulators.

Two views of every gate are provided:

* a dense unitary matrix (:func:`gate_unitary`), used by the statevector and
  density-matrix simulators, and
* where applicable, a *classical permutation* action on computational basis
  bits (:meth:`Gate.permute_bits`), used by the sparse basis-state simulator.

QRAM routing circuits consist almost exclusively of permutation gates
(X, CX, CCX, SWAP, CSWAP and classically controlled X), which is what makes the
sparse simulator exact and fast for them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

_SQRT2_INV = 1.0 / math.sqrt(2.0)


def _x() -> np.ndarray:
    return np.array([[0, 1], [1, 0]], dtype=complex)


def _y() -> np.ndarray:
    return np.array([[0, -1j], [1j, 0]], dtype=complex)


def _z() -> np.ndarray:
    return np.array([[1, 0], [0, -1]], dtype=complex)


def _h() -> np.ndarray:
    return np.array([[1, 1], [1, -1]], dtype=complex) * _SQRT2_INV


def _s() -> np.ndarray:
    return np.array([[1, 0], [0, 1j]], dtype=complex)


def _t() -> np.ndarray:
    return np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)


def _identity(n_qubits: int) -> np.ndarray:
    return np.eye(2**n_qubits, dtype=complex)


def _controlled(unitary: np.ndarray, n_controls: int = 1) -> np.ndarray:
    """Build a controlled version of ``unitary`` with ``n_controls`` controls.

    Control qubits are the most significant bits of the resulting matrix.
    """
    dim = unitary.shape[0]
    total = dim * (2**n_controls)
    out = np.eye(total, dtype=complex)
    out[total - dim:, total - dim:] = unitary
    return out


def swap_unitary() -> np.ndarray:
    """Two-qubit SWAP."""
    out = np.zeros((4, 4), dtype=complex)
    out[0, 0] = out[3, 3] = 1.0
    out[1, 2] = out[2, 1] = 1.0
    return out


def controlled_swap_unitary() -> np.ndarray:
    """Three-qubit CSWAP (Fredkin) gate, control first."""
    return _controlled(swap_unitary(), n_controls=1)


def ry_unitary(theta: float) -> np.ndarray:
    """Single-qubit rotation about Y by ``theta``."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz_unitary(theta: float) -> np.ndarray:
    """Single-qubit rotation about Z by ``theta``."""
    return np.array(
        [[np.exp(-1j * theta / 2.0), 0], [0, np.exp(1j * theta / 2.0)]],
        dtype=complex,
    )


@dataclass(frozen=True)
class Gate:
    """Static description of a gate type.

    Attributes:
        name: canonical upper-case gate name.
        n_qubits: number of qubits the gate acts on.
        is_permutation: True when the gate maps computational basis states to
            computational basis states (no superposition is created), so the
            sparse simulator can apply it without branching.
        is_parametric: True for gates that take a ``theta`` parameter.
    """

    name: str
    n_qubits: int
    is_permutation: bool = False
    is_parametric: bool = False
    _aliases: tuple[str, ...] = field(default=())

    def unitary(self, theta: float | None = None) -> np.ndarray:
        """Dense unitary matrix of this gate."""
        return gate_unitary(self.name, theta)

    def permute_bits(self, bits: tuple[int, ...]) -> tuple[int, ...]:
        """Apply the gate to classical bits (permutation gates only).

        Args:
            bits: the current values of the gate's qubits, in gate order.

        Returns:
            The new values of the gate's qubits.

        Raises:
            ValueError: if the gate is not a permutation gate.
        """
        if not self.is_permutation:
            raise ValueError(f"{self.name} is not a basis-state permutation gate")
        return _PERMUTATION_ACTIONS[self.name](bits)


def _perm_x(bits: tuple[int, ...]) -> tuple[int, ...]:
    return (1 - bits[0],)


def _perm_cx(bits: tuple[int, ...]) -> tuple[int, ...]:
    control, target = bits
    return (control, target ^ control)


def _perm_ccx(bits: tuple[int, ...]) -> tuple[int, ...]:
    c1, c2, target = bits
    return (c1, c2, target ^ (c1 & c2))


def _perm_swap(bits: tuple[int, ...]) -> tuple[int, ...]:
    a, b = bits
    return (b, a)


def _perm_cswap(bits: tuple[int, ...]) -> tuple[int, ...]:
    control, a, b = bits
    if control:
        return (control, b, a)
    return (control, a, b)


def _perm_anti_cswap(bits: tuple[int, ...]) -> tuple[int, ...]:
    """CSWAP that fires when the control is |0> (used for routing left)."""
    control, a, b = bits
    if not control:
        return (control, b, a)
    return (control, a, b)


def _perm_identity(bits: tuple[int, ...]) -> tuple[int, ...]:
    return bits


_PERMUTATION_ACTIONS = {
    "X": _perm_x,
    "CX": _perm_cx,
    "CCX": _perm_ccx,
    "SWAP": _perm_swap,
    "CSWAP": _perm_cswap,
    "ANTI_CSWAP": _perm_anti_cswap,
    "I": _perm_identity,
}


GATES: dict[str, Gate] = {
    "I": Gate("I", 1, is_permutation=True),
    "X": Gate("X", 1, is_permutation=True),
    "Y": Gate("Y", 1),
    "Z": Gate("Z", 1),
    "H": Gate("H", 1),
    "S": Gate("S", 1),
    "T": Gate("T", 1),
    "RY": Gate("RY", 1, is_parametric=True),
    "RZ": Gate("RZ", 1, is_parametric=True),
    "CX": Gate("CX", 2, is_permutation=True),
    "CZ": Gate("CZ", 2),
    "SWAP": Gate("SWAP", 2, is_permutation=True),
    "CCX": Gate("CCX", 3, is_permutation=True),
    "CSWAP": Gate("CSWAP", 3, is_permutation=True),
    "ANTI_CSWAP": Gate("ANTI_CSWAP", 3, is_permutation=True),
}


def gate_unitary(name: str, theta: float | None = None) -> np.ndarray:
    """Return the dense unitary for gate ``name``.

    Args:
        name: gate name (case insensitive), one of the keys of :data:`GATES`.
        theta: rotation angle, required for RY/RZ.

    Raises:
        KeyError: for unknown gate names.
        ValueError: if a parametric gate is requested without ``theta``.
    """
    key = name.upper()
    if key not in GATES:
        raise KeyError(f"unknown gate: {name!r}")
    if GATES[key].is_parametric:
        if theta is None:
            raise ValueError(f"gate {key} requires a theta parameter")
        return {"RY": ry_unitary, "RZ": rz_unitary}[key](theta)

    builders = {
        "I": lambda: _identity(1),
        "X": _x,
        "Y": _y,
        "Z": _z,
        "H": _h,
        "S": _s,
        "T": _t,
        "CX": lambda: _controlled(_x()),
        "CZ": lambda: _controlled(_z()),
        "SWAP": swap_unitary,
        "CCX": lambda: _controlled(_x(), n_controls=2),
        "CSWAP": controlled_swap_unitary,
        "ANTI_CSWAP": _anti_cswap_unitary,
    }
    return builders[key]()


def _anti_cswap_unitary() -> np.ndarray:
    """CSWAP controlled on |0> instead of |1>."""
    out = np.eye(8, dtype=complex)
    # Swap targets within the control=0 block (rows/cols 0..3).
    out[1, 1] = out[2, 2] = 0.0
    out[1, 2] = out[2, 1] = 1.0
    return out


def is_permutation_gate(name: str) -> bool:
    """True if ``name`` is a basis-state permutation gate."""
    key = name.upper()
    return key in GATES and GATES[key].is_permutation
