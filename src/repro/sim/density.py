"""Small density-matrix simulator with per-gate noise.

This simulator is intentionally limited to a handful of qubits; it exists to
(1) sanity-check the analytic query-fidelity bounds of Sec. 8 on tiny QRAM
instances and (2) implement virtual distillation (Sec. 8.2) exactly on small
states.
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence

import numpy as np

from repro.sim.circuit import Circuit, Operation
from repro.sim.gates import gate_unitary
from repro.sim.noise import NoiseChannel

Qubit = Hashable

_MAX_QUBITS = 12


class DensityMatrixSimulator:
    """Density-matrix simulation over named qubits with optional gate noise.

    Args:
        qubits: qubit labels (at most 12; the 4^n memory cost is real).
        gate_noise: channel applied to every qubit touched by a gate, after
            the gate.  ``None`` disables noise.
    """

    def __init__(
        self,
        qubits: Sequence[Qubit],
        gate_noise: NoiseChannel | None = None,
    ) -> None:
        if len(qubits) > _MAX_QUBITS:
            raise ValueError(
                f"density-matrix simulation limited to {_MAX_QUBITS} qubits, "
                f"got {len(qubits)}"
            )
        if len(set(qubits)) != len(qubits):
            raise ValueError("duplicate qubit labels")
        self._qubits = list(qubits)
        self._index = {q: i for i, q in enumerate(self._qubits)}
        dim = 2 ** len(self._qubits)
        self._rho = np.zeros((dim, dim), dtype=complex)
        self._rho[0, 0] = 1.0
        self.gate_noise = gate_noise
        self.classical: dict[str, int] = {}

    @property
    def qubits(self) -> list[Qubit]:
        return list(self._qubits)

    @property
    def num_qubits(self) -> int:
        return len(self._qubits)

    @property
    def density_matrix(self) -> np.ndarray:
        """Copy of the current density matrix."""
        return self._rho.copy()

    def set_density_matrix(self, rho: np.ndarray) -> None:
        rho = np.asarray(rho, dtype=complex)
        if rho.shape != self._rho.shape:
            raise ValueError("density matrix has the wrong dimension")
        if not np.isclose(np.trace(rho).real, 1.0, atol=1e-8):
            raise ValueError("density matrix must have unit trace")
        self._rho = rho.copy()

    def set_statevector(self, vector: np.ndarray) -> None:
        """Initialise from a pure statevector."""
        vector = np.asarray(vector, dtype=complex).reshape(-1)
        if vector.shape[0] != self._rho.shape[0]:
            raise ValueError("statevector has the wrong dimension")
        self._rho = np.outer(vector, vector.conj())

    # ------------------------------------------------------------------ gates
    def apply_gate(
        self, gate: str, qubits: Sequence[Qubit], theta: float | None = None
    ) -> None:
        matrix = gate_unitary(gate, theta)
        full = self._expand(matrix, [self._index[q] for q in qubits])
        self._rho = full @ self._rho @ full.conj().T
        if self.gate_noise is not None:
            for q in qubits:
                self.apply_channel(self.gate_noise, q)

    def apply_operation(self, op: Operation) -> None:
        if op.condition is not None:
            register, value = op.condition
            if self.classical.get(register, 0) != value:
                return
        self.apply_gate(op.gate, op.qubits, theta=op.theta)

    def run(self, circuit: Circuit) -> None:
        for op in circuit:
            self.apply_operation(op)

    def apply_channel(self, channel: NoiseChannel, qubit: Qubit) -> None:
        """Apply a single-qubit noise channel to ``qubit``."""
        if channel.dim != 2:
            raise ValueError("only single-qubit channels are supported here")
        out = np.zeros_like(self._rho)
        for kraus in channel.kraus:
            full = self._expand(kraus, [self._index[qubit]])
            out += full @ self._rho @ full.conj().T
        self._rho = out

    def _expand(self, matrix: np.ndarray, targets: list[int]) -> np.ndarray:
        """Expand an operator on ``targets`` to the full Hilbert space."""
        n = self.num_qubits
        k = len(targets)
        dim = 2**n
        full = np.zeros((dim, dim), dtype=complex)
        others = [i for i in range(n) if i not in targets]
        target_shifts = [n - 1 - t for t in targets]
        other_shifts = [n - 1 - o for o in others]

        for col in range(dim):
            t_in = 0
            for shift in target_shifts:
                t_in = (t_in << 1) | ((col >> shift) & 1)
            base = col
            for shift in target_shifts:
                base &= ~(1 << shift)
            for t_out in range(2**k):
                coeff = matrix[t_out, t_in]
                if abs(coeff) < 1e-15:
                    continue
                row = base
                for pos, shift in enumerate(target_shifts):
                    bit = (t_out >> (k - 1 - pos)) & 1
                    row |= bit << shift
                full[row, col] += coeff
        # other_shifts intentionally unused beyond documentation of layout
        del other_shifts
        return full

    # ------------------------------------------------------------- inspection
    def fidelity_with_state(self, vector: np.ndarray) -> float:
        """<psi| rho |psi> against a pure target state."""
        vector = np.asarray(vector, dtype=complex).reshape(-1)
        return float(np.real(vector.conj() @ self._rho @ vector))

    def purity(self) -> float:
        """Tr(rho^2)."""
        return float(np.real(np.trace(self._rho @ self._rho)))

    def probability(self, assignment: Mapping[Qubit, int]) -> float:
        """Probability of a partial computational-basis assignment."""
        n = self.num_qubits
        mask = 0
        want = 0
        for q, v in assignment.items():
            bit = 1 << (n - 1 - self._index[q])
            mask |= bit
            if v:
                want |= bit
        probs = np.real(np.diag(self._rho))
        return float(
            sum(p for i, p in enumerate(probs) if (i & mask) == want)
        )
