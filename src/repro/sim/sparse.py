"""Sparse basis-state simulator.

The state is a dictionary mapping computational basis assignments (tuples of
bits over a fixed qubit ordering) to complex amplitudes.  Permutation gates
(X, CX, CCX, SWAP, CSWAP, ...) never increase the number of terms;
superposition-creating gates (H, RY) at most double it.  A QRAM query over an
address register in an ``m``-branch superposition therefore stays at ``m``
terms throughout the routing circuit, no matter how many router qubits exist —
this is exactly the "limited entanglement among different paths" property the
paper relies on for noise resilience, reused here for exact simulation.
"""

from __future__ import annotations

import cmath
import math
from collections.abc import Hashable, Iterable, Mapping, Sequence

import numpy as np

from repro.sim.circuit import Circuit, Operation
from repro.sim.gates import GATES

Qubit = Hashable
Basis = tuple[int, ...]

_ATOL = 1e-12


class SparseState:
    """A pure state stored as a sparse map from basis states to amplitudes.

    Args:
        qubits: ordered list of qubit labels.  Additional qubits can be added
            later with :meth:`add_qubit`, initialised to |0>.
    """

    def __init__(self, qubits: Sequence[Qubit] = ()) -> None:
        self._qubits: list[Qubit] = []
        self._index: dict[Qubit, int] = {}
        self._amplitudes: dict[Basis, complex] = {(): 1.0 + 0.0j}
        self.classical: dict[str, int] = {}
        for q in qubits:
            self.add_qubit(q)

    # ------------------------------------------------------------------ state
    @property
    def qubits(self) -> list[Qubit]:
        """Qubit labels in index order."""
        return list(self._qubits)

    @property
    def num_qubits(self) -> int:
        return len(self._qubits)

    @property
    def num_terms(self) -> int:
        """Number of nonzero basis states (sparsity)."""
        return len(self._amplitudes)

    def add_qubit(self, qubit: Qubit, value: int = 0) -> None:
        """Add a new qubit initialised to ``|value>``."""
        if qubit in self._index:
            raise ValueError(f"qubit {qubit!r} already exists")
        if value not in (0, 1):
            raise ValueError("qubit value must be 0 or 1")
        self._index[qubit] = len(self._qubits)
        self._qubits.append(qubit)
        self._amplitudes = {
            basis + (value,): amp for basis, amp in self._amplitudes.items()
        }

    def ensure_qubits(self, qubits: Iterable[Qubit]) -> None:
        """Add any of ``qubits`` that do not exist yet (initialised to |0>)."""
        for q in qubits:
            if q not in self._index:
                self.add_qubit(q)

    def amplitudes(self) -> dict[Basis, complex]:
        """Copy of the amplitude map."""
        return dict(self._amplitudes)

    def items(self) -> Iterable[tuple[Basis, complex]]:
        return self._amplitudes.items()

    def norm(self) -> float:
        """2-norm of the state (should always be ~1)."""
        return math.sqrt(sum(abs(a) ** 2 for a in self._amplitudes.values()))

    def _prune(self) -> None:
        self._amplitudes = {
            b: a for b, a in self._amplitudes.items() if abs(a) > _ATOL
        }

    # ------------------------------------------------------------ preparation
    def set_register(self, qubits: Sequence[Qubit], value: int) -> None:
        """Classically set a register (must currently be unentangled |0...0>).

        ``qubits[0]`` is the most significant bit of ``value``.
        """
        self.ensure_qubits(qubits)
        bits = _int_to_bits(value, len(qubits))
        for q, bit in zip(qubits, bits):
            if bit:
                self.apply_gate("X", (q,))

    def prepare_superposition(
        self, qubits: Sequence[Qubit], amplitudes: Mapping[int, complex]
    ) -> None:
        """Prepare an arbitrary superposition over a register of fresh qubits.

        The register must be in |0...0> and unentangled with the rest of the
        state (true at preparation time in all uses here).

        Args:
            qubits: register labels, most significant bit first.
            amplitudes: map from integer basis value to amplitude.  Normalised
                automatically.
        """
        self.ensure_qubits(qubits)
        norm = math.sqrt(sum(abs(a) ** 2 for a in amplitudes.values()))
        if norm < _ATOL:
            raise ValueError("cannot prepare the zero vector")
        idx = [self._index[q] for q in qubits]
        for basis in self._amplitudes:
            for i in idx:
                if basis[i] != 0:
                    raise ValueError("register must be |0...0> before preparation")
        new_amps: dict[Basis, complex] = {}
        width = len(qubits)
        for basis, amp in self._amplitudes.items():
            for value, a in amplitudes.items():
                if abs(a) < _ATOL:
                    continue
                bits = _int_to_bits(value, width)
                new_basis = list(basis)
                for i, bit in zip(idx, bits):
                    new_basis[i] = bit
                new_amps[tuple(new_basis)] = amp * (a / norm)
        self._amplitudes = new_amps

    # -------------------------------------------------------------- gate application
    def apply_gate(
        self,
        gate: str,
        qubits: Sequence[Qubit],
        theta: float | None = None,
    ) -> None:
        """Apply a gate by name to the given qubits."""
        key = gate.upper()
        if key not in GATES:
            raise ValueError(f"unknown gate {gate!r}")
        spec = GATES[key]
        if len(qubits) != spec.n_qubits:
            raise ValueError(
                f"gate {key} expects {spec.n_qubits} qubits, got {len(qubits)}"
            )
        self.ensure_qubits(qubits)
        idx = [self._index[q] for q in qubits]

        if spec.is_permutation:
            self._apply_permutation(spec, idx)
        elif key == "H":
            self._apply_single_qubit_matrix(_H_MATRIX, idx[0])
        elif key == "Z":
            self._apply_phase(idx[0], on_one=-1.0 + 0j)
        elif key == "S":
            self._apply_phase(idx[0], on_one=1j)
        elif key == "T":
            self._apply_phase(idx[0], on_one=cmath.exp(1j * math.pi / 4))
        elif key == "Y":
            self._apply_single_qubit_matrix(
                np.array([[0, -1j], [1j, 0]], dtype=complex), idx[0]
            )
        elif key == "RY":
            if theta is None:
                raise ValueError("RY requires theta")
            c, s = math.cos(theta / 2), math.sin(theta / 2)
            self._apply_single_qubit_matrix(
                np.array([[c, -s], [s, c]], dtype=complex), idx[0]
            )
        elif key == "RZ":
            if theta is None:
                raise ValueError("RZ requires theta")
            self._apply_diag(
                idx[0], cmath.exp(-1j * theta / 2), cmath.exp(1j * theta / 2)
            )
        elif key == "CZ":
            self._apply_cz(idx[0], idx[1])
        else:  # pragma: no cover - defensive, all gates covered above
            raise ValueError(f"gate {key} not supported by SparseState")

    def _apply_permutation(self, spec, idx: list[int]) -> None:
        new_amps: dict[Basis, complex] = {}
        for basis, amp in self._amplitudes.items():
            bits = tuple(basis[i] for i in idx)
            new_bits = spec.permute_bits(bits)
            if new_bits == bits:
                new_amps[basis] = new_amps.get(basis, 0.0) + amp
                continue
            new_basis = list(basis)
            for i, bit in zip(idx, new_bits):
                new_basis[i] = bit
            key = tuple(new_basis)
            new_amps[key] = new_amps.get(key, 0.0) + amp
        self._amplitudes = new_amps
        self._prune()

    def _apply_single_qubit_matrix(self, matrix: np.ndarray, index: int) -> None:
        new_amps: dict[Basis, complex] = {}
        for basis, amp in self._amplitudes.items():
            bit = basis[index]
            for new_bit in (0, 1):
                coeff = matrix[new_bit, bit]
                if abs(coeff) < _ATOL:
                    continue
                new_basis = list(basis)
                new_basis[index] = new_bit
                key = tuple(new_basis)
                new_amps[key] = new_amps.get(key, 0.0) + coeff * amp
        self._amplitudes = new_amps
        self._prune()

    def _apply_phase(self, index: int, on_one: complex) -> None:
        self._apply_diag(index, 1.0 + 0j, on_one)

    def _apply_diag(self, index: int, on_zero: complex, on_one: complex) -> None:
        self._amplitudes = {
            basis: amp * (on_one if basis[index] else on_zero)
            for basis, amp in self._amplitudes.items()
        }
        self._prune()

    def _apply_cz(self, control: int, target: int) -> None:
        self._amplitudes = {
            basis: (-amp if basis[control] and basis[target] else amp)
            for basis, amp in self._amplitudes.items()
        }

    # ---------------------------------------------------------------- circuits
    def run(self, circuit: Circuit) -> None:
        """Run a :class:`Circuit`, honouring classical conditions."""
        for op in circuit:
            self.apply_operation(op)

    def apply_operation(self, op: Operation) -> None:
        """Apply a single circuit operation (with classical condition)."""
        if op.condition is not None:
            register, value = op.condition
            if self.classical.get(register, 0) != value:
                return
        self.apply_gate(op.gate, op.qubits, theta=op.theta)

    # ------------------------------------------------------------- inspection
    def probability(self, assignment: Mapping[Qubit, int]) -> float:
        """Total probability of all basis states consistent with ``assignment``."""
        idx = [(self._index[q], v) for q, v in assignment.items()]
        total = 0.0
        for basis, amp in self._amplitudes.items():
            if all(basis[i] == v for i, v in idx):
                total += abs(amp) ** 2
        return total

    def marginal_distribution(
        self, qubits: Sequence[Qubit]
    ) -> dict[int, float]:
        """Probability distribution over a register (MSB first)."""
        idx = [self._index[q] for q in qubits]
        dist: dict[int, float] = {}
        for basis, amp in self._amplitudes.items():
            value = _bits_to_int(tuple(basis[i] for i in idx))
            dist[value] = dist.get(value, 0.0) + abs(amp) ** 2
        return dist

    def register_amplitudes(self, qubits: Sequence[Qubit]) -> dict[int, complex]:
        """Amplitudes over a register that is in a product state with the rest.

        The register may be in superposition and the *rest* of the system may
        also be in superposition, as long as the overall state factorises as
        ``|register> (x) |rest>``.  The returned amplitudes are normalised and
        carry an overall phase convention fixed by the largest-amplitude
        branch of the rest.

        Raises:
            ValueError: if the register is genuinely entangled with the rest.
        """
        idx = [self._index[q] for q in qubits]
        others = [i for i in range(len(self._qubits)) if i not in idx]

        # Group amplitudes into a (register value, rest value) matrix.
        matrix: dict[tuple[int, Basis], complex] = {}
        register_values: set[int] = set()
        rest_values: set[Basis] = set()
        for basis, amp in self._amplitudes.items():
            reg = _bits_to_int(tuple(basis[i] for i in idx))
            rest = tuple(basis[i] for i in others)
            matrix[(reg, rest)] = matrix.get((reg, rest), 0.0) + amp
            register_values.add(reg)
            rest_values.add(rest)

        # Reference rest branch: the one with the largest total weight.
        reference = max(
            rest_values,
            key=lambda rest: sum(
                abs(matrix.get((reg, rest), 0.0)) ** 2 for reg in register_values
            ),
        )
        column = {
            reg: matrix.get((reg, reference), 0.0) for reg in register_values
        }
        norm = math.sqrt(sum(abs(a) ** 2 for a in column.values()))
        if norm < _ATOL:
            raise ValueError("register has no support on the reference branch")
        column = {reg: amp / norm for reg, amp in column.items() if abs(amp) > _ATOL}

        # Rank-1 (product) check including phases: for every entry,
        # amp(reg, rest) * amp(reg0, ref) == amp(reg, ref) * amp(reg0, rest).
        reg0 = max(column, key=lambda reg: abs(column[reg]))
        pivot = matrix.get((reg0, reference), 0.0)
        for rest in rest_values:
            scale = matrix.get((reg0, rest), 0.0)
            for reg in register_values:
                lhs = matrix.get((reg, rest), 0.0) * pivot
                rhs = matrix.get((reg, reference), 0.0) * scale
                if abs(lhs - rhs) > 1e-8:
                    raise ValueError(
                        "register is entangled with the rest of the state"
                    )
        return column

    def expectation_of_assignment(self, qubit: Qubit) -> float:
        """<Z-basis value> of a single qubit (probability of measuring 1)."""
        return self.probability({qubit: 1})

    def qubit_values(self) -> dict[Qubit, int] | None:
        """If every qubit has a definite value, return the assignment, else None."""
        if len(self._amplitudes) != 1:
            # Qubits may still be definite across branches.
            values: dict[Qubit, int] = {}
            for i, q in enumerate(self._qubits):
                vals = {b[i] for b in self._amplitudes}
                if len(vals) != 1:
                    return None
                values[q] = vals.pop()
            return values
        basis = next(iter(self._amplitudes))
        return {q: basis[i] for i, q in enumerate(self._qubits)}

    def fidelity_with(self, other: "SparseState") -> float:
        """|<self|other>|^2 over the union of qubit labels (missing = |0>)."""
        labels = list(dict.fromkeys(self._qubits + other._qubits))
        a = self._expand_to(labels)
        b = other._expand_to(labels)
        overlap = 0.0 + 0.0j
        for basis, amp in a.items():
            overlap += amp.conjugate() * b.get(basis, 0.0)
        return abs(overlap) ** 2

    def _expand_to(self, labels: Sequence[Qubit]) -> dict[Basis, complex]:
        positions = {q: i for i, q in enumerate(labels)}
        out: dict[Basis, complex] = {}
        for basis, amp in self._amplitudes.items():
            new_basis = [0] * len(labels)
            for q, bit in zip(self._qubits, basis):
                new_basis[positions[q]] = bit
            out[tuple(new_basis)] = amp
        return out

    def to_statevector(self, order: Sequence[Qubit] | None = None) -> np.ndarray:
        """Dense statevector over the given qubit order (default: index order).

        Only practical for small qubit counts; used to cross-check against the
        dense simulator.
        """
        order = list(order) if order is not None else list(self._qubits)
        if set(order) != set(self._qubits):
            raise ValueError("order must be a permutation of the state's qubits")
        n = len(order)
        vec = np.zeros(2**n, dtype=complex)
        positions = [self._index[q] for q in order]
        for basis, amp in self._amplitudes.items():
            bits = tuple(basis[i] for i in positions)
            vec[_bits_to_int(bits)] = amp
        return vec


def _int_to_bits(value: int, width: int) -> tuple[int, ...]:
    if value < 0 or value >= 2**width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    return tuple((value >> (width - 1 - i)) & 1 for i in range(width))


def _bits_to_int(bits: Sequence[int]) -> int:
    out = 0
    for bit in bits:
        out = (out << 1) | bit
    return out


_H_MATRIX = np.array([[1, 1], [1, -1]], dtype=complex) / math.sqrt(2.0)
