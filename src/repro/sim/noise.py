"""Kraus noise channels used by the density-matrix simulator and the
analytic fidelity models.

The paper's noise model (Sec. 8.1) is a generic per-gate channel
``E(rho) = (1 - eps) rho + eps K rho K^dagger``; the channels here include the
standard special cases (bit flip, phase flip, depolarizing, amplitude
damping).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_I = np.eye(2, dtype=complex)
_X = np.array([[0, 1], [1, 0]], dtype=complex)
_Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
_Z = np.array([[1, 0], [0, -1]], dtype=complex)


@dataclass(frozen=True)
class NoiseChannel:
    """A completely-positive trace-preserving map given by Kraus operators.

    Attributes:
        name: human-readable channel name.
        kraus: tuple of single-qubit (or multi-qubit) Kraus matrices.
        error_probability: the headline error rate of the channel (the
            ``epsilon`` used in the paper's analytic fidelity bounds).
    """

    name: str
    kraus: tuple[np.ndarray, ...]
    error_probability: float

    def __post_init__(self) -> None:
        dim = self.kraus[0].shape[0]
        total = np.zeros((dim, dim), dtype=complex)
        for k in self.kraus:
            if k.shape != (dim, dim):
                raise ValueError("all Kraus operators must have the same shape")
            total += k.conj().T @ k
        if not np.allclose(total, np.eye(dim), atol=1e-9):
            raise ValueError(f"channel {self.name} is not trace preserving")

    @property
    def dim(self) -> int:
        return self.kraus[0].shape[0]

    def apply(self, rho: np.ndarray) -> np.ndarray:
        """Apply the channel to a density matrix of matching dimension."""
        out = np.zeros_like(rho)
        for k in self.kraus:
            out += k @ rho @ k.conj().T
        return out


def bit_flip_channel(probability: float) -> NoiseChannel:
    """X error with the given probability."""
    _check_probability(probability)
    return NoiseChannel(
        "bit_flip",
        (np.sqrt(1 - probability) * _I, np.sqrt(probability) * _X),
        probability,
    )


def phase_flip_channel(probability: float) -> NoiseChannel:
    """Z error with the given probability."""
    _check_probability(probability)
    return NoiseChannel(
        "phase_flip",
        (np.sqrt(1 - probability) * _I, np.sqrt(probability) * _Z),
        probability,
    )


def depolarizing_channel(probability: float) -> NoiseChannel:
    """Uniform X/Y/Z error with total probability ``probability``."""
    _check_probability(probability)
    p = probability / 3.0
    return NoiseChannel(
        "depolarizing",
        (
            np.sqrt(1 - probability) * _I,
            np.sqrt(p) * _X,
            np.sqrt(p) * _Y,
            np.sqrt(p) * _Z,
        ),
        probability,
    )


def amplitude_damping_channel(gamma: float) -> NoiseChannel:
    """Energy relaxation (T1 decay) with damping parameter ``gamma``."""
    _check_probability(gamma)
    k0 = np.array([[1, 0], [0, np.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, np.sqrt(gamma)], [0, 0]], dtype=complex)
    return NoiseChannel("amplitude_damping", (k0, k1), gamma)


def generic_kraus_channel(probability: float, kraus_operator: np.ndarray) -> NoiseChannel:
    """The paper's generic channel ``(1-eps) rho + eps K rho K^dagger``.

    ``kraus_operator`` must be unitary for the channel to be trace preserving.
    """
    _check_probability(probability)
    kraus_operator = np.asarray(kraus_operator, dtype=complex)
    return NoiseChannel(
        "generic",
        (
            np.sqrt(1 - probability) * np.eye(kraus_operator.shape[0], dtype=complex),
            np.sqrt(probability) * kraus_operator,
        ),
        probability,
    )


def _check_probability(probability: float) -> None:
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
