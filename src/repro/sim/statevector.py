"""Dense statevector simulator.

Used to cross-validate the sparse simulator on small systems (<= ~20 qubits)
and to run the non-permutation parts of the example algorithms (Grover
iterations, QSP rotations, ...).
"""

from __future__ import annotations

from collections.abc import Hashable, Mapping, Sequence

import numpy as np

from repro.sim.circuit import Circuit, Operation
from repro.sim.gates import gate_unitary

Qubit = Hashable


class StatevectorSimulator:
    """Dense statevector over named qubits.

    Qubit 0 in the internal ordering is the most significant bit of the basis
    index, matching :meth:`repro.sim.sparse.SparseState.to_statevector`.
    """

    def __init__(self, qubits: Sequence[Qubit]) -> None:
        if len(set(qubits)) != len(qubits):
            raise ValueError("duplicate qubit labels")
        self._qubits = list(qubits)
        self._index = {q: i for i, q in enumerate(self._qubits)}
        self._state = np.zeros(2 ** len(self._qubits), dtype=complex)
        self._state[0] = 1.0
        self.classical: dict[str, int] = {}

    @property
    def qubits(self) -> list[Qubit]:
        return list(self._qubits)

    @property
    def num_qubits(self) -> int:
        return len(self._qubits)

    @property
    def state(self) -> np.ndarray:
        """The statevector (copy)."""
        return self._state.copy()

    def set_state(self, vector: np.ndarray) -> None:
        """Set the statevector directly (must be normalised and right-sized)."""
        vector = np.asarray(vector, dtype=complex)
        if vector.shape != self._state.shape:
            raise ValueError("statevector has the wrong dimension")
        norm = np.linalg.norm(vector)
        if not np.isclose(norm, 1.0, atol=1e-9):
            raise ValueError("statevector must be normalised")
        self._state = vector.copy()

    def set_register(self, qubits: Sequence[Qubit], value: int) -> None:
        """Prepare the whole system in |0..0> with ``qubits`` set to ``value``."""
        if not np.isclose(abs(self._state[0]), 1.0):
            raise ValueError("set_register requires the all-zero state")
        index = 0
        width = len(qubits)
        for offset, q in enumerate(qubits):
            bit = (value >> (width - 1 - offset)) & 1
            if bit:
                index |= 1 << (self.num_qubits - 1 - self._index[q])
        self._state = np.zeros_like(self._state)
        self._state[index] = 1.0

    def apply_gate(
        self, gate: str, qubits: Sequence[Qubit], theta: float | None = None
    ) -> None:
        """Apply a named gate to the given qubits."""
        matrix = gate_unitary(gate, theta)
        self._apply_matrix(matrix, [self._index[q] for q in qubits])

    def apply_operation(self, op: Operation) -> None:
        if op.condition is not None:
            register, value = op.condition
            if self.classical.get(register, 0) != value:
                return
        self.apply_gate(op.gate, op.qubits, theta=op.theta)

    def run(self, circuit: Circuit) -> None:
        for op in circuit:
            self.apply_operation(op)

    def _apply_matrix(self, matrix: np.ndarray, targets: list[int]) -> None:
        n = self.num_qubits
        k = len(targets)
        tensor = self._state.reshape([2] * n)
        # Move target axes to the front, apply, and move them back.
        perm = targets + [i for i in range(n) if i not in targets]
        tensor = np.transpose(tensor, perm)
        tensor = tensor.reshape(2**k, -1)
        tensor = matrix @ tensor
        tensor = tensor.reshape([2] * n)
        tensor = np.transpose(tensor, np.argsort(perm))
        self._state = tensor.reshape(-1)

    # ------------------------------------------------------------- inspection
    def probability(self, assignment: Mapping[Qubit, int]) -> float:
        """Probability of measuring the given partial assignment."""
        mask = 0
        want = 0
        n = self.num_qubits
        for q, v in assignment.items():
            bit = 1 << (n - 1 - self._index[q])
            mask |= bit
            if v:
                want |= bit
        probs = np.abs(self._state) ** 2
        indices = np.arange(len(self._state))
        return float(probs[(indices & mask) == want].sum())

    def marginal_distribution(self, qubits: Sequence[Qubit]) -> dict[int, float]:
        """Distribution over a register (MSB first), marginalising the rest."""
        n = self.num_qubits
        shifts = [n - 1 - self._index[q] for q in qubits]
        probs = np.abs(self._state) ** 2
        dist: dict[int, float] = {}
        for index, p in enumerate(probs):
            if p < 1e-15:
                continue
            value = 0
            for s in shifts:
                value = (value << 1) | ((index >> s) & 1)
            dist[value] = dist.get(value, 0.0) + float(p)
        return dist

    def fidelity_with(self, other: np.ndarray) -> float:
        """|<self|other>|^2 against a raw statevector in the same ordering."""
        other = np.asarray(other, dtype=complex)
        return float(abs(np.vdot(self._state, other)) ** 2)
