"""A lightweight hot-path stage profiler for the serving engine.

The engine's per-event cost is spread over a handful of named stages —
admission, placement, ``run_window``, fidelity prediction, sketch/record
updates, heap operations — and optimizing one blind is how the others
regress.  :class:`HotPathProfiler` attributes work to those stages with
the cheapest possible instrumentation: a wrapped stage costs one closure
call and one dict increment per invocation, and wall time is only read
when a harness has injected a :data:`host_clock`.

Profiling is *observational by contract*: a profiled run must produce a
report identical to an unprofiled one (pinned in
``tests/test_perf_profile.py``).  The engine guarantees that by wrapping
methods without changing them; this module guarantees it by never
touching simulation state.

Wall-clock discipline: like :data:`repro.engine.parallel.host_clock`,
the clock is **injected** by harnesses (benchmarks, CLI tools) rather
than read from the wall here — ``import time`` in simulation code is
what simlint's SIM001 exists to prevent.  Without an injected clock the
profiler still counts stage invocations, so `REPRO_PROFILE=1` under the
test suite exercises the full wiring deterministically.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any, TypeVar

__all__ = [
    "PROFILE_ENV",
    "HotPathProfiler",
    "StageProfile",
    "env_profile",
    "host_clock",
]

#: Environment switch for engine profiling (``ServiceEngine(profile=None)``
#: reads it, mirroring ``REPRO_SANITIZE`` / ``REPRO_WORKERS``).
PROFILE_ENV = "REPRO_PROFILE"

#: Host wall clock used to time stages, e.g. ``time.perf_counter``.
#: ``None`` (the default) keeps simulation runs wall-clock-free: stages
#: are counted but not timed.  Benchmarks inject a real clock::
#:
#:     import repro.perf.profiler
#:     repro.perf.profiler.host_clock = time.perf_counter
host_clock: Callable[[], float] | None = None

_T = TypeVar("_T")


def env_profile() -> bool:
    """Default profiling setting from the ``REPRO_PROFILE`` variable."""
    return os.environ.get(PROFILE_ENV, "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


@dataclass(frozen=True)
class StageProfile:
    """The stage-time table of one (or several merged) profiled runs.

    Attributes:
        counts: stage name -> number of invocations.
        seconds: stage name -> attributed wall seconds; all zero unless a
            :data:`host_clock` was injected for the run.
        timed: whether a host clock was available (i.e. whether
            ``seconds`` is meaningful).
    """

    counts: dict[str, int] = field(default_factory=dict)
    seconds: dict[str, float] = field(default_factory=dict)
    timed: bool = False

    def merged(self, other: StageProfile) -> StageProfile:
        """Combine two profiles stage by stage (parallel-worker merge)."""
        counts = dict(self.counts)
        for stage, count in other.counts.items():
            counts[stage] = counts.get(stage, 0) + count
        seconds = dict(self.seconds)
        for stage, spent in other.seconds.items():
            seconds[stage] = seconds.get(stage, 0.0) + spent
        return StageProfile(
            counts=counts,
            seconds=seconds,
            timed=self.timed or other.timed,
        )

    def table(self) -> str:
        """The profile as an aligned text table, hottest stage first."""
        if not self.counts:
            return "(no profiled stages)"
        if self.timed:
            order = sorted(
                self.counts,
                key=lambda stage: self.seconds.get(stage, 0.0),
                reverse=True,
            )
        else:
            order = sorted(self.counts, key=self.counts.__getitem__, reverse=True)
        total = sum(self.seconds.values())
        width = max(len(stage) for stage in order)
        lines = [f"{'stage':<{width}}  {'calls':>10}  {'seconds':>10}  {'share':>6}"]
        for stage in order:
            spent = self.seconds.get(stage, 0.0)
            share = f"{spent / total:6.1%}" if total > 0 else "   n/a"
            lines.append(
                f"{stage:<{width}}  {self.counts[stage]:>10}  {spent:>10.4f}  {share}"
            )
        return "\n".join(lines)


class HotPathProfiler:
    """Counts (and optionally wall-times) named engine stages.

    One profiler instance covers one engine run; the engine creates it in
    ``_reset`` and snapshots it into the report.  ``timed`` wraps a
    callable so every invocation is attributed to a stage; ``call``
    attributes a single invocation (for stages inside a larger wrapped
    one, like the backend ``run_window`` inside window execution).
    """

    __slots__ = ("_counts", "_seconds", "_clock")

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._seconds: dict[str, float] = {}
        # Snapshot the module global once so a run is consistently timed
        # or consistently count-only.
        self._clock = host_clock

    def timed(self, stage: str, fn: Callable[..., _T]) -> Callable[..., _T]:
        """``fn`` wrapped to attribute every invocation to ``stage``."""
        counts = self._counts
        counts.setdefault(stage, 0)
        clock = self._clock
        if clock is None:

            def counted(*args: Any, **kwargs: Any) -> _T:
                counts[stage] += 1
                return fn(*args, **kwargs)

            return counted

        seconds = self._seconds
        seconds.setdefault(stage, 0.0)

        def walled(*args: Any, **kwargs: Any) -> _T:
            counts[stage] += 1
            begin = clock()
            try:
                return fn(*args, **kwargs)
            finally:
                seconds[stage] += clock() - begin

        return walled

    def call(
        self, stage: str, fn: Callable[..., _T], *args: Any, **kwargs: Any
    ) -> _T:
        """Run ``fn(*args, **kwargs)`` attributed to ``stage`` once."""
        self._counts[stage] = self._counts.get(stage, 0) + 1
        clock = self._clock
        if clock is None:
            return fn(*args, **kwargs)
        begin = clock()
        try:
            return fn(*args, **kwargs)
        finally:
            self._seconds[stage] = self._seconds.get(stage, 0.0) + (
                clock() - begin
            )

    def snapshot(self) -> StageProfile:
        """The accumulated stage table (dicts copied, safe to pickle)."""
        return StageProfile(
            counts=dict(self._counts),
            seconds=dict(self._seconds),
            timed=self._clock is not None,
        )
