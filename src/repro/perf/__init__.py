"""Hot-path performance instrumentation for the serving engine.

:mod:`repro.perf.profiler` provides the lightweight stage profiler behind
``ServiceEngine(profile=True)`` / ``REPRO_PROFILE=1``: named hot-path
stages (admission, placement, ``run_window``, fidelity prediction, sketch
updates, heap ops) are counted — and wall-timed when a host clock is
injected — and land as a :class:`~repro.perf.profiler.StageProfile` table
on :class:`~repro.engine.core.ServiceReport`.
"""

from repro.perf.profiler import (
    PROFILE_ENV,
    HotPathProfiler,
    StageProfile,
    env_profile,
)

__all__ = [
    "PROFILE_ENV",
    "HotPathProfiler",
    "StageProfile",
    "env_profile",
]
