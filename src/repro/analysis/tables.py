"""Regenerate Tables 1-5 of the paper."""

from __future__ import annotations

from collections.abc import Sequence

from repro.fidelity.distillation import table4_comparison
from repro.fidelity.noise_resilience import table3_rows
from repro.fidelity.qec import QECCode, table5_rows
from repro.metrics.resources import table1_rows
from repro.metrics.spacetime import table2_rows


def generate_table1(capacity: int = 1024) -> list[dict[str, object]]:
    """Table 1: qubits, parallelism and latencies of every architecture."""
    return table1_rows(capacity)


def generate_table2(capacity: int = 1024) -> list[dict[str, object]]:
    """Table 2: bandwidth, space-time volume and memory-swap budget."""
    return table2_rows(capacity)


def generate_table3(
    capacities: Sequence[int] = (8, 16, 32, 64),
) -> list[dict[str, float | int]]:
    """Table 3: query infidelity vs capacity for three base error rates."""
    return table3_rows(capacities)


def generate_table4(capacity: int = 16) -> dict[str, dict[str, float]]:
    """Table 4: virtual distillation, Fat-Tree vs two BB QRAMs."""
    return table4_comparison(capacity)


def generate_table5(
    capacity: int = 1024, physical_qubits: int = 5, distance: int = 3
) -> list[dict[str, object]]:
    """Table 5: error-corrected queries with a noisy Fat-Tree QRAM."""
    code = QECCode(physical_qubits=physical_qubits, distance=distance)
    return table5_rows(capacity, code)
