"""Regeneration of every table and figure of the paper's evaluation."""

from repro.analysis.tables import (
    generate_table1,
    generate_table2,
    generate_table3,
    generate_table4,
    generate_table5,
)
from repro.analysis.figures import (
    generate_fig2_milestones,
    generate_fig6_pipeline,
    generate_fig7_schedule,
    generate_fig8_bandwidth,
    generate_fig9_algorithm_depths,
    generate_fig10_synthetic,
    generate_fig11_qec,
)
from repro.analysis.report import format_table, full_report

__all__ = [
    "generate_table1",
    "generate_table2",
    "generate_table3",
    "generate_table4",
    "generate_table5",
    "generate_fig2_milestones",
    "generate_fig6_pipeline",
    "generate_fig7_schedule",
    "generate_fig8_bandwidth",
    "generate_fig9_algorithm_depths",
    "generate_fig10_synthetic",
    "generate_fig11_qec",
    "format_table",
    "full_report",
]
