"""Regenerate the data series behind Figures 2, 6, 7, 8, 9, 10 and 11."""

from __future__ import annotations

from collections.abc import Sequence

from repro.algorithms.depth_model import fig9_depths
from repro.algorithms.synthetic import SyntheticAlgorithm, sweep_to_grids, synthetic_sweep
from repro.baselines.registry import build_architecture
from repro.bucket_brigade.schedule import BBQuerySchedule
from repro.core.pipeline import FatTreePipeline
from repro.fidelity.qec import fig11_series
from repro.metrics.bandwidth import bandwidth_scaling
from repro.scheduling.contention import (
    AlgorithmWorkload,
    QRAMServiceModel,
    SharedQRAMSimulation,
)


def generate_fig2_milestones(capacity: int = 8) -> dict[str, int]:
    """Fig. 2(a): circuit-layer milestones of one BB QRAM query."""
    return BBQuerySchedule(capacity).milestone_layers()


def generate_fig6_pipeline(capacity: int = 8, num_queries: int = 3) -> dict[str, object]:
    """Fig. 6: pipeline schedule of ``num_queries`` on a capacity-8 Fat-Tree."""
    pipeline = FatTreePipeline(capacity, num_queries=num_queries)
    pipeline.verify_no_conflicts()
    return {
        "per_query_raw_layers": pipeline.query_raw_latency,
        "finish_layers": [t.finish_layer for t in pipeline.timelines()],
        "data_retrieval_layers": [
            t.data_retrieval_layer for t in pipeline.timelines()
        ],
        "total_raw_layers": pipeline.total_raw_layers,
        "bb_single_query_layers": BBQuerySchedule(capacity).raw_layers,
    }


def generate_fig7_schedule(
    capacity: int = 8,
    num_algorithms: int = 3,
    processing_layers: float = 20.0,
    rounds: int = 3,
) -> dict[str, float]:
    """Fig. 7: algorithms alternating queries and processing on a Fat-Tree."""
    qram = build_architecture("Fat-Tree", capacity)
    model = QRAMServiceModel.from_architecture(qram)
    workloads = [
        AlgorithmWorkload(i, rounds=rounds, processing_layers=processing_layers)
        for i in range(num_algorithms)
    ]
    report = SharedQRAMSimulation(model).run(workloads)
    return {
        "total_time": report.overall_depth,
        "average_utilization": report.average_utilization,
        "queries_served": report.total_queries,
    }


def generate_fig8_bandwidth(
    capacities: Sequence[int] = (4, 8, 16, 32, 64, 128, 256, 512, 1024),
) -> dict[str, list[float]]:
    """Fig. 8: bandwidth vs capacity for all five architectures."""
    series = bandwidth_scaling(capacities)
    series["capacity"] = [float(c) for c in capacities]
    return series


def generate_fig9_algorithm_depths(capacity: int = 1024) -> dict[str, dict[str, float]]:
    """Fig. 9: overall circuit depth of the four parallel algorithms."""
    return fig9_depths(capacity)


def generate_fig10_synthetic(
    capacity: int = 1024,
    processing_ratios: Sequence[float] = (0.0, 0.5, 1.0, 1.5, 2.0),
    parallel_counts: Sequence[int] = (1, 5, 10, 15, 20, 25, 30),
    rounds: int = 10,
    architectures: Sequence[str] = ("BB", "Fat-Tree"),
) -> dict[str, dict[str, object]]:
    """Fig. 10: synthetic-workload depth and utilization heat maps."""
    out: dict[str, dict[str, object]] = {}
    for name in architectures:
        qram = build_architecture(name, capacity)
        points = synthetic_sweep(qram, processing_ratios, parallel_counts, rounds)
        ratios, counts, depth, utilization = sweep_to_grids(points)
        out[name] = {
            "processing_ratios": ratios,
            "parallel_counts": counts,
            "overall_depth": depth,
            "utilization": utilization,
        }
    return out


def generate_fig11_qec(
    tree_depths: Sequence[int] = tuple(range(2, 19, 2)),
) -> dict[str, list[float]]:
    """Fig. 11: infidelity vs tree depth with and without QEC."""
    return fig11_series(tree_depths)
