"""Plain-text reporting helpers for tables and the full evaluation run."""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return title + "\n(empty)\n"
    columns = list(rows[0].keys())
    widths = {
        c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in rows)) for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(
            " | ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines) + "\n"


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def full_report(capacity: int = 1024) -> str:
    """Regenerate every table at one capacity and format them as text."""
    from repro.analysis.tables import (
        generate_table1,
        generate_table2,
        generate_table3,
        generate_table4,
        generate_table5,
    )

    sections = [
        format_table(generate_table1(capacity), "Table 1 — resources and latency"),
        format_table(generate_table2(capacity), "Table 2 — bandwidth and space-time"),
        format_table(generate_table3(), "Table 3 — query infidelity"),
    ]
    table4 = generate_table4()
    rows4 = [
        {"architecture": name, **values} for name, values in table4.items()
    ]
    sections.append(format_table(rows4, "Table 4 — virtual distillation"))
    sections.append(
        format_table(generate_table5(capacity), "Table 5 — error-corrected queries")
    )
    return "\n".join(sections)
